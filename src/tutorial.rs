//! # Tutorial: from raw entities to explained discoveries
//!
//! A guided tour of the whole API. Every code block compiles and runs as a
//! doc-test.
//!
//! ## 1. Model your group
//!
//! A *group* is a set of entities some upstream system categorized
//! together. Declare the relation's schema — each attribute with the
//! tokenizer that matches its shape — then add entities:
//!
//! ```
//! use dime::core::{GroupBuilder, Schema};
//! use dime::text::TokenizerKind;
//!
//! let schema = Schema::new([
//!     ("Title", TokenizerKind::Words),       // free text → words
//!     ("Authors", TokenizerKind::List(',')), // explicit list → names
//!     ("Year", TokenizerKind::Whole),        // identifier-ish → one token
//! ]);
//! let mut builder = GroupBuilder::new(schema);
//! builder.add_entity(&["A data cleaning system", "Ann Li, Bo Chen", "2015"]);
//! builder.add_entity(&["Data quality rules", "Ann Li, Cai Wu", "2017"]);
//! let group = builder.build();
//! assert_eq!(group.len(), 2);
//! // Values are tokenized, interned, and shared across entities:
//! assert!(group
//!     .entity(0)
//!     .value(1)
//!     .tokens
//!     .iter()
//!     .any(|t| group.entity(1).value(1).tokens.contains(t))); // "ann li"
//! ```
//!
//! ## 2. Attach semantics with an ontology
//!
//! String similarity cannot see that SIGMOD and VLDB are the same field.
//! Attach a category tree and values auto-map to nodes (exact name, token,
//! or bounded-edit-distance match):
//!
//! ```
//! use dime::core::{GroupBuilder, Schema};
//! use dime::ontology::{ontology_similarity, Ontology};
//! use dime::text::TokenizerKind;
//! use std::sync::Arc;
//!
//! let mut venues = Ontology::new("venue");
//! venues.add_path(&["computer science", "database", "sigmod"]);
//! venues.add_path(&["computer science", "database", "vldb"]);
//!
//! let schema = Schema::new([("Venue", TokenizerKind::Words)]);
//! let mut b = GroupBuilder::new(schema);
//! b.attach_ontology("Venue", Arc::new(venues));
//! b.add_entity(&["SIGMOD 2015"]); // token "sigmod" matches the leaf
//! b.add_entity(&["VLDB 2013"]);
//! let g = b.build();
//!
//! let (a, b_) = (g.entity(0).value(0).node.unwrap(), g.entity(1).value(0).node.unwrap());
//! // Same field, different venues: 2·|LCA| / (|n|+|n'|) = 2·3/(4+4).
//! assert_eq!(ontology_similarity(g.ontology(0).unwrap(), a, b_), 0.75);
//! ```
//!
//! No curated ontology? Learn one with LDA from a background corpus and
//! assign values by inference — see [`ThemeModel`](crate::ontology::ThemeModel).
//!
//! ## 3. Write rules — in code or as text
//!
//! Positive rules assert "these belong together"; negative rules assert
//! "these do not". The textual DSL keeps them in config files:
//!
//! ```
//! use dime::core::{parse_rules, Polarity, Schema};
//! use dime::text::TokenizerKind;
//!
//! let schema = Schema::new([
//!     ("Authors", TokenizerKind::List(',')),
//!     ("Venue", TokenizerKind::Words),
//! ]);
//! let rules = parse_rules(
//!     "
//!     positive: overlap(Authors) >= 2
//!     positive: overlap(Authors) >= 1 and ontology(Venue) >= 0.75
//!     negative: overlap(Authors) = 0
//!     negative: overlap(Authors) <= 1 and ontology(Venue) <= 0.25
//!     ",
//!     &schema,
//! )
//! .unwrap();
//! assert_eq!(rules.iter().filter(|r| r.polarity == Polarity::Positive).count(), 2);
//! // Rules round-trip back to the DSL:
//! assert!(rules[0].to_dsl(&schema).starts_with("positive: overlap(Authors)"));
//! ```
//!
//! ## 4. Discover, scroll, explain
//!
//! ```
//! use dime::core::{discover_fast, GroupBuilder, Predicate, Rule, Schema, SimilarityFn};
//! use dime::text::TokenizerKind;
//!
//! let schema = Schema::new([("Authors", TokenizerKind::List(','))]);
//! let mut b = GroupBuilder::new(schema);
//! b.add_entity(&["ann, bob"]);
//! b.add_entity(&["ann, bob, carol"]);
//! b.add_entity(&["bob, carol"]);
//! b.add_entity(&["someone else"]);
//! let group = b.build();
//!
//! let pos = vec![Rule::positive(vec![Predicate::new(0, SimilarityFn::Overlap, 2.0)])];
//! let neg = vec![Rule::negative(vec![Predicate::new(0, SimilarityFn::Overlap, 0.0)])];
//! let d = discover_fast(&group, &pos, &neg);
//!
//! // Partitions + pivot:
//! assert_eq!(d.pivot_members(), &[0, 1, 2]);
//! // The scrollbar: one monotone result set per negative rule.
//! assert_eq!(d.at_step(0).unwrap().len(), 1);
//! // Explanations: which rule fired, on which witness pair.
//! let w = d.witness_for(3).unwrap();
//! assert_eq!(w.rule, 0);
//! assert!(neg[w.rule].eval(&group, group.entity(w.entity), group.entity(w.pivot_entity)));
//! ```
//!
//! ## 5. Learn rules from examples
//!
//! Given labeled pairs, the greedy DIME-Rule algorithm derives both rule
//! sets (paper Section V):
//!
//! ```
//! use dime::core::{GroupBuilder, Schema, SimilarityFn};
//! use dime::rulegen::{generate_positive_rules, FunctionLibrary, GreedyConfig};
//! use dime::text::TokenizerKind;
//!
//! let schema = Schema::new([("Authors", TokenizerKind::List(','))]);
//! let mut b = GroupBuilder::new(schema);
//! b.add_entity(&["a, b, c"]);
//! b.add_entity(&["a, b"]);
//! b.add_entity(&["x, y"]);
//! let g = b.build();
//!
//! let rules = generate_positive_rules(
//!     &g,
//!     &[(0, 1)],          // positive example pairs
//!     &[(0, 2), (1, 2)],  // negative example pairs
//!     &FunctionLibrary::new(vec![(0, SimilarityFn::Overlap)]),
//!     &GreedyConfig::default(),
//! );
//! assert_eq!(rules[0].predicates[0].threshold, 2.0);
//! ```
//!
//! ## 6. Streaming groups
//!
//! When the group grows over time, [`IncrementalDime`](crate::core::IncrementalDime)
//! maintains partitions across insertions and matches the batch engines
//! exactly:
//!
//! ```
//! use dime::core::{discover_naive, GroupBuilder, IncrementalDime, Predicate, Rule, Schema, SimilarityFn};
//! use dime::text::TokenizerKind;
//!
//! let schema = Schema::new([("Authors", TokenizerKind::List(','))]);
//! let pos = vec![Rule::positive(vec![Predicate::new(0, SimilarityFn::Overlap, 2.0)])];
//! let neg = vec![Rule::negative(vec![Predicate::new(0, SimilarityFn::Overlap, 0.0)])];
//! let mut engine = IncrementalDime::new(GroupBuilder::new(schema).build(), pos.clone(), neg.clone());
//! engine.add_entity(&["ann, bob"]);
//! engine.add_entity(&["ann, bob, carol"]);
//! engine.add_entity(&["zed"]);
//! let d = engine.discovery();
//! assert_eq!(d, discover_naive(engine.group(), &pos, &neg));
//! ```
//!
//! ## 7. Evaluate
//!
//! ```
//! use dime::metrics::evaluate_sets;
//! let truth = [4usize, 9];
//! let flagged = [4usize, 7];
//! let m = evaluate_sets(flagged.iter(), truth.iter());
//! assert_eq!(m.precision, 0.5);
//! assert_eq!(m.recall, 0.5);
//! ```
//!
//! For full evaluations against synthetic ground truth, see the
//! generators in [`data`](crate::data) and the experiment binaries in
//! `crates/dime-bench`.
