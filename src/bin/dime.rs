//! `dime` — command-line discovery of mis-categorized entities.
//!
//! ```text
//! dime discover --group <group.json> --rules <rules.txt> [--engine fast|naive] [--json] [--explain]
//! dime learn    --group <group.json> --truth <ids.json>
//! dime demo     <scholar|amazon> [--seed N] [--json]
//! dime check-rules --group <group.json> --rules <rules.txt>
//! dime stats    --group <group.json>
//! ```
//!
//! `discover` loads a JSON group document (see `dime_data::load_group_json`
//! for the format) and a rule file in the textual DSL
//! (`dime_core::parse_rules`), runs DIME⁺ (or Algorithm 1 with
//! `--engine naive`), and prints a human-readable report — or the full JSON
//! report with `--json`.
//!
//! `demo` generates a synthetic Scholar page or Amazon category with known
//! ground truth and reports precision/recall per scrollbar step.

use dime::core::{
    discover_fast, discover_naive, parse_rules, Discovery, Group, GroupStats, Polarity, Rule,
};
use dime::data::{
    amazon_category, amazon_rules, discovery_to_json, load_group_json, scholar_page,
    scholar_rules, AmazonConfig, LabeledGroup, ScholarConfig,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("discover") => cmd_discover(&args[1..]),
        Some("demo") => cmd_demo(&args[1..]),
        Some("check-rules") => cmd_check_rules(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("learn") => cmd_learn(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command {other:?}\n");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "dime — discover mis-categorized entities (ICDE 2018)\n\n\
         USAGE:\n\
         \x20 dime discover --group <group.json> --rules <rules.txt> [--engine fast|naive] [--json]\n\
         \x20 dime demo <scholar|amazon> [--seed N] [--json]\n\
         \x20 dime check-rules --group <group.json> --rules <rules.txt>\n\
         \x20 dime stats --group <group.json>\n\
         \x20 dime learn --group <group.json> --truth <ids.json>\n\n\
         Rule file format (one rule per line, '#' comments):\n\
         \x20 positive: overlap(Authors) >= 2\n\
         \x20 positive: overlap(Authors) >= 1 and ontology(Venue) >= 0.75\n\
         \x20 negative: overlap(Authors) <= 0"
    );
}

fn flag_value<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn has_flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

fn load_inputs(args: &[String]) -> Result<(Group, Vec<Rule>, Vec<Rule>), String> {
    let group_path = flag_value(args, "--group").ok_or("missing --group <file>")?;
    let rules_path = flag_value(args, "--rules").ok_or("missing --rules <file>")?;
    let group_text =
        std::fs::read_to_string(group_path).map_err(|e| format!("{group_path}: {e}"))?;
    let rules_text =
        std::fs::read_to_string(rules_path).map_err(|e| format!("{rules_path}: {e}"))?;
    let group = load_group_json(&group_text).map_err(|e| e.to_string())?;
    let rules = parse_rules(&rules_text, group.schema()).map_err(|e| e.to_string())?;
    let (pos, neg): (Vec<_>, Vec<_>) =
        rules.into_iter().partition(|r| r.polarity == Polarity::Positive);
    if pos.is_empty() {
        return Err("rule file contains no positive rules".into());
    }
    if neg.is_empty() {
        return Err("rule file contains no negative rules".into());
    }
    Ok((group, pos, neg))
}

fn cmd_discover(args: &[String]) -> ExitCode {
    let (group, pos, neg) = match load_inputs(args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if group.is_empty() {
        eprintln!("error: the group is empty");
        return ExitCode::FAILURE;
    }
    let discovery = match flag_value(args, "--engine") {
        Some("naive") => discover_naive(&group, &pos, &neg),
        Some("fast") | None => discover_fast(&group, &pos, &neg),
        Some(other) => {
            eprintln!("error: unknown engine {other:?} (use 'fast' or 'naive')");
            return ExitCode::FAILURE;
        }
    };
    if has_flag(args, "--json") {
        println!("{}", serde_json::to_string_pretty(&discovery_to_json(&group, &discovery)).unwrap());
    } else {
        print_report(&group, &discovery, has_flag(args, "--explain"), &neg);
    }
    ExitCode::SUCCESS
}

fn print_report(group: &Group, discovery: &Discovery, explain: bool, negative: &[Rule]) {
    println!(
        "{} entities → {} partitions (pivot: {} entities)",
        group.len(),
        discovery.partitions.len(),
        discovery.pivot_members().len()
    );
    for step in &discovery.steps {
        println!(
            "  with {} negative rule(s): {} flagged",
            step.rules_applied,
            step.flagged.len()
        );
    }
    let flagged = discovery.mis_categorized();
    if flagged.is_empty() {
        println!("\nno mis-categorized entities discovered");
        return;
    }
    println!("\nmis-categorized entities:");
    let names: Vec<&str> = group.schema().attrs().iter().map(|a| a.name.as_str()).collect();
    for id in flagged {
        let e = group.entity(id);
        let summary: Vec<String> = names
            .iter()
            .enumerate()
            .filter(|(k, _)| !e.value(*k).text.is_empty())
            .take(3)
            .map(|(k, n)| format!("{n}: {}", e.value(k).text))
            .collect();
        println!("  [{id}] {}", summary.join(" | "));
        if explain {
            if let Some(w) = discovery.witness_for(id) {
                println!(
                    "        flagged by negative rule #{}: {}",
                    w.rule + 1,
                    negative[w.rule].to_dsl(group.schema())
                );
                let p = group.entity(w.pivot_entity);
                let first = names.first().copied().unwrap_or("?");
                println!(
                    "        witness pair: [{}] vs pivot [{}] ({}: {})",
                    w.entity,
                    w.pivot_entity,
                    first,
                    p.value(0).text
                );
            }
        }
    }
}

/// `dime learn`: derive positive/negative rules from a labeled group.
///
/// `--truth` is a JSON array of mis-categorized entity ids. Prints a rule
/// file (the DSL) learned by the greedy DIME-Rule algorithm, ready for
/// `dime discover --rules`.
fn cmd_learn(args: &[String]) -> ExitCode {
    use dime::data::{ExampleSet, LabeledGroup};
    use dime::rulegen::{
        generate_negative_rules, generate_positive_rules, FunctionLibrary, GreedyConfig,
    };
    let (Some(group_path), Some(truth_path)) =
        (flag_value(args, "--group"), flag_value(args, "--truth"))
    else {
        eprintln!("error: learn needs --group <group.json> and --truth <ids.json>");
        return ExitCode::FAILURE;
    };
    let group_text = match std::fs::read_to_string(group_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {group_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let group = match load_group_json(&group_text) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let truth_text = match std::fs::read_to_string(truth_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {truth_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let truth_ids: Vec<usize> = match serde_json::from_str(&truth_text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: --truth must be a JSON array of entity ids: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(&bad) = truth_ids.iter().find(|&&id| id >= group.len()) {
        eprintln!("error: truth id {bad} out of range (group has {} entities)", group.len());
        return ExitCode::FAILURE;
    }
    let schema = group.schema().clone();
    let lg = LabeledGroup {
        name: group_path.to_string(),
        group,
        truth: truth_ids.into_iter().collect(),
    };
    let ex = ExampleSet::from_labeled(&lg, 250, 250);
    if ex.positive.is_empty() || ex.negative.is_empty() {
        eprintln!("error: need both correct and mis-categorized entities to learn from");
        return ExitCode::FAILURE;
    }
    let library = FunctionLibrary::default_for(&lg.group);
    let cfg = GreedyConfig::default();
    let pos = generate_positive_rules(&lg.group, &ex.positive, &ex.negative, &library, &cfg);
    let neg = generate_negative_rules(&lg.group, &ex.positive, &ex.negative, &library, &cfg);
    if pos.is_empty() || neg.is_empty() {
        eprintln!("error: no discriminating rules found — check the labels");
        return ExitCode::FAILURE;
    }
    println!("# learned from {} positive / {} negative examples", ex.positive.len(), ex.negative.len());
    for r in pos.iter().chain(neg.iter()) {
        println!("{}", r.to_dsl(&schema));
    }
    ExitCode::SUCCESS
}

fn cmd_demo(args: &[String]) -> ExitCode {
    let seed: u64 = flag_value(args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(42);
    let (lg, pos, neg): (LabeledGroup, _, _) = match args.first().map(String::as_str) {
        Some("scholar") => {
            let lg = scholar_page("demo", &ScholarConfig::default_page(seed));
            let (p, n) = scholar_rules();
            (lg, p, n)
        }
        Some("amazon") => {
            let lg = amazon_category(&AmazonConfig::new(0, 200, 0.2, seed));
            let (p, n) = amazon_rules();
            (lg, p, n)
        }
        _ => {
            eprintln!("error: demo needs a dataset: scholar | amazon");
            return ExitCode::FAILURE;
        }
    };
    let discovery = discover_fast(&lg.group, &pos, &neg);
    if has_flag(args, "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&discovery_to_json(&lg.group, &discovery)).unwrap()
        );
        return ExitCode::SUCCESS;
    }
    println!(
        "synthetic {} group: {} entities, {} truly mis-categorized\n",
        lg.name,
        lg.group.len(),
        lg.truth.len()
    );
    for step in &discovery.steps {
        let m = dime::metrics::evaluate_sets(step.flagged.iter(), lg.truth.iter());
        println!(
            "  with {} negative rule(s): {:3} flagged | precision {:.2} recall {:.2} F {:.2}",
            step.rules_applied,
            step.flagged.len(),
            m.precision,
            m.recall,
            m.f_measure
        );
    }
    ExitCode::SUCCESS
}

fn cmd_stats(args: &[String]) -> ExitCode {
    let Some(group_path) = flag_value(args, "--group") else {
        eprintln!("error: missing --group <file>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(group_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {group_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match load_group_json(&text) {
        Ok(group) => {
            print!("{}", GroupStats::compute(&group));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_check_rules(args: &[String]) -> ExitCode {
    match load_inputs(args) {
        Ok((_, pos, neg)) => {
            println!("{} positive rule(s):", pos.len());
            for r in &pos {
                println!("  {r}");
            }
            println!("{} negative rule(s):", neg.len());
            for r in &neg {
                println!("  {r}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
