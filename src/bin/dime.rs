//! `dime` — command-line discovery of mis-categorized entities.
//!
//! ```text
//! dime discover --group <group.json> --rules <rules.txt> [--engine fast|naive] [--json] [--explain] [--trace]
//! dime learn    --group <group.json> --truth <ids.json>
//! dime demo     <scholar|amazon> [--seed N] [--json]
//! dime check-rules --group <group.json> --rules <rules.txt>
//! dime stats    --group <group.json>
//! dime serve    [--addr H:P] [--workers N] [--max-frame-bytes N] [--max-entities N] [--max-sessions N]
//!               [--admission threaded|async] [--queue-capacity N] [--batch-max N]
//!               [--data-dir DIR] [--fsync always|never|interval[:ms]] [--snapshot-every N]
//! dime client   --addr H:P <op> [op args]
//! dime rules    check --spec <file.rulespec> --group <group.json>
//! dime rules    <install|list|ablate|feedback> --addr H:P --session ID [action args]
//! dime cluster-shard  --data-dir DIR [--addr H:P] [--replicate-to H:P] [serve knobs]
//! dime cluster-shard  --follower --data-dir DIR [--repl-addr H:P] [--serve-addr H:P] [--workers N]
//! dime cluster-router --shard H:P[,FOLLOWER_H:P] ... [--addr H:P] [--pool N] [--vnodes N]
//!                     [--probe-interval-ms N] [--fail-threshold N]
//! ```
//!
//! `discover` loads a JSON group document (see `dime_data::load_group_json`
//! for the format) and a rule file in the textual DSL
//! (`dime_core::parse_rules`), runs DIME⁺ (or Algorithm 1 with
//! `--engine naive`), and prints a human-readable report — or the full JSON
//! report with `--json`. `--trace` records the engine's phase spans and
//! counters through a `dime-trace` recorder and appends the per-phase
//! breakdown (a table, or a `"trace"` object under `--json`).
//!
//! `demo` generates a synthetic Scholar page or Amazon category with known
//! ground truth and reports precision/recall per scrollbar step.
//!
//! `serve` hosts live groups over the incremental engine behind the
//! JSON-lines TCP protocol of the `dime-serve` crate, and `client` sends
//! one protocol request to a running server (see the README's "Running as
//! a service" section for the protocol reference).
//!
//! `rules` works with rulespec programs (the declarative rule DSL of the
//! `dime-rulespec` crate): `check` compiles a `.rulespec` file against a
//! group's schema locally and prints the canonical form, while `install`,
//! `list`, `ablate`, and `feedback` drive a live session's rule set over
//! the wire.

use dime::cluster::{
    Follower, FollowerConfig, FollowerLink, HealthConfig, Router, RouterConfig, ShardSpec,
};
use dime::core::{
    discover_fast, discover_fast_traced, discover_naive, parse_rules, DimePlusConfig, Discovery,
    Group, GroupStats, Polarity, Rule,
};
use dime::data::{
    amazon_category, amazon_rules, discovery_to_json, load_group_json, scholar_page, scholar_rules,
    AmazonConfig, LabeledGroup, ScholarConfig,
};
use dime::serve::metrics::trace_report_to_value;
use dime::serve::{AdmissionMode, Client, ClientError, Request, ServeConfig, Server, WalTapHandle};
use dime::store::{FsyncPolicy, StoreConfig};
use dime::trace::{Recorder, TraceReport};
use serde_json::{json, Value};
use std::io::Write;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("discover") => cmd_discover(&args[1..]),
        Some("demo") => cmd_demo(&args[1..]),
        Some("check-rules") => cmd_check_rules(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("learn") => cmd_learn(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("rules") => cmd_rules(&args[1..]),
        Some("cluster-shard") => cmd_cluster_shard(&args[1..]),
        Some("cluster-router") => cmd_cluster_router(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command {other:?}\n");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "dime — discover mis-categorized entities (ICDE 2018)\n\n\
         USAGE:\n\
         \x20 dime discover --group <group.json> --rules <rules.txt> [--engine fast|naive] [--json] [--trace]\n\
         \x20 dime demo <scholar|amazon> [--seed N] [--json]\n\
         \x20 dime check-rules --group <group.json> --rules <rules.txt>\n\
         \x20 dime stats --group <group.json>\n\
         \x20 dime learn --group <group.json> --truth <ids.json>\n\
         \x20 dime serve [--addr H:P] [--workers N] [--max-frame-bytes N] [--max-entities N] [--max-sessions N]\n\
         \x20            [--admission threaded|async] [--queue-capacity N] [--batch-max N]\n\
         \x20            [--data-dir DIR] [--fsync always|never|interval[:ms]] [--snapshot-every N]\n\
         \x20 dime client --addr H:P <ping|create|add|remove|discovery|scrollbar|stats|trace|close|shutdown> [op args]\n\
         \x20 dime rules check --spec <file.rulespec> --group <group.json>\n\
         \x20 dime rules install --addr H:P --session ID --spec <file.rulespec> [--strict]\n\
         \x20 dime rules list --addr H:P --session ID\n\
         \x20 dime rules ablate --addr H:P --session ID --polarity positive|negative --index N\n\
         \x20 dime rules feedback --addr H:P --session ID --labels <labels.json> [--apply]\n\
         \x20 dime cluster-shard --data-dir DIR [--addr H:P] [--replicate-to H:P] [serve knobs]\n\
         \x20 dime cluster-shard --follower --data-dir DIR [--repl-addr H:P] [--serve-addr H:P] [--workers N]\n\
         \x20 dime cluster-router --shard H:P[,FOLLOWER_H:P] ... [--addr H:P] [--pool N] [--vnodes N]\n\
         \x20                     [--probe-interval-ms N] [--fail-threshold N]\n\n\
         Rule file format (one rule per line, '#' comments):\n\
         \x20 positive: overlap(Authors) >= 2\n\
         \x20 positive: overlap(Authors) >= 1 and ontology(Venue) >= 0.75\n\
         \x20 negative: overlap(Authors) <= 0"
    );
}

fn flag_value<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn has_flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

/// Writes a JSON value to stdout (pretty-printed, newline-terminated)
/// without panicking: a broken pipe (`dime … --json | head`) exits as a
/// clean success, and serialization or write failures become error exits
/// instead of unwinding through `println!`.
fn emit_json(value: &Value) -> ExitCode {
    let text = match serde_json::to_string_pretty(value) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: failed to serialize the report: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut out = std::io::stdout().lock();
    let written = out
        .write_all(text.as_bytes())
        .and_then(|()| out.write_all(b"\n"))
        .and_then(|()| out.flush());
    match written {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: failed to write the report: {e}");
            ExitCode::FAILURE
        }
    }
}

fn load_inputs(args: &[String]) -> Result<(Group, Vec<Rule>, Vec<Rule>), String> {
    let group_path = flag_value(args, "--group").ok_or("missing --group <file>")?;
    let rules_path = flag_value(args, "--rules").ok_or("missing --rules <file>")?;
    let group_text =
        std::fs::read_to_string(group_path).map_err(|e| format!("{group_path}: {e}"))?;
    let rules_text =
        std::fs::read_to_string(rules_path).map_err(|e| format!("{rules_path}: {e}"))?;
    let group = load_group_json(&group_text).map_err(|e| e.to_string())?;
    let rules = parse_rules(&rules_text, group.schema()).map_err(|e| e.to_string())?;
    let (pos, neg): (Vec<_>, Vec<_>) =
        rules.into_iter().partition(|r| r.polarity == Polarity::Positive);
    if pos.is_empty() {
        return Err("rule file contains no positive rules".into());
    }
    if neg.is_empty() {
        return Err("rule file contains no negative rules".into());
    }
    Ok((group, pos, neg))
}

fn cmd_discover(args: &[String]) -> ExitCode {
    let (group, pos, neg) = match load_inputs(args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if group.is_empty() {
        eprintln!("error: the group is empty");
        return ExitCode::FAILURE;
    }
    let trace = has_flag(args, "--trace");
    let recorder = Recorder::new();
    let start = Instant::now();
    let discovery = match flag_value(args, "--engine") {
        Some("naive") => {
            if trace {
                eprintln!("error: --trace needs the fast engine (naive is not instrumented)");
                return ExitCode::FAILURE;
            }
            discover_naive(&group, &pos, &neg)
        }
        Some("fast") | None => {
            if trace {
                discover_fast_traced(&group, &pos, &neg, DimePlusConfig::default(), &recorder)
            } else {
                discover_fast(&group, &pos, &neg)
            }
        }
        Some(other) => {
            eprintln!("error: unknown engine {other:?} (use 'fast' or 'naive')");
            return ExitCode::FAILURE;
        }
    };
    let wall = start.elapsed();
    if has_flag(args, "--json") {
        let mut v = discovery_to_json(&group, &discovery);
        if trace {
            let mut t = trace_report_to_value(&recorder.snapshot());
            if let Some(obj) = t.as_object_mut() {
                obj.insert(
                    "wall_ns".into(),
                    json!(u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX)),
                );
            }
            if let Some(obj) = v.as_object_mut() {
                obj.insert("trace".into(), t);
            }
        }
        return emit_json(&v);
    }
    print_report(&group, &discovery, has_flag(args, "--explain"), &neg);
    if trace {
        print_trace(&recorder.snapshot(), wall);
    }
    ExitCode::SUCCESS
}

/// The five top-level engine phases tile a discovery run: they never nest
/// among themselves, so their summed durations approximate wall-clock
/// (worker spans nest inside `verify` and are reported but not summed).
const TILING_PHASES: [&str; 5] = ["signature_build", "index_probe", "verify", "union", "flag"];

/// Prints the `--trace` breakdown: phase table with wall-clock share,
/// engine counters, and per-rule hit counts.
fn print_trace(report: &TraceReport, wall: Duration) {
    let wall_ns = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX).max(1);
    println!(
        "\ntrace: wall {:.3} ms, {} span(s) recorded ({} dropped)",
        wall_ns as f64 / 1e6,
        report.spans.len(),
        report.dropped_spans
    );
    println!("  {:<18} {:>7} {:>12} {:>8}", "phase", "count", "total ms", "% wall");
    let mut tiled_ns = 0u64;
    for p in &report.phases {
        let nested = if TILING_PHASES.contains(&p.name.as_str()) {
            tiled_ns += p.total_ns;
            ""
        } else {
            "  (nested)"
        };
        println!(
            "  {:<18} {:>7} {:>12.3} {:>7.1}%{nested}",
            p.name,
            p.count,
            p.total_ns as f64 / 1e6,
            p.total_ns as f64 * 100.0 / wall_ns as f64
        );
    }
    println!(
        "  phases cover {:.3} ms = {:.1}% of wall-clock",
        tiled_ns as f64 / 1e6,
        tiled_ns as f64 * 100.0 / wall_ns as f64
    );
    if !report.counters.is_empty() {
        println!("\ncounters:");
        for (name, value) in &report.counters {
            println!("  {name:<28} {value}");
        }
    }
    if !report.rule_hits.is_empty() {
        println!("\nrule hits:");
        for r in &report.rule_hits {
            println!("  {} rule #{}: {} hit(s)", r.kind.label(), r.rule + 1, r.hits);
        }
    }
}

fn print_report(group: &Group, discovery: &Discovery, explain: bool, negative: &[Rule]) {
    println!(
        "{} entities → {} partitions (pivot: {} entities)",
        group.len(),
        discovery.partitions.len(),
        discovery.pivot_members().len()
    );
    for step in &discovery.steps {
        println!("  with {} negative rule(s): {} flagged", step.rules_applied, step.flagged.len());
    }
    let flagged = discovery.mis_categorized();
    if flagged.is_empty() {
        println!("\nno mis-categorized entities discovered");
        return;
    }
    println!("\nmis-categorized entities:");
    let names: Vec<&str> = group.schema().attrs().iter().map(|a| a.name.as_str()).collect();
    for id in flagged {
        let e = group.entity(id);
        let summary: Vec<String> = names
            .iter()
            .enumerate()
            .filter(|(k, _)| !e.value(*k).text.is_empty())
            .take(3)
            .map(|(k, n)| format!("{n}: {}", e.value(k).text))
            .collect();
        println!("  [{id}] {}", summary.join(" | "));
        if explain {
            if let Some(w) = discovery.witness_for(id) {
                println!(
                    "        flagged by negative rule #{}: {}",
                    w.rule + 1,
                    negative[w.rule].to_dsl(group.schema())
                );
                let p = group.entity(w.pivot_entity);
                let first = names.first().copied().unwrap_or("?");
                println!(
                    "        witness pair: [{}] vs pivot [{}] ({}: {})",
                    w.entity,
                    w.pivot_entity,
                    first,
                    p.value(0).text
                );
            }
        }
    }
}

/// `dime learn`: derive positive/negative rules from a labeled group.
///
/// `--truth` is a JSON array of mis-categorized entity ids. Prints a rule
/// file (the DSL) learned by the greedy DIME-Rule algorithm, ready for
/// `dime discover --rules`.
fn cmd_learn(args: &[String]) -> ExitCode {
    use dime::data::{ExampleSet, LabeledGroup};
    use dime::rulegen::{
        generate_negative_rules, generate_positive_rules, FunctionLibrary, GreedyConfig,
    };
    let (Some(group_path), Some(truth_path)) =
        (flag_value(args, "--group"), flag_value(args, "--truth"))
    else {
        eprintln!("error: learn needs --group <group.json> and --truth <ids.json>");
        return ExitCode::FAILURE;
    };
    let group_text = match std::fs::read_to_string(group_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {group_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let group = match load_group_json(&group_text) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let truth_text = match std::fs::read_to_string(truth_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {truth_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let truth_ids: Vec<usize> = match serde_json::from_str(&truth_text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: --truth must be a JSON array of entity ids: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(&bad) = truth_ids.iter().find(|&&id| id >= group.len()) {
        eprintln!("error: truth id {bad} out of range (group has {} entities)", group.len());
        return ExitCode::FAILURE;
    }
    let schema = group.schema().clone();
    let lg = LabeledGroup {
        name: group_path.to_string(),
        group,
        truth: truth_ids.into_iter().collect(),
    };
    let ex = ExampleSet::from_labeled(&lg, 250, 250);
    if ex.positive.is_empty() || ex.negative.is_empty() {
        eprintln!("error: need both correct and mis-categorized entities to learn from");
        return ExitCode::FAILURE;
    }
    let library = FunctionLibrary::default_for(&lg.group);
    let cfg = GreedyConfig::default();
    let pos = generate_positive_rules(&lg.group, &ex.positive, &ex.negative, &library, &cfg);
    let neg = generate_negative_rules(&lg.group, &ex.positive, &ex.negative, &library, &cfg);
    if pos.is_empty() || neg.is_empty() {
        eprintln!("error: no discriminating rules found — check the labels");
        return ExitCode::FAILURE;
    }
    println!(
        "# learned from {} positive / {} negative examples",
        ex.positive.len(),
        ex.negative.len()
    );
    for r in pos.iter().chain(neg.iter()) {
        println!("{}", r.to_dsl(&schema));
    }
    ExitCode::SUCCESS
}

fn cmd_demo(args: &[String]) -> ExitCode {
    let seed: u64 = flag_value(args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(42);
    let (lg, pos, neg): (LabeledGroup, _, _) = match args.first().map(String::as_str) {
        Some("scholar") => {
            let lg = scholar_page("demo", &ScholarConfig::default_page(seed));
            let (p, n) = scholar_rules();
            (lg, p, n)
        }
        Some("amazon") => {
            let lg = amazon_category(&AmazonConfig::new(0, 200, 0.2, seed));
            let (p, n) = amazon_rules();
            (lg, p, n)
        }
        _ => {
            eprintln!("error: demo needs a dataset: scholar | amazon");
            return ExitCode::FAILURE;
        }
    };
    let discovery = discover_fast(&lg.group, &pos, &neg);
    if has_flag(args, "--json") {
        return emit_json(&discovery_to_json(&lg.group, &discovery));
    }
    println!(
        "synthetic {} group: {} entities, {} truly mis-categorized\n",
        lg.name,
        lg.group.len(),
        lg.truth.len()
    );
    for step in &discovery.steps {
        let m = dime::metrics::evaluate_sets(step.flagged.iter(), lg.truth.iter());
        println!(
            "  with {} negative rule(s): {:3} flagged | precision {:.2} recall {:.2} F {:.2}",
            step.rules_applied,
            step.flagged.len(),
            m.precision,
            m.recall,
            m.f_measure
        );
    }
    ExitCode::SUCCESS
}

fn cmd_stats(args: &[String]) -> ExitCode {
    let Some(group_path) = flag_value(args, "--group") else {
        eprintln!("error: missing --group <file>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(group_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {group_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match load_group_json(&text) {
        Ok(group) => {
            print!("{}", GroupStats::compute(&group));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses an optional numeric flag, distinguishing "absent" from
/// "unparsable" so typos fail loudly instead of silently using a default.
fn numeric_flag<T: std::str::FromStr>(args: &[String], key: &str) -> Result<Option<T>, String> {
    match flag_value(args, key) {
        None => Ok(None),
        Some(v) => v.parse().map(Some).map_err(|_| format!("{key} needs a number, got {v:?}")),
    }
}

/// `dime serve`: host live groups behind the `dime-serve` TCP protocol.
/// Runs until a client sends `{"op": "shutdown"}`, then drains and exits.
fn cmd_serve(args: &[String]) -> ExitCode {
    let mut config = ServeConfig {
        addr: flag_value(args, "--addr").unwrap_or("127.0.0.1:7878").to_string(),
        ..ServeConfig::default()
    };
    let knobs: [(&str, &mut usize); 6] = [
        ("--workers", &mut config.workers),
        ("--max-frame-bytes", &mut config.max_frame_bytes),
        ("--max-entities", &mut config.max_entities_per_request),
        ("--max-sessions", &mut config.max_sessions),
        ("--queue-capacity", &mut config.queue_capacity),
        ("--batch-max", &mut config.batch_max),
    ];
    for (key, slot) in knobs {
        match numeric_flag(args, key) {
            Ok(None) => {}
            Ok(Some(n)) => *slot = n,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(mode) = flag_value(args, "--admission") {
        match mode.parse::<AdmissionMode>() {
            Ok(m) => config.admission = m,
            Err(e) => {
                eprintln!("error: --admission: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(dir) = flag_value(args, "--data-dir") {
        let mut store = StoreConfig::new(dir);
        if let Some(policy) = flag_value(args, "--fsync") {
            match FsyncPolicy::parse(policy) {
                Ok(p) => store.fsync = p,
                Err(e) => {
                    eprintln!("error: --fsync: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        match numeric_flag(args, "--snapshot-every") {
            Ok(None) => {}
            Ok(Some(n)) => store.snapshot_every = n,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        config.store = Some(store);
    } else if flag_value(args, "--fsync").is_some()
        || flag_value(args, "--snapshot-every").is_some()
    {
        eprintln!("error: --fsync and --snapshot-every need --data-dir");
        return ExitCode::FAILURE;
    }
    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: failed to bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Announce the resolved address (port 0 picks a free port) on stdout
    // so scripts can parse it; flush before blocking in the accept loop.
    println!("dime-serve listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    match server.run() {
        Ok(()) => {
            eprintln!("dime-serve drained and stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: server failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `dime client`: send one protocol request to a running server and print
/// the JSON payload of the response.
fn cmd_client(args: &[String]) -> ExitCode {
    let Some(addr) = flag_value(args, "--addr") else {
        eprintln!("error: client needs --addr <host:port>");
        return ExitCode::FAILURE;
    };
    let req = match build_client_request(args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: failed to connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match client.call(&req) {
        Ok(payload) => emit_json(&payload),
        Err(ClientError::Server { code, message }) => {
            eprintln!("server error {code}: {message}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Builds the protocol request described by `dime client` operands.
fn build_client_request(args: &[String]) -> Result<Request, String> {
    let session = || -> Result<u64, String> {
        numeric_flag(args, "--session")?.ok_or_else(|| "missing --session <id>".to_string())
    };
    // The op is the first positional argument — skip every flag together
    // with its value so `--addr 1.2.3.4:7 stats --session 5` parses
    // regardless of ordering.
    const VALUED_FLAGS: [&str; 7] =
        ["--addr", "--session", "--entity", "--step", "--group", "--rules", "--entities"];
    let mut op = None;
    let mut i = 0;
    while i < args.len() {
        if VALUED_FLAGS.contains(&args[i].as_str()) {
            i += 2;
        } else if args[i].starts_with("--") {
            i += 1;
        } else {
            op = Some(args[i].as_str());
            break;
        }
    }
    let op = op.ok_or_else(|| {
        "client needs an operation: ping | create | add | remove | discovery | scrollbar | stats | trace | close | shutdown"
            .to_string()
    })?;
    match op {
        "ping" => Ok(Request::Ping),
        "create" => {
            let group_path =
                flag_value(args, "--group").ok_or("create needs --group <group.json>")?;
            let rules_path =
                flag_value(args, "--rules").ok_or("create needs --rules <rules.txt>")?;
            let group_text =
                std::fs::read_to_string(group_path).map_err(|e| format!("{group_path}: {e}"))?;
            let rules =
                std::fs::read_to_string(rules_path).map_err(|e| format!("{rules_path}: {e}"))?;
            let group: Value = serde_json::from_str(&group_text)
                .map_err(|e| format!("{group_path}: invalid JSON: {e}"))?;
            Ok(Request::CreateSession { group, rules })
        }
        "add" => {
            let rows_path =
                flag_value(args, "--entities").ok_or("add needs --entities <rows.json>")?;
            let text =
                std::fs::read_to_string(rows_path).map_err(|e| format!("{rows_path}: {e}"))?;
            let rows: Value = serde_json::from_str(&text)
                .map_err(|e| format!("{rows_path}: invalid JSON: {e}"))?;
            let entities = rows
                .as_array()
                .cloned()
                .ok_or_else(|| format!("{rows_path}: expected a JSON array of rows"))?;
            Ok(Request::AddEntities { session: session()?, entities })
        }
        "remove" => {
            let entity = numeric_flag(args, "--entity")?.ok_or("remove needs --entity <id>")?;
            Ok(Request::RemoveEntity { session: session()?, entity })
        }
        "discovery" => Ok(Request::Discovery { session: session()? }),
        "scrollbar" => {
            let step = numeric_flag(args, "--step")?.ok_or("scrollbar needs --step <n>")?;
            Ok(Request::Scrollbar { session: session()?, step })
        }
        "stats" => Ok(Request::Stats { session: numeric_flag(args, "--session")? }),
        "trace" => Ok(Request::Trace),
        "close" => Ok(Request::CloseSession { session: session()? }),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown client operation {other:?}")),
    }
}

/// `dime rules`: compile and manage rulespec programs. `check` runs
/// entirely locally (compile + canonical pretty-print, no server); the
/// other actions drive a live session's rule set over the wire.
fn cmd_rules(args: &[String]) -> ExitCode {
    // The action is the first positional argument; skip flags with values
    // so ordering doesn't matter (same discipline as `dime client`).
    const VALUED_FLAGS: [&str; 7] =
        ["--addr", "--session", "--spec", "--group", "--polarity", "--index", "--labels"];
    let mut action = None;
    let mut i = 0;
    while i < args.len() {
        if VALUED_FLAGS.contains(&args[i].as_str()) {
            i += 2;
        } else if args[i].starts_with("--") {
            i += 1;
        } else {
            action = Some(args[i].as_str());
            break;
        }
    }
    let Some(action) = action else {
        eprintln!("error: rules needs an action: check | install | list | ablate | feedback");
        return ExitCode::FAILURE;
    };
    if action == "check" {
        return cmd_rules_check(args);
    }
    let Some(addr) = flag_value(args, "--addr") else {
        eprintln!("error: rules {action} needs --addr <host:port>");
        return ExitCode::FAILURE;
    };
    let session = match numeric_flag::<u64>(args, "--session") {
        Ok(Some(s)) => s,
        Ok(None) => {
            eprintln!("error: rules {action} needs --session <id>");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: failed to connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match action {
        "install" => {
            let Some(spec_path) = flag_value(args, "--spec") else {
                eprintln!("error: rules install needs --spec <file.rulespec>");
                return ExitCode::FAILURE;
            };
            let spec = match std::fs::read_to_string(spec_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: {spec_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            client.rules_install_opts(session, &spec, has_flag(args, "--strict"))
        }
        "list" => client.rules_list(session),
        "ablate" => {
            let polarity = match flag_value(args, "--polarity") {
                Some("positive") => Polarity::Positive,
                Some("negative") => Polarity::Negative,
                Some(other) => {
                    eprintln!("error: --polarity must be 'positive' or 'negative', got {other:?}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("error: rules ablate needs --polarity positive|negative");
                    return ExitCode::FAILURE;
                }
            };
            let index = match numeric_flag::<usize>(args, "--index") {
                Ok(Some(n)) => n,
                Ok(None) => {
                    eprintln!("error: rules ablate needs --index <n>");
                    return ExitCode::FAILURE;
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            client.rules_ablate(session, polarity, index)
        }
        "feedback" => {
            let Some(labels_path) = flag_value(args, "--labels") else {
                eprintln!("error: rules feedback needs --labels <labels.json>");
                return ExitCode::FAILURE;
            };
            let labels = match read_labels(labels_path) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            client.feedback(session, &labels, has_flag(args, "--apply"))
        }
        other => {
            eprintln!("error: unknown rules action {other:?} (check | install | list | ablate | feedback)");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(payload) => emit_json(&payload),
        Err(ClientError::Server { code, message }) => {
            eprintln!("server error {code}: {message}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `dime rules check`: compile a rulespec file against a group's schema
/// and print the canonical form — the offline half of an install, with
/// the same `file:line:col` diagnostics a server rejection would carry.
fn cmd_rules_check(args: &[String]) -> ExitCode {
    let (Some(spec_path), Some(group_path)) =
        (flag_value(args, "--spec"), flag_value(args, "--group"))
    else {
        eprintln!("error: rules check needs --spec <file.rulespec> and --group <group.json>");
        return ExitCode::FAILURE;
    };
    let spec_text = match std::fs::read_to_string(spec_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {spec_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let group_text = match std::fs::read_to_string(group_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {group_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let group = match load_group_json(&group_text) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let compiled = match dime::rulespec::compile_str(spec_path, &spec_text, group.schema()) {
        Ok(c) => c,
        Err(d) => {
            eprintln!("error: {d}");
            return ExitCode::FAILURE;
        }
    };
    let canonical = match dime::rulespec::render_rules(
        &compiled.positive,
        &compiled.negative,
        group.schema(),
    ) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: failed to render the compiled spec: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "# {} positive / {} negative rule(s) compile cleanly against {}",
        compiled.positive.len(),
        compiled.negative.len(),
        group_path
    );
    print!("{canonical}");
    // The same semantic pass a server runs at install: warnings here,
    // `rule_rejected` under `dime rules install --strict`.
    let findings = dime::rulespec::semck_spec(&compiled, group.schema());
    for f in &findings {
        eprintln!("warning[{}]: {}", f.kind.tag(), f.message);
    }
    if !findings.is_empty() {
        eprintln!(
            "# {} semantic warning(s); `rules install --strict` would reject this spec",
            findings.len()
        );
    }
    ExitCode::SUCCESS
}

/// Reads a feedback label file: a JSON array of `[entity_id, belongs]`
/// pairs, the same shape the wire op carries.
fn read_labels(path: &str) -> Result<Vec<(usize, bool)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let value: Value =
        serde_json::from_str(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let arr = value
        .as_array()
        .ok_or_else(|| format!("{path}: expected a JSON array of [entity, belongs] pairs"))?;
    let mut labels = Vec::with_capacity(arr.len());
    for (i, pair) in arr.iter().enumerate() {
        let cells = pair
            .as_array()
            .ok_or_else(|| format!("{path}: label {i} is not a [entity, belongs] pair"))?;
        let (Some(entity), Some(belongs)) =
            (cells.first().and_then(Value::as_u64), cells.get(1).and_then(Value::as_bool))
        else {
            return Err(format!("{path}: label {i} must be [non-negative integer, boolean]"));
        };
        labels.push((entity as usize, belongs));
    }
    Ok(labels)
}

/// Every value of a repeatable flag, in order (`--shard a --shard b`).
fn flag_values<'a>(args: &'a [String], key: &str) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == key {
            if let Some(v) = args.get(i + 1) {
                out.push(v.as_str());
                i += 1;
            }
        }
        i += 1;
    }
    out
}

/// `dime cluster-shard`: one shard of a dime cluster. Without
/// `--follower`, a persistent `dime serve` whose committed WAL records
/// are optionally streamed to a follower (`--replicate-to`). With
/// `--follower`, the warm replica itself: it mirrors a primary's log and
/// promotes into a full server when the router asks.
fn cmd_cluster_shard(args: &[String]) -> ExitCode {
    if has_flag(args, "--follower") {
        return cmd_cluster_follower(args);
    }
    let Some(dir) = flag_value(args, "--data-dir") else {
        eprintln!("error: cluster-shard needs --data-dir (shards are persistent)");
        return ExitCode::FAILURE;
    };
    let mut config = ServeConfig {
        addr: flag_value(args, "--addr").unwrap_or("127.0.0.1:0").to_string(),
        ..ServeConfig::default()
    };
    let knobs: [(&str, &mut usize); 4] = [
        ("--workers", &mut config.workers),
        ("--max-frame-bytes", &mut config.max_frame_bytes),
        ("--max-entities", &mut config.max_entities_per_request),
        ("--max-sessions", &mut config.max_sessions),
    ];
    for (key, slot) in knobs {
        match numeric_flag(args, key) {
            Ok(None) => {}
            Ok(Some(n)) => *slot = n,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut store = StoreConfig::new(dir);
    if let Some(policy) = flag_value(args, "--fsync") {
        match FsyncPolicy::parse(policy) {
            Ok(p) => store.fsync = p,
            Err(e) => {
                eprintln!("error: --fsync: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match numeric_flag(args, "--snapshot-every") {
        Ok(None) => {}
        Ok(Some(n)) => store.snapshot_every = n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    config.store = Some(store);
    if let Some(follower) = flag_value(args, "--replicate-to") {
        let link = FollowerLink::new(follower.to_string(), Duration::from_secs(5));
        config.replication = Some(WalTapHandle::new(std::sync::Arc::new(link)));
    }
    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: failed to bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Scripts parse the address off the end of this line; flush before
    // blocking in the accept loop.
    println!("dime-cluster shard listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    match server.run() {
        Ok(()) => {
            eprintln!("dime-cluster shard drained and stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: shard failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `--follower` form of `cluster-shard`: mirror a primary's WAL
/// stream, ack by sequence number, serve after promotion.
fn cmd_cluster_follower(args: &[String]) -> ExitCode {
    let Some(dir) = flag_value(args, "--data-dir") else {
        eprintln!("error: cluster-shard --follower needs --data-dir");
        return ExitCode::FAILURE;
    };
    let mut config = FollowerConfig { data_dir: dir.into(), ..FollowerConfig::default() };
    if let Some(addr) = flag_value(args, "--repl-addr") {
        config.addr = addr.to_string();
    }
    if let Some(addr) = flag_value(args, "--serve-addr") {
        config.serve_addr = addr.to_string();
    }
    match numeric_flag(args, "--workers") {
        Ok(None) => {}
        Ok(Some(n)) => config.workers = n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(policy) = flag_value(args, "--fsync") {
        match FsyncPolicy::parse(policy) {
            Ok(p) => config.fsync = p,
            Err(e) => {
                eprintln!("error: --fsync: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match numeric_flag(args, "--snapshot-every") {
        Ok(None) => {}
        Ok(Some(n)) => config.snapshot_every = n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    let follower = match Follower::bind(config) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: failed to bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("dime-cluster follower replicating on {}", follower.local_addr());
    let _ = std::io::stdout().flush();
    match follower.run() {
        Ok(()) => {
            eprintln!("dime-cluster follower stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: follower failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `dime cluster-router`: place sessions on shards by consistent
/// hashing, proxy requests, probe shard health, promote followers.
fn cmd_cluster_router(args: &[String]) -> ExitCode {
    let specs = flag_values(args, "--shard");
    if specs.is_empty() {
        eprintln!("error: cluster-router needs at least one --shard <addr>[,<follower-repl-addr>]");
        return ExitCode::FAILURE;
    }
    let shards = specs
        .iter()
        .map(|spec| {
            let (addr, follower) = match spec.split_once(',') {
                Some((a, f)) => (a, Some(f.to_string())),
                None => (*spec, None),
            };
            ShardSpec { addr: addr.to_string(), follower }
        })
        .collect();
    let mut health = HealthConfig::default();
    let millis: [(&str, &mut Duration); 3] = [
        ("--probe-interval-ms", &mut health.interval),
        ("--probe-timeout-ms", &mut health.connect_timeout),
        ("--promote-timeout-ms", &mut health.promote_timeout),
    ];
    for (key, slot) in millis {
        match numeric_flag::<u64>(args, key) {
            Ok(None) => {}
            Ok(Some(n)) => *slot = Duration::from_millis(n),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match numeric_flag::<u32>(args, "--fail-threshold") {
        Ok(None) => {}
        Ok(Some(n)) => health.fail_threshold = n.max(1),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    let mut config = RouterConfig {
        addr: flag_value(args, "--addr").unwrap_or("127.0.0.1:0").to_string(),
        shards,
        health: Some(health),
        ..RouterConfig::default()
    };
    let knobs: [(&str, &mut usize); 2] =
        [("--pool", &mut config.pool_per_shard), ("--vnodes", &mut config.vnodes)];
    for (key, slot) in knobs {
        match numeric_flag(args, key) {
            Ok(None) => {}
            Ok(Some(n)) => *slot = n,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let router = match Router::bind(config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: failed to bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("dime-cluster router listening on {}", router.local_addr());
    let _ = std::io::stdout().flush();
    match router.run() {
        Ok(()) => {
            eprintln!("dime-cluster router drained and stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: router failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_check_rules(args: &[String]) -> ExitCode {
    match load_inputs(args) {
        Ok((_, pos, neg)) => {
            println!("{} positive rule(s):", pos.len());
            for r in &pos {
                println!("  {r}");
            }
            println!("{} negative rule(s):", neg.len());
            for r in &neg {
                println!("  {r}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
