//! # DIME — Discovering Mis-Categorized Entities
//!
//! A Rust implementation of *Discovering Mis-Categorized Entities*
//! (Hao, Tang, Li, Feng — ICDE 2018): a rule-based framework that, given a
//! group of entities categorized together (a Google Scholar profile, an
//! Amazon product category), finds the entities that do not belong.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — entities, rules, DIME (Algorithm 1) and DIME⁺
//!   (Algorithm 2, the signature-based fast engine);
//! * [`text`] — tokenization, string similarity, prefix signatures;
//! * [`ontology`] — ontology trees, LCA similarity, node signatures, LDA;
//! * [`index`] — union-find and the signature inverted index;
//! * [`rulegen`] — greedy + enumeration rule generation from examples;
//! * [`rulespec`] — the declarative datalog-flavored rule language
//!   (`same(X, Y) :- overlap(Authors) >= 2.`), compiled bit-identically
//!   into the engine's rules, installed live via `dime rules`;
//! * [`baselines`] — CR, SVM, decision tree, SIFI;
//! * [`data`] — synthetic Scholar / Amazon / DBGen datasets;
//! * [`metrics`] — precision/recall/F-measure, k-fold splits;
//! * [`serve`] — the concurrent JSON-lines TCP discovery service over
//!   the incremental engine (`dime serve` / `dime client`);
//! * [`store`] — durable session persistence: a CRC-framed write-ahead
//!   log, periodic snapshots with log compaction, and crash recovery
//!   (`dime serve --data-dir`);
//! * [`cluster`] — the sharded service: a consistent-hash router over N
//!   shards, synchronous WAL-streaming replication to warm followers,
//!   and probe-driven failover (`dime cluster-router` /
//!   `dime cluster-shard`);
//! * [`trace`] — span-based tracing, phase timers, and latency
//!   histograms behind the engines' `TraceSink` hook.
//!
//! ## Quickstart
//!
//! ```
//! use dime::core::{discover_fast, GroupBuilder, Predicate, Rule, Schema, SimilarityFn};
//! use dime::text::TokenizerKind;
//!
//! let schema = Schema::new([("Authors", TokenizerKind::List(','))]);
//! let mut b = GroupBuilder::new(schema);
//! b.add_entity(&["ann, bob"]);
//! b.add_entity(&["bob, ann, carol"]);
//! b.add_entity(&["someone else"]);
//! let group = b.build();
//!
//! let pos = vec![Rule::positive(vec![Predicate::new(0, SimilarityFn::Overlap, 2.0)])];
//! let neg = vec![Rule::negative(vec![Predicate::new(0, SimilarityFn::Overlap, 0.0)])];
//! let discovery = discover_fast(&group, &pos, &neg);
//! assert_eq!(discovery.mis_categorized().into_iter().collect::<Vec<_>>(), vec![2]);
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/dime-bench` for the
//! binaries that regenerate every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod tutorial;

pub use dime_baselines as baselines;
pub use dime_cluster as cluster;
pub use dime_core as core;
pub use dime_data as data;
pub use dime_index as index;
pub use dime_metrics as metrics;
pub use dime_ontology as ontology;
pub use dime_rulegen as rulegen;
pub use dime_rulespec as rulespec;
pub use dime_serve as serve;
pub use dime_store as store;
pub use dime_text as text;
pub use dime_trace as trace;
