//! Cleaning a synthetic Google Scholar page end to end.
//!
//! Generates a realistic researcher page (mainstream publications,
//! one-offs, garbled records, and three kinds of injected mis-categorized
//! publications), runs DIME⁺ with the paper's Scholar rules, and walks the
//! scrollbar like the paper's Chrome extension would, reporting
//! precision/recall at every step against the generator's ground truth.
//!
//! Run with: `cargo run --example scholar_cleaning [--release]`

use dime::core::discover_fast;
use dime::data::{scholar_attr, scholar_page, scholar_rules, ScholarConfig};
use dime::metrics::evaluate_sets;

fn main() {
    let cfg = ScholarConfig::default_page(2024);
    let page = scholar_page("Jia", &cfg);
    println!(
        "page '{}': {} publications, {} mis-categorized (ground truth)\n",
        page.name,
        page.group.len(),
        page.truth.len()
    );

    let (positive, negative) = scholar_rules();
    let discovery = discover_fast(&page.group, &positive, &negative);

    let sizes: Vec<usize> = discovery.partitions.iter().map(Vec::len).collect();
    println!(
        "positive rules produced {} partitions (pivot size {})",
        sizes.len(),
        discovery.pivot_members().len()
    );

    println!("\nscrollbar (cumulative negative rules):");
    for step in &discovery.steps {
        let m = evaluate_sets(step.flagged.iter(), page.truth.iter());
        println!(
            "  NR1..NR{}: {:3} flagged | precision {:.2} recall {:.2} F {:.2}",
            step.rules_applied,
            step.flagged.len(),
            m.precision,
            m.recall,
            m.f_measure
        );
    }

    // Show a few discovered publications the way a user would review them.
    println!("\nsample flagged publications:");
    for &id in discovery.mis_categorized().iter().take(5) {
        let e = page.group.entity(id);
        let verdict = if page.truth.contains(&id) { "correctly flagged" } else { "false alarm" };
        println!(
            "  [{verdict}] \"{}\" — {} ({})",
            e.value(scholar_attr::TITLE).text,
            e.value(scholar_attr::AUTHORS).text,
            e.value(scholar_attr::VENUE).text,
        );
    }
}
