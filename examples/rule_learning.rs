//! Learning positive and negative rules from examples (paper Section V).
//!
//! Derives example pairs from a labeled Scholar page, runs the greedy
//! DIME-Rule generator for both polarities, prints the learned rules, and
//! finally runs discovery with them — the full "rules are provided, the
//! user does not need to know how they are generated" loop.
//!
//! Run with: `cargo run --example rule_learning [--release]`

use dime::core::{discover_fast, SimilarityFn};
use dime::data::{scholar_attr, scholar_page, ExampleSet, ScholarConfig};
use dime::metrics::evaluate_sets;
use dime::rulegen::{
    generate_negative_rules, generate_positive_rules, score, FunctionLibrary, GreedyConfig,
};

fn main() {
    // A labeled page supplies training examples; a second page (different
    // seed) is the test group, so the learned rules must generalize.
    let train = scholar_page("train", &ScholarConfig::default_page(11));
    let test = scholar_page("test", &ScholarConfig::default_page(99));

    // The paper learned from 229 positive and 201 negative examples.
    let examples = ExampleSet::from_labeled(&train, 229, 201);
    println!(
        "training examples: {} positive pairs, {} negative pairs",
        examples.positive.len(),
        examples.negative.len()
    );

    let library = FunctionLibrary::new(vec![
        (scholar_attr::AUTHORS, SimilarityFn::Overlap),
        (scholar_attr::AUTHORS, SimilarityFn::Jaccard),
        (scholar_attr::VENUE, SimilarityFn::Ontology),
        (scholar_attr::TITLE, SimilarityFn::Jaccard),
        (scholar_attr::TITLE, SimilarityFn::Ontology),
    ]);
    let config = GreedyConfig::default();

    let positive = generate_positive_rules(
        &train.group,
        &examples.positive,
        &examples.negative,
        &library,
        &config,
    );
    println!("\nlearned positive rules:");
    for r in &positive {
        println!(
            "  {r}   (objective {})",
            score(&train.group, std::slice::from_ref(r), &examples.positive, &examples.negative)
        );
    }

    let negative = generate_negative_rules(
        &train.group,
        &examples.positive,
        &examples.negative,
        &library,
        &config,
    );
    println!("\nlearned negative rules (scrollbar order):");
    for r in &negative {
        println!(
            "  {r}   (objective {})",
            score(&train.group, std::slice::from_ref(r), &examples.negative, &examples.positive)
        );
    }

    // Apply the learned rules to the unseen page.
    let discovery = discover_fast(&test.group, &positive, &negative);
    println!("\non the unseen page '{}':", test.name);
    for step in &discovery.steps {
        let m = evaluate_sets(step.flagged.iter(), test.truth.iter());
        println!(
            "  NR1..NR{}: precision {:.2} recall {:.2} F {:.2}",
            step.rules_applied, m.precision, m.recall, m.f_measure
        );
    }
}
