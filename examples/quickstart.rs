//! Quickstart: discover mis-categorized entities in a hand-built group.
//!
//! Builds the six Google Scholar publications of the paper's Figure 1,
//! declares the paper's positive and negative rules, and runs DIME⁺.
//!
//! Run with: `cargo run --example quickstart`

use dime::core::{
    discover_fast, discover_parallel, GroupBuilder, Predicate, Rule, Schema, SimilarityFn,
};
use dime::ontology::Ontology;
use dime::text::TokenizerKind;
use std::sync::Arc;

fn main() {
    // ---- 1. Schema: a multi-valued relation (Title, Authors, Venue). ----
    let schema = Schema::new([
        ("Title", TokenizerKind::Words),
        ("Authors", TokenizerKind::List(',')),
        ("Venue", TokenizerKind::Words),
    ]);

    // ---- 2. The venue ontology (paper Figure 4). -------------------------
    let mut venues = Ontology::new("venue");
    venues.add_path(&["computer science", "system", "icpads"]);
    for v in ["sigmod", "vldb", "icde"] {
        venues.add_path(&["computer science", "database", v]);
    }
    venues.add_path(&["computer science", "information retrieval", "sigir"]);
    venues.add_path(&["chemical sciences", "general", "rsc advances"]);

    // ---- 3. The group: Nan Tang's sample publications (Figure 1). --------
    let mut builder = GroupBuilder::new(schema);
    builder.attach_ontology("Venue", Arc::new(venues));
    let rows: [(&str, &str, &str); 6] = [
        (
            "Win: an efficient data placement strategy for parallel xml databases",
            "Nan Tang, Guoren Wang, Jeffrey Xu Yu",
            "ICPADS",
        ),
        (
            "KATARA: a data cleaning system powered by knowledge bases and crowdsourcing",
            "Xu Chu, John Morcos, Ihab F. Ilyas, Mourad Ouzzani, Paolo Papotti, Nan Tang",
            "SIGMOD",
        ),
        (
            "NADEEF: a generalized data cleaning system",
            "Amr Ebaid, Ahmed Elmagarmid, Ihab F. Ilyas, Nan Tang",
            "VLDB",
        ),
        (
            "Hierarchical indexing approach to support xpath queries",
            "Nan Tang, Jeffrey Xu Yu, M. Tamer Ozsu, Kam-Fai Wong",
            "ICDE",
        ),
        (
            "Discriminative bi-term topic model for social news clustering",
            "Yunqing Xia, NJ Tang, Amir Hussain, Erik Cambria",
            "SIGIR",
        ),
        (
            "Extractive and oxidative desulfurization of model oil in polyethylene glycol",
            "Jianlong Wang, Rijie Zhao, Baixin Han, Nan Tang, Kaixi Li",
            "RSC Advances",
        ),
    ];
    for (title, authors, venue) in rows {
        builder.add_entity(&[title, authors, venue]);
    }
    let group = builder.build();

    // ---- 4. Rules (paper Example 2). --------------------------------------
    let positive = vec![
        // ϕ1+: two publications with ≥ 2 common authors belong together.
        Rule::positive(vec![Predicate::new(1, SimilarityFn::Overlap, 2.0)]),
        // ϕ2+: ≥ 1 common author and venues in the same field.
        Rule::positive(vec![
            Predicate::new(1, SimilarityFn::Overlap, 1.0),
            Predicate::new(2, SimilarityFn::Ontology, 0.75),
        ]),
    ];
    let negative = vec![
        // φ1-: no common author at all.
        Rule::negative(vec![Predicate::new(1, SimilarityFn::Overlap, 0.0)]),
        // φ2-: ≤ 1 common author and venues in unrelated fields.
        Rule::negative(vec![
            Predicate::new(1, SimilarityFn::Overlap, 1.0),
            Predicate::new(2, SimilarityFn::Ontology, 0.25),
        ]),
    ];

    // ---- 5. Discover. -----------------------------------------------------
    let discovery = discover_fast(&group, &positive, &negative);
    // The multi-threaded engine is result-identical (0 = all cores).
    assert_eq!(discover_parallel(&group, &positive, &negative, 0), discovery);

    println!("partitions:");
    for (i, p) in discovery.partitions.iter().enumerate() {
        let marker = if i == discovery.pivot { " (pivot)" } else { "" };
        println!("  P{}{}: {:?}", i + 1, marker, p);
    }
    println!("\nscrollbar:");
    for step in &discovery.steps {
        println!(
            "  with {} negative rule(s): flagged {:?}",
            step.rules_applied,
            step.flagged.iter().collect::<Vec<_>>()
        );
    }
    println!("\nmis-categorized entities:");
    for id in discovery.mis_categorized() {
        let e = group.entity(id);
        println!("  [{}] {} — {}", id, e.value(0).text, e.value(1).text);
    }
}
