//! Auditing a synthetic Amazon product category.
//!
//! Generates a "router" category with 20% injected products from a sibling
//! category, runs DIME⁺ with the paper's Amazon rules (co-purchase overlap
//! + LDA description-theme ontology), and compares against the CR
//! clustering baseline on the same group.
//!
//! Run with: `cargo run --example amazon_categories [--release]`

use dime::baselines::{cr_cluster, CrConfig, Linkage};
use dime::core::discover_fast;
use dime::data::{amazon_attr, amazon_category, amazon_rules, AmazonConfig};
use dime::metrics::evaluate_sets;

fn main() {
    let cfg = AmazonConfig::new(0, 200, 0.2, 7);
    let category = amazon_category(&cfg);
    println!(
        "category '{}': {} products, {} mis-categorized (e = {:.0}%)\n",
        category.name,
        category.group.len(),
        category.truth.len(),
        category.error_rate() * 100.0
    );

    // ---- DIME⁺ with the paper's rules ϕ3+..ϕ5+ / φ4-..φ5-. ---------------
    let (positive, negative) = amazon_rules();
    let discovery = discover_fast(&category.group, &positive, &negative);
    let flagged = discovery.mis_categorized();
    let m = evaluate_sets(flagged.iter(), category.truth.iter());
    println!(
        "DIME+: {} flagged | precision {:.2} recall {:.2} F {:.2}",
        flagged.len(),
        m.precision,
        m.recall,
        m.f_measure
    );

    // ---- CR baseline on the same group. -----------------------------------
    let cr_cfg = CrConfig {
        attrs: vec![amazon_attr::TITLE, amazon_attr::DESCRIPTION],
        refs: vec![amazon_attr::ALSO_BOUGHT, amazon_attr::ALSO_VIEWED],
        alpha: 0.6,
        threshold: 0.15,
        linkage: Linkage::Single,
    };
    let cr = cr_cluster(&category.group, &cr_cfg);
    let cr_flagged = cr.mis_categorized();
    let cm = evaluate_sets(cr_flagged.iter(), category.truth.iter());
    println!(
        "CR   : {} flagged | precision {:.2} recall {:.2} F {:.2}",
        cr_flagged.len(),
        cm.precision,
        cm.recall,
        cm.f_measure
    );

    // ---- Show what an undetected (hard) error looks like. ------------------
    let missed: Vec<usize> =
        category.truth.iter().copied().filter(|id| !flagged.contains(id)).collect();
    if let Some(&id) = missed.first() {
        let e = category.group.entity(id);
        println!("\nan undetected hard error (cross-category co-views + blended description):");
        println!("  asin        : {}", e.value(amazon_attr::ASIN).text);
        println!("  title       : {}", e.value(amazon_attr::TITLE).text);
        println!("  description : {}", e.value(amazon_attr::DESCRIPTION).text);
    } else {
        println!("\nevery injected error was discovered at this error rate");
    }
}
