//! Streaming discovery with [`dime::core::IncrementalDime`].
//!
//! A researcher profile grows publication by publication (the way Google
//! Scholar actually ingests them); the incremental engine maintains the
//! partition structure across insertions and answers "what is
//! mis-categorized *right now*?" at any point, without re-running the
//! batch pipeline.
//!
//! Run with: `cargo run --example streaming_profile [--release]`

use dime::core::{GroupBuilder, IncrementalDime, Schema};
use dime::core::{Predicate, Rule, SimilarityFn};
use dime::ontology::Ontology;
use dime::text::TokenizerKind;
use std::sync::Arc;

fn main() {
    let schema = Schema::new([
        ("Title", TokenizerKind::Words),
        ("Authors", TokenizerKind::List(',')),
        ("Venue", TokenizerKind::Words),
    ]);
    let mut venues = Ontology::new("venue");
    for v in ["sigmod", "vldb", "icde"] {
        venues.add_path(&["computer science", "database", v]);
    }
    venues.add_path(&["computer science", "information retrieval", "sigir"]);
    venues.add_path(&["chemical sciences", "general", "rsc advances"]);

    let mut builder = GroupBuilder::new(schema);
    builder.attach_ontology("Venue", Arc::new(venues));
    let empty = builder.build();

    let positive = vec![
        Rule::positive(vec![Predicate::new(1, SimilarityFn::Overlap, 2.0)]),
        Rule::positive(vec![
            Predicate::new(1, SimilarityFn::Overlap, 1.0),
            Predicate::new(2, SimilarityFn::Ontology, 0.75),
        ]),
    ];
    let negative = vec![
        Rule::negative(vec![Predicate::new(1, SimilarityFn::Overlap, 0.0)]),
        Rule::negative(vec![
            Predicate::new(1, SimilarityFn::Overlap, 1.0),
            Predicate::new(2, SimilarityFn::Ontology, 0.25),
        ]),
    ];
    let mut engine = IncrementalDime::new(empty, positive, negative);

    // Publications arrive over time; every few insertions the profile
    // owner checks the current flags.
    let stream: [(&str, &str, &str); 6] = [
        (
            "data placement for parallel xml databases",
            "nan tang, guoren wang, jeffrey xu yu",
            "icde",
        ),
        ("katara a data cleaning system", "xu chu, ihab ilyas, nan tang", "sigmod"),
        ("nadeef a generalized data cleaning system", "amr ebaid, ihab ilyas, nan tang", "vldb"),
        ("discriminative bi-term topic model", "yunqing xia, nj tang", "sigir"),
        ("hierarchical xpath indexing", "nan tang, jeffrey xu yu", "icde"),
        ("extractive desulfurization of model oil", "jianlong wang, nan tang", "rsc advances"),
    ];

    for (k, (title, authors, venue)) in stream.iter().enumerate() {
        let id = engine.add_entity(&[title, authors, venue]);
        println!("+ publication [{id}] \"{title}\"");
        if (k + 1) % 2 == 0 {
            let d = engine.discovery();
            let flagged: Vec<usize> = d.mis_categorized().into_iter().collect();
            println!(
                "  → after {} publications: {} partitions, flagged {:?}",
                engine.len(),
                d.partitions.len(),
                flagged
            );
        }
    }

    let d = engine.discovery();
    println!("\nfinal verdict:");
    for id in d.mis_categorized() {
        let e = engine.group().entity(id);
        println!("  [{}] {} — {}", id, e.value(0).text, e.value(1).text);
    }
}
