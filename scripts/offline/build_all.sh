#!/bin/bash
# Offline build + test harness: compiles every workspace target with plain
# rustc against the functional stub crates in scripts/offline/stubs
# (rand / serde_json / proptest / criterion), for containers where cargo
# cannot reach a registry. See scripts/offline/README.md.
#
# Usage: scripts/offline/build_all.sh [OUT_DIR]   (default /tmp/dime-offline)
set -e
R="$(cd "$(dirname "$0")/../.." && pwd)"
OUT="${1:-/tmp/dime-offline}"
S="$OUT/stubs"
mkdir -p "$S"
cd "$OUT"

RC="rustc --edition 2021 -L . -L $S"

# 1. Stub crates.
for stub in rand serde_json proptest criterion; do
  rustc --edition 2021 --crate-type rlib "$R/scripts/offline/stubs/$stub.rs" \
    --crate-name "$stub" -o "$S/lib$stub.rlib"
  echo "stub $stub OK"
done
X="--extern serde_json=$S/libserde_json.rlib --extern rand=$S/librand.rlib --extern proptest=$S/libproptest.rlib --extern criterion=$S/libcriterion.rlib"

lib() { # name path extra-externs...
  local name=$1 path=$2; shift 2
  $RC --crate-type rlib "$path" --crate-name "$name" $X "$@" -o "lib$name.rlib"
  echo "lib $name OK"
}
tst() { # name path extra-externs...
  local name=$1 path=$2; shift 2
  $RC --test "$path" --crate-name "${name}_test" $X "$@" -o "${name}_test"
  echo "test-bin $name OK"
}

E_text="--extern dime_text=libdime_text.rlib"
E_index="--extern dime_index=libdime_index.rlib"
E_trace="--extern dime_trace=libdime_trace.rlib"
E_store="--extern dime_store=libdime_store.rlib"
E_ont="--extern dime_ontology=libdime_ontology.rlib"
E_core="--extern dime_core=libdime_core.rlib"
E_metrics="--extern dime_metrics=libdime_metrics.rlib"
E_rulegen="--extern dime_rulegen=libdime_rulegen.rlib"
E_baselines="--extern dime_baselines=libdime_baselines.rlib"
E_data="--extern dime_data=libdime_data.rlib"
E_serve="--extern dime_serve=libdime_serve.rlib"
E_cluster="--extern dime_cluster=libdime_cluster.rlib"
E_bench="--extern dime_bench=libdime_bench.rlib"
E_dime="--extern dime=libdime.rlib"
E_check="--extern dime_check=libdime_check.rlib"
E_rulespec="--extern dime_rulespec=libdime_rulespec.rlib"

# 2. Workspace libraries, dependency order.
lib dime_text     $R/crates/dime-text/src/lib.rs
lib dime_check    $R/crates/dime-check/src/lib.rs
lib dime_index    $R/crates/dime-index/src/lib.rs
lib dime_trace    $R/crates/dime-trace/src/lib.rs
lib dime_store    $R/crates/dime-store/src/lib.rs
lib dime_ontology $R/crates/dime-ontology/src/lib.rs
lib dime_core     $R/crates/dime-core/src/lib.rs     $E_text $E_index $E_ont $E_trace
lib dime_metrics  $R/crates/dime-metrics/src/lib.rs
lib dime_rulegen  $R/crates/dime-rulegen/src/lib.rs  $E_core $E_text $E_ont
lib dime_baselines $R/crates/dime-baselines/src/lib.rs $E_core $E_index $E_rulegen $E_text $E_ont $E_metrics
lib dime_rulespec $R/crates/dime-rulespec/src/lib.rs $E_core $E_check $E_text
lib dime_data     $R/crates/dime-data/src/lib.rs     $E_core $E_ont $E_text
lib dime_serve    $R/crates/dime-serve/src/lib.rs    $E_core $E_data $E_store $E_text $E_trace $E_rulegen $E_rulespec
lib dime_cluster  $R/crates/dime-cluster/src/lib.rs  $E_serve $E_store $E_trace
lib dime_bench    $R/crates/dime-bench/src/lib.rs    $E_core $E_text $E_ont $E_index $E_rulegen $E_baselines $E_data $E_metrics $E_serve $E_store $E_trace
lib dime          $R/src/lib.rs                      $E_core $E_text $E_ont $E_index $E_rulegen $E_baselines $E_data $E_metrics $E_serve $E_store $E_cluster $E_trace $E_rulespec

# 3. Unit-test binaries.
tst dime_text     $R/crates/dime-text/src/lib.rs
tst dime_check    $R/crates/dime-check/src/lib.rs
tst dime_index    $R/crates/dime-index/src/lib.rs
tst dime_trace    $R/crates/dime-trace/src/lib.rs
tst dime_store    $R/crates/dime-store/src/lib.rs
tst dime_ontology $R/crates/dime-ontology/src/lib.rs
tst dime_core     $R/crates/dime-core/src/lib.rs     $E_text $E_index $E_ont $E_trace
tst dime_metrics  $R/crates/dime-metrics/src/lib.rs
tst dime_rulegen  $R/crates/dime-rulegen/src/lib.rs  $E_core $E_text $E_ont $E_data $E_metrics
tst dime_baselines $R/crates/dime-baselines/src/lib.rs $E_core $E_index $E_rulegen $E_text $E_ont $E_metrics $E_data
tst dime_rulespec $R/crates/dime-rulespec/src/lib.rs $E_core $E_check $E_text
tst dime_data     $R/crates/dime-data/src/lib.rs     $E_core $E_ont $E_text
tst dime_serve    $R/crates/dime-serve/src/lib.rs    $E_core $E_data $E_store $E_text $E_trace $E_rulegen $E_rulespec
tst dime_cluster  $R/crates/dime-cluster/src/lib.rs  $E_serve $E_store $E_trace
tst dime_bench    $R/crates/dime-bench/src/lib.rs    $E_core $E_text $E_ont $E_index $E_rulegen $E_baselines $E_data $E_metrics $E_serve $E_store $E_trace
tst dime_facade   $R/src/lib.rs                      $E_core $E_text $E_ont $E_index $E_rulegen $E_baselines $E_data $E_metrics $E_serve $E_store $E_cluster $E_trace $E_rulespec

# 4. Integration-test binaries.
ALL_E="$E_dime $E_core $E_text $E_ont $E_index $E_rulegen $E_baselines $E_data $E_metrics $E_serve $E_store $E_cluster $E_bench $E_trace $E_rulespec $E_check"
tst end_to_end     $R/tests/end_to_end.rs             $ALL_E
tst serve          $R/tests/serve.rs                  $ALL_E
tst rulespec       $R/tests/rulespec.rs               $ALL_E
tst rulespec_prop  $R/crates/dime-rulespec/tests/rulespec_prop.rs $E_rulespec $E_core
tst serve_protocol $R/crates/dime-serve/tests/protocol.rs $E_serve $E_core $E_data $E_text
tst store_fault    $R/crates/dime-store/tests/fault_injection.rs $E_store
tst store_oracle   $R/crates/dime-store/tests/oracle.rs    $E_store $E_core $E_text
tst check_fixtures $R/crates/dime-check/tests/fixtures.rs  $E_check
tst check_lexer_prop $R/crates/dime-check/tests/lexer_prop.rs $E_check
tst check_parse_prop $R/crates/dime-check/tests/parse_prop.rs $E_check
tst check_flow     $R/crates/dime-check/tests/flow_fixtures.rs $E_check
tst catalog_docs   $R/crates/dime-check/tests/catalog_docs.rs  $E_check

# 5. Binaries, benches, examples.
for b in $R/crates/dime-bench/src/bin/*.rs; do
  name=$(basename "$b" .rs)
  $RC "$b" --crate-name "$name" $X $ALL_E -o "bin_$name"
  echo "bin $name OK"
done
for b in $R/crates/dime-bench/benches/*.rs; do
  name=$(basename "$b" .rs)
  $RC "$b" --crate-name "$name" $X $ALL_E -o "bench_$name"
  echo "bench $name OK"
done
$RC $R/src/bin/dime.rs --crate-name dime_cli $X $ALL_E -o bin_dime
echo "bin dime OK"
$RC $R/crates/dime-check/src/main.rs --crate-name dime_check $E_check -o bin_dime_check
echo "bin dime-check OK"
# The analyzer gates the offline path too: zero unsuppressed findings
# over the workspace, and the per-rule fixtures still fire.
./bin_dime_check --root "$R" --workspace
echo "dime-check workspace OK"
DIME_CHECK_ROOT="$R" ./dime_check_test -q
DIME_CHECK_ROOT="$R" ./check_fixtures_test -q
DIME_CHECK_ROOT="$R" ./check_lexer_prop_test -q
DIME_CHECK_ROOT="$R" ./check_parse_prop_test -q
DIME_CHECK_ROOT="$R" ./check_flow_test -q
DIME_CHECK_ROOT="$R" ./catalog_docs_test -q
echo "dime-check tests OK"
# The CLI test harness locates the binary through this compile-time env var.
CARGO_BIN_EXE_dime="$OUT/bin_dime" $RC --test $R/tests/cli.rs --crate-name cli_test $X $ALL_E -o cli_test
echo "test-bin cli OK"
CARGO_BIN_EXE_dime="$OUT/bin_dime" $RC --test $R/tests/store_recovery.rs --crate-name store_recovery_test $X $ALL_E -o store_recovery_test
echo "test-bin store_recovery OK"
CARGO_BIN_EXE_dime="$OUT/bin_dime" $RC --test $R/tests/cluster.rs --crate-name cluster_test $X $ALL_E -o cluster_test
echo "test-bin cluster OK"
CARGO_BIN_EXE_dime="$OUT/bin_dime" $RC --test $R/tests/soak.rs --crate-name soak_test $X $ALL_E -o soak_test
echo "test-bin soak OK"
for ex in $R/examples/*.rs; do
  name=$(basename "$ex" .rs)
  $RC "$ex" --crate-name "ex_$name" $X $ALL_E -o "ex_$name"
  echo "example $name OK"
done
echo "ALL BUILDS OK (artifacts in $OUT)"
