//! Typecheck/run stub of the criterion surface the benches use. `iter`
//! runs the routine once so a bench binary smoke-runs quickly offline.
use std::fmt;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

pub struct Criterion;
impl Default for Criterion {
    fn default() -> Self {
        Criterion
    }
}

impl Criterion {
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_string() }
    }
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        println!("bench {name}");
        f(&mut Bencher);
        self
    }
    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        println!("bench {}/{}", self.name, name);
        f(&mut Bencher);
        self
    }
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        println!("bench {}/{}", self.name, id.0);
        f(&mut Bencher, input);
        self
    }
    pub fn finish(self) {}
}

pub struct Bencher;
impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
    }
}

pub struct BenchmarkId(pub String);
impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId(format!("{param}"))
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = { $cfg };
            $($target(&mut c);)+
        }
    };
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
