//! A small but *functional* serde_json replacement for offline builds:
//! a real recursive-descent parser, a real serializer (compact + pretty),
//! a faithful `json!` macro, and the `Value`/`Map` surface this workspace
//! uses. There is no serde integration — typed conversion goes through
//! the `ToJson`/`FromJson` helper traits below, which cover every call
//! site in the repo (`Value`, `Vec<usize>` truth files, and friends).
//!
//! Known divergences from real serde_json, acceptable for offline runs:
//! strings are compared/stored identically, but `Map` is always a
//! `BTreeMap` (matching serde_json's default sorted keys), floats print
//! via Rust's `{:?}` (shortest round-trip, e.g. `5.0`), and error
//! messages carry byte offsets instead of line/column pairs.

use std::collections::BTreeMap;
use std::fmt;

/// Object representation — sorted keys, like serde_json's default.
pub type Map<K, V> = BTreeMap<K, V>;

/// A JSON number. Normalized on construction: non-negative integers are
/// always `PosInt`, negative integers `NegInt`, everything else `Float`
/// — so the derived-style equality below is exact for integers.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A finite float.
    Float(f64),
}

impl Number {
    pub fn from_f64(f: f64) -> Self {
        Number::Float(f)
    }
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(u) => Some(u),
            _ => None,
        }
    }
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(u) => i64::try_from(u).ok(),
            Number::NegInt(i) => Some(i),
            Number::Float(_) => None,
        }
    }
    pub fn as_f64(&self) -> Option<f64> {
        Some(match *self {
            Number::PosInt(u) => u as f64,
            Number::NegInt(i) => i as f64,
            Number::Float(f) => f,
        })
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self, other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            (Number::Float(a), Number::Float(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_number(&mut out, self);
        f.write_str(&out)
    }
}

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
    pub fn take(&mut self) -> Value {
        std::mem::replace(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

// ---- cross-type equality (the subset real serde_json provides) ----

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}
impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}
impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}
impl PartialEq<Value> for str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}
impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}
impl PartialEq<Value> for String {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}
impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}
impl PartialEq<Value> for bool {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

macro_rules! eq_unsigned {
    ($($t:ty)*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool { self.as_u64() == Some(*other as u64) }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool { other == self }
        }
    )*};
}
eq_unsigned!(u8 u16 u32 u64 usize);

macro_rules! eq_signed {
    ($($t:ty)*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool { self.as_i64() == Some(*other as i64) }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool { other == self }
        }
    )*};
}
eq_signed!(i8 i16 i32 i64 isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Number(Number::Float(f)) if f == other)
    }
}
impl PartialEq<Value> for f64 {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

// ---- conversions into Value ----

macro_rules! from_unsigned {
    ($($t:ty)*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::PosInt(v as u64)) }
        }
    )*};
}
from_unsigned!(u8 u16 u32 u64 usize);

macro_rules! from_signed {
    ($($t:ty)*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                let v = v as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}
from_signed!(i8 i16 i32 i64 isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::Float(v as f64))
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}
impl From<Map<String, Value>> for Value {
    fn from(v: Map<String, Value>) -> Value {
        Value::Object(v)
    }
}

/// Serialization helper: everything `json!` interpolates and
/// `to_string*` serializes goes through this trait.
pub trait ToJson {
    fn to_json(&self) -> Value;
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}
impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}
impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}
impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}
macro_rules! to_json_num {
    ($($t:ty)*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value { Value::from(*self) }
        }
    )*};
}
to_json_num!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize f32 f64);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}
impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}
impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}
impl<T: ToJson> ToJson for std::collections::BTreeSet<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}
impl ToJson for Map<String, Value> {
    fn to_json(&self) -> Value {
        Value::Object(self.clone())
    }
}

/// Typed extraction used by `from_str`/`from_slice`/`from_value`.
pub trait FromJson: Sized {
    fn from_json(v: Value) -> Result<Self, Error>;
}

impl FromJson for Value {
    fn from_json(v: Value) -> Result<Self, Error> {
        Ok(v)
    }
}
impl FromJson for bool {
    fn from_json(v: Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected a boolean"))
    }
}
impl FromJson for String {
    fn from_json(v: Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s),
            _ => Err(Error::msg("expected a string")),
        }
    }
}
macro_rules! from_json_uint {
    ($($t:ty)*) => {$(
        impl FromJson for $t {
            fn from_json(v: Value) -> Result<Self, Error> {
                v.as_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| Error::msg("expected a non-negative integer"))
            }
        }
    )*};
}
from_json_uint!(u8 u16 u32 u64 usize);
macro_rules! from_json_int {
    ($($t:ty)*) => {$(
        impl FromJson for $t {
            fn from_json(v: Value) -> Result<Self, Error> {
                v.as_i64()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| Error::msg("expected an integer"))
            }
        }
    )*};
}
from_json_int!(i8 i16 i32 i64 isize);
impl FromJson for f64 {
    fn from_json(v: Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::msg("expected a number"))
    }
}
impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.into_iter().map(T::from_json).collect(),
            _ => Err(Error::msg("expected an array")),
        }
    }
}

/// Parse/serialize error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn msg(s: impl Into<String>) -> Self {
        Error(s.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}
impl std::error::Error for Error {}

pub fn from_str<T: FromJson>(s: &str) -> Result<T, Error> {
    let mut p = Parser { b: s.as_bytes(), i: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(Error(format!("trailing characters at byte {}", p.i)));
    }
    T::from_json(v)
}

pub fn from_slice<T: FromJson>(b: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(b).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

pub fn from_value<T: FromJson>(v: Value) -> Result<T, Error> {
    T::from_json(v)
}

pub fn to_value<T: ToJson + ?Sized>(v: &T) -> Result<Value, Error> {
    Ok(v.to_json())
}

pub fn to_string<T: ToJson + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.to_json(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: ToJson + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.to_json(), Some(2), 0);
    Ok(out)
}

pub fn to_vec<T: ToJson + ?Sized>(v: &T) -> Result<Vec<u8>, Error> {
    to_string(v).map(String::into_bytes)
}

// ---- serializer ----

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::PosInt(u) => out.push_str(&u.to_string()),
        Number::NegInt(i) => out.push_str(&i.to_string()),
        // `{:?}` is Rust's shortest round-trip float form ("5.0", not "5");
        // non-finite floats serialize as null, like serde_json's lossy mode.
        Number::Float(f) if f.is_finite() => out.push_str(&format!("{f:?}")),
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * level));
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, elem) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, level + 1);
                write_value(out, elem, indent, level + 1);
            }
            write_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, elem)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, level + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, elem, indent, level + 1);
            }
            write_indent(out, indent, level);
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON, like real serde_json's `Display`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        let indent = if f.alternate() { Some(2) } else { None };
        write_value(&mut out, self, indent, 0);
        f.write_str(&out)
    }
}

// ---- parser ----

const MAX_DEPTH: u32 = 128;

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
    depth: u32,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn fail<T>(&self, what: &str) -> Result<T, Error> {
        Err(Error(format!("{what} at byte {}", self.i)))
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, Error> {
        if self.b[self.i..].starts_with(text.as_bytes()) {
            self.i += text.len();
            Ok(v)
        } else {
            self.fail("invalid literal")
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return self.fail("recursion limit exceeded");
        }
        let v = match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => self.fail("unexpected character"),
            None => self.fail("unexpected end of input"),
        };
        self.depth -= 1;
        v
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.i += 1; // [
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Array(out));
                }
                _ => return self.fail("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.i += 1; // {
        let mut out = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return self.fail("expected a string key");
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return self.fail("expected ':'");
            }
            self.i += 1;
            self.skip_ws();
            let value = self.value()?;
            out.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Object(out));
                }
                _ => return self.fail("expected ',' or '}'"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        if self.i + 4 > self.b.len() {
            return self.fail("truncated \\u escape");
        }
        let s = std::str::from_utf8(&self.b[self.i..self.i + 4])
            .map_err(|_| Error::msg("bad \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| Error::msg("bad \\u escape"))?;
        self.i += 4;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, Error> {
        self.i += 1; // opening quote
        let mut out = Vec::<u8>::new();
        loop {
            match self.peek() {
                None => return self.fail("unterminated string"),
                Some(b'"') => {
                    self.i += 1;
                    // Input is &str, and escapes only append valid UTF-8.
                    return String::from_utf8(out).map_err(|_| Error::msg("bad string"));
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = match self.peek() {
                        None => return self.fail("unterminated escape"),
                        Some(c) => c,
                    };
                    self.i += 1;
                    match esc {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'b' => out.push(0x08),
                        b'f' => out.push(0x0c),
                        b'n' => out.push(b'\n'),
                        b'r' => out.push(b'\r'),
                        b't' => out.push(b'\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() != Some(b'\\') {
                                    return self.fail("lone surrogate");
                                }
                                self.i += 1;
                                if self.peek() != Some(b'u') {
                                    return self.fail("lone surrogate");
                                }
                                self.i += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return self.fail("bad low surrogate");
                                }
                                let cp = 0x10000
                                    + ((hi as u32 - 0xD800) << 10)
                                    + (lo as u32 - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| Error::msg("bad surrogate"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return self.fail("unexpected low surrogate");
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| Error::msg("bad \\u escape"))?
                            };
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        }
                        _ => return self.fail("unknown escape"),
                    }
                }
                Some(c) if c < 0x20 => return self.fail("raw control character in string"),
                Some(c) => {
                    out.push(c);
                    self.i += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let int_start = self.i;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.i == int_start {
            return self.fail("expected digits");
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.i += 1;
            let frac_start = self.i;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
            if self.i == frac_start {
                return self.fail("expected fraction digits");
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            let exp_start = self.i;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
            if self.i == exp_start {
                return self.fail("expected exponent digits");
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii number");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(i)));
            }
        }
        match text.parse::<f64>() {
            Ok(f) => Ok(Value::Number(Number::Float(f))),
            Err(_) => self.fail("bad number"),
        }
    }
}

// ---- the json! macro (serde_json's tt-muncher, trimmed) ----

#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    // Array munching: accumulate elements into [$($elems:expr,)*].
    (@array [$($elems:expr,)*]) => {
        std::vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        std::vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // Object munching: ($key tts) (unparsed rest) (copy of rest).
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident () (($key:expr) : $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($key) (: $($rest)*) (: $($rest)*));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // Entry points.
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(std::vec![]) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_internal!(@array [] $($tt)+)) };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => { $crate::ToJson::to_json(&$other) };
}
