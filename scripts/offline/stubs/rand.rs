//! Typecheck/run stub for the `rand` 0.8 surface this workspace uses:
//! StdRng, SeedableRng::seed_from_u64, Rng::{gen, gen_range, gen_bool}.
//! Functional (splitmix64/xoshiro-ish) but NOT stream-compatible with the
//! real StdRng — statistical assertions seeded against real rand may
//! diverge.

pub mod rngs {
    pub struct StdRng {
        pub(crate) state: u64,
    }
    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(state: u64) -> Self {
        rngs::StdRng { state: state ^ 0xDEADBEEFCAFEF00D }
    }
}

pub trait SampleUniform: Sized {
    fn sample_in(rng: &mut dyn RngCore, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(rng: &mut dyn RngCore, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = if inclusive {
                    (hi as u128) - (lo as u128) + 1
                } else {
                    assert!(hi > lo, "gen_range: empty range");
                    (hi as u128) - (lo as u128)
                };
                lo + ((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    fn sample_in(rng: &mut dyn RngCore, lo: Self, hi: Self, _inclusive: bool) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}
impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}
impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_in(rng, lo, hi, true)
    }
}

pub trait Random {
    fn random(rng: &mut dyn RngCore) -> Self;
}
impl Random for f64 {
    fn random(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl Random for u32 {
    fn random(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() as u32
    }
}
impl Random for u64 {
    fn random(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}
impl Random for bool {
    fn random(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::random(self) < p
    }
    fn gen<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }
}
impl<R: RngCore> Rng for R {}
