//! A functional mini-proptest for offline builds: strategies really
//! generate values (from a deterministic xorshift PRNG) and `proptest!`
//! really runs each property for the configured number of cases. No
//! shrinking — a failure reports the assert message and the case number
//! only. The strategy surface covers what this workspace uses: integer
//! and float ranges, `any`, `Just`, tuples, `prop_map`, `prop_oneof!`,
//! `collection::{vec, btree_set}`, `option::of`, `bool::ANY`, and
//! simple one-char-class regexes (`"[a-c ]{0,10}"`).

use std::fmt;

/// Deterministic xorshift64* generator — no external deps, stable
/// across runs so failures are reproducible.
pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng(seed | 1)
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. Unlike real proptest there is no shrinking tree —
/// `generate` yields the final value directly.
pub trait Strategy: Sized {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
        Map(self, f)
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, _why: &'static str, f: F) -> Filter<Self, F> {
        Filter(self, f)
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy(Box::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

pub struct Map<S, F>(S, F);
impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.1)(self.0.generate(rng))
    }
}

pub struct Filter<S, F>(S, F);
impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.0.generate(rng);
            if (self.1)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row");
    }
}

/// Type-erased strategy — what `prop_oneof!` arms collapse into.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);
impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice over type-erased arms (the `prop_oneof!` backend).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);
impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = rng.below(self.0.len() as u64) as usize;
        self.0[ix].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty)*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64; // 0 means the full u64 span
                if span == 0 { rng.next_u64() as $t } else { (lo + rng.below(span) as i128) as $t }
            }
        }
    )*};
}
int_range_strategy!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}
impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

/// Regex string strategies (`"[a-c ]{0,10}"`). Supported form: a single
/// character class (with `a-z` ranges and `\`-escapes) followed by an
/// optional `{m}`/`{m,n}` repetition; or a plain literal string.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::compile(self).unwrap_or_else(|e| panic!("{e}")).generate(rng)
    }
}

pub mod string {
    use super::{Strategy, TestRng};

    #[derive(Debug)]
    pub struct Error(pub String);
    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "string_regex: {}", self.0)
        }
    }
    impl std::error::Error for Error {}

    pub struct RegexGeneratorStrategy {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let n = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..n)
                .map(|_| self.chars[rng.below(self.chars.len() as u64) as usize])
                .collect()
        }
    }

    /// Compiles the supported regex subset (see the impl on `&str`).
    pub(super) fn compile(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let mut it = pattern.chars().peekable();
        let mut chars = Vec::new();
        match it.next() {
            Some('[') => {
                loop {
                    match it.next() {
                        None => return Err(Error(format!("unterminated class in {pattern:?}"))),
                        Some(']') => break,
                        Some('\\') => match it.next() {
                            Some('n') => chars.push('\n'),
                            Some('t') => chars.push('\t'),
                            Some('r') => chars.push('\r'),
                            Some(c) => chars.push(c),
                            None => return Err(Error(format!("dangling escape in {pattern:?}"))),
                        },
                        Some(c) => {
                            if it.peek() == Some(&'-') {
                                it.next();
                                match it.next() {
                                    Some(']') | None => {
                                        return Err(Error(format!("bad range in {pattern:?}")))
                                    }
                                    Some(hi) => {
                                        for u in c as u32..=hi as u32 {
                                            if let Some(ch) = char::from_u32(u) {
                                                chars.push(ch);
                                            }
                                        }
                                    }
                                }
                            } else {
                                chars.push(c);
                            }
                        }
                    }
                }
            }
            Some(other) => {
                return Err(Error(format!(
                    "only `[class]{{m,n}}` patterns are supported offline, got {other:?} in {pattern:?}"
                )))
            }
            None => return Err(Error("empty pattern".into())),
        }
        if chars.is_empty() {
            return Err(Error(format!("empty class in {pattern:?}")));
        }
        let (min, max) = match it.peek() {
            Some('{') => {
                it.next();
                let body: String = it.by_ref().take_while(|&c| c != '}').collect();
                let parts: Vec<&str> = body.split(',').collect();
                match parts.as_slice() {
                    [m] => {
                        let m = m.trim().parse().map_err(|_| Error(format!("bad repeat in {pattern:?}")))?;
                        (m, m)
                    }
                    [m, n] => (
                        m.trim().parse().map_err(|_| Error(format!("bad repeat in {pattern:?}")))?,
                        n.trim().parse().map_err(|_| Error(format!("bad repeat in {pattern:?}")))?,
                    ),
                    _ => return Err(Error(format!("bad repeat in {pattern:?}"))),
                }
            }
            None => (1, 1),
            Some(c) => return Err(Error(format!("unsupported regex syntax {c:?} in {pattern:?}"))),
        };
        if it.next().is_some() {
            return Err(Error(format!("trailing pattern after repetition in {pattern:?}")));
        }
        if min > max {
            return Err(Error(format!("inverted repeat in {pattern:?}")));
        }
        Ok(RegexGeneratorStrategy { chars, min, max })
    }

    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        compile(pattern)
    }
}

pub struct Just<T>(pub T);
impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()` — full-range generation for primitives.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}
macro_rules! arbitrary_int {
    ($($t:ty)*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}
arbitrary_int!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);
impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        TestRng::unit_f64(rng)
    }
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);
impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $ix:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$ix.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

pub mod bool {
    pub struct Any;
    pub const ANY: Any = Any;
    impl super::Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut super::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S>(S);
    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
    pub fn of<S: Strategy>(s: S) -> OptionStrategy<S> {
        OptionStrategy(s)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    pub struct SizeRange {
        min: usize,
        max: usize,
    }
    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + (rng.next_u64() % (self.max - self.min + 1) as u64) as usize
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }
    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }
    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = std::collections::BTreeSet::new();
            // Duplicates shrink the set; bounded attempts keep this total.
            for _ in 0..target.saturating_mul(4).max(8) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }
}

pub struct ProptestConfig {
    pub cases: u32,
}
impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}
impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl fmt::Debug for ProptestConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProptestConfig {{ cases: {} }}", self.cases)
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$($strat),+]
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(std::vec![
            $($crate::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run ($cfg) $($rest)* }
    };
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = { $cfg }.cases;
                // A fixed per-test seed keeps failures reproducible.
                let mut seed: u64 = 0x9E37_79B9_7F4A_7C15;
                for b in stringify!($name).bytes() {
                    seed = seed.rotate_left(8) ^ (b as u64);
                }
                for case in 0..cases {
                    let mut rng = $crate::TestRng::new(seed ^ ((case as u64) << 32) ^ case as u64);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let run = || -> () { $body };
                    run();
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)*) => {
        $crate::proptest! { @run ($crate::ProptestConfig::default()) $($(#[$meta])* fn $name($($args)*) $body)* }
    };
}
