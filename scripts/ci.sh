#!/usr/bin/env bash
# Tier-1 CI gate, as named, individually timed stages:
#
#   fmt           rustfmt across the workspace (check only)
#   build         release build of every crate
#   test          full test suite (`cargo test -q`)
#   serve-e2e     the dime-serve acceptance test, run by name so a
#                 filtered test invocation can never skip it
#   store-recovery the dime-store fault-injection suite plus the
#                 SIGKILL-and-restart acceptance test, run by name for
#                 the same reason
#   cluster-e2e   the dime-cluster acceptance test: SIGKILL a replicated
#                 shard under a probing router mid-traffic; the follower
#                 must be promoted with zero closed-session data loss
#   rulespec      the declarative rule DSL gate: the dime-rulespec crate's
#                 parser/compiler/validator tests (including the
#                 parse → print → parse proptest) plus the differential
#                 test pinning DSL-compiled rules bit-identical to
#                 Rust-struct rules across every engine, run by name so a
#                 filtered invocation can never skip them
#   soak          the async-admission soak test: 10k concurrent idle
#                 sessions held open plus a sustained add/flag workload
#                 against a live release-build server, asserting the
#                 process thread count stays near the verify-pool size
#                 and p99 flag latency under a ceiling; skipped where
#                 /proc is unavailable (the thread accounting needs it)
#   check         dime-check --workspace: the in-repo static analyzer
#                 (no-panic service path, annotated Relaxed orderings,
#                 fsync-before-rename, wall-clock scoping, forbid(unsafe)
#                 drift, stdout hygiene, plus the call-graph rules:
#                 blocking-reaches-poll-loop, panic-reaches-service,
#                 lock-order, wal-tag-exhaustive) with zero unsuppressed
#                 findings
#   clippy        lint-clean across all targets, warnings denied
#   bench-smoke   exp_check --smoke: the three engines must agree on a
#                 tiny generated group inside a generous time ceiling
#   bench-micro   exp_micro smoke: the similarity-kernel microbenchmark
#                 driver runs end to end on a small pair count (the
#                 committed JSON is refreshed by bench-json)
#   bench-json    small-config exp_serve / exp_trace / exp_store /
#                 exp_micro / exp_cluster / exp_rulespec runs plus the
#                 exp_check --analyzer timing of the whole-workspace
#                 dime-check run, refreshing
#                 results/BENCH_{serve,trace,store,micro,cluster,rulespec,check}.json,
#                 then the perf-regression guard: every refreshed file is
#                 compared against the copy committed at HEAD (via `git
#                 show`) and the stage fails on any >2x regression of a
#                 key wall/throughput metric. 2x — not a tight bound —
#                 because these are small-config smoke runs on shared
#                 hardware: the wins being pinned sit 5-100x from the
#                 floor, so 2x catches architectural regressions while
#                 tolerating scheduler noise; baselines under 5 ms of
#                 wall are skipped as pure noise, and a file absent from
#                 HEAD is baseline-establishing (first run of a new bench)
#   offline-build the rustc-only harness (scripts/offline/build_all.sh);
#                 skipped with a message when cargo never produced the
#                 stub sources' toolchain or rustc is missing
#
# Stages run in order and fail fast: the first failure stops the run, and
# the summary table reports every stage as ok / FAIL / skip / - (not
# reached) with its wall-clock time.
#
# CI_STAGE=<name> runs exactly one stage (e.g. `CI_STAGE=clippy
# scripts/ci.sh`); unknown names fail with the stage list.
set -uo pipefail
cd "$(dirname "$0")/.."

STAGES=(fmt build test serve-e2e store-recovery cluster-e2e rulespec soak check clippy bench-smoke bench-micro bench-json offline-build)

# One scratch directory for everything a stage writes and throws away
# (bench-micro's scratch JSON, the guard's HEAD baselines), removed on
# every exit path — `mktemp -d` inside a stage leaked one dir per run.
SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT

run_fmt() { cargo fmt --all --check; }
run_build() { cargo build --release; }
run_test() { cargo test -q; }
# The service integration test (N concurrent clients against a live
# server, responses checked bit-identical to discover_fast) runs as part
# of `cargo test`, but it is the acceptance gate for dime-serve — run it
# by name so a filtered or partial test invocation can never skip it.
run_serve_e2e() { cargo test -q --test serve; }
# Durability acceptance: every-byte-offset fault injection on the WAL,
# the persistence-boundary oracle proptest, and the kill -9 / restart
# equivalence test against a real server process.
run_store_recovery() { cargo test -q -p dime-store && cargo test -q --test store_recovery; }
# Clustering acceptance: kill a replicated shard mid-traffic; the router
# must promote its follower and every committed session must replay
# bit-identically. Run by name so a filtered invocation can never skip it.
run_cluster_e2e() { cargo test -q -p dime-cluster && cargo test -q --test cluster; }
# Rule-DSL acceptance: the rulespec crate's own tests (lexer/parser/
# compiler/validator plus the round-trip proptest) and the differential
# test pinning DSL-compiled rules to Rust-struct rules engine by engine.
run_rulespec() { cargo test -q -p dime-rulespec && cargo test -q --test rulespec; }
# Concurrency soak: 10k idle sessions held over live connections by the
# epoll admission layer plus a sustained add/flag workload, with the
# thread count and p99 flag latency asserted inside the test. Runs the
# release build (debug-build verification would dominate the latency
# ceiling) and is marked #[ignore] so plain `cargo test` stays fast.
run_soak() {
  if [[ ! -r /proc/self/status ]]; then
    echo "soak: /proc is not available; skipping (thread accounting needs it)"
    return 2
  fi
  cargo test -q --release --test soak -- --ignored
}
# The repo's own rule engine: exits non-zero on any unsuppressed finding,
# so a deleted allow or a re-introduced violation fails CI here.
run_check() { cargo run -q --release -p dime-check -- --workspace; }
run_clippy() { cargo clippy --workspace --all-targets -- -D warnings; }
# Engine-agreement smoke: naive, fast, and parallel must produce
# bit-identical discoveries on a small DBGen group, under a time ceiling.
run_bench_smoke() { cargo run -q --release --bin exp_check -- --smoke; }
# Kernel microbenchmark smoke: exp_micro must run every kernel row end to
# end; a tiny pair count keeps it cheap, and the JSON goes to a scratch
# path so only bench-json refreshes the committed numbers.
run_bench_micro() {
  cargo run -q --release --bin exp_micro -- --pairs 2000 --out "$SCRATCH/BENCH_micro.json"
}
# Compares every refreshed results/BENCH_*.json against the copy
# committed at HEAD and fails on >2x regressions of the key metrics (see
# the header for the tolerance rationale). Baselines are materialized
# from `git show` into the scratch dir; a file with no committed copy at
# HEAD reaches the guard with no baseline file, which it treats as
# baseline-establishing (first run of a newly added bench).
check_bench_regressions() {
  local rc=0 f base
  for f in results/BENCH_*.json; do
    base="$SCRATCH/head-$(basename "$f")"
    git show "HEAD:$f" > "$base" 2> /dev/null || rm -f "$base"
    python3 scripts/bench_guard.py "$base" "$f" || rc=1
  done
  return "$rc"
}
# Small-config benchmark drivers: refresh the machine-readable summaries
# committed under results/ so service, trace, and store numbers are
# tracked alongside the engine benchmarks — then hold the fresh numbers
# against the committed ones so a banked perf win cannot silently rot.
run_bench_json() {
  cargo run -q --release --bin exp_serve -- --clients 2 --rounds 4 --batch 32 &&
    cargo run -q --release --bin exp_trace -- --scholar 400 --dbgen 800 &&
    cargo run -q --release --bin exp_store -- --append-ops 500 --always-ops 50 --recover 1000 &&
    cargo run -q --release --bin exp_micro -- --pairs 200000 &&
    cargo run -q --release --bin exp_cluster -- --lifecycles 10 &&
    cargo run -q --release --bin exp_rulespec -- --rounds 4 --installs 10 &&
    cargo run -q --release --bin exp_check -- --analyzer &&
    check_bench_regressions
}

# The offline harness double-checks that the workspace still builds with
# plain rustc against the stub crates (no registry access). Skip — not
# fail — when rustc alone cannot provide what a stage needs.
run_offline_build() {
  if ! command -v rustc > /dev/null 2>&1; then
    echo "offline-build: rustc not on PATH; skipping"
    return 2
  fi
  bash scripts/offline/build_all.sh
}

# --- driver ------------------------------------------------------------
declare -A RESULT TIME
for s in "${STAGES[@]}"; do
  RESULT[$s]="-"
  TIME[$s]=""
done

print_summary() {
  local t
  echo
  echo "== CI summary =="
  printf '%-14s %-6s %s\n' stage result time
  for s in "${STAGES[@]}"; do
    # A stage that was never reached has no meaningful time — keep the
    # column blank rather than echoing whatever the cell holds (stale
    # values surfaced when a single stage re-runs under CI_STAGE).
    t=${TIME[$s]}
    [[ "${RESULT[$s]}" == "-" ]] && t=""
    printf '%-14s %-6s %s\n' "$s" "${RESULT[$s]}" "$t"
  done
}

run_stage() {
  local s=$1 rc t0 t1
  echo
  echo "== stage: $s =="
  t0=$(date +%s)
  case "$s" in
    fmt) run_fmt ;;
    build) run_build ;;
    test) run_test ;;
    serve-e2e) run_serve_e2e ;;
    store-recovery) run_store_recovery ;;
    cluster-e2e) run_cluster_e2e ;;
    rulespec) run_rulespec ;;
    soak) run_soak ;;
    check) run_check ;;
    clippy) run_clippy ;;
    bench-smoke) run_bench_smoke ;;
    bench-micro) run_bench_micro ;;
    bench-json) run_bench_json ;;
    offline-build) run_offline_build ;;
    *)
      echo "unknown stage '$s' (stages: ${STAGES[*]})" >&2
      return 1
      ;;
  esac
  rc=$?
  t1=$(date +%s)
  TIME[$s]="$((t1 - t0))s"
  case "$rc" in
    0) RESULT[$s]="ok" ;;
    2) RESULT[$s]="skip" ;;
    *) RESULT[$s]="FAIL" ;;
  esac
  return "$rc"
}

if [[ -n "${CI_STAGE:-}" ]]; then
  case " ${STAGES[*]} " in
    *" ${CI_STAGE} "*) ;;
    *)
      echo "CI_STAGE='${CI_STAGE}' is not a stage (stages: ${STAGES[*]})" >&2
      exit 1
      ;;
  esac
  run_stage "$CI_STAGE"
  rc=$?
  print_summary
  [[ "$rc" == 2 ]] && rc=0
  exit "$rc"
fi

for s in "${STAGES[@]}"; do
  run_stage "$s"
  rc=$?
  if [[ "$rc" != 0 && "$rc" != 2 ]]; then
    echo
    echo "stage '$s' failed (exit $rc) — stopping" >&2
    print_summary
    exit "$rc"
  fi
done
print_summary
