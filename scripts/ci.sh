#!/usr/bin/env bash
# Tier-1 CI gate: release build, full test suite, and lint-clean clippy.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
