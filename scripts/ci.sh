#!/usr/bin/env bash
# Tier-1 CI gate: formatting, release build, full test suite (with the
# dime-serve end-to-end integration test called out explicitly), and
# lint-clean clippy.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo build --release
cargo test -q
# The service integration test (N concurrent clients against a live
# server, responses checked bit-identical to discover_fast) runs as part
# of `cargo test`, but it is the acceptance gate for dime-serve — run it
# by name so a filtered or partial test invocation can never skip it.
cargo test -q --test serve
cargo clippy --workspace --all-targets -- -D warnings
