#!/usr/bin/env bash
# Regenerates every table and figure of the paper's evaluation into
# results/*.txt. Full run takes ~15-25 minutes, dominated by the naive
# engine at DBGen scale; pass QUICK=1 for a ~2-minute smoke version.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p dime-bench --bins
B=./target/release
mkdir -p results

if [[ "${QUICK:-0}" == "1" ]]; then
  PAGES=12; CATS=3; PRODUCTS=100
  SCHOLAR_MAX=1500; AMAZON_MAX=4000; QUAD_CAP=1200
  DBGEN_MAX=20000; DBGEN_NAIVE_CAP=20000
else
  PAGES=40; CATS=8; PRODUCTS=200
  SCHOLAR_MAX=3000; AMAZON_MAX=10000; QUAD_CAP=3000
  DBGEN_MAX=100000; DBGEN_NAIVE_CAP=40000
fi

$B/exp_fig6   --pages "$PAGES" --categories "$CATS" --products "$PRODUCTS" | tee results/fig6.txt
$B/exp_fig7   --pages "$PAGES" --categories "$CATS" --products "$PRODUCTS" | tee results/fig7.txt
$B/exp_fig8   | tee results/fig8.txt
$B/exp_table1 | tee results/table1.txt
$B/exp_fig10  | tee results/fig10.txt
$B/exp_fig9   --scholar-max "$SCHOLAR_MAX" --amazon-max "$AMAZON_MAX" --quad-cap "$QUAD_CAP" | tee results/fig9.txt
$B/exp_dbgen  --max "$DBGEN_MAX" --naive-cap "$DBGEN_NAIVE_CAP" | tee results/dbgen.txt
$B/exp_ablation | tee results/ablation.txt
$B/exp_check    | tee results/check.txt
echo "all experiments written to results/"
