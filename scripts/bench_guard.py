#!/usr/bin/env python3
"""Perf-regression guard for the bench-json CI stage.

Usage: bench_guard.py <baseline.json> <fresh.json>

Compares the key wall/throughput metrics of a freshly generated
results/BENCH_*.json against the baseline committed at HEAD and exits
non-zero when any metric regressed by more than FACTOR (2x). The
tolerance rationale lives in the scripts/ci.sh header: these are
small-config smoke runs on shared hardware, and the perf wins being
pinned sit far enough from the floor that 2x separates architectural
regressions from scheduler noise. Wall-clock baselines under
FLOOR_SECONDS are skipped outright — at these config sizes they measure
the scheduler, not the code.

The metric table is keyed by JSON shape, not file name, so a bench file
is guarded as soon as it grows a recognized section:

  throughput_ops_per_sec            higher is better   (BENCH_serve)
  session_throughput.*_sessions_per_sec  higher is better  (BENCH_serve)
  kernels[].ns_per_pair             lower is better    (BENCH_micro)
  append[].wall_seconds             lower is better    (BENCH_store)
  recovery[].wal_replay_seconds     lower is better    (BENCH_store)
  failover.time_to_first_success_secs  lower is better (BENCH_cluster)
  sharded[].sessions_per_sec        higher is better   (BENCH_cluster)
  refinement.f1_final               higher is better   (BENCH_rulespec)
  install.install_*_seconds         lower is better    (BENCH_rulespec)
  analyzer.wall_seconds             lower is better    (BENCH_check)

Metrics present in only one of the two files (config drift, new
sections) are skipped: the guard pins regressions, it does not freeze
the schema.

A missing or empty baseline file is not an error: a bench file that has
never been committed has nothing to regress against, so the run is
treated as baseline-establishing (exit 0 with a note) — the fresh copy
becomes the baseline once committed.
"""

import json
import os
import sys

FACTOR = 2.0
FLOOR_SECONDS = 0.005


def metrics(doc):
    """Extracts (name, value, direction) triples from one bench document."""
    out = []
    if "throughput_ops_per_sec" in doc:
        out.append(("throughput_ops_per_sec", doc["throughput_ops_per_sec"], "higher"))
    for mode, figure in sorted(doc.get("session_throughput", {}).items()):
        if mode.endswith("_sessions_per_sec"):
            out.append((f"session_throughput.{mode}", figure, "higher"))
    for k in doc.get("kernels", []):
        out.append((f"kernels[{k['kernel']}].ns_per_pair", k["ns_per_pair"], "lower"))
    for a in doc.get("append", []):
        out.append((f"append[{a['policy']}].wall_seconds", a["wall_seconds"], "lower"))
    for r in doc.get("recovery", []):
        name = f"recovery[ops={r['ops']},snapshot={r['snapshot']}].wal_replay_seconds"
        out.append((name, r["wal_replay_seconds"], "lower"))
    if "failover" in doc:
        out.append(
            (
                "failover.time_to_first_success_secs",
                doc["failover"]["time_to_first_success_secs"],
                "lower",
            )
        )
    for s in doc.get("sharded", []):
        out.append(
            (f"sharded[shards={s['shards']}].sessions_per_sec", s["sessions_per_sec"], "higher")
        )
    if "refinement" in doc:
        out.append(("refinement.f1_final", doc["refinement"]["f1_final"], "higher"))
        out.append(("refinement.wall_seconds", doc["refinement"]["wall_seconds"], "lower"))
    for key, value in sorted(doc.get("install", {}).items()):
        if key.endswith("_seconds"):
            out.append((f"install.{key}", value, "lower"))
    if "analyzer" in doc:
        out.append(("analyzer.wall_seconds", doc["analyzer"]["wall_seconds"], "lower"))
    return out


def is_noise_floor(name, value):
    return name.endswith(("_seconds", "_secs")) and value < FLOOR_SECONDS


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    baseline_path, fresh_path = sys.argv[1], sys.argv[2]
    if not os.path.exists(baseline_path) or os.path.getsize(baseline_path) == 0:
        print(
            f"bench-guard: {fresh_path}: no baseline at {baseline_path}; "
            "treating this run as baseline-establishing"
        )
        return 0
    with open(baseline_path) as f:
        baseline = dict((n, (v, d)) for n, v, d in metrics(json.load(f)))
    with open(fresh_path) as f:
        fresh = dict((n, (v, d)) for n, v, d in metrics(json.load(f)))

    compared = 0
    failures = []
    for name, (old, direction) in sorted(baseline.items()):
        if name not in fresh:
            continue
        new = fresh[name][0]
        if old <= 0 or is_noise_floor(name, old):
            continue
        compared += 1
        regressed = new > old * FACTOR if direction == "lower" else new < old / FACTOR
        if regressed:
            failures.append(
                f"bench-guard: {fresh_path}: {name} regressed >"
                f"{FACTOR:g}x: {old:g} -> {new:g} ({direction} is better)"
            )

    for line in failures:
        print(line, file=sys.stderr)
    if not failures:
        print(f"bench-guard: {fresh_path}: {compared} metrics within {FACTOR:g}x of baseline")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
