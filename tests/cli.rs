//! End-to-end tests of the `dime` CLI binary: group + rule files in,
//! reports out, and clean errors for malformed inputs.

use std::io::Write;
use std::process::Command;

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("dime-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

const GROUP: &str = r#"{
  "schema": [
    {"name": "Title", "tokenizer": "words"},
    {"name": "Authors", "tokenizer": {"list": ","}},
    {"name": "Venue", "tokenizer": "words"}
  ],
  "ontologies": {
    "Venue": [
      ["computer science", "database", "sigmod"],
      ["computer science", "database", "vldb"],
      ["chemical sciences", "general", "rsc advances"]
    ]
  },
  "entities": [
    {"Title": "katara data cleaning", "Authors": "xu chu, ihab ilyas, nan tang", "Venue": "SIGMOD"},
    {"Title": "nadeef data cleaning", "Authors": "amr ebaid, ihab ilyas, nan tang", "Venue": "VLDB"},
    {"Title": "oxidative desulfurization", "Authors": "jianlong wang", "Venue": "RSC Advances"}
  ]
}"#;

const RULES: &str = "\
positive: overlap(Authors) >= 2
negative: overlap(Authors) = 0
";

fn dime() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dime"))
}

#[test]
fn discover_prints_flagged_entities() {
    let group = write_temp("g1.json", GROUP);
    let rules = write_temp("r1.txt", RULES);
    let out = dime()
        .args(["discover", "--group"])
        .arg(&group)
        .arg("--rules")
        .arg(&rules)
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("mis-categorized entities"), "{stdout}");
    assert!(stdout.contains("jianlong wang"), "{stdout}");
}

#[test]
fn discover_json_report_is_valid_json() {
    let group = write_temp("g2.json", GROUP);
    let rules = write_temp("r2.txt", RULES);
    let out = dime()
        .args(["discover", "--json", "--group"])
        .arg(&group)
        .arg("--rules")
        .arg(&rules)
        .output()
        .unwrap();
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(v["mis_categorized"].as_array().unwrap().len(), 1);
    assert_eq!(v["mis_categorized"][0]["Authors"], "jianlong wang");
}

#[test]
fn both_engines_agree() {
    let group = write_temp("g3.json", GROUP);
    let rules = write_temp("r3.txt", RULES);
    let run = |engine: &str| {
        let out = dime()
            .args(["discover", "--json", "--engine", engine, "--group"])
            .arg(&group)
            .arg("--rules")
            .arg(&rules)
            .output()
            .unwrap();
        assert!(out.status.success());
        String::from_utf8(out.stdout).unwrap()
    };
    assert_eq!(run("fast"), run("naive"));
}

#[test]
fn check_rules_echoes_parsed_rules() {
    let group = write_temp("g4.json", GROUP);
    let rules = write_temp("r4.txt", RULES);
    let out = dime()
        .args(["check-rules", "--group"])
        .arg(&group)
        .arg("--rules")
        .arg(&rules)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 positive rule(s)"), "{stdout}");
    assert!(stdout.contains("f_ov"), "{stdout}");
}

#[test]
fn bad_rule_file_fails_with_message() {
    let group = write_temp("g5.json", GROUP);
    let rules = write_temp("r5.txt", "positive: sorcery(Authors) >= 1\n");
    let out = dime()
        .args(["discover", "--group"])
        .arg(&group)
        .arg("--rules")
        .arg(&rules)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown similarity function"), "{stderr}");
}

#[test]
fn missing_flags_fail_cleanly() {
    let out = dime().args(["discover"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--group"));
}

#[test]
fn unknown_command_shows_usage() {
    let out = dime().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn explain_shows_witnessing_rule() {
    let group = write_temp("g6.json", GROUP);
    let rules = write_temp("r6.txt", RULES);
    let out = dime()
        .args(["discover", "--explain", "--group"])
        .arg(&group)
        .arg("--rules")
        .arg(&rules)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("flagged by negative rule #1"), "{stdout}");
    assert!(stdout.contains("witness pair"), "{stdout}");
}

#[test]
fn rules_check_prints_semck_warnings() {
    let group = write_temp("g_semck.json", GROUP);
    // Regions overlap on the shared overlap(Authors) dimension: any pair
    // with overlap 1 or 2 satisfies both heads at once.
    let spec = write_temp(
        "conflicted.rulespec",
        "same(X, Y) :- overlap(Authors) >= 1.\ndiff(X, Y) :- overlap(Authors) <= 2.\n",
    );
    let out = dime()
        .args(["rules", "check", "--spec"])
        .arg(&spec)
        .arg("--group")
        .arg(&group)
        .output()
        .unwrap();
    // Warnings are advisory at check time: exit 0, canonical form on
    // stdout, the diagnosis on stderr.
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("same(X, Y) :- overlap(Authors) >= 1."), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("warning[conflict]"), "{stderr}");
    assert!(stderr.contains("rules install --strict"), "{stderr}");

    // A clean spec stays silent on stderr.
    let clean = write_temp(
        "clean.rulespec",
        "same(X, Y) :- overlap(Authors) >= 2.\ndiff(X, Y) :- overlap(Authors) <= 0.\n",
    );
    let out = dime()
        .args(["rules", "check", "--spec"])
        .arg(&clean)
        .arg("--group")
        .arg(&group)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(
        !String::from_utf8_lossy(&out.stderr).contains("warning["),
        "clean spec must not warn: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn learn_emits_parseable_rules() {
    let group = write_temp("g7.json", GROUP);
    let truth = write_temp("t7.json", "[2]");
    let out =
        dime().args(["learn", "--group"]).arg(&group).arg("--truth").arg(&truth).output().unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    // The emitted rules must round-trip through check-rules.
    let rules = write_temp("r7.txt", &stdout);
    let out = dime()
        .args(["check-rules", "--group"])
        .arg(&group)
        .arg("--rules")
        .arg(&rules)
        .output()
        .unwrap();
    assert!(out.status.success(), "learned rules failed to parse: {stdout}");
}

#[test]
fn learn_rejects_out_of_range_truth() {
    let group = write_temp("g8.json", GROUP);
    let truth = write_temp("t8.json", "[99]");
    let out =
        dime().args(["learn", "--group"]).arg(&group).arg("--truth").arg(&truth).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));
}

#[test]
fn stats_summarizes_attributes() {
    let group = write_temp("g9.json", GROUP);
    let out = dime().args(["stats", "--group"]).arg(&group).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("3 entities"), "{stdout}");
    assert!(stdout.contains("Authors"), "{stdout}");
}

/// A group big enough that engine work dwarfs per-span bookkeeping, so
/// the phase-coverage assertion below is stable: 1500 entities in shared-
/// author clusters of 30, which makes the verify phase do real work.
fn sizable_group() -> String {
    let mut doc = String::from(
        r#"{"schema": [{"name": "Authors", "tokenizer": {"list": ","}}], "entities": ["#,
    );
    for i in 0..1500 {
        if i > 0 {
            doc.push(',');
        }
        doc.push_str(&format!("[\"cluster-{}, member-{i}\"]", i % 50));
    }
    doc.push_str("]}");
    doc
}

#[test]
fn discover_trace_prints_phase_breakdown_covering_wall_clock() {
    let group = write_temp("g12.json", &sizable_group());
    let rules =
        write_temp("r12.txt", "positive: overlap(Authors) >= 1\nnegative: overlap(Authors) = 0\n");
    let out = dime()
        .args(["discover", "--trace", "--group"])
        .arg(&group)
        .arg("--rules")
        .arg(&rules)
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for phase in ["signature_build", "index_probe", "verify", "union", "flag"] {
        assert!(stdout.contains(phase), "missing phase {phase}: {stdout}");
    }
    assert!(stdout.contains("pairs_verified"), "{stdout}");
    // The five top-level phases tile the run: their summed time must
    // account for (nearly) the whole measured wall-clock.
    let coverage: f64 = stdout
        .lines()
        .find(|l| l.contains("% of wall-clock"))
        .and_then(|l| l.split('=').nth(1))
        .and_then(|t| t.trim().trim_end_matches("% of wall-clock").trim().parse().ok())
        .unwrap_or_else(|| panic!("no coverage line in: {stdout}"));
    assert!(coverage >= 90.0, "phases cover only {coverage}% of wall-clock: {stdout}");
    assert!(coverage <= 110.0, "phase sum exceeds wall-clock by >10%: {stdout}");
}

#[test]
fn discover_trace_json_embeds_trace_object() {
    let group = write_temp("g13.json", GROUP);
    let rules = write_temp("r13.txt", RULES);
    let out = dime()
        .args(["discover", "--trace", "--json", "--group"])
        .arg(&group)
        .arg("--rules")
        .arg(&rules)
        .output()
        .unwrap();
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(v["mis_categorized"].as_array().unwrap().len(), 1, "report stays intact");
    assert!(v["trace"]["wall_ns"].as_u64().unwrap() > 0);
    assert!(!v["trace"]["phases"].as_array().unwrap().is_empty());
    assert!(v["trace"]["counters"]["pairs_verified"].as_u64().unwrap() > 0);
}

#[test]
fn discover_trace_rejects_naive_engine() {
    let group = write_temp("g14.json", GROUP);
    let rules = write_temp("r14.txt", RULES);
    let out = dime()
        .args(["discover", "--trace", "--engine", "naive", "--group"])
        .arg(&group)
        .arg("--rules")
        .arg(&rules)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--trace"));
}

#[test]
fn json_output_survives_a_broken_pipe() {
    use std::io::Read;
    // A report large enough to overflow the ~64 KiB pipe buffer after the
    // reader hangs up, so the writer definitely hits EPIPE.
    let mut doc = String::from(
        r#"{"schema": [{"name": "Authors", "tokenizer": {"list": ","}}], "entities": ["#,
    );
    for i in 0..6000 {
        if i > 0 {
            doc.push(',');
        }
        doc.push_str(&format!("[\"author-number-{i}\"]"));
    }
    doc.push_str("]}");
    let group = write_temp("g10.json", &doc);
    let rules =
        write_temp("r10.txt", "positive: overlap(Authors) >= 1\nnegative: overlap(Authors) = 0\n");
    let mut child = dime()
        .args(["discover", "--json", "--group"])
        .arg(&group)
        .arg("--rules")
        .arg(&rules)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    // Read one byte to be sure output started, then hang up the pipe.
    let mut stdout = child.stdout.take().unwrap();
    let mut byte = [0u8; 1];
    stdout.read_exact(&mut byte).unwrap();
    drop(stdout);
    let status = child.wait().unwrap();
    let mut stderr = String::new();
    child.stderr.take().unwrap().read_to_string(&mut stderr).unwrap();
    assert!(status.success(), "a broken pipe must exit cleanly, stderr: {stderr}");
}

#[test]
fn serve_and_client_roundtrip() {
    use std::io::{BufRead, BufReader, Read};
    let mut server = dime()
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "4"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    // The first stdout line announces the resolved address.
    let mut announce = String::new();
    BufReader::new(server.stdout.as_mut().unwrap()).read_line(&mut announce).unwrap();
    let addr = announce.trim().rsplit(' ').next().unwrap().to_string();
    assert!(addr.contains(':'), "bad announce line: {announce}");

    let run_ok = |args: &[&str]| -> serde_json::Value {
        let out = dime().args(["client", "--addr", &addr]).args(args).output().unwrap();
        assert!(
            out.status.success(),
            "client {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        serde_json::from_slice(&out.stdout).unwrap()
    };

    assert_eq!(run_ok(&["ping"])["pong"], true);

    let group = write_temp("g11.json", GROUP);
    let rules = write_temp("r11.txt", RULES);
    let created =
        run_ok(&["create", "--group", group.to_str().unwrap(), "--rules", rules.to_str().unwrap()]);
    let session = created["session"].as_u64().unwrap().to_string();
    assert_eq!(created["entities"], 3);

    let report = run_ok(&["discovery", "--session", &session]);
    assert_eq!(report["mis_categorized"][0]["Authors"], "jianlong wang");

    let stats = run_ok(&["stats", "--session", &session]);
    assert_eq!(stats["entities"], 3);

    // The trace op surfaces the engine phases the discovery above ran.
    let trace = run_ok(&["trace"]);
    let phases: Vec<&str> =
        trace["phases"].as_array().unwrap().iter().map(|p| p["name"].as_str().unwrap()).collect();
    assert!(phases.contains(&"flag"), "trace missing flag phase: {phases:?}");

    // A protocol error surfaces as a failing exit with the server's code.
    let out = dime()
        .args(["client", "--addr", &addr, "discovery", "--session", "99999"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no_such_session"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    assert_eq!(run_ok(&["shutdown"])["shutting_down"], true);
    let status = server.wait().unwrap();
    assert!(status.success(), "server must drain and exit cleanly");
    let mut rest = String::new();
    server.stdout.take().unwrap().read_to_string(&mut rest).unwrap();
}
