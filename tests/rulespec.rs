//! Differential pin for the rulespec DSL: a rule set written in rulespec
//! syntax must be indistinguishable from the same rules written as Rust
//! structs — bit-identical compiled predicates, and identical discovery
//! reports and verification counters on DBGen groups across every engine
//! (fast, parallel, incremental). This is the contract that makes a
//! live-installed `.rulespec` file trustworthy: nothing about going
//! through the parser changes what the engines compute.

use dime::core::{discover_fast, discover_parallel, IncrementalDime};
use dime::data::{dbgen_group, dbgen_rules, discovery_to_json, DbgenConfig};
use dime::rulespec::{compile_str, render_rules};

/// The DBGen entity-matching rule set of `dbgen_rules()`, hand-written in
/// rulespec syntax (not rendered from the structs, so the test exercises
/// the parser's own path through numbers, conjunctions, and both
/// polarities).
const DBGEN_SPEC: &str = "\
same(X, Y) :- jaccard(Name) >= 0.5, jaccard(Address) >= 0.4.
same(X, Y) :- edit_sim(Name) >= 0.8, jaccard(City) >= 1.0.
diff(X, Y) :- overlap(Name) <= 0.
diff(X, Y) :- jaccard(Name) <= 0.2, overlap(Address) <= 0.
";

#[test]
fn dsl_compiles_to_bit_identical_rules() {
    let lg = dbgen_group(&DbgenConfig::new(200, 11));
    let schema = lg.group.schema();
    let (pos, neg) = dbgen_rules();
    let compiled = compile_str("dbgen.rulespec", DBGEN_SPEC, schema).expect("spec compiles");
    assert_eq!(compiled.positive, pos, "positive rules must match predicate-for-predicate");
    assert_eq!(compiled.negative, neg, "negative rules must match predicate-for-predicate");

    // And the rendered canonical form closes the loop: render → compile
    // is the identity on the native structs.
    let rendered = render_rules(&pos, &neg, schema).expect("native rules render");
    let reparsed = compile_str("rendered.rulespec", &rendered, schema).expect("render reparses");
    assert_eq!(reparsed.positive, pos);
    assert_eq!(reparsed.negative, neg);
}

#[test]
fn dsl_rules_discover_identically_on_dbgen_across_engines() {
    let (pos, neg) = dbgen_rules();
    for seed in [3, 91] {
        let lg = dbgen_group(&DbgenConfig::new(600, seed));
        let compiled =
            compile_str("dbgen.rulespec", DBGEN_SPEC, lg.group.schema()).expect("spec compiles");

        // Fast engine: the full report (partitions, steps, witnesses)
        // must be byte-identical through the JSON serialization.
        let native = discovery_to_json(&lg.group, &discover_fast(&lg.group, &pos, &neg));
        let dsl = discovery_to_json(
            &lg.group,
            &discover_fast(&lg.group, &compiled.positive, &compiled.negative),
        );
        assert_eq!(dsl, native, "fast engine diverged on seed {seed}");

        // Parallel engine: sharded filter–verify must agree too.
        let par_native = discovery_to_json(&lg.group, &discover_parallel(&lg.group, &pos, &neg, 4));
        let par_dsl = discovery_to_json(
            &lg.group,
            &discover_parallel(&lg.group, &compiled.positive, &compiled.negative, 4),
        );
        assert_eq!(par_dsl, par_native, "parallel engine diverged on seed {seed}");
        assert_eq!(par_native, native, "parallel engine diverged from fast on seed {seed}");

        // Incremental engine: same discovery *and* the same number of
        // verified pairs — the DSL path must not change what gets
        // verified, only how the rules were written down.
        let mut inc_native = IncrementalDime::new(lg.group.clone(), pos.clone(), neg.clone());
        let mut inc_dsl =
            IncrementalDime::new(lg.group.clone(), compiled.positive, compiled.negative);
        assert_eq!(
            discovery_to_json(&lg.group, &inc_dsl.discovery()),
            discovery_to_json(&lg.group, &inc_native.discovery()),
            "incremental engine diverged on seed {seed}"
        );
        assert_eq!(
            inc_dsl.pairs_verified(),
            inc_native.pairs_verified(),
            "verification counters diverged on seed {seed}"
        );
    }
}

#[test]
fn installed_spec_matches_struct_rules_through_set_rules() {
    // The live-install path: an engine whose rules are replaced via
    // `set_rules` with DSL-compiled rules must answer exactly like an
    // engine constructed with the equivalent structs.
    let (pos, neg) = dbgen_rules();
    let lg = dbgen_group(&DbgenConfig::new(300, 17));
    let compiled =
        compile_str("dbgen.rulespec", DBGEN_SPEC, lg.group.schema()).expect("spec compiles");

    // Start from a deliberately different rule set, then install.
    let seed_pos = vec![pos[0].clone()];
    let seed_neg = vec![neg[0].clone()];
    let mut installed = IncrementalDime::new(lg.group.clone(), seed_pos, seed_neg);
    installed.set_rules(compiled.positive, compiled.negative);

    let mut native = IncrementalDime::new(lg.group.clone(), pos, neg);
    assert_eq!(
        discovery_to_json(&lg.group, &installed.discovery()),
        discovery_to_json(&lg.group, &native.discovery()),
        "set_rules with DSL-compiled rules must be indistinguishable from construction"
    );
}
