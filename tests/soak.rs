//! Concurrency soak for the async admission layer, run by the `soak`
//! stage of `scripts/ci.sh` (`cargo test -q --release --test soak --
//! --ignored`): a real `dime serve` process holds ten thousand idle
//! sessions — each over its own live TCP connection — while a sustained
//! add/flag workload runs beside them, asserting that
//!
//! * the process thread count stays pinned near the verify-pool size
//!   (the whole point of the admission/verify split: sockets are owned
//!   by one poll loop, not one thread each),
//! * p99 flag latency stays under a generous ceiling while the idle
//!   mass is held, and
//! * shutdown still drains cleanly with every connection open.
//!
//! `#[ignore]`d so plain `cargo test` stays fast, and the thread
//! accounting reads `/proc`, which the CI stage checks for.

use dime::serve::Client;
use serde_json::{json, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const RULES: &str = "positive: overlap(Authors) >= 2\nnegative: overlap(Authors) <= 0";
const IDLE_SESSIONS: usize = 10_000;
const WORKERS: usize = 4;
const WORKLOAD_CLIENTS: usize = 4;
/// Verify pool + admission thread + main + a margin for runtime
/// housekeeping threads. A thread-per-connection server would sit four
/// hundred times higher with the idle mass held.
const THREAD_CEILING: u64 = 24;
const P99_CEILING_MICROS: u64 = 1_000_000;

fn group_doc() -> Value {
    json!({
        "schema": [
            {"name": "Title", "tokenizer": "words"},
            {"name": "Authors", "tokenizer": {"list": ","}}
        ],
        "entities": []
    })
}

fn spawn_server() -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dime"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--admission",
            "async",
            "--workers",
            &WORKERS.to_string(),
            "--max-sessions",
            &(IDLE_SESSIONS + WORKLOAD_CLIENTS + 16).to_string(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn dime serve");
    let mut announce = String::new();
    BufReader::new(child.stdout.as_mut().expect("stdout"))
        .read_line(&mut announce)
        .expect("read announce line");
    let addr = announce.trim().rsplit(' ').next().expect("address in announce");
    (child, addr.parse().expect("parse address"))
}

/// Creates one session over a raw socket and parks the connection: one
/// fd per idle session on each side, so ten thousand fit comfortably
/// under the fd limit (a `Client` would hold two — reader and a cloned
/// writer).
fn park_session(addr: SocketAddr, frame: &[u8]) -> TcpStream {
    let mut s = TcpStream::connect(addr).expect("idle connect");
    s.write_all(frame).expect("write create");
    let mut reader = BufReader::new(s.try_clone().expect("clone for read"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read create response");
    assert!(line.contains("\"ok\""), "create failed: {line}");
    s
}

fn proc_field(pid: u32, key: &str) -> u64 {
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).expect("/proc status");
    status
        .lines()
        .find_map(|l| l.strip_prefix(key))
        .unwrap_or_else(|| panic!("{key} not in /proc/{pid}/status"))
        .trim()
        .trim_start_matches(':')
        .trim()
        .parse()
        .expect("numeric /proc field")
}

fn open_fds(pid: u32) -> usize {
    std::fs::read_dir(format!("/proc/{pid}/fd")).expect("/proc fd dir").count()
}

#[test]
#[ignore = "soak tier: run via scripts/ci.sh (CI_STAGE=soak) or --ignored"]
fn ten_thousand_idle_sessions_on_a_fixed_thread_pool() {
    let (mut child, addr) = spawn_server();
    let pid = child.id();

    // ---- Hold the idle mass: 10k sessions, each parked on its own
    // live connection, raised from a few threads to keep ramp-up well
    // inside the server's idle timeout.
    let create_frame = {
        let mut f =
            json!({"op": "create_session", "group": group_doc(), "rules": RULES}).to_string();
        f.push('\n');
        f.into_bytes()
    };
    let ramp = Instant::now();
    let raisers: Vec<_> = (0..8)
        .map(|r| {
            let frame = create_frame.clone();
            std::thread::spawn(move || {
                let count = IDLE_SESSIONS / 8 + usize::from(r < IDLE_SESSIONS % 8);
                (0..count).map(|_| park_session(addr, &frame)).collect::<Vec<_>>()
            })
        })
        .collect();
    let parked: Vec<Vec<TcpStream>> =
        raisers.into_iter().map(|t| t.join().expect("raiser thread")).collect();
    let held: usize = parked.iter().map(Vec::len).sum();
    assert_eq!(held, IDLE_SESSIONS);
    println!("soak: {held} idle sessions parked in {:.1?}", ramp.elapsed());

    // The admission layer owns every socket: the server's fd table must
    // carry the whole idle mass right now...
    let fds = open_fds(pid);
    assert!(fds >= IDLE_SESSIONS, "server holds {fds} fds, expected >= {IDLE_SESSIONS}");
    // ...on a thread count that never scaled with it.
    let threads = proc_field(pid, "Threads");
    assert!(
        threads <= THREAD_CEILING,
        "server runs {threads} threads with {held} connections held; \
         the verify pool is {WORKERS} — admission is leaking threads"
    );

    // ---- Sustained add/flag workload beside the idle mass.
    let workers: Vec<_> = (0..WORKLOAD_CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("workload connect");
                let session = client.create_session(&group_doc(), RULES).expect("create");
                let deadline = Instant::now() + Duration::from_secs(2);
                let mut rounds = 0u64;
                while Instant::now() < deadline {
                    let batch: Vec<Value> = (0..8)
                        .map(|i| json!([format!("paper {rounds}-{i}"), format!("w{c}a, w{c}b")]))
                        .collect();
                    client.add_entities(session, &batch).expect("workload add");
                    client.discovery(session).expect("workload discovery");
                    rounds += 1;
                }
                client.close_session(session).expect("close");
                rounds
            })
        })
        .collect();
    let rounds: u64 = workers.into_iter().map(|t| t.join().expect("workload thread")).sum();
    assert!(rounds > 0, "workload made no progress");

    // Latency and accounting under load, read through a live client.
    let mut client = Client::connect(addr).expect("stats connect");
    let stats = client.stats(None).expect("global stats");
    assert_eq!(stats["sessions"]["live"].as_u64().unwrap() as usize, IDLE_SESSIONS);
    let p99 = stats["flag_latency"]["p99_micros"].as_u64().unwrap();
    assert!(
        p99 < P99_CEILING_MICROS,
        "p99 flag latency {p99}us breached the {P99_CEILING_MICROS}us ceiling \
         with {IDLE_SESSIONS} idle sessions held"
    );
    let threads = proc_field(pid, "Threads");
    assert!(threads <= THREAD_CEILING, "thread count crept to {threads} under workload");
    println!("soak: {rounds} workload rounds, p99 flag {p99}us, {threads} threads");

    // ---- Clean drain with every idle connection still open.
    client.shutdown().expect("shutdown");
    drop(client);
    let status = child.wait().expect("server exit");
    assert!(status.success(), "server exited {status:?}");
    drop(parked);
}
