//! Crash recovery end-to-end: a real `dime serve --data-dir` process is
//! killed with SIGKILL mid-session and restarted on the same directory.
//! The recovered session must serve a discovery bit-identical to the one
//! the dead process served, keep accepting writes, and survive a second
//! kill; a session closed before the crash must stay closed.

use dime::core::{discover_fast, parse_rules, GroupBuilder, Polarity, Schema};
use dime::data::discovery_to_json;
use dime::serve::{Client, ClientError, ErrorCode};
use dime::text::TokenizerKind;
use serde_json::{json, Value};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

const RULES: &str = "positive: overlap(Authors) >= 2\nnegative: overlap(Authors) <= 0";

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dime-recovery-{tag}-{}", std::process::id()))
}

/// Spawns `dime serve` persisting to `dir` and returns the child plus its
/// announced address. `--fsync always` makes every acknowledged write
/// durable, so SIGKILL loses nothing the server confirmed.
fn spawn_server(dir: &std::path::Path) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dime"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .arg("--data-dir")
        .arg(dir)
        .args(["--fsync", "always", "--snapshot-every", "5"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn dime serve");
    let mut announce = String::new();
    BufReader::new(child.stdout.as_mut().expect("stdout"))
        .read_line(&mut announce)
        .expect("read announce line");
    let addr = announce.trim().rsplit(' ').next().expect("address in announce");
    (child, addr.parse().expect("parse address"))
}

/// The reference: `discover_fast` on a batch group of exactly `rows`,
/// serialized like the server serializes.
fn reference_report(rows: &[(String, String)]) -> Value {
    let schema =
        Schema::new([("Title", TokenizerKind::Words), ("Authors", TokenizerKind::List(','))]);
    let mut b = GroupBuilder::new(schema);
    for (t, a) in rows {
        b.add_entity(&[t.as_str(), a.as_str()]);
    }
    let group = b.build();
    let rules = parse_rules(RULES, group.schema()).expect("rules parse");
    let (pos, neg): (Vec<_>, Vec<_>) =
        rules.into_iter().partition(|r| r.polarity == Polarity::Positive);
    discovery_to_json(&group, &discover_fast(&group, &pos, &neg))
}

/// Witness pairs legitimately differ between engines; everything else in
/// the report must match exactly.
fn comparable(mut report: Value) -> Value {
    report.as_object_mut().expect("report object").remove("witnesses");
    report
}

fn row(t: &str, a: &str) -> (String, String) {
    (t.to_string(), a.to_string())
}

#[test]
fn sigkill_and_restart_recover_bit_identical_sessions() {
    let dir = temp_dir("kill");
    let _ = std::fs::remove_dir_all(&dir);

    // ---- First incarnation: build state, then die without warning.
    let (mut child, addr) = spawn_server(&dir);
    let mut client = Client::connect(addr).expect("connect");
    let doc = json!({
        "schema": [
            {"name": "Title", "tokenizer": "words"},
            {"name": "Authors", "tokenizer": {"list": ","}}
        ],
        "entities": [["seed paper", "ann, bob"]]
    });
    let session = client.create_session(&doc, RULES).expect("create");
    let mut rows = vec![row("seed paper", "ann, bob")];
    let batch = [
        ("data cleaning", "ann, bob"),
        ("data quality", "ann, bob, carl"),
        ("entity matching", "bob, carl"),
        ("organic synthesis", "dora"),
        ("doomed", "zed"),
        ("crowdsourcing", "ann, carl"),
    ];
    client
        .add_entities(session, &batch.iter().map(|(t, a)| json!([t, a])).collect::<Vec<_>>())
        .expect("add");
    rows.extend(batch.iter().map(|(t, a)| row(t, a)));
    client.remove_entity(session, 5).expect("remove");
    rows.remove(5);

    // A second session closed before the crash: it must not come back.
    let closed = client.create_session(&doc, RULES).expect("create closed");
    client.close_session(closed).expect("close");

    let before = comparable(client.discovery(session).expect("discovery"));
    assert_eq!(before, comparable(reference_report(&rows)), "sanity: live server serves batch");
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");

    // ---- Second incarnation: same directory, recovered state.
    let (mut child, addr) = spawn_server(&dir);
    let mut client = Client::connect(addr).expect("reconnect");
    let after = comparable(client.discovery(session).expect("recovered discovery"));
    assert_eq!(after, before, "recovery must serve a bit-identical discovery");

    let stats = client.stats(None).expect("stats");
    assert_eq!(stats["store"]["sessions_recovered"], 1, "exactly the live session recovers");
    match client.discovery(closed) {
        Err(ClientError::Server { code: ErrorCode::NoSuchSession, .. }) => {}
        other => panic!("closed session must stay closed, got {other:?}"),
    }

    // The recovered session keeps persisting: write more, kill again.
    client.add_entities(session, &[json!(["late arrival", "ann, bob"])]).expect("add late");
    rows.push(row("late arrival", "ann, bob"));
    client.remove_entity(session, 0).expect("remove seed");
    rows.remove(0);
    let before = comparable(client.discovery(session).expect("discovery"));
    assert_eq!(before, comparable(reference_report(&rows)));
    child.kill().expect("second SIGKILL");
    child.wait().expect("reap");

    // ---- Third incarnation: still identical, then a clean shutdown.
    let (mut child, addr) = spawn_server(&dir);
    let mut client = Client::connect(addr).expect("reconnect again");
    assert_eq!(comparable(client.discovery(session).expect("discovery")), before);
    client.shutdown().expect("shutdown");
    child.wait().expect("drain");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
