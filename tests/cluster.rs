//! Cluster failover end-to-end, over real processes: a router in front of
//! two `dime cluster-shard` processes, one of which streams its WAL to a
//! `--follower` process. The replicated shard is killed with SIGKILL
//! mid-traffic; the router must promote the follower, every session
//! committed before the kill must serve a bit-identical discovery
//! afterwards (witnesses stripped), sessions created during the outage
//! window must either succeed or fail with the retryable `unavailable`,
//! and a session closed before the kill must stay closed.

use dime::serve::{Client, ClientError, ErrorCode};
use serde_json::{json, Value};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const RULES: &str = "positive: overlap(Authors) >= 2\nnegative: overlap(Authors) <= 0";

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dime-cluster-e2e-{tag}-{}", std::process::id()))
}

/// Spawns one `dime` subcommand and parses the announced address off the
/// end of its first stdout line.
fn spawn_announced(args: &[&str]) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dime"))
        .args(args)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn dime");
    let mut announce = String::new();
    BufReader::new(child.stdout.as_mut().expect("stdout"))
        .read_line(&mut announce)
        .expect("read announce line");
    let addr = announce.trim().rsplit(' ').next().expect("address in announce");
    (child, addr.parse().expect("parse address"))
}

fn group_doc(first_author_pair: &str) -> Value {
    json!({
        "schema": [{"name": "Authors", "tokenizer": {"list": ","}}],
        "entities": [[first_author_pair]]
    })
}

/// Witness pairs legitimately differ between engines; everything else in
/// the report must match exactly.
fn comparable(mut report: Value) -> Value {
    report.as_object_mut().expect("report object").remove("witnesses");
    report
}

#[test]
fn sigkill_one_shard_promotes_its_follower_without_losing_sessions() {
    let dirs = [temp_dir("s0"), temp_dir("s1"), temp_dir("f0")];
    for d in &dirs {
        let _ = std::fs::remove_dir_all(d);
    }
    let [dir_s0, dir_s1, dir_f0] = &dirs;

    // ---- Topology: follower first (the shard needs its address).
    let (mut follower, f0) = spawn_announced(&[
        "cluster-shard",
        "--follower",
        "--data-dir",
        dir_f0.to_str().expect("utf-8 dir"),
        "--fsync",
        "always",
        "--workers",
        "3",
    ]);
    let f0_repl = f0.to_string();
    let (mut shard0, s0) = spawn_announced(&[
        "cluster-shard",
        "--data-dir",
        dir_s0.to_str().expect("utf-8 dir"),
        "--fsync",
        "always",
        "--snapshot-every",
        "5",
        "--workers",
        "3",
        "--replicate-to",
        &f0_repl,
    ]);
    let (mut shard1, s1) = spawn_announced(&[
        "cluster-shard",
        "--data-dir",
        dir_s1.to_str().expect("utf-8 dir"),
        "--fsync",
        "always",
        "--snapshot-every",
        "5",
        "--workers",
        "3",
    ]);
    let shard0_spec = format!("{s0},{f0_repl}");
    let (mut router, addr) = spawn_announced(&[
        "cluster-router",
        "--shard",
        &shard0_spec,
        "--shard",
        &s1.to_string(),
        "--pool",
        "2",
        "--probe-interval-ms",
        "50",
        "--fail-threshold",
        "2",
        "--probe-timeout-ms",
        "250",
        "--promote-timeout-ms",
        "10000",
    ]);

    // ---- Traffic: a dozen sessions spread across both shards, each with
    // its own distinct data, plus one session closed before the kill.
    let mut client = Client::connect(addr).expect("connect router");
    let mut sessions = Vec::new();
    for i in 0..12u64 {
        let rid =
            client.create_session(&group_doc(&format!("ann{i}, bob{i}")), RULES).expect("create");
        client
            .add_entities(
                rid,
                &[
                    json!([format!("ann{i}, bob{i}, carl{i}")]),
                    json!([format!("bob{i}, carl{i}")]),
                    json!([format!("dora{i}")]),
                ],
            )
            .expect("add");
        sessions.push(rid);
    }
    let closed = client.create_session(&group_doc("ann, bob"), RULES).expect("create closed");
    client.close_session(closed).expect("close");

    let mut before = Vec::new();
    for &rid in &sessions {
        let report = comparable(client.discovery(rid).expect("pre-kill discovery"));
        assert_eq!(
            report["mis_categorized"].as_array().expect("flagged").len(),
            1,
            "sanity: each session flags its loner"
        );
        before.push(report);
    }
    let stats = client.stats(None).expect("stats");
    assert_eq!(stats["cluster"]["sessions_routed"], 12);
    assert_eq!(stats["cluster"]["failovers"], 0);

    // ---- Kill the replicated shard without warning.
    shard0.kill().expect("SIGKILL shard0");
    shard0.wait().expect("reap shard0");

    // In-flight opens during the outage window: every attempt either
    // succeeds (routed to the live shard, or to the promoted follower)
    // or fails with the retryable `unavailable` — never anything else.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut created_during_outage = Vec::new();
    let mut saw_unavailable = false;
    while created_during_outage.len() < 4 {
        assert!(Instant::now() < deadline, "outage-window creates never drained");
        match client.create_session(&group_doc("ann, bob"), RULES) {
            Ok(rid) => created_during_outage.push(rid),
            Err(ClientError::Server { code: ErrorCode::Unavailable, .. }) => {
                saw_unavailable = true;
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(other) => panic!("outage-window create failed non-retryably: {other}"),
        }
    }

    // ---- Wait for the router to report the promotion.
    let mut failovers = 0;
    while failovers != 1 {
        assert!(Instant::now() < deadline, "router never promoted the follower");
        let stats = client.stats(None).expect("stats during failover");
        failovers = stats["cluster"]["failovers"].as_u64().unwrap_or(0);
        if failovers != 1 {
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    // ---- Zero closed-session data loss: every pre-kill session serves a
    // bit-identical discovery (modulo witnesses) after promotion.
    for (rid, before) in sessions.iter().zip(&before) {
        let after = comparable(client.discovery(*rid).expect("post-failover discovery"));
        assert_eq!(&after, before, "session {rid} must survive failover bit-identically");
    }
    match client.discovery(closed) {
        Err(ClientError::Server { code: ErrorCode::NoSuchSession, .. }) => {}
        other => panic!("closed session must stay closed across failover, got {other:?}"),
    }
    for rid in created_during_outage {
        client.discovery(rid).expect("outage-window session must stay usable");
    }
    // The kill genuinely interrupted traffic on some attempt, or every
    // create happened to route to the live shard — either is legal; log
    // which one this run exercised.
    if !saw_unavailable {
        eprintln!("note: no create hit the outage window on this run");
    }

    // New sessions keep working against the promoted topology.
    let late =
        client.create_session(&group_doc("late, pair"), RULES).expect("post-failover create");
    client.close_session(late).expect("close late");

    // ---- Teardown: stop the promoted replica (its serve address is the
    // shard slot's current address), the surviving shard, and the router.
    let stats = client.stats(None).expect("final stats");
    assert_eq!(stats["cluster"]["shards"][0]["failovers"], 1);
    let promoted_addr =
        stats["cluster"]["shards"][0]["addr"].as_str().expect("promoted addr").to_string();
    assert_ne!(promoted_addr, s0.to_string(), "slot 0 must point at the replica, not the corpse");
    Client::connect(promoted_addr.as_str())
        .expect("connect promoted replica")
        .shutdown()
        .expect("shutdown replica");
    Client::connect(s1).expect("connect shard1").shutdown().expect("shutdown shard1");
    client.shutdown().expect("shutdown router");
    follower.wait().expect("follower exits");
    shard1.wait().expect("shard1 exits");
    router.wait().expect("router exits");
    for d in &dirs {
        std::fs::remove_dir_all(d).expect("cleanup");
    }
}
