//! Cross-crate integration tests: generators → rules → both discovery
//! engines → metrics, exercising the whole public API surface the way the
//! experiment binaries do.

use dime::core::{
    discover_fast, discover_fast_with, discover_naive, DimePlusConfig, PartitionStats,
};
use dime::data::{
    amazon_category, amazon_rules, dbgen_group, dbgen_rules, scholar_page, scholar_rules,
    AmazonConfig, DbgenConfig, ScholarConfig,
};
use dime::metrics::evaluate_sets;
use std::collections::HashSet;

#[test]
fn scholar_pipeline_fast_equals_naive() {
    let lg = scholar_page("it", &ScholarConfig::small(17));
    let (pos, neg) = scholar_rules();
    let fast = discover_fast(&lg.group, &pos, &neg);
    let naive = discover_naive(&lg.group, &pos, &neg);
    assert_eq!(fast, naive);
}

#[test]
fn amazon_pipeline_fast_equals_naive() {
    let lg = amazon_category(&AmazonConfig::new(1, 60, 0.2, 23));
    let (pos, neg) = amazon_rules();
    assert_eq!(discover_fast(&lg.group, &pos, &neg), discover_naive(&lg.group, &pos, &neg));
}

#[test]
fn dbgen_pipeline_fast_equals_naive() {
    let lg = dbgen_group(&DbgenConfig::new(250, 31));
    let (pos, neg) = dbgen_rules();
    assert_eq!(discover_fast(&lg.group, &pos, &neg), discover_naive(&lg.group, &pos, &neg));
}

#[test]
fn every_engine_config_agrees_on_scholar() {
    let lg = scholar_page("cfg", &ScholarConfig::small(5));
    let (pos, neg) = scholar_rules();
    let reference = discover_naive(&lg.group, &pos, &neg);
    for benefit_order in [false, true] {
        for transitivity_skip in [false, true] {
            for threads in [1, 4] {
                let cfg = DimePlusConfig { benefit_order, transitivity_skip, threads };
                assert_eq!(
                    discover_fast_with(&lg.group, &pos, &neg, cfg),
                    reference,
                    "{cfg:?} diverged from Algorithm 1"
                );
            }
        }
    }
}

#[test]
fn parallel_engine_matches_naive_on_generators() {
    use dime::core::discover_parallel;
    let lg = dbgen_group(&DbgenConfig::new(400, 11));
    let (pos, neg) = dbgen_rules();
    let reference = discover_naive(&lg.group, &pos, &neg);
    for threads in [0, 1, 2, 3, 8] {
        assert_eq!(
            discover_parallel(&lg.group, &pos, &neg, threads),
            reference,
            "parallel engine diverged at threads={threads}"
        );
    }
    let lg = scholar_page("par", &ScholarConfig::small(41));
    let (pos, neg) = scholar_rules();
    let reference = discover_naive(&lg.group, &pos, &neg);
    for threads in [2, 8] {
        assert_eq!(discover_parallel(&lg.group, &pos, &neg, threads), reference);
    }
}

#[test]
fn scholar_quality_meets_floor() {
    // Average over a few pages: F of the best scrollbar step must clear a
    // quality floor well above chance.
    let (pos, neg) = scholar_rules();
    let mut fs = Vec::new();
    for seed in [1u64, 2, 3] {
        let lg = scholar_page("q", &ScholarConfig::default_page(seed));
        let d = discover_fast(&lg.group, &pos, &neg);
        let best = d
            .steps
            .iter()
            .map(|s| evaluate_sets(s.flagged.iter(), lg.truth.iter()).f_measure)
            .fold(0.0f64, f64::max);
        fs.push(best);
    }
    let avg = fs.iter().sum::<f64>() / fs.len() as f64;
    assert!(avg > 0.6, "average best-step F too low: {avg} ({fs:?})");
}

#[test]
fn scrollbar_recall_monotone_precision_tradeoff() {
    let (pos, neg) = scholar_rules();
    let lg = scholar_page("mono", &ScholarConfig::default_page(8));
    let d = discover_fast(&lg.group, &pos, &neg);
    let metrics: Vec<_> =
        d.steps.iter().map(|s| evaluate_sets(s.flagged.iter(), lg.truth.iter())).collect();
    for w in metrics.windows(2) {
        assert!(w[1].recall >= w[0].recall - 1e-12, "recall must not drop along the scrollbar");
    }
    // The first rule is the most conservative: its precision is the best.
    let p0 = metrics[0].precision;
    assert!(
        metrics.iter().skip(1).all(|m| m.precision <= p0 + 0.15),
        "NR1 should be (near-)best precision: {metrics:?}"
    );
}

#[test]
fn errors_isolate_in_small_partitions() {
    // Table I's headline: positive rules never absorb injected errors into
    // big partitions.
    let (pos, _) = scholar_rules();
    let mut fractions = Vec::new();
    for seed in [12u64, 13, 14] {
        let lg = scholar_page("tbl1", &ScholarConfig::default_page(seed));
        let d = discover_fast(&lg.group, &pos, &[]);
        let truth: HashSet<usize> = lg.truth.iter().copied().collect();
        let stats = PartitionStats::compute(&d.partitions, &truth);
        fractions.push(stats.small_partition_error_fraction());
        // The pivot contains none of them (an occasional same-subfield
        // namesake may land in a mid-sized side-project partition, exactly
        // like the paper's Divyakant row — but never in the pivot).
        assert!(d.pivot_members().iter().all(|e| !truth.contains(e)));
    }
    let avg = fractions.iter().sum::<f64>() / fractions.len() as f64;
    assert!(avg >= 0.85, "errors must concentrate in partitions of size < 10: {fractions:?}");
}

#[test]
fn amazon_precision_improves_with_error_rate() {
    let (pos, neg) = amazon_rules();
    let prec = |e: f64| {
        let mut ps = Vec::new();
        for seed in [5u64, 6, 7] {
            let lg = amazon_category(&AmazonConfig::new(0, 150, e, seed));
            let d = discover_fast(&lg.group, &pos, &neg);
            let m = evaluate_sets(d.mis_categorized().iter(), lg.truth.iter());
            ps.push(m.precision);
        }
        ps.iter().sum::<f64>() / ps.len() as f64
    };
    let low = prec(0.1);
    let high = prec(0.4);
    assert!(high >= low - 0.05, "precision should not degrade with e%: {low} → {high}");
}

#[test]
fn pivot_is_never_flagged() {
    for seed in [3u64, 9] {
        let lg = amazon_category(&AmazonConfig::new(2, 80, 0.3, seed));
        let (pos, neg) = amazon_rules();
        let d = discover_fast(&lg.group, &pos, &neg);
        let flagged = d.mis_categorized();
        assert!(d.pivot_members().iter().all(|e| !flagged.contains(e)));
    }
}

#[test]
fn incremental_matches_batch_on_scholar_stream() {
    use dime::core::IncrementalDime;
    // Re-play a generated page into the incremental engine one entity at a
    // time and compare against a from-scratch batch run at several cuts.
    let lg = scholar_page("stream", &ScholarConfig::small(29));
    let (pos, neg) = scholar_rules();

    // An empty group sharing the page's schema + ontologies: rebuild via a
    // builder with the same attachments.
    let mut builder = dime::core::GroupBuilder::new(dime::data::scholar_schema());
    builder.attach_ontology("Venue", std::sync::Arc::new(dime::data::venue_ontology()));
    let empty = builder.build();
    let mut inc = IncrementalDime::new(empty, pos.clone(), neg.clone());

    let attrs = lg.group.schema().len();
    for id in 0..lg.group.len() {
        let e = lg.group.entity(id);
        let values: Vec<&str> = (0..attrs).map(|a| e.value(a).text.as_str()).collect();
        let nodes: Vec<Option<dime::ontology::NodeId>> = (0..attrs)
            .map(|a| {
                // Title nodes come from the page's own theme model whose
                // ontology we did not attach — drop them on both sides by
                // keeping venue nodes only (venue ontology node ids are
                // identical because `venue_ontology()` is deterministic).
                if a == dime::data::scholar_attr::VENUE {
                    e.value(a).node
                } else {
                    None
                }
            })
            .collect();
        inc.add_entity_with_nodes(&values, &nodes);

        if id > 0 && id % 17 == 0 {
            let d = inc.discovery();
            let batch = dime::core::discover_naive(inc.group(), &pos, &neg);
            assert_eq!(d, batch, "diverged after {} entities", id + 1);
        }
    }
    let d = inc.discovery();
    assert_eq!(d, dime::core::discover_naive(inc.group(), &pos, &neg));
}
