//! Integration tests for rule generation against the synthetic datasets:
//! learned rules must transfer to unseen groups and the greedy algorithm
//! must stay within reach of the exhaustive optimum on small instances.

use dime::core::{discover_fast, Polarity, SimilarityFn};
use dime::data::{scholar_attr, scholar_page, ExampleSet, ScholarConfig};
use dime::metrics::evaluate_sets;
use dime::rulegen::{
    best_rule_set_exhaustive, candidate_predicates, enumerate_rules, generate_negative_rules,
    generate_positive_rules, score, FunctionLibrary, GreedyConfig,
};

fn scholar_library() -> FunctionLibrary {
    FunctionLibrary::new(vec![
        (scholar_attr::AUTHORS, SimilarityFn::Overlap),
        (scholar_attr::AUTHORS, SimilarityFn::Jaccard),
        (scholar_attr::VENUE, SimilarityFn::Ontology),
        (scholar_attr::TITLE, SimilarityFn::Jaccard),
        (scholar_attr::TITLE, SimilarityFn::Ontology),
    ])
}

#[test]
fn learned_rules_transfer_to_unseen_page() {
    let train = scholar_page("train", &ScholarConfig::default_page(41));
    let test = scholar_page("test", &ScholarConfig::default_page(1234));
    let ex = ExampleSet::from_labeled(&train, 229, 201);
    let lib = scholar_library();
    let cfg = GreedyConfig::default();

    let pos = generate_positive_rules(&train.group, &ex.positive, &ex.negative, &lib, &cfg);
    let neg = generate_negative_rules(&train.group, &ex.positive, &ex.negative, &lib, &cfg);
    assert!(!pos.is_empty() && !neg.is_empty());
    assert!(pos.iter().all(|r| r.polarity == Polarity::Positive));
    assert!(neg.iter().all(|r| r.polarity == Polarity::Negative));

    let d = discover_fast(&test.group, &pos, &neg);
    let best = d
        .steps
        .iter()
        .map(|s| evaluate_sets(s.flagged.iter(), test.truth.iter()).f_measure)
        .fold(0.0f64, f64::max);
    assert!(best > 0.5, "learned rules must generalize (best F {best})");
}

#[test]
fn greedy_never_beats_exhaustive_and_stays_close() {
    // Small instance where exhaustive search is feasible.
    let lg = scholar_page("small", &ScholarConfig::small(77));
    let ex = ExampleSet::from_labeled(&lg, 16, 16);
    let lib = FunctionLibrary::new(vec![(scholar_attr::AUTHORS, SimilarityFn::Overlap)]);

    let cands = candidate_predicates(&lg.group, &ex.positive, &lib, Polarity::Positive);
    let all = enumerate_rules(&cands, Polarity::Positive, 4096);
    if all.len() > 16 {
        return; // keep the exhaustive subset search tractable
    }
    let (_, best) = best_rule_set_exhaustive(&lg.group, &all, &ex.positive, &ex.negative);
    let greedy = generate_positive_rules(
        &lg.group,
        &ex.positive,
        &ex.negative,
        &lib,
        &GreedyConfig::default(),
    );
    let gs = score(&lg.group, &greedy, &ex.positive, &ex.negative);
    assert!(gs <= best + 1e-12, "greedy cannot exceed the optimum");
    assert!(gs >= best * 0.5, "greedy too far from optimum: {gs} vs {best}");
}

#[test]
fn negative_rules_emitted_in_generation_order_are_usable_as_scrollbar() {
    let train = scholar_page("order", &ScholarConfig::default_page(3));
    let ex = ExampleSet::from_labeled(&train, 150, 150);
    let lib = scholar_library();
    let neg = generate_negative_rules(
        &train.group,
        &ex.positive,
        &ex.negative,
        &lib,
        &GreedyConfig::default(),
    );
    // Coverage of each emitted rule on the residual examples decreases —
    // the first rule is the strongest, matching the scrollbar's default.
    if neg.len() >= 2 {
        let first = score(&train.group, &neg[..1], &ex.negative, &ex.positive);
        let all = score(&train.group, &neg, &ex.negative, &ex.positive);
        assert!(all >= first, "adding rules must not reduce the objective");
    }
}
