//! End-to-end tests of the discovery service: many concurrent clients
//! driving live sessions over real TCP, with every served discovery
//! checked against a from-scratch `discover_fast` run on the same final
//! group, and graceful shutdown draining every in-flight request.

use dime::core::{discover_fast, parse_rules, GroupBuilder, Polarity, Schema};
use dime::data::discovery_to_json;
use dime::serve::{
    AdmissionMode, Client, ClientError, ErrorCode, Frame, FrameReader, ServeConfig, Server,
};
use dime::text::TokenizerKind;
use serde_json::{json, Value};
use std::io::{BufReader, Write};
use std::net::TcpStream;

const RULES: &str = "positive: overlap(Authors) >= 2\nnegative: overlap(Authors) <= 0";

fn group_doc() -> Value {
    json!({
        "schema": [
            {"name": "Title", "tokenizer": "words"},
            {"name": "Authors", "tokenizer": {"list": ","}}
        ],
        "entities": []
    })
}

/// The reference result: `discover_fast` on a batch-built group holding
/// exactly `rows`, serialized the same way the server serializes.
fn reference_report(rows: &[(String, String)]) -> Value {
    let schema =
        Schema::new([("Title", TokenizerKind::Words), ("Authors", TokenizerKind::List(','))]);
    let mut b = GroupBuilder::new(schema);
    for (t, a) in rows {
        b.add_entity(&[t.as_str(), a.as_str()]);
    }
    let group = b.build();
    let rules = parse_rules(RULES, group.schema()).expect("rules parse");
    let (pos, neg): (Vec<_>, Vec<_>) =
        rules.into_iter().partition(|r| r.polarity == Polarity::Positive);
    let d = discover_fast(&group, &pos, &neg);
    discovery_to_json(&group, &d)
}

/// Strips the `witnesses` field: witness pairs legitimately differ
/// between engines (any pivot member violating the rule is a valid
/// witness), exactly like `Discovery`'s own `PartialEq`.
fn comparable(mut report: Value) -> Value {
    report.as_object_mut().expect("report object").remove("witnesses");
    report
}

/// Eight concurrent clients, each driving its own session over one
/// persistent connection with mixed traffic — batched adds, removals,
/// scrollbar reads, stats, error probes — asserting that every discovery
/// the server returns matches `discover_fast` on the same final group.
#[test]
fn concurrent_clients_see_batch_identical_discoveries() {
    const CLIENTS: usize = 8;
    let server = Server::bind(ServeConfig {
        // Well above the client count: each persistent connection owns a
        // worker for its lifetime, and auto-resolve on a small CI box
        // could starve them.
        workers: CLIENTS + 4,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client.ping().expect("ping");
                let session = client.create_session(&group_doc(), RULES).expect("create");
                let mut rows: Vec<(String, String)> = Vec::new();

                // Three linked papers, one outlier, then a client-specific
                // tail; author pools are disjoint across clients so any
                // cross-session bleed would change the result.
                let base = [
                    ("entity matching", format!("a{c}x, a{c}y")),
                    ("entity matching redux", format!("a{c}x, a{c}y, a{c}z")),
                    ("entity matching again", format!("a{c}y, a{c}z")),
                    ("organic synthesis", format!("q{c}")),
                ];
                let batch: Vec<Value> = base.iter().map(|(t, a)| json!([t, a])).collect();
                let ids = client.add_entities(session, &batch).expect("add");
                assert_eq!(ids, vec![0, 1, 2, 3]);
                rows.extend(base.iter().map(|(t, a)| (t.to_string(), a.clone())));

                for i in 0..6 {
                    let title = format!("tail paper {i}");
                    let authors = format!("a{c}x, a{c}t{i}");
                    client.add_entities(session, &[json!([title, authors])]).expect("tail add");
                    rows.push((title, authors));

                    if i % 2 == 0 {
                        // Remove the bridge of the moment and mirror the
                        // id compaction locally.
                        let victim = i % rows.len();
                        client.remove_entity(session, victim).expect("remove");
                        rows.remove(victim);
                    }

                    let report = client.discovery(session).expect("discovery");
                    assert_eq!(
                        comparable(report.clone()),
                        comparable(reference_report(&rows)),
                        "client {c}, round {i}"
                    );

                    // The scrollbar step must mirror the full report.
                    let step = client.scrollbar(session, 0).expect("scrollbar");
                    assert_eq!(step["flagged"], report["steps"][0]["flagged"]);
                }

                // Error probes on the live connection must not disturb it.
                assert!(client.discovery(session + 10_000).is_err());
                assert!(client.remove_entity(session, 9_999).is_err());

                let stats = client.stats(Some(session)).expect("stats");
                assert_eq!(stats["entities"].as_u64().unwrap() as usize, rows.len());
                assert!(stats["pairs_verified"].as_u64().unwrap() > 0);
                assert!(stats["flag_latency"]["count"].as_u64().unwrap() >= 6);

                let report = client.discovery(session).expect("final discovery");
                assert_eq!(comparable(report), comparable(reference_report(&rows)));
                client.close_session(session).expect("close");
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    // All sessions closed; global counters saw every client.
    let mut client = Client::connect(addr).expect("stats connect");
    let stats = client.stats(None).expect("global stats");
    assert_eq!(stats["sessions"]["live"], 0);
    assert_eq!(stats["sessions"]["created"], CLIENTS);
    assert_eq!(stats["sessions"]["closed"], CLIENTS);
    assert!(stats["requests"].as_u64().unwrap() > (CLIENTS * 10) as u64);
    drop(client);

    handle.shutdown();
    runner.join().expect("server thread").expect("server run");
}

/// Removing an entity that does not exist must come back through the
/// client as a typed `no_such_entity` server error — not a dropped
/// connection, not a generic failure — and must leave the session fully
/// serviceable.
#[test]
fn removing_a_nonexistent_entity_is_a_structured_error() {
    let server = Server::bind(ServeConfig { workers: 2, ..ServeConfig::default() }).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());

    let mut client = Client::connect(addr).expect("connect");
    let session = client.create_session(&group_doc(), RULES).expect("create");
    client
        .add_entities(session, &[json!(["t", "ann, bob"]), json!(["t", "ann, bob"])])
        .expect("seed");

    match client.remove_entity(session, 99) {
        Err(ClientError::Server { code: ErrorCode::NoSuchEntity, message }) => {
            assert!(message.contains("99"), "message should name the entity: {message}");
            assert!(message.contains('2'), "message should name the range: {message}");
        }
        other => panic!("expected a typed no_such_entity error, got {other:?}"),
    }
    // The error left no half-applied state behind.
    let report = client.discovery(session).expect("session still serves");
    assert_eq!(
        comparable(report),
        comparable(reference_report(&[
            ("t".into(), "ann, bob".into()),
            ("t".into(), "ann, bob".into()),
        ]))
    );

    handle.shutdown();
    runner.join().expect("server thread").expect("server run");
}

/// Graceful shutdown must drain: requests already written to the server
/// — including connections still queued for a worker — all get their
/// response, and `run` returns only after every worker exits.
#[test]
fn shutdown_drains_every_inflight_request() {
    const PENDING: usize = 8;
    let server = Server::bind(ServeConfig {
        // Fewer workers than pending connections, so the drain must also
        // empty the accept queue, not just finish busy workers.
        workers: 3,
        poll_interval: std::time::Duration::from_millis(10),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());

    // Seed a session for the pending requests to hit.
    let session = {
        let mut client = Client::connect(addr).expect("setup connect");
        let session = client.create_session(&group_doc(), RULES).expect("create");
        client
            .add_entities(
                session,
                &[json!(["t", "ann, bob"]), json!(["t", "ann, bob, carl"]), json!(["t", "dora"])],
            )
            .expect("seed");
        session
    };

    // Write one discovery request per connection and deliberately do not
    // read anything yet.
    let mut pending: Vec<TcpStream> = (0..PENDING)
        .map(|_| {
            let mut s = TcpStream::connect(addr).expect("pending connect");
            let frame = format!("{{\"op\": \"discovery\", \"session\": {session}}}\n");
            s.write_all(frame.as_bytes()).expect("write pending");
            s.flush().expect("flush pending");
            s
        })
        .collect();

    // Let the accept loop take them all in, then pull the plug.
    std::thread::sleep(std::time::Duration::from_millis(300));
    handle.shutdown();

    // Every single request written before shutdown must get its response.
    let expected = comparable(reference_report(&[
        ("t".into(), "ann, bob".into()),
        ("t".into(), "ann, bob, carl".into()),
        ("t".into(), "dora".into()),
    ]));
    for stream in pending.drain(..) {
        let mut reader = FrameReader::new(BufReader::new(stream), 1 << 20);
        match reader.read_frame().expect("drained read") {
            Frame::Line(line) => {
                let v: Value = serde_json::from_str(&line).expect("response JSON");
                let report = v.get("ok").cloned().expect("ok response");
                assert_eq!(comparable(report), expected);
            }
            other => panic!("dropped in-flight response: {other:?}"),
        }
    }
    runner.join().expect("server thread").expect("server run");
}

/// Seeds a session with three entities over a throwaway client and
/// returns its id.
fn seed_session(addr: std::net::SocketAddr) -> u64 {
    let mut client = Client::connect(addr).expect("setup connect");
    let session = client.create_session(&group_doc(), RULES).expect("create");
    client
        .add_entities(
            session,
            &[json!(["t", "ann, bob"]), json!(["t", "ann, bob, carl"]), json!(["t", "dora"])],
        )
        .expect("seed");
    session
}

/// Writes `n` pipelined discovery frames in one burst and reads exactly
/// `n` responses back, returning `(ok, overloaded)` counts. Panics on any
/// other response shape — backpressure must be a typed, retryable error,
/// never a dropped request or a closed connection.
fn burst_discoveries(addr: std::net::SocketAddr, session: u64, n: usize) -> (usize, usize) {
    let mut s = TcpStream::connect(addr).expect("burst connect");
    let frame = format!("{{\"op\": \"discovery\", \"session\": {session}}}\n");
    let burst: String = std::iter::repeat(frame.as_str()).take(n).collect();
    s.write_all(burst.as_bytes()).expect("write burst");
    s.flush().expect("flush burst");

    let (mut ok, mut overloaded) = (0usize, 0usize);
    let mut reader = FrameReader::new(BufReader::new(s), 1 << 20);
    for i in 0..n {
        match reader.read_frame().expect("burst read") {
            Frame::Line(line) => {
                let v: Value = serde_json::from_str(&line).expect("response JSON");
                if v.get("ok").is_some() {
                    ok += 1;
                } else {
                    let code = v["err"]["code"].as_str().unwrap_or("?");
                    assert_eq!(code, "overloaded", "response {i}: unexpected error: {line}");
                    overloaded += 1;
                }
            }
            other => panic!("response {i} of {n} dropped: {other:?}"),
        }
    }
    (ok, overloaded)
}

/// A tiny verify queue under a pipelined burst: every admitted request is
/// answered — the overflow as the typed, retryable `overloaded` error —
/// and a `with_retry` client rides out the pressure without surfacing it.
#[test]
fn queue_overflow_is_a_retryable_overloaded_error() {
    const BURST: usize = 200;
    let server = Server::bind(ServeConfig {
        admission: AdmissionMode::Async,
        workers: 1,
        queue_capacity: 1,
        batch_max: 1,
        poll_interval: std::time::Duration::from_millis(5),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());
    let session = seed_session(addr);

    let (ok, overloaded) = burst_discoveries(addr, session, BURST);
    assert_eq!(ok + overloaded, BURST, "every request is answered exactly once");
    assert!(ok >= 1, "the queue keeps serving under pressure");
    assert!(
        overloaded >= 1,
        "a single-slot queue cannot absorb a {BURST}-deep pipelined burst without shedding"
    );

    // A retrying client sustains service while a fresh burst keeps the
    // queue saturated: overloaded responses are absorbed by backoff.
    let pressure = std::thread::spawn(move || burst_discoveries(addr, session, BURST));
    let mut client = Client::connect(addr).expect("retry connect").with_retry(8, 1);
    for _ in 0..5 {
        client.discovery(session).expect("retrying discovery must outlast the burst");
    }
    pressure.join().expect("pressure thread");

    handle.shutdown();
    runner.join().expect("server thread").expect("server run");
}

/// Shutdown while the verify queue is saturated: the drain must flush
/// every op that was admitted — queued or shed — with a response on its
/// own connection before the socket closes, on every connection at once.
#[test]
fn shutdown_under_queue_pressure_answers_every_accepted_op() {
    const CONNS: usize = 4;
    const OPS: usize = 25;
    let server = Server::bind(ServeConfig {
        admission: AdmissionMode::Async,
        workers: 1,
        queue_capacity: 2,
        batch_max: 1,
        poll_interval: std::time::Duration::from_millis(5),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());
    let session = seed_session(addr);

    // Saturate from several connections, then pull the plug while the
    // queue is still working through the backlog. Reads happen in
    // parallel threads so one connection's backlog cannot stall another
    // past its write window.
    let readers: Vec<_> = (0..CONNS)
        .map(|_| std::thread::spawn(move || burst_discoveries(addr, session, OPS)))
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(50));
    handle.shutdown();

    for reader in readers {
        let (ok, overloaded) = reader.join().expect("reader thread");
        assert_eq!(ok + overloaded, OPS, "drain must answer every admitted op");
    }
    runner.join().expect("server thread").expect("server run");
}
