//! The user review workflow behind the paper's scrollbar GUI (Figure 3):
//! DIME *suggests* mis-categorized entities, the user confirms or rejects
//! each, and the session tracks what is still pending at the current
//! scrollbar position.
//!
//! The paper's economic argument — "it is way cheaper for users to confirm
//! our suggested mis-categorized entities than selecting them manually
//! from the entire group" — is exactly the quantity
//! [`ReviewSession::suggestions_reviewed`] vs. the group size.

use crate::discover::Discovery;
use std::collections::BTreeMap;

/// A user's verdict on one suggested entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The entity really is mis-categorized (remove it from the group).
    Confirmed,
    /// False alarm; the entity belongs.
    Rejected,
}

/// An interactive review over a [`Discovery`]'s scrollbar.
#[derive(Debug)]
pub struct ReviewSession {
    discovery: Discovery,
    position: usize,
    decisions: BTreeMap<usize, Decision>,
}

impl ReviewSession {
    /// Starts a session at the first scrollbar position (only the first
    /// negative rule enabled — the paper's default view).
    ///
    /// # Panics
    ///
    /// Panics if the discovery has no negative-rule steps.
    pub fn new(discovery: Discovery) -> Self {
        assert!(!discovery.steps.is_empty(), "nothing to review without negative rules");
        Self { discovery, position: 0, decisions: BTreeMap::new() }
    }

    /// The underlying discovery.
    pub fn discovery(&self) -> &Discovery {
        &self.discovery
    }

    /// Current scrollbar position (0-based rule prefix).
    pub fn position(&self) -> usize {
        self.position
    }

    /// Drags the scrollbar right (enable one more negative rule). Returns
    /// the entities *newly* suggested by the added rule.
    pub fn scroll_right(&mut self) -> Vec<usize> {
        if self.position + 1 >= self.discovery.steps.len() {
            return Vec::new();
        }
        self.position += 1;
        self.discovery.step_deltas()[self.position].clone()
    }

    /// Drags the scrollbar left (disable the last rule). Decisions made on
    /// entities that are no longer suggested are kept — the user's
    /// knowledge doesn't evaporate.
    pub fn scroll_left(&mut self) {
        self.position = self.position.saturating_sub(1);
    }

    /// Entities suggested at the current position and not yet decided.
    pub fn pending(&self) -> Vec<usize> {
        self.discovery
            .at_step(self.position)
            .map(|s| s.iter().copied().filter(|e| !self.decisions.contains_key(e)).collect())
            .unwrap_or_default()
    }

    /// Records the user's verdict on a suggested entity.
    ///
    /// # Panics
    ///
    /// Panics if the entity is not suggested at the current position —
    /// reviewing something the user cannot see is a UI bug.
    pub fn decide(&mut self, entity: usize, decision: Decision) {
        let visible =
            self.discovery.at_step(self.position).map(|s| s.contains(&entity)).unwrap_or(false);
        assert!(
            visible,
            "entity {entity} is not suggested at scrollbar position {}",
            self.position
        );
        self.decisions.insert(entity, decision);
    }

    /// Entities the user confirmed as mis-categorized so far.
    pub fn confirmed(&self) -> Vec<usize> {
        self.decisions.iter().filter(|(_, d)| **d == Decision::Confirmed).map(|(&e, _)| e).collect()
    }

    /// Entities the user rejected as false alarms so far.
    pub fn rejected(&self) -> Vec<usize> {
        self.decisions.iter().filter(|(_, d)| **d == Decision::Rejected).map(|(&e, _)| e).collect()
    }

    /// How many suggestions the user has reviewed — the paper's cost
    /// metric, to be compared against checking the whole group.
    pub fn suggestions_reviewed(&self) -> usize {
        self.decisions.len()
    }

    /// Whether every suggestion at the current position has a verdict.
    pub fn is_settled(&self) -> bool {
        self.pending().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discover::discover_naive;
    use crate::rule::tests::{figure1_group, paper_rules};

    fn session() -> ReviewSession {
        let g = figure1_group();
        let (pos, neg) = paper_rules();
        ReviewSession::new(discover_naive(&g, &pos, &neg))
    }

    #[test]
    fn figure_3_workflow() {
        let mut s = session();
        // Position 0: φ1- suggests the NJ-Tang paper only.
        assert_eq!(s.pending(), vec![4]);
        s.decide(4, Decision::Confirmed);
        assert!(s.is_settled());
        // Dragging right enables φ2-, surfacing the chemistry paper.
        let newly = s.scroll_right();
        assert_eq!(newly, vec![5]);
        assert_eq!(s.pending(), vec![5]);
        s.decide(5, Decision::Confirmed);
        assert_eq!(s.confirmed(), vec![4, 5]);
        // The user reviewed 2 suggestions instead of 6 entities.
        assert_eq!(s.suggestions_reviewed(), 2);
    }

    #[test]
    fn rejections_are_remembered_across_scrolling() {
        let mut s = session();
        s.decide(4, Decision::Rejected);
        s.scroll_right();
        s.scroll_left();
        assert_eq!(s.rejected(), vec![4]);
        assert!(s.is_settled(), "position 0 has no undecided suggestions");
    }

    #[test]
    fn scroll_is_clamped() {
        let mut s = session();
        s.scroll_left(); // already leftmost
        assert_eq!(s.position(), 0);
        s.scroll_right();
        assert!(s.scroll_right().is_empty(), "rightmost scroll adds nothing");
        assert_eq!(s.position(), 1);
    }

    #[test]
    #[should_panic(expected = "not suggested")]
    fn deciding_unsuggested_entity_panics() {
        let mut s = session();
        s.decide(0, Decision::Confirmed); // a pivot member, never suggested
    }

    #[test]
    #[should_panic(expected = "nothing to review")]
    fn empty_steps_panics() {
        let g = figure1_group();
        let (pos, _) = paper_rules();
        let _ = ReviewSession::new(discover_naive(&g, &pos, &[]));
    }
}
