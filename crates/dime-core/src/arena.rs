//! Pointer-free verification arena for the DIME⁺ candidate loops.
//!
//! [`VerifyArena`] interns every attribute value of a [`Group`] into
//! contiguous packed buffers at build time — token ids, ASCII bytes,
//! decoded chars, 64-bit bitset blocks for dense token sets, and
//! root-to-node ontology ancestor paths — addressed by
//! `slot = entity_id · attr_count + attr` with `(offset, len)` spans.
//! Verification then touches only `u32` ids and packed slices: no `String`
//! pointer chasing, no per-pair char decoding, no hash lookups.
//!
//! Every kernel is *bit-identical* to the scalar [`Rule::eval`] /
//! [`Rule::cost`] path:
//!
//! * set similarities produce the same intersection integer (merge, gallop
//!   and bitset kernels agree exactly) and funnel it through the same
//!   `*_counts` f64 expressions;
//! * edit predicates go through the same [`EditCheck`] integer cutoffs and
//!   the same bounded kernels the scalar path uses;
//! * ontology similarity recomputes `2·depth(lca)/(d_a + d_b)` from packed
//!   ancestor paths, whose common-prefix length equals the LCA depth.

use crate::entity::Group;
use crate::rule::{
    edit_distance_check, edit_similarity_check, EditCheck, Polarity, Predicate, Rule, SimilarityFn,
};
use dime_ontology::NodeId;
use dime_text::{
    block_build_into, block_intersection_size, cosine_counts, dice_counts, edit_distance_leq_bytes,
    edit_distance_leq_chars, intersection_size_gallop, intersection_size_merge, jaccard_counts,
    overlap_counts, TokenId,
};

/// Size-ratio cutover to the galloping kernel; mirrors the dispatch inside
/// [`dime_text::intersection_size`].
const GALLOP_RATIO: usize = 16;
/// Token sets smaller than this never get a bitset representation — the
/// merge pass already finishes in a handful of comparisons.
const DENSE_MIN_TOKENS: usize = 8;
/// Minimum average ids per 64-bit block for a set to count as *dense*
/// (below this, the popcount walk touches more words than merge would).
const DENSE_IDS_PER_BLOCK: usize = 2;

/// `(offset, len)` into one of the packed buffers, in element units.
type Span = (u32, u32);

#[inline]
fn slice<T>(buf: &[T], span: Span) -> &[T] {
    let (o, l) = (span.0 as usize, span.1 as usize);
    &buf[o..o + l]
}

/// The packed, immutable verification view of a [`Group`].
///
/// Build once per discovery run (inside the `signature_build` phase), then
/// evaluate rules by entity id via [`VerifyArena::eval_rule`] /
/// [`VerifyArena::rule_cost`]. The arena owns plain `Vec`s only, so shared
/// references are `Sync` and the parallel engine's scoped workers can
/// verify against one arena concurrently.
pub(crate) struct VerifyArena {
    /// Attributes per entity (`slot = eid · attrs + attr`).
    attrs: usize,
    /// Whether each attribute has an attached ontology.
    has_ontology: Vec<bool>,
    token_span: Vec<Span>,
    tokens: Vec<TokenId>,
    /// Valid only where `is_ascii` (empty span otherwise).
    byte_span: Vec<Span>,
    bytes: Vec<u8>,
    /// Valid for every slot (ASCII text is re-encoded as chars too, so
    /// mixed pairs need no per-pair decoding).
    char_span: Vec<Span>,
    chars: Vec<char>,
    char_len: Vec<u32>,
    is_ascii: Vec<bool>,
    /// Bitset blocks, present only for dense token sets (empty span
    /// otherwise); keys are sorted `id >> 6` block indices.
    block_span: Vec<Span>,
    block_keys: Vec<TokenId>,
    block_words: Vec<u64>,
    /// Root-to-node ancestor path, present when the attribute has an
    /// ontology and the value resolved to a node (empty span otherwise).
    anc_span: Vec<Span>,
    anc: Vec<NodeId>,
    /// The `depth(node)` term of the ontology cost model (1 when the node
    /// or the ontology is missing, matching the scalar `unwrap_or(1)`).
    node_depth: Vec<u32>,
}

impl VerifyArena {
    /// Interns the whole group. `O(total data)` — one pass over every
    /// value, no per-pair work afterwards.
    pub(crate) fn new(group: &Group) -> Self {
        let attrs = group.schema().len();
        let slots = group.len() * attrs;
        let mut a = VerifyArena {
            attrs,
            has_ontology: (0..attrs).map(|i| group.ontology(i).is_some()).collect(),
            token_span: Vec::with_capacity(slots),
            tokens: Vec::new(),
            byte_span: Vec::with_capacity(slots),
            bytes: Vec::new(),
            char_span: Vec::with_capacity(slots),
            chars: Vec::new(),
            char_len: Vec::with_capacity(slots),
            is_ascii: Vec::with_capacity(slots),
            block_span: Vec::with_capacity(slots),
            block_keys: Vec::new(),
            block_words: Vec::new(),
            anc_span: Vec::with_capacity(slots),
            anc: Vec::new(),
            node_depth: Vec::with_capacity(slots),
        };
        for e in group.entities() {
            for (ai, v) in e.values.iter().enumerate() {
                let start = a.tokens.len();
                a.tokens.extend_from_slice(&v.tokens);
                a.token_span.push((start as u32, v.tokens.len() as u32));

                a.char_len.push(v.char_len);
                a.is_ascii.push(v.is_ascii);
                if v.is_ascii {
                    let start = a.bytes.len();
                    a.bytes.extend_from_slice(v.text.as_bytes());
                    a.byte_span.push((start as u32, v.text.len() as u32));
                } else {
                    a.byte_span.push((0, 0));
                }
                let start = a.chars.len();
                a.chars.extend(v.text.chars());
                a.char_span.push((start as u32, (a.chars.len() - start) as u32));
                debug_assert_eq!(a.chars.len() - start, v.char_len as usize);

                let start = a.block_keys.len();
                if is_dense(&v.tokens) {
                    block_build_into(&v.tokens, &mut a.block_keys, &mut a.block_words);
                }
                a.block_span.push((start as u32, (a.block_keys.len() - start) as u32));

                let start = a.anc.len();
                let mut depth = 1u32;
                if let (Some(ont), Some(node)) = (group.ontology(ai), v.node) {
                    depth = ont.depth(node);
                    let mut cur = Some(node);
                    while let Some(nd) = cur {
                        a.anc.push(nd);
                        cur = ont.parent(nd);
                    }
                    a.anc[start..].reverse();
                    debug_assert_eq!(a.anc.len() - start, depth as usize);
                }
                a.anc_span.push((start as u32, (a.anc.len() - start) as u32));
                a.node_depth.push(depth);
            }
        }
        a
    }

    /// Lowers a rule against this arena for the hot candidate loops:
    /// [`EditCheck`] cutoffs are tabulated for every reachable `max_len`
    /// (replacing the per-pair guess-then-adjust derivation with one
    /// indexed load), and predicates are reordered cheapest-kernel-first —
    /// set/ontology merges before `O(k·len)` edit kernels — so a failing
    /// cheap conjunct skips the expensive one. A conjunction's evaluation
    /// order is unobservable, so the boolean (and every counter downstream)
    /// is identical to [`Self::eval_rule`].
    pub(crate) fn compile<'r>(&self, rule: &'r Rule) -> CompiledRule<'r> {
        let cap = self.char_len.iter().copied().max().unwrap_or(0) as usize;
        let mut preds: Vec<CompiledPred<'r>> = rule
            .predicates
            .iter()
            .map(|p| {
                let checks = match p.func {
                    SimilarityFn::EditDistance => {
                        EditChecks::Fixed(edit_distance_check(p.threshold, rule.polarity))
                    }
                    SimilarityFn::EditSimilarity => EditChecks::ByMax(
                        (0..=cap)
                            .map(|m| {
                                if m == 0 {
                                    // Placeholder: the `max == 0` pair case
                                    // short-circuits before the table load.
                                    EditCheck::Always
                                } else {
                                    edit_similarity_check(p.threshold, rule.polarity, m)
                                }
                            })
                            .collect(),
                    ),
                    _ => EditChecks::None,
                };
                CompiledPred { pred: p, checks }
            })
            .collect();
        // Stable partition: non-edit predicates keep their relative order
        // and run first.
        preds.sort_by_key(|cp| {
            matches!(cp.pred.func, SimilarityFn::EditDistance | SimilarityFn::EditSimilarity)
        });
        CompiledRule { polarity: rule.polarity, preds }
    }

    /// [`Self::eval_rule`] over a pre-lowered rule — the same boolean with
    /// no per-pair cutoff derivation.
    pub(crate) fn eval_compiled(&self, cr: &CompiledRule<'_>, a: usize, b: usize) -> bool {
        cr.preds.iter().all(|cp| {
            let p = cp.pred;
            match &cp.checks {
                EditChecks::None => self.eval_pred(p, cr.polarity, a, b),
                EditChecks::Fixed(check) => {
                    let sa = a * self.attrs + p.attr;
                    let sb = b * self.attrs + p.attr;
                    self.eval_edit(*check, sa, sb)
                }
                EditChecks::ByMax(table) => {
                    let sa = a * self.attrs + p.attr;
                    let sb = b * self.attrs + p.attr;
                    let max = self.char_len[sa].max(self.char_len[sb]) as usize;
                    if max == 0 {
                        p.holds(1.0, cr.polarity)
                    } else {
                        self.eval_edit(table[max], sa, sb)
                    }
                }
            }
        })
    }

    /// Evaluates the rule's conjunction on a pair of entity ids; identical
    /// boolean to `rule.eval(group, group.entity(a), group.entity(b))`.
    ///
    /// The engines run [`Self::eval_compiled`]; this uncompiled form is the
    /// differential oracle the tests pit it against.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn eval_rule(&self, rule: &Rule, a: usize, b: usize) -> bool {
        rule.predicates.iter().all(|p| self.eval_pred(p, rule.polarity, a, b))
    }

    /// The rule's verification cost estimate; identical f64 to
    /// `rule.cost(group, group.entity(a), group.entity(b))`.
    pub(crate) fn rule_cost(&self, rule: &Rule, a: usize, b: usize) -> f64 {
        rule.predicates
            .iter()
            .map(|p| {
                let sa = a * self.attrs + p.attr;
                let sb = b * self.attrs + p.attr;
                match p.func {
                    SimilarityFn::Overlap
                    | SimilarityFn::Jaccard
                    | SimilarityFn::Dice
                    | SimilarityFn::Cosine => {
                        (self.token_span[sa].1 as usize + self.token_span[sb].1 as usize) as f64
                    }
                    SimilarityFn::EditSimilarity | SimilarityFn::EditDistance => {
                        let min = self.char_len[sa].min(self.char_len[sb]) as f64;
                        (p.threshold.max(1.0)) * min
                    }
                    SimilarityFn::Ontology => {
                        f64::from(self.node_depth[sa]) + f64::from(self.node_depth[sb])
                    }
                }
            })
            .sum()
    }

    fn eval_pred(&self, p: &Predicate, polarity: Polarity, a: usize, b: usize) -> bool {
        let sa = a * self.attrs + p.attr;
        let sb = b * self.attrs + p.attr;
        match p.func {
            SimilarityFn::Overlap => p.holds(overlap_counts(self.inter(sa, sb)), polarity),
            SimilarityFn::Jaccard => {
                let (la, lb) = (self.token_span[sa].1 as usize, self.token_span[sb].1 as usize);
                p.holds(jaccard_counts(self.inter(sa, sb), la, lb), polarity)
            }
            SimilarityFn::Dice => {
                let (la, lb) = (self.token_span[sa].1 as usize, self.token_span[sb].1 as usize);
                p.holds(dice_counts(self.inter(sa, sb), la, lb), polarity)
            }
            SimilarityFn::Cosine => {
                let (la, lb) = (self.token_span[sa].1 as usize, self.token_span[sb].1 as usize);
                p.holds(cosine_counts(self.inter(sa, sb), la, lb), polarity)
            }
            SimilarityFn::EditSimilarity => {
                let max = self.char_len[sa].max(self.char_len[sb]) as usize;
                if max == 0 {
                    p.holds(1.0, polarity)
                } else {
                    self.eval_edit(edit_similarity_check(p.threshold, polarity, max), sa, sb)
                }
            }
            SimilarityFn::EditDistance => {
                self.eval_edit(edit_distance_check(p.threshold, polarity), sa, sb)
            }
            SimilarityFn::Ontology => p.holds(self.ontology_sim(p.attr, sa, sb), polarity),
        }
    }

    /// Exact `|a ∩ b|` with per-pair kernel choice: gallop on heavy size
    /// skew, bitset popcount when both sides are dense, merge otherwise.
    fn inter(&self, sa: usize, sb: usize) -> usize {
        let ta = slice(&self.tokens, self.token_span[sa]);
        let tb = slice(&self.tokens, self.token_span[sb]);
        let (small, large) = if ta.len() <= tb.len() { (ta, tb) } else { (tb, ta) };
        if small.is_empty() {
            return 0;
        }
        if large.len() / small.len() >= GALLOP_RATIO {
            return intersection_size_gallop(small, large);
        }
        let (ka, la) = (self.block_span[sa], self.block_span[sb]);
        if ka.1 > 0 && la.1 > 0 {
            return block_intersection_size(
                slice(&self.block_keys, ka),
                slice(&self.block_words, ka),
                slice(&self.block_keys, la),
                slice(&self.block_words, la),
            );
        }
        intersection_size_merge(small, large)
    }

    fn eval_edit(&self, check: EditCheck, sa: usize, sb: usize) -> bool {
        match check {
            EditCheck::Always => true,
            EditCheck::Never => false,
            EditCheck::AtMost(k) => self.edit_leq(sa, sb, k).is_some(),
            EditCheck::AtLeast(k) => k == 0 || self.edit_leq(sa, sb, k - 1).is_none(),
        }
    }

    /// Bounded edit distance over the packed text; same dispatch the `&str`
    /// entry points use (byte kernel iff both sides are ASCII), so the
    /// result is the identical integer.
    fn edit_leq(&self, sa: usize, sb: usize, k: usize) -> Option<usize> {
        if self.is_ascii[sa] && self.is_ascii[sb] {
            edit_distance_leq_bytes(
                slice(&self.bytes, self.byte_span[sa]),
                slice(&self.bytes, self.byte_span[sb]),
                k,
            )
        } else {
            edit_distance_leq_chars(
                slice(&self.chars, self.char_span[sa]),
                slice(&self.chars, self.char_span[sb]),
                k,
            )
        }
    }

    /// `2·depth(lca)/(d_a + d_b)` from packed ancestor paths. The paths run
    /// root→node, so their common-prefix length *is* the LCA depth; the f64
    /// expression then matches `dime_ontology::ontology_similarity_opt`
    /// term for term.
    fn ontology_sim(&self, attr: usize, sa: usize, sb: usize) -> f64 {
        if !self.has_ontology[attr] {
            return 0.0;
        }
        let pa = slice(&self.anc, self.anc_span[sa]);
        let pb = slice(&self.anc, self.anc_span[sb]);
        if pa.is_empty() || pb.is_empty() {
            return 0.0; // a value without a node has no path
        }
        let mut cp = 0usize;
        while cp < pa.len() && cp < pb.len() && pa[cp] == pb[cp] {
            cp += 1;
        }
        let da = pa.len() as f64;
        let db = pb.len() as f64;
        2.0 * cp as f64 / (da + db)
    }
}

/// A [`Rule`] pre-lowered against one [`VerifyArena`] by
/// [`VerifyArena::compile`]: tabulated edit cutoffs, cheapest-kernel-first
/// predicate order. Owns only plain data, so shared references are `Sync`
/// and one compiled rule serves every parallel verify shard.
pub(crate) struct CompiledRule<'r> {
    polarity: Polarity,
    preds: Vec<CompiledPred<'r>>,
}

struct CompiledPred<'r> {
    pred: &'r Predicate,
    checks: EditChecks,
}

/// Precomputed [`EditCheck`] cutoffs for one predicate.
enum EditChecks {
    /// Non-edit predicate — evaluated through the set/ontology kernels.
    None,
    /// `EditDistance`: the cutoff is pair-independent.
    Fixed(EditCheck),
    /// `EditSimilarity`: cutoff indexed by the pair's larger char count,
    /// covering `0..=max(char_len)` over the whole arena.
    ByMax(Box<[EditCheck]>),
}

/// Whether a sorted token set is worth a bitset representation.
fn is_dense(tokens: &[TokenId]) -> bool {
    if tokens.len() < DENSE_MIN_TOKENS {
        return false;
    }
    let mut blocks = 0usize;
    let mut prev = TokenId::MAX;
    for &t in tokens {
        let key = t >> 6;
        if key != prev || blocks == 0 {
            blocks += 1;
            prev = key;
        }
    }
    tokens.len() >= DENSE_IDS_PER_BLOCK * blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{GroupBuilder, Schema};
    use crate::rule::tests::{figure1_group, paper_rules};
    use dime_text::TokenizerKind;
    use proptest::prelude::*;

    /// Every similarity function over one schema, both polarities, across a
    /// threshold sweep — the arena must agree with the scalar path on all.
    fn all_function_rules() -> Vec<Rule> {
        let mut rules = Vec::new();
        for func in [
            SimilarityFn::Overlap,
            SimilarityFn::Jaccard,
            SimilarityFn::Dice,
            SimilarityFn::Cosine,
            SimilarityFn::EditSimilarity,
            SimilarityFn::EditDistance,
            SimilarityFn::Ontology,
        ] {
            for attr in 0..3 {
                for t in [0.0, 0.25, 0.5, 0.75, 1.0, 2.0] {
                    rules.push(Rule::positive(vec![Predicate::new(attr, func, t)]));
                    rules.push(Rule::negative(vec![Predicate::new(attr, func, t)]));
                }
            }
        }
        rules
    }

    #[test]
    fn arena_matches_scalar_on_paper_example() {
        let g = figure1_group();
        let arena = VerifyArena::new(&g);
        let mut rules = all_function_rules();
        let (pos, neg) = paper_rules();
        rules.extend(pos);
        rules.extend(neg);
        for rule in &rules {
            let compiled = arena.compile(rule);
            for a in 0..g.len() {
                for b in 0..g.len() {
                    let (ea, eb) = (g.entity(a), g.entity(b));
                    assert_eq!(
                        arena.eval_rule(rule, a, b),
                        rule.eval(&g, ea, eb),
                        "eval diverged: {rule} on ({a}, {b})"
                    );
                    assert_eq!(
                        arena.eval_compiled(&compiled, a, b),
                        rule.eval(&g, ea, eb),
                        "compiled eval diverged: {rule} on ({a}, {b})"
                    );
                    let (ca, cs) = (arena.rule_cost(rule, a, b), rule.cost(&g, ea, eb));
                    assert!(
                        ca == cs || (ca.is_nan() && cs.is_nan()),
                        "cost diverged: {rule} on ({a}, {b}): {ca} vs {cs}"
                    );
                }
            }
        }
    }

    #[test]
    fn arena_handles_unicode_and_empty_values() {
        let schema =
            Schema::new([("Name", TokenizerKind::Words), ("Tags", TokenizerKind::List(','))]);
        let mut gb = GroupBuilder::new(schema);
        gb.add_entity(&["özsu tamer", "a, b, c"]);
        gb.add_entity(&["ozsu tamer", ""]);
        gb.add_entity(&["", "a, c, d, e"]);
        gb.add_entity(&["ñandú", "b"]);
        let g = gb.build();
        let arena = VerifyArena::new(&g);
        for func in [
            SimilarityFn::Overlap,
            SimilarityFn::Jaccard,
            SimilarityFn::EditSimilarity,
            SimilarityFn::EditDistance,
        ] {
            for attr in 0..2 {
                for t in [0.0, 0.4, 0.75, 1.0, 2.0] {
                    for polarity in [Polarity::Positive, Polarity::Negative] {
                        let p = Predicate::new(attr, func, t);
                        let rule = Rule { predicates: vec![p], polarity };
                        let compiled = arena.compile(&rule);
                        for a in 0..g.len() {
                            for b in 0..g.len() {
                                assert_eq!(
                                    arena.eval_rule(&rule, a, b),
                                    rule.eval(&g, g.entity(a), g.entity(b)),
                                    "{func:?} θ={t} {polarity:?} on ({a}, {b})"
                                );
                                assert_eq!(
                                    arena.eval_compiled(&compiled, a, b),
                                    rule.eval(&g, g.entity(a), g.entity(b)),
                                    "compiled {func:?} θ={t} {polarity:?} on ({a}, {b})"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn dense_sets_take_the_bitset_path() {
        // 64 consecutive token ids → 1-2 blocks, far above the density bar.
        let dense: Vec<TokenId> = (0..64).collect();
        assert!(is_dense(&dense));
        // 8 widely-spread ids → 8 blocks, 1 id per block.
        let sparse: Vec<TokenId> = (0..8).map(|i| i * 1000).collect();
        assert!(!is_dense(&sparse));
        assert!(!is_dense(&[1, 2, 3]));
    }

    #[test]
    fn compiled_rules_reorder_but_agree() {
        let g = figure1_group();
        let arena = VerifyArena::new(&g);
        // Edit predicate authored first: the compiled form runs the set
        // predicate first and must still decide the same conjunction.
        for polarity in [Polarity::Positive, Polarity::Negative] {
            let rule = Rule {
                predicates: vec![
                    Predicate::new(0, SimilarityFn::EditSimilarity, 0.8),
                    Predicate::new(1, SimilarityFn::Jaccard, 0.5),
                ],
                polarity,
            };
            let compiled = arena.compile(&rule);
            for a in 0..g.len() {
                for b in 0..g.len() {
                    assert_eq!(
                        arena.eval_compiled(&compiled, a, b),
                        rule.eval(&g, g.entity(a), g.entity(b)),
                        "compiled reorder diverged: {rule} on ({a}, {b})"
                    );
                }
            }
        }
    }

    proptest! {
        #[test]
        fn prop_arena_matches_scalar(
            names in proptest::collection::vec("[a-cö ]{0,12}", 2..8),
            tags in proptest::collection::vec(
                proptest::collection::vec(0u32..200, 0..40), 8),
            t in 0.0f64..2.0,
        ) {
            let schema = Schema::new([
                ("Name", TokenizerKind::Words),
                ("Tags", TokenizerKind::List(',')),
            ]);
            let mut gb = GroupBuilder::new(schema);
            for (name, tag_ids) in names.iter().zip(&tags) {
                let joined: Vec<String> = tag_ids.iter().map(|x| format!("t{x}")).collect();
                gb.add_entity(&[name.as_str(), joined.join(", ").as_str()]);
            }
            let g = gb.build();
            let arena = VerifyArena::new(&g);
            for func in [
                SimilarityFn::Overlap,
                SimilarityFn::Jaccard,
                SimilarityFn::Dice,
                SimilarityFn::Cosine,
                SimilarityFn::EditSimilarity,
                SimilarityFn::EditDistance,
            ] {
                for attr in 0..2 {
                    for polarity in [Polarity::Positive, Polarity::Negative] {
                        let rule = Rule {
                            predicates: vec![Predicate::new(attr, func, t)],
                            polarity,
                        };
                        let compiled = arena.compile(&rule);
                        for a in 0..g.len() {
                            for b in 0..g.len() {
                                prop_assert_eq!(
                                    arena.eval_rule(&rule, a, b),
                                    rule.eval(&g, g.entity(a), g.entity(b)),
                                    "{:?} θ={} {:?} on ({}, {})", func, t, polarity, a, b
                                );
                                prop_assert_eq!(
                                    arena.eval_compiled(&compiled, a, b),
                                    rule.eval(&g, g.entity(a), g.entity(b)),
                                    "compiled {:?} θ={} {:?} on ({}, {})", func, t, polarity, a, b
                                );
                                prop_assert_eq!(
                                    arena.rule_cost(&rule, a, b),
                                    rule.cost(&g, g.entity(a), g.entity(b)),
                                    "cost {:?} on ({}, {})", func, a, b
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
