//! The DIME rule-based framework, Algorithm 1 (paper Section III), and the
//! shared discovery-result model.
//!
//! `DIME` is the naïve baseline: it evaluates every positive rule on every
//! entity pair to build the partition graph, takes connected components,
//! picks the largest as the pivot partition, and then evaluates every
//! negative rule on every (partition entity, pivot entity) pair.
//!
//! Negative rules are applied *cumulatively* — first `φ₁⁻`, then
//! `φ₁⁻ ∨ φ₂⁻`, and so on — yielding the monotone sequence of result sets
//! behind the paper's scrollbar GUI (Figure 3).

use crate::entity::Group;
use crate::rule::{Polarity, Rule};
use dime_index::UnionFind;
use std::collections::BTreeSet;

/// Why a partition was flagged: the first negative rule that fired and the
/// entity pair that satisfied it (`entity` in the flagged partition,
/// `pivot_entity` in the pivot). A partition flagged purely by the
/// signature filter (provably dissimilar without verification) gets the
/// cheapest representative pair as its witness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Witness {
    /// Index of the flagged partition in [`Discovery::partitions`].
    pub partition: usize,
    /// Index of the negative rule that fired (0-based).
    pub rule: usize,
    /// The flagged partition's entity of the witnessing pair.
    pub entity: usize,
    /// The pivot entity of the witnessing pair.
    pub pivot_entity: usize,
}

/// The result of running DIME (any variant) on a group.
#[derive(Debug, Clone)]
pub struct Discovery {
    /// The disjoint partitions computed by the positive rules; each is a
    /// sorted list of entity ids. Ordered by smallest member.
    pub partitions: Vec<Vec<usize>>,
    /// Index (into `partitions`) of the pivot partition — the largest one,
    /// ties broken toward the partition with the smallest entity id.
    pub pivot: usize,
    /// One step per negative rule: `steps[k]` holds the entities flagged by
    /// the disjunction `φ₁⁻ ∨ … ∨ φ_{k+1}⁻`. Monotone non-decreasing.
    pub steps: Vec<ScrollStep>,
    /// One witness per flagged partition (first rule that fired), for
    /// explaining results to users. Witness pairs may differ between
    /// engines (any satisfying pair is a valid witness), so this field is
    /// excluded from equality.
    pub witnesses: Vec<Witness>,
}

impl PartialEq for Discovery {
    fn eq(&self, other: &Self) -> bool {
        // Witnesses are explanations, not results: engines may verify pairs
        // in different orders and surface different (equally valid) pairs.
        self.partitions == other.partitions
            && self.pivot == other.pivot
            && self.steps == other.steps
    }
}

/// One scrollbar position: the cumulative output after enabling a prefix of
/// the negative rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrollStep {
    /// How many negative rules are enabled at this step (1-based).
    pub rules_applied: usize,
    /// The entity ids flagged as mis-categorized at this step.
    pub flagged: BTreeSet<usize>,
}

impl Discovery {
    /// The final mis-categorized entity set `G⁻` (all negative rules
    /// enabled). Empty when no negative rules were supplied.
    pub fn mis_categorized(&self) -> BTreeSet<usize> {
        self.steps.last().map(|s| s.flagged.clone()).unwrap_or_default()
    }

    /// The mis-categorized set at scrollbar position `k` (0-based: only
    /// rules `0..=k` enabled).
    pub fn at_step(&self, k: usize) -> Option<&BTreeSet<usize>> {
        self.steps.get(k).map(|s| &s.flagged)
    }

    /// The pivot partition's members.
    pub fn pivot_members(&self) -> &[usize] {
        &self.partitions[self.pivot]
    }

    /// Number of scrollbar steps (= number of negative rules applied).
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// The index (into [`Discovery::partitions`]) of the partition that
    /// contains `entity`, or `None` for an out-of-range id.
    pub fn partition_of(&self, entity: usize) -> Option<usize> {
        self.partitions.iter().position(|p| p.binary_search(&entity).is_ok())
    }

    /// Whether `entity` sits in the pivot partition.
    pub fn is_pivot_member(&self, entity: usize) -> bool {
        self.partitions[self.pivot].binary_search(&entity).is_ok()
    }

    /// The witness explaining why `entity`'s partition was flagged, if it
    /// was.
    pub fn witness_for(&self, entity: usize) -> Option<&Witness> {
        let p = self.partition_of(entity)?;
        self.witnesses.iter().find(|w| w.partition == p)
    }

    /// The entities each scrollbar step adds over the previous one — what
    /// the user reviews when dragging the scrollbar right by one rule.
    pub fn step_deltas(&self) -> Vec<Vec<usize>> {
        let empty: BTreeSet<usize> = BTreeSet::new();
        let mut prev = &empty;
        let mut out = Vec::with_capacity(self.steps.len());
        for s in &self.steps {
            out.push(s.flagged.difference(prev).copied().collect());
            prev = &s.flagged;
        }
        out
    }
}

/// Validates rule polarities once, so misuse fails loudly instead of
/// silently inverting comparisons.
pub(crate) fn check_polarities(positive: &[Rule], negative: &[Rule]) {
    assert!(
        positive.iter().all(|r| r.polarity == Polarity::Positive),
        "positive rule set contains a negative rule"
    );
    assert!(
        negative.iter().all(|r| r.polarity == Polarity::Negative),
        "negative rule set contains a positive rule"
    );
}

/// Selects the pivot partition: largest size, ties broken toward the
/// partition containing the smallest entity id.
///
/// The tie-break deliberately scans for the minimum member instead of
/// trusting `p[0]`: every engine must pick the same pivot even if a caller
/// hands partitions whose members are not sorted ascending.
pub(crate) fn pick_pivot(partitions: &[Vec<usize>]) -> usize {
    let min_member = |p: &[usize]| *p.iter().min().expect("partitions have at least one member");
    partitions
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            a.len().cmp(&b.len()).then_with(|| min_member(b).cmp(&min_member(a)))
        })
        .map(|(i, _)| i)
        .expect("non-empty group has at least one partition")
}

/// Runs DIME (Algorithm 1) — the naïve all-pairs variant.
///
/// Complexity: `O(n²·υ·(|Σ⁺| + |Σ⁻|))` where `υ` is the predicate
/// verification cost.
///
/// # Panics
///
/// Panics when rules are supplied with the wrong polarity.
///
/// # Examples
///
/// ```
/// use dime_core::{discover_naive, GroupBuilder, Predicate, Rule, Schema, SimilarityFn};
/// use dime_text::TokenizerKind;
///
/// let schema = Schema::new([("Authors", TokenizerKind::List(','))]);
/// let mut b = GroupBuilder::new(schema);
/// b.add_entity(&["ann, bob"]);
/// b.add_entity(&["ann, bob, carol"]);
/// b.add_entity(&["zed"]);
/// let group = b.build();
///
/// let pos = vec![Rule::positive(vec![Predicate::new(0, SimilarityFn::Overlap, 2.0)])];
/// let neg = vec![Rule::negative(vec![Predicate::new(0, SimilarityFn::Overlap, 0.0)])];
/// let d = discover_naive(&group, &pos, &neg);
/// assert_eq!(d.pivot_members(), &[0, 1]);
/// assert!(d.mis_categorized().contains(&2));
/// ```
pub fn discover_naive(group: &Group, positive: &[Rule], negative: &[Rule]) -> Discovery {
    check_polarities(positive, negative);
    let n = group.len();
    assert!(n > 0, "cannot discover in an empty group");

    // Step 1: positive rules as a disjunction over all pairs + transitivity.
    // Faithful to Algorithm 1, every pair is evaluated against the rules —
    // the constant-time "already connected" skip is a DIME⁺ optimization
    // (Section IV-C) and deliberately absent here.
    let mut uf = UnionFind::new(n);
    for i in 0..n {
        for j in i + 1..n {
            let (a, b) = (group.entity(i), group.entity(j));
            if positive.iter().any(|r| r.eval(group, a, b)) {
                uf.union(i, j);
            }
        }
    }
    let partitions = uf.components();

    // Step 2: the pivot partition.
    let pivot = pick_pivot(&partitions);

    // Step 3: negative rules, cumulatively.
    let (steps, witnesses) = flag_partitions_naive(group, &partitions, pivot, negative);
    Discovery { partitions, pivot, steps, witnesses }
}

/// Shared step-3 logic: for each negative rule, decide per non-pivot
/// partition whether *some* pair `(e ∈ P, e* ∈ P*)` satisfies it, then fold
/// the per-rule flags into cumulative scroll steps.
fn flag_partitions_naive(
    group: &Group,
    partitions: &[Vec<usize>],
    pivot: usize,
    negative: &[Rule],
) -> (Vec<ScrollStep>, Vec<Witness>) {
    let pivot_members = &partitions[pivot];
    let mut per_rule: Vec<Vec<bool>> = vec![vec![false; partitions.len()]; negative.len()];
    let mut witnesses: Vec<Witness> = Vec::new();
    for (pi, part) in partitions.iter().enumerate() {
        if pi == pivot {
            continue;
        }
        let mut witnessed = false;
        for (ri, rule) in negative.iter().enumerate() {
            'pairs: for &e in part {
                for &p in pivot_members {
                    if rule.eval(group, group.entity(e), group.entity(p)) {
                        per_rule[ri][pi] = true;
                        if !witnessed {
                            witnesses.push(Witness {
                                partition: pi,
                                rule: ri,
                                entity: e,
                                pivot_entity: p,
                            });
                            witnessed = true;
                        }
                        break 'pairs;
                    }
                }
            }
        }
    }
    (cumulate_steps(partitions, &per_rule), witnesses)
}

/// Folds per-rule partition flags into the cumulative scrollbar steps.
pub(crate) fn cumulate_steps(
    partitions: &[Vec<usize>],
    per_rule_flags: &[Vec<bool>],
) -> Vec<ScrollStep> {
    let mut steps = Vec::with_capacity(per_rule_flags.len());
    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    for (ri, flags) in per_rule_flags.iter().enumerate() {
        for (pi, &on) in flags.iter().enumerate() {
            if on {
                flagged.extend(partitions[pi].iter().copied());
            }
        }
        steps.push(ScrollStep { rules_applied: ri + 1, flagged: flagged.clone() });
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::tests::{figure1_group, paper_rules};

    #[test]
    fn paper_example_5_end_to_end() {
        let g = figure1_group();
        let (pos, neg) = paper_rules();
        let d = discover_naive(&g, &pos, &neg);
        // Three partitions: {Win, KATARA, NADEEF, Hierarchical}, the
        // NJ-Tang SIGIR paper, and the chemistry paper.
        assert_eq!(d.partitions.len(), 3);
        assert_eq!(d.pivot_members(), &[0, 1, 2, 3]);
        // Scrollbar: φ1- alone finds the SIGIR paper (id 4); adding φ2-
        // also finds the chemistry paper (id 5) — paper Figure 3.
        assert_eq!(d.at_step(0).unwrap().iter().copied().collect::<Vec<_>>(), vec![4]);
        assert_eq!(d.at_step(1).unwrap().iter().copied().collect::<Vec<_>>(), vec![4, 5]);
        assert_eq!(d.mis_categorized().len(), 2);
    }

    #[test]
    fn navigation_helpers() {
        let g = figure1_group();
        let (pos, neg) = paper_rules();
        let d = discover_naive(&g, &pos, &neg);
        assert_eq!(d.step_count(), 2);
        assert_eq!(d.partition_of(0), Some(d.pivot));
        assert!(d.is_pivot_member(2));
        assert!(!d.is_pivot_member(4));
        assert_eq!(d.partition_of(99), None);
        let deltas = d.step_deltas();
        assert_eq!(deltas[0], vec![4]);
        assert_eq!(deltas[1], vec![5]);
    }

    #[test]
    fn witnesses_explain_flags() {
        let g = figure1_group();
        let (pos, neg) = paper_rules();
        let d = discover_naive(&g, &pos, &neg);
        // Both flagged entities (4 and 5) have witnesses; pivot members none.
        let w4 = d.witness_for(4).expect("entity 4 flagged");
        assert_eq!(w4.rule, 0, "the SIGIR paper is caught by φ1-");
        assert_eq!(w4.entity, 4);
        assert!(d.pivot_members().contains(&w4.pivot_entity));
        let w5 = d.witness_for(5).expect("entity 5 flagged");
        assert_eq!(w5.rule, 1, "the chemistry paper needs φ2-");
        assert!(d.witness_for(0).is_none(), "pivot members have no witness");
        // The witness pair really satisfies the rule it names.
        assert!(neg[w5.rule].eval(&g, g.entity(w5.entity), g.entity(w5.pivot_entity)));
    }

    #[test]
    fn steps_are_monotone() {
        let g = figure1_group();
        let (pos, neg) = paper_rules();
        let d = discover_naive(&g, &pos, &neg);
        for w in d.steps.windows(2) {
            assert!(w[0].flagged.is_subset(&w[1].flagged));
        }
    }

    #[test]
    fn no_negative_rules_flags_nothing() {
        let g = figure1_group();
        let (pos, _) = paper_rules();
        let d = discover_naive(&g, &pos, &[]);
        assert!(d.mis_categorized().is_empty());
        assert!(d.steps.is_empty());
    }

    #[test]
    fn no_positive_rules_yields_singletons() {
        let g = figure1_group();
        let (_, neg) = paper_rules();
        let d = discover_naive(&g, &[], &neg);
        assert_eq!(d.partitions.len(), g.len());
        // Pivot is a singleton; ties break to the smallest id.
        assert_eq!(d.pivot_members(), &[0]);
    }

    #[test]
    fn pivot_never_flagged() {
        let g = figure1_group();
        let (pos, neg) = paper_rules();
        let d = discover_naive(&g, &pos, &neg);
        let flagged = d.mis_categorized();
        assert!(d.pivot_members().iter().all(|e| !flagged.contains(e)));
    }

    #[test]
    fn pivot_tie_break_ignores_member_ordering() {
        // Two size-2 partitions tie; the one containing entity 1 wins no
        // matter how the members (or the partitions) are ordered.
        let sorted = vec![vec![1, 5], vec![2, 4], vec![3]];
        assert_eq!(pick_pivot(&sorted), 0);
        let shuffled = vec![vec![5, 1], vec![4, 2], vec![3]];
        assert_eq!(pick_pivot(&shuffled), 0);
        let reversed = vec![vec![4, 2], vec![5, 1], vec![3]];
        assert_eq!(pick_pivot(&reversed), 1);
        // Size still dominates the tie-break.
        assert_eq!(pick_pivot(&[vec![9], vec![3, 8, 7]]), 1);
    }

    #[test]
    #[should_panic(expected = "positive rule set contains")]
    fn wrong_polarity_panics() {
        let g = figure1_group();
        let (_, neg) = paper_rules();
        discover_naive(&g, &neg, &[]);
    }

    #[test]
    #[should_panic(expected = "empty group")]
    fn empty_group_panics() {
        use crate::entity::{GroupBuilder, Schema};
        use dime_text::TokenizerKind;
        let g = GroupBuilder::new(Schema::new([("A", TokenizerKind::Words)])).build();
        discover_naive(&g, &[], &[]);
    }
}
