//! A small textual DSL for rules, so rule sets can live in config files
//! and CLI arguments instead of code.
//!
//! Grammar (case-insensitive keywords, whitespace-insensitive):
//!
//! ```text
//! rule      := polarity ':' predicate ( 'and' predicate )*
//! polarity  := 'positive' | 'negative'
//! predicate := func '(' attr ')' op number
//! func      := 'overlap' | 'jaccard' | 'dice' | 'cosine'
//!            | 'edit_sim' | 'edit_dist' | 'ontology'
//! op        := '>=' | '<='
//! attr      := attribute name as it appears in the schema
//! ```
//!
//! Examples:
//!
//! ```text
//! positive: overlap(Authors) >= 2
//! positive: overlap(Authors) >= 1 and ontology(Venue) >= 0.75
//! negative: overlap(Authors) <= 0
//! ```
//!
//! The comparison operator is validated against the polarity: positive
//! rules take `>=` (or `<=` for `edit_dist`), negative rules the opposite.

use crate::entity::Schema;
use crate::rule::{Polarity, Predicate, Rule, SimilarityFn};
use std::fmt;

/// Why a rule string failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRuleError {
    /// Human-readable description with the offending fragment.
    pub message: String,
}

impl fmt::Display for ParseRuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule parse error: {}", self.message)
    }
}

impl std::error::Error for ParseRuleError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseRuleError> {
    Err(ParseRuleError { message: message.into() })
}

fn parse_func(name: &str) -> Result<SimilarityFn, ParseRuleError> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "overlap" => SimilarityFn::Overlap,
        "jaccard" => SimilarityFn::Jaccard,
        "dice" => SimilarityFn::Dice,
        "cosine" => SimilarityFn::Cosine,
        "edit_sim" | "editsim" => SimilarityFn::EditSimilarity,
        "edit_dist" | "editdist" => SimilarityFn::EditDistance,
        "ontology" => SimilarityFn::Ontology,
        other => return err(format!("unknown similarity function {other:?}")),
    })
}

/// Parses one rule against a schema (attribute names are resolved to
/// indices, case-sensitively, as declared in the schema).
///
/// ```
/// use dime_core::{parse_rule, Polarity, Schema, SimilarityFn};
/// use dime_text::TokenizerKind;
///
/// let schema = Schema::new([
///     ("Authors", TokenizerKind::List(',')),
///     ("Venue", TokenizerKind::Words),
/// ]);
/// let rule = parse_rule("positive: overlap(Authors) >= 1 and ontology(Venue) >= 0.75", &schema)
///     .unwrap();
/// assert_eq!(rule.polarity, Polarity::Positive);
/// assert_eq!(rule.predicates.len(), 2);
/// assert_eq!(rule.predicates[1].func, SimilarityFn::Ontology);
/// ```
pub fn parse_rule(input: &str, schema: &Schema) -> Result<Rule, ParseRuleError> {
    let (head, body) = match input.split_once(':') {
        Some(parts) => parts,
        None => return err("missing ':' after polarity (expected 'positive: …')"),
    };
    let polarity = match head.trim().to_ascii_lowercase().as_str() {
        "positive" => Polarity::Positive,
        "negative" => Polarity::Negative,
        other => return err(format!("polarity must be 'positive' or 'negative', got {other:?}")),
    };

    let mut predicates = Vec::new();
    for clause in split_on_and(body) {
        let clause = clause.trim();
        if clause.is_empty() {
            return err("empty predicate clause");
        }
        predicates.push(parse_predicate(clause, schema, polarity)?);
    }
    if predicates.is_empty() {
        return err("a rule needs at least one predicate");
    }
    Ok(Rule { predicates, polarity })
}

/// Parses many rules, one per non-empty, non-`#`-comment line.
pub fn parse_rules(input: &str, schema: &Schema) -> Result<Vec<Rule>, ParseRuleError> {
    input
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| parse_rule(l, schema))
        .collect()
}

/// Splits on the keyword `and` (case-insensitive, token-boundary aware).
fn split_on_and(body: &str) -> Vec<&str> {
    let lower = body.to_ascii_lowercase();
    let mut parts = Vec::new();
    let mut start = 0usize;
    let bytes = lower.as_bytes();
    let mut i = 0usize;
    while i + 3 <= lower.len() {
        if &lower[i..i + 3] == "and"
            && (i == 0 || !bytes[i - 1].is_ascii_alphanumeric())
            && (i + 3 == lower.len() || !bytes[i + 3].is_ascii_alphanumeric())
        {
            parts.push(&body[start..i]);
            start = i + 3;
            i += 3;
        } else {
            i += 1;
        }
    }
    parts.push(&body[start..]);
    parts
}

fn parse_predicate(
    clause: &str,
    schema: &Schema,
    polarity: Polarity,
) -> Result<Predicate, ParseRuleError> {
    // func '(' attr ')' op number
    let open = clause.find('(');
    let close = clause.find(')');
    let (open, close) = match (open, close) {
        (Some(o), Some(c)) if o < c => (o, c),
        _ => return err(format!("predicate {clause:?} must look like func(Attr) >= x")),
    };
    let func = parse_func(clause[..open].trim())?;
    let attr_name = clause[open + 1..close].trim();
    let attr = match schema.attr_index(attr_name) {
        Some(a) => a,
        None => {
            let known: Vec<&str> = schema.attrs().iter().map(|a| a.name.as_str()).collect();
            return err(format!("unknown attribute {attr_name:?} (schema has {known:?})"));
        }
    };
    let rest = clause[close + 1..].trim();
    let (op, num) = if let Some(n) = rest.strip_prefix(">=") {
        (">=", n)
    } else if let Some(n) = rest.strip_prefix("<=") {
        ("<=", n)
    } else if let Some(n) = rest.strip_prefix('=') {
        // `overlap(A) = 0` sugar for the paper's φ₁⁻ notation.
        ("<=", n)
    } else {
        return err(format!("expected '>=' or '<=' in {clause:?}"));
    };
    let threshold: f64 = match num.trim().parse() {
        Ok(t) => t,
        Err(_) => return err(format!("bad threshold {:?}", num.trim())),
    };

    // The operator must match what the polarity implies for this function,
    // so a file can't silently assert the opposite of what it reads as.
    let expected = match (polarity, func.higher_is_similar()) {
        (Polarity::Positive, true) | (Polarity::Negative, false) => ">=",
        _ => "<=",
    };
    if op != expected {
        return err(format!(
            "{:?}: a {} rule uses '{}' with {} (got '{}')",
            clause,
            if polarity == Polarity::Positive { "positive" } else { "negative" },
            expected,
            func.symbol(),
            op
        ));
    }
    Ok(Predicate::new(attr, func, threshold))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dime_text::TokenizerKind;

    fn schema() -> Schema {
        Schema::new([
            ("Title", TokenizerKind::Words),
            ("Authors", TokenizerKind::List(',')),
            ("Venue", TokenizerKind::Words),
        ])
    }

    #[test]
    fn parses_paper_rules() {
        let s = schema();
        let text = "\
# the paper's Scholar rules
positive: overlap(Authors) >= 2
positive: overlap(Authors) >= 1 and ontology(Venue) >= 0.75
negative: overlap(Authors) <= 0
negative: overlap(Authors) <= 1 and ontology(Venue) <= 0.25
";
        let rules = parse_rules(text, &s).unwrap();
        assert_eq!(rules.len(), 4);
        assert_eq!(rules[0].polarity, Polarity::Positive);
        assert_eq!(rules[1].predicates.len(), 2);
        assert_eq!(rules[3].predicates[1].threshold, 0.25);
    }

    #[test]
    fn equals_sugar_for_negative_zero() {
        let s = schema();
        let r = parse_rule("negative: overlap(Authors) = 0", &s).unwrap();
        assert_eq!(r.predicates[0].threshold, 0.0);
    }

    #[test]
    fn rejects_wrong_operator_for_polarity() {
        let s = schema();
        let e = parse_rule("positive: overlap(Authors) <= 2", &s).unwrap_err();
        assert!(e.message.contains(">="), "{e}");
        let e = parse_rule("negative: jaccard(Title) >= 0.5", &s).unwrap_err();
        assert!(e.message.contains("<="), "{e}");
    }

    #[test]
    fn edit_distance_flips_operator() {
        let s = schema();
        // Positive rules assert similarity: small distance.
        let r = parse_rule("positive: edit_dist(Title) <= 3", &s).unwrap();
        assert_eq!(r.predicates[0].func, SimilarityFn::EditDistance);
        // Negative rules assert dissimilarity: large distance.
        assert!(parse_rule("negative: edit_dist(Title) >= 10", &s).is_ok());
        assert!(parse_rule("positive: edit_dist(Title) >= 3", &s).is_err());
    }

    #[test]
    fn unknown_attribute_lists_schema() {
        let s = schema();
        let e = parse_rule("positive: overlap(Nope) >= 1", &s).unwrap_err();
        assert!(e.message.contains("Authors"), "{e}");
    }

    #[test]
    fn unknown_function_is_rejected() {
        let s = schema();
        assert!(parse_rule("positive: sorcery(Title) >= 1", &s).is_err());
    }

    #[test]
    fn and_splitting_is_token_aware() {
        // Attribute names containing "and" must not split the clause.
        let s = Schema::new([("Brand", TokenizerKind::Whole)]);
        let r = parse_rule("positive: jaccard(Brand) >= 0.5", &s).unwrap();
        assert_eq!(r.predicates.len(), 1);
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        let s = schema();
        for bad in [
            "overlap(Authors) >= 1",
            "positive overlap(Authors) >= 1",
            "positive: overlap Authors >= 1",
            "positive: overlap(Authors) >= lots",
            "positive:",
            "sideways: overlap(Authors) >= 1",
        ] {
            assert!(parse_rule(bad, &s).is_err(), "{bad:?} should fail");
        }
    }

    proptest::proptest! {
        /// Random rules rendered by `Rule::to_dsl` parse back identically.
        #[test]
        fn prop_dsl_roundtrip(
            polarity in proptest::bool::ANY,
            preds in proptest::collection::vec((0usize..3, 0usize..7, 0u32..40), 1..4),
        ) {
            use crate::rule::{Polarity, Predicate, Rule, SimilarityFn};
            let s = schema();
            let funcs = [
                SimilarityFn::Overlap,
                SimilarityFn::Jaccard,
                SimilarityFn::Dice,
                SimilarityFn::Cosine,
                SimilarityFn::EditSimilarity,
                SimilarityFn::EditDistance,
                SimilarityFn::Ontology,
            ];
            let polarity = if polarity { Polarity::Positive } else { Polarity::Negative };
            let rule = Rule {
                predicates: preds
                    .iter()
                    .map(|&(attr, f, t)| Predicate::new(attr, funcs[f], t as f64 / 8.0))
                    .collect(),
                polarity,
            };
            let dsl = rule.to_dsl(&s);
            let back = parse_rule(&dsl, &s).unwrap();
            proptest::prop_assert_eq!(back, rule);
        }
    }

    #[test]
    fn roundtrip_parse_then_eval() {
        use crate::entity::GroupBuilder;
        let s = schema();
        let mut b = GroupBuilder::new(schema());
        b.add_entity(&["t1", "a, b", "v"]);
        b.add_entity(&["t2", "a, b, c", "v"]);
        let g = b.build();
        let r = parse_rule("positive: overlap(Authors) >= 2", &s).unwrap();
        assert!(r.eval(&g, g.entity(0), g.entity(1)));
    }
}
