//! Group diagnostics: per-attribute statistics that tell a user which
//! similarity functions and thresholds are even *viable* before they write
//! or learn rules.
//!
//! For every attribute: fill rate (how many entities have a non-empty
//! value), token-count distribution (set predicates need multi-token
//! values), text-length distribution (edit-distance predicates need
//! comparable lengths), ontology mapping rate (semantic predicates need
//! mapped nodes), and the count of distinct tokens (selectivity of prefix
//! signatures).

use crate::entity::Group;
use std::collections::HashSet;
use std::fmt;

/// Statistics of one attribute across the group.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrStats {
    /// Attribute name.
    pub name: String,
    /// Entities with at least one token.
    pub filled: usize,
    /// Distinct tokens across the group.
    pub distinct_tokens: usize,
    /// Minimum / mean / maximum token count over filled values.
    pub tokens_min: usize,
    /// Mean token count over filled values.
    pub tokens_mean: f64,
    /// Maximum token count over filled values.
    pub tokens_max: usize,
    /// Mean text length (chars) over filled values.
    pub text_len_mean: f64,
    /// Entities whose value mapped to an ontology node.
    pub mapped: usize,
    /// Whether an ontology is attached at all.
    pub has_ontology: bool,
}

/// Per-attribute diagnostics for a whole group.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupStats {
    /// Number of entities.
    pub entities: usize,
    /// One entry per schema attribute.
    pub attrs: Vec<AttrStats>,
}

impl GroupStats {
    /// Computes diagnostics for `group`.
    pub fn compute(group: &Group) -> Self {
        let n = group.len();
        let attrs = group
            .schema()
            .attrs()
            .iter()
            .enumerate()
            .map(|(ai, def)| {
                let mut filled = 0usize;
                let mut mapped = 0usize;
                let mut distinct: HashSet<u32> = HashSet::new();
                let (mut tmin, mut tmax, mut tsum) = (usize::MAX, 0usize, 0usize);
                let mut lsum = 0usize;
                for e in group.entities() {
                    let v = e.value(ai);
                    if !v.tokens.is_empty() {
                        filled += 1;
                        tmin = tmin.min(v.tokens.len());
                        tmax = tmax.max(v.tokens.len());
                        tsum += v.tokens.len();
                        lsum += v.text.chars().count();
                        distinct.extend(v.tokens.iter().copied());
                    }
                    if v.node.is_some() {
                        mapped += 1;
                    }
                }
                AttrStats {
                    name: def.name.clone(),
                    filled,
                    distinct_tokens: distinct.len(),
                    tokens_min: if filled == 0 { 0 } else { tmin },
                    tokens_mean: if filled == 0 { 0.0 } else { tsum as f64 / filled as f64 },
                    tokens_max: tmax,
                    text_len_mean: if filled == 0 { 0.0 } else { lsum as f64 / filled as f64 },
                    mapped,
                    has_ontology: group.ontology(ai).is_some(),
                }
            })
            .collect();
        Self { entities: n, attrs }
    }

    /// Attributes viable for *set* predicates: ≥ `min_fill` fill rate and a
    /// mean of at least two tokens (otherwise overlap thresholds above one
    /// are unsatisfiable for most pairs).
    pub fn set_viable(&self, min_fill: f64) -> Vec<&AttrStats> {
        self.attrs
            .iter()
            .filter(|a| self.fill_rate(a) >= min_fill && a.tokens_mean >= 2.0)
            .collect()
    }

    /// Attributes viable for *ontology* predicates: an ontology attached
    /// and ≥ `min_fill` of entities mapped.
    pub fn ontology_viable(&self, min_fill: f64) -> Vec<&AttrStats> {
        self.attrs
            .iter()
            .filter(|a| {
                a.has_ontology
                    && self.entities > 0
                    && a.mapped as f64 / self.entities as f64 >= min_fill
            })
            .collect()
    }

    fn fill_rate(&self, a: &AttrStats) -> f64 {
        if self.entities == 0 {
            0.0
        } else {
            a.filled as f64 / self.entities as f64
        }
    }
}

impl fmt::Display for GroupStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} entities", self.entities)?;
        writeln!(
            f,
            "{:<18} {:>6} {:>9} {:>14} {:>9} {:>8}",
            "attribute", "fill%", "#tokens", "tok min/µ/max", "text µ", "mapped%"
        )?;
        for a in &self.attrs {
            let fill = 100.0 * self.fill_rate(a);
            let mapped = if a.has_ontology && self.entities > 0 {
                format!("{:.0}%", 100.0 * a.mapped as f64 / self.entities as f64)
            } else {
                "-".to_string()
            };
            writeln!(
                f,
                "{:<18} {:>5.0}% {:>9} {:>4}/{:>4.1}/{:<4} {:>8.1} {:>8}",
                a.name,
                fill,
                a.distinct_tokens,
                a.tokens_min,
                a.tokens_mean,
                a.tokens_max,
                a.text_len_mean,
                mapped
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{GroupBuilder, Schema};
    use dime_ontology::Ontology;
    use dime_text::TokenizerKind;
    use std::sync::Arc;

    fn group() -> Group {
        let schema = Schema::new([
            ("Authors", TokenizerKind::List(',')),
            ("Venue", TokenizerKind::Words),
            ("Empty", TokenizerKind::Words),
        ]);
        let mut venues = Ontology::new("venue");
        venues.add_path(&["cs", "db", "vldb"]);
        let mut b = GroupBuilder::new(schema);
        b.attach_ontology("Venue", Arc::new(venues));
        b.add_entity(&["ann, bob", "vldb", ""]);
        b.add_entity(&["ann, bob, carl", "unknown venue", ""]);
        b.add_entity(&["dave", "vldb", ""]);
        b.build()
    }

    #[test]
    fn computes_per_attribute_statistics() {
        let s = GroupStats::compute(&group());
        assert_eq!(s.entities, 3);
        let authors = &s.attrs[0];
        assert_eq!(authors.filled, 3);
        assert_eq!(authors.distinct_tokens, 4); // ann bob carl dave
        assert_eq!(authors.tokens_min, 1);
        assert_eq!(authors.tokens_max, 3);
        assert!((authors.tokens_mean - 2.0).abs() < 1e-12);
        let venue = &s.attrs[1];
        assert!(venue.has_ontology);
        assert_eq!(venue.mapped, 2);
        let empty = &s.attrs[2];
        assert_eq!(empty.filled, 0);
        assert_eq!(empty.tokens_min, 0);
    }

    #[test]
    fn viability_filters() {
        let s = GroupStats::compute(&group());
        let set_ok: Vec<&str> = s.set_viable(0.9).iter().map(|a| a.name.as_str()).collect();
        assert_eq!(set_ok, vec!["Authors"]);
        let ont_ok: Vec<&str> = s.ontology_viable(0.5).iter().map(|a| a.name.as_str()).collect();
        assert_eq!(ont_ok, vec!["Venue"]);
        assert!(s.ontology_viable(0.9).is_empty());
    }

    #[test]
    fn display_renders_all_attributes() {
        let s = GroupStats::compute(&group());
        let text = s.to_string();
        assert!(text.contains("Authors"));
        assert!(text.contains("Empty"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn empty_group_is_all_zeroes() {
        let g = GroupBuilder::new(Schema::new([("A", TokenizerKind::Words)])).build();
        let s = GroupStats::compute(&g);
        assert_eq!(s.entities, 0);
        assert_eq!(s.attrs[0].filled, 0);
        assert!(s.set_viable(0.1).is_empty());
    }
}
