//! `dime-core` — the rule-based framework of *Discovering Mis-Categorized
//! Entities* (Hao, Tang, Li, Feng — ICDE 2018).
//!
//! Given a [`Group`] of entities that an upstream system categorized
//! together, DIME finds the entities that do **not** belong:
//!
//! 1. positive rules ([`Rule::positive`]) partition the group (disjunction
//!    + transitivity → connected components);
//! 2. the largest partition becomes the *pivot*, assumed correct;
//! 3. negative rules ([`Rule::negative`]), applied cumulatively, flag
//!    partitions dissimilar to the pivot — the scrollbar of results.
//!
//! Three interchangeable engines are provided:
//!
//! * [`discover_naive`] — Algorithm 1, the `O(n²)` all-pairs baseline;
//! * [`discover_fast`] — Algorithm 2 (DIME⁺), the signature-based
//!   filter–verify engine with benefit-ordered verification and
//!   transitivity short-circuiting. It returns bit-identical results.
//! * [`discover_parallel`] — DIME⁺ with both phases sharded across scoped
//!   worker threads over a lock-free union-find; still bit-identical
//!   (also reachable as the `threads` knob on [`DimePlusConfig`]).
//!
//! ```
//! use dime_core::{discover_fast, GroupBuilder, Predicate, Rule, Schema, SimilarityFn};
//! use dime_text::TokenizerKind;
//!
//! let schema = Schema::new([("Authors", TokenizerKind::List(','))]);
//! let mut b = GroupBuilder::new(schema);
//! b.add_entity(&["ann, bob"]);
//! b.add_entity(&["bob, ann, carol"]);
//! b.add_entity(&["someone else"]);
//! let group = b.build();
//!
//! let positive = vec![Rule::positive(vec![Predicate::new(0, SimilarityFn::Overlap, 2.0)])];
//! let negative = vec![Rule::negative(vec![Predicate::new(0, SimilarityFn::Overlap, 0.0)])];
//! let d = discover_fast(&group, &positive, &negative);
//! assert_eq!(d.mis_categorized().into_iter().collect::<Vec<_>>(), vec![2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod diagnostics;
mod dime_plus;
mod discover;
mod entity;
mod incremental;
mod par;
mod parse;
mod review;
mod rule;
mod signature;
mod stats;

pub use diagnostics::{AttrStats, GroupStats};
pub use dime_plus::{
    discover_fast, discover_fast_traced, discover_fast_with, discover_parallel, DimePlusConfig,
};
pub use discover::{discover_naive, Discovery, ScrollStep, Witness};
pub use entity::{AttrDef, AttrValue, Entity, Group, GroupBuilder, Schema};
pub use incremental::IncrementalDime;
pub use parse::{parse_rule, parse_rules, ParseRuleError};
pub use review::{Decision, ReviewSession};
pub use rule::{Polarity, Predicate, Rule, SimilarityFn};
pub use signature::{PositiveRulePlan, PredSigs, SigContext};
pub use stats::{BucketStats, PartitionStats};
