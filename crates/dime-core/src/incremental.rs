//! Incremental discovery — an extension beyond the paper for groups that
//! grow over time (a Scholar profile gaining publications, a category
//! gaining products).
//!
//! [`IncrementalDime`] maintains the positive-phase state of DIME⁺ across
//! entity insertions: per-rule inverted signature indexes and a union-find
//! over partitions. Adding an entity only probes the indexes with the new
//! entity's signatures, verifies the surviving candidates, and merges —
//! `O(candidates)` instead of re-running the whole batch pipeline.
//!
//! Two ingredients keep signatures of *old* and *new* entities mutually
//! comparable, which the batch pipeline gets for free:
//!
//! * the global token order is **frozen** at construction (any consistent
//!   total order preserves the prefix guarantee; tokens first seen later
//!   rank last, deterministically by id);
//! * ontology signature depths use the ontology's **minimum node depth**
//!   rather than the depths present so far, so a later, shallower value
//!   cannot break Lemma 4.2.
//!
//! Entity **removal** ([`IncrementalDime::remove_entity`]) is scoped to the
//! affected partition: partitions not containing the removed entity keep
//! their merges verbatim (positive links are pairwise properties, so
//! removing a non-member cannot invalidate them), and only the removed
//! entity's partition is re-discovered among its remaining members. Ids
//! compact (every later id shifts down by one) so the group stays dense.
//!
//! The negative phase (pivot selection + partition flagging) is recomputed
//! on [`IncrementalDime::discovery`] — it is partition-level and cheap
//! relative to pair discovery.
//!
//! For an end-to-end walkthrough of streaming discovery see
//! `examples/streaming_profile.rs`; for serving many live groups over this
//! engine concurrently, see the `dime-serve` crate.

use crate::arena::VerifyArena;
use crate::dime_plus::flag_partitions_fast;
use crate::discover::{cumulate_steps, pick_pivot, Discovery, Witness};
use crate::entity::Group;
use crate::rule::Rule;
use crate::signature::{PositiveRulePlan, SigContext};
use dime_index::{InvertedIndex, UnionFind};
use dime_ontology::NodeId;
use dime_text::GlobalOrder;
use dime_trace::{span, NoopSink, RuleKind, TraceSink};
use std::sync::Arc;

/// Incrementally maintained DIME state over a growing group.
///
/// # Examples
///
/// ```
/// use dime_core::{discover_naive, GroupBuilder, IncrementalDime, Predicate, Rule, Schema, SimilarityFn};
/// use dime_text::TokenizerKind;
///
/// let schema = Schema::new([("Authors", TokenizerKind::List(','))]);
/// let group = GroupBuilder::new(schema).build();
/// let pos = vec![Rule::positive(vec![Predicate::new(0, SimilarityFn::Overlap, 2.0)])];
/// let neg = vec![Rule::negative(vec![Predicate::new(0, SimilarityFn::Overlap, 0.0)])];
///
/// let mut inc = IncrementalDime::new(group, pos.clone(), neg.clone());
/// inc.add_entity(&["ann, bob"]);
/// inc.add_entity(&["ann, bob, carol"]);
/// inc.add_entity(&["zed"]);
/// let d = inc.discovery();
/// assert_eq!(d.mis_categorized().into_iter().collect::<Vec<_>>(), vec![2]);
/// // Identical to a from-scratch batch run on the final group.
/// assert_eq!(d, discover_naive(inc.group(), &pos, &neg));
/// ```
pub struct IncrementalDime {
    group: Group,
    positive: Vec<Rule>,
    negative: Vec<Rule>,
    plans: Vec<PositiveRulePlan>,
    order: GlobalOrder,
    uf: UnionFind,
    /// One inverted index per positive rule.
    indexes: Vec<InvertedIndex>,
    /// Per rule: entities whose signatures are wildcards (must be compared
    /// against every entity).
    wildcards: Vec<Vec<u32>>,
    /// Candidate pairs actually verified (positive-rule evaluations) over
    /// the engine's lifetime — the observability counter surfaced by
    /// `dime-serve` session stats.
    pairs_verified: u64,
    /// Trace sink receiving per-operation spans and counters; a no-op
    /// sink by default, replaceable via [`IncrementalDime::with_sink`].
    sink: Arc<dyn TraceSink + Send + Sync>,
}

impl IncrementalDime {
    /// Wraps an existing group (commonly empty) and fixes the rule set.
    ///
    /// The token order is frozen from the group's dictionary *at this
    /// point*; entities present in `group` are indexed immediately.
    ///
    /// # Panics
    ///
    /// Panics when rules are supplied with the wrong polarity.
    pub fn new(group: Group, positive: Vec<Rule>, negative: Vec<Rule>) -> Self {
        crate::discover::check_polarities(&positive, &negative);
        let order = GlobalOrder::from_dictionary(group.dictionary());
        let plans: Vec<PositiveRulePlan> = {
            let ctx = SigContext::with_frozen_order(&group, &order);
            positive.iter().map(|r| ctx.plan_positive_rule(r)).collect()
        };
        let mut this = Self {
            uf: UnionFind::new(0),
            indexes: vec![InvertedIndex::new(); positive.len()],
            wildcards: vec![Vec::new(); positive.len()],
            group,
            positive,
            negative,
            plans,
            order,
            pairs_verified: 0,
            sink: Arc::new(NoopSink),
        };
        for eid in 0..this.group.len() {
            this.uf.push();
            this.integrate(eid);
        }
        this
    }

    /// Replaces the trace sink, so subsequent insertions, removals and
    /// discovery runs report spans and counters into it. The default sink
    /// is a no-op.
    #[must_use]
    pub fn with_sink(mut self, sink: Arc<dyn TraceSink + Send + Sync>) -> Self {
        self.sink = sink;
        self
    }

    /// Rebuilds an engine from persisted state: the base group (commonly
    /// empty — schema, ontologies, rules, no entities) and the surviving
    /// rows in id order, each carrying its attribute values and, when the
    /// entity was added with explicit ontology nodes, those nodes.
    ///
    /// The rebuilt engine's [`IncrementalDime::discovery`] equals the
    /// pre-crash engine's, even though the two froze different token
    /// orders: any add/remove interleaving equals a batch run on the
    /// final rows (the invariant proptested below), so two engines
    /// holding the same final rows agree. This is what `dime-store`'s
    /// crash recovery replays into.
    pub fn reopen(
        group: Group,
        positive: Vec<Rule>,
        negative: Vec<Rule>,
        rows: &[(Vec<String>, Option<Vec<Option<NodeId>>>)],
    ) -> Self {
        let mut this = Self::new(group, positive, negative);
        for (values, nodes) in rows {
            let refs: Vec<&str> = values.iter().map(String::as_str).collect();
            match nodes {
                Some(nodes) => this.add_entity_with_nodes(&refs, nodes),
                None => this.add_entity(&refs),
            };
        }
        this
    }

    /// The current group.
    pub fn group(&self) -> &Group {
        &self.group
    }

    /// Number of entities so far.
    pub fn len(&self) -> usize {
        self.group.len()
    }

    /// Whether no entities have been added yet.
    pub fn is_empty(&self) -> bool {
        self.group.is_empty()
    }

    /// How many candidate pairs the engine has verified (positive-rule
    /// evaluations) since construction, across insertions and removals.
    pub fn pairs_verified(&self) -> u64 {
        self.pairs_verified
    }

    /// The current positive rules, in application order.
    pub fn positive_rules(&self) -> &[Rule] {
        &self.positive
    }

    /// The current negative rules, in scrollbar (generation) order.
    pub fn negative_rules(&self) -> &[Rule] {
        &self.negative
    }

    /// Replaces the rule set **in place**, keeping the group, its
    /// entities, and the frozen token order. This is the live-install
    /// path behind the `rules` protocol op: signature plans are recomputed
    /// for the new positive rules, the per-rule indexes and the
    /// union-find are rebuilt, and every entity is re-integrated in id
    /// order — exactly the loop [`IncrementalDime::new`] runs, so the
    /// post-install state is bit-identical to an engine constructed with
    /// the new rules under the same frozen order. `pairs_verified`
    /// accumulates across the re-integration (installs do real verify
    /// work, and the counter is a lifetime odometer).
    ///
    /// # Panics
    ///
    /// Panics when rules are supplied with the wrong polarity, like
    /// [`IncrementalDime::new`].
    pub fn set_rules(&mut self, positive: Vec<Rule>, negative: Vec<Rule>) {
        crate::discover::check_polarities(&positive, &negative);
        let sink = Arc::clone(&self.sink);
        let _op = span(sink.as_ref(), "incremental_set_rules");
        let before = self.pairs_verified;
        self.plans = {
            let ctx = SigContext::with_frozen_order(&self.group, &self.order);
            positive.iter().map(|r| ctx.plan_positive_rule(r)).collect()
        };
        self.positive = positive;
        self.negative = negative;
        self.indexes = vec![InvertedIndex::new(); self.positive.len()];
        self.wildcards = vec![Vec::new(); self.positive.len()];
        self.uf = UnionFind::new(0);
        for eid in 0..self.group.len() {
            self.uf.push();
            self.integrate(eid);
        }
        if sink.enabled() {
            sink.add("rules_installed", 1);
            sink.add("pairs_verified", self.pairs_verified - before);
        }
    }

    /// Adds an entity (ontology nodes auto-mapped) and links it into the
    /// partition structure. Returns its id.
    pub fn add_entity(&mut self, raw_values: &[&str]) -> usize {
        let sink = Arc::clone(&self.sink);
        let _op = span(sink.as_ref(), "incremental_add");
        let before = self.pairs_verified;
        let id = self.group.push_entity(raw_values);
        let uid = self.uf.push();
        debug_assert_eq!(id, uid);
        self.integrate(id);
        if sink.enabled() {
            sink.add("entities_added", 1);
            sink.add("pairs_verified", self.pairs_verified - before);
        }
        id
    }

    /// Adds an entity with explicit ontology nodes. Returns its id.
    pub fn add_entity_with_nodes(
        &mut self,
        raw_values: &[&str],
        nodes: &[Option<NodeId>],
    ) -> usize {
        let sink = Arc::clone(&self.sink);
        let _op = span(sink.as_ref(), "incremental_add");
        let before = self.pairs_verified;
        let id = self.group.push_entity_with_nodes(raw_values, nodes);
        let uid = self.uf.push();
        debug_assert_eq!(id, uid);
        self.integrate(id);
        if sink.enabled() {
            sink.add("entities_added", 1);
            sink.add("pairs_verified", self.pairs_verified - before);
        }
        id
    }

    /// Adds a batch of entities in one pass, returning their ids in input
    /// order. Bit-identical to calling [`IncrementalDime::add_entity`] on
    /// each row in order: every row is pushed into the group first (token
    /// ids and entity ids are assigned exactly as the sequential path
    /// assigns them), then each row is integrated in id order against the
    /// same frozen token order and rule plans. Signatures depend only on
    /// an entity's own value, the frozen order, and the static ontology
    /// depth floor — never on how many rows arrived in one call — so the
    /// index contents, candidate sets, union-find merges and
    /// `pairs_verified` all come out identical (pinned by the
    /// `prop_batched_add_equals_sequential` differential proptest below).
    ///
    /// This is the amortization point the serve-layer verify pool batches
    /// into: one lock acquisition and one trace envelope per run of
    /// coalesced `add` ops instead of one per row.
    pub fn add_entities(&mut self, rows: &[Vec<String>]) -> Vec<usize> {
        let sink = Arc::clone(&self.sink);
        let mut ids = Vec::with_capacity(rows.len());
        for values in rows {
            let refs: Vec<&str> = values.iter().map(String::as_str).collect();
            let id = self.group.push_entity(&refs);
            let uid = self.uf.push();
            debug_assert_eq!(id, uid);
            ids.push(id);
        }
        for &id in &ids {
            let _op = span(sink.as_ref(), "incremental_add");
            let before = self.pairs_verified;
            self.integrate(id);
            if sink.enabled() {
                sink.add("entities_added", 1);
                sink.add("pairs_verified", self.pairs_verified - before);
            }
        }
        ids
    }

    /// Removes the entity with id `id`, returning `false` (and changing
    /// nothing) for an out-of-range id. Ids compact: every entity with a
    /// larger id shifts down by one, exactly like
    /// [`Group::remove_entity`].
    ///
    /// The rebuild is scoped to the affected partition. Partitions not
    /// containing `id` keep their merges: positive links are pairwise
    /// properties, so removing a non-member cannot invalidate them, and
    /// links never cross partition boundaries. Only the removed entity's
    /// partition is re-discovered among its remaining members (it may
    /// split when the removed entity was the bridge). The per-rule
    /// inverted indexes are re-derived under the *same* frozen token order
    /// and rule plans, so later insertions stay comparable.
    pub fn remove_entity(&mut self, id: usize) -> bool {
        if id >= self.group.len() {
            return false;
        }
        let sink = Arc::clone(&self.sink);
        let _op = span(sink.as_ref(), "incremental_remove");
        let before = self.pairs_verified;
        let components = self.uf.components();
        let affected = components
            .iter()
            .position(|c| c.binary_search(&id).is_ok())
            .expect("every entity sits in exactly one component");
        self.group.remove_entity(id);
        let shift = |e: usize| if e > id { e - 1 } else { e };

        // Surviving components keep their merges verbatim.
        let mut uf = UnionFind::new(self.group.len());
        for (ci, comp) in components.iter().enumerate() {
            if ci == affected {
                continue;
            }
            let first = shift(comp[0]);
            for &m in &comp[1..] {
                uf.union(first, shift(m));
            }
        }

        // Re-discover the affected component among its remaining members:
        // any path between two members ran entirely inside the component,
        // so pairwise evaluation over the members is exhaustive.
        let members: Vec<usize> =
            components[affected].iter().filter(|&&m| m != id).map(|&m| shift(m)).collect();
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                if uf.same(a, b) {
                    continue;
                }
                self.pairs_verified += 1;
                let (ea, eb) = (self.group.entity(a), self.group.entity(b));
                if self.positive.iter().any(|r| r.eval(&self.group, ea, eb)) {
                    uf.union(a, b);
                }
            }
        }
        self.uf = uf;
        self.rebuild_indexes();
        if sink.enabled() {
            sink.add("entities_removed", 1);
            sink.add("pairs_verified", self.pairs_verified - before);
        }
        true
    }

    /// Re-derives the per-rule inverted indexes and wildcard lists for the
    /// current entity set — same frozen order, same plans, so the state is
    /// exactly what integrating the surviving entities in id order would
    /// have produced.
    fn rebuild_indexes(&mut self) {
        self.indexes = vec![InvertedIndex::new(); self.positive.len()];
        self.wildcards = vec![Vec::new(); self.positive.len()];
        for ri in 0..self.positive.len() {
            let rule = self.positive[ri].clone();
            for eid in 0..self.group.len() {
                let sigs = {
                    let mut ctx = SigContext::with_frozen_order(&self.group, &self.order);
                    ctx.entity_positive_signatures(eid, &rule, &self.plans[ri])
                };
                match sigs {
                    None => self.wildcards[ri].push(eid as u32),
                    Some(sigs) => {
                        for s in sigs {
                            self.indexes[ri].insert(s, eid as u32);
                        }
                    }
                }
            }
        }
    }

    /// Probes the per-rule indexes with the new entity's signatures,
    /// verifies surviving candidates, merges, then registers the entity.
    fn integrate(&mut self, eid: usize) {
        for ri in 0..self.positive.len() {
            let rule = self.positive[ri].clone();
            let sigs = {
                let mut ctx = SigContext::with_frozen_order(&self.group, &self.order);
                ctx.entity_positive_signatures(eid, &rule, &self.plans[ri])
            };
            match sigs {
                None => {
                    // Wildcard: verify against every existing entity.
                    for other in 0..eid {
                        Self::try_link(
                            &self.group,
                            &mut self.uf,
                            &mut self.pairs_verified,
                            &rule,
                            eid,
                            other,
                        );
                    }
                    self.wildcards[ri].push(eid as u32);
                }
                Some(sigs) => {
                    // Candidates: entities sharing a signature, plus the
                    // rule's wildcard entities.
                    let mut cands: Vec<u32> = sigs
                        .iter()
                        .filter_map(|s| self.indexes[ri].list(*s))
                        .flatten()
                        .copied()
                        .collect();
                    cands.extend_from_slice(&self.wildcards[ri]);
                    cands.sort_unstable();
                    cands.dedup();
                    for other in cands {
                        Self::try_link(
                            &self.group,
                            &mut self.uf,
                            &mut self.pairs_verified,
                            &rule,
                            eid,
                            other as usize,
                        );
                    }
                    for s in sigs {
                        self.indexes[ri].insert(s, eid as u32);
                    }
                }
            }
        }
    }

    fn try_link(
        group: &Group,
        uf: &mut UnionFind,
        pairs_verified: &mut u64,
        rule: &Rule,
        a: usize,
        b: usize,
    ) {
        if a == b || uf.same(a, b) {
            return;
        }
        *pairs_verified += 1;
        if rule.eval(group, group.entity(a), group.entity(b)) {
            uf.union(a, b);
        }
    }

    /// Computes the current [`Discovery`]: partitions from the maintained
    /// union-find, then the negative phase from scratch.
    ///
    /// # Panics
    ///
    /// Panics on an empty group (no pivot exists).
    pub fn discovery(&mut self) -> Discovery {
        assert!(!self.group.is_empty(), "cannot discover in an empty group");
        let sink = Arc::clone(&self.sink);
        let union_span = span(sink.as_ref(), "union");
        let partitions = self.uf.components();
        let pivot = pick_pivot(&partitions);
        drop(union_span);
        let mut ctx = SigContext::with_frozen_order(&self.group, &self.order);
        let arena = VerifyArena::new(&self.group);
        let mut per_rule: Vec<Vec<bool>> = Vec::with_capacity(self.negative.len());
        let mut witnesses: Vec<Witness> = Vec::new();
        for (ri, rule) in self.negative.iter().enumerate() {
            let flag_span = span(sink.as_ref(), "flag");
            let (flags, rule_witnesses) = flag_partitions_fast(
                &self.group,
                &arena,
                &mut ctx,
                rule,
                &partitions,
                pivot,
                sink.as_ref(),
            );
            drop(flag_span);
            if sink.enabled() {
                sink.rule_hits(RuleKind::Negative, ri, flags.iter().filter(|&&f| f).count() as u64);
            }
            for w in rule_witnesses {
                if !witnesses.iter().any(|x| x.partition == w.partition) {
                    witnesses.push(Witness { rule: ri, ..w });
                }
            }
            per_rule.push(flags);
        }
        let steps = cumulate_steps(&partitions, &per_rule);
        Discovery { partitions, pivot, steps, witnesses }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discover::discover_naive;
    use crate::entity::{GroupBuilder, Schema};
    use crate::rule::{Predicate, SimilarityFn};
    use dime_text::TokenizerKind;
    use proptest::prelude::*;

    fn schema() -> Schema {
        Schema::new([("Title", TokenizerKind::Words), ("Authors", TokenizerKind::List(','))])
    }

    fn rules() -> (Vec<Rule>, Vec<Rule>) {
        (
            vec![
                Rule::positive(vec![Predicate::new(1, SimilarityFn::Overlap, 2.0)]),
                Rule::positive(vec![
                    Predicate::new(1, SimilarityFn::Overlap, 1.0),
                    Predicate::new(0, SimilarityFn::Jaccard, 0.5),
                ]),
            ],
            vec![Rule::negative(vec![Predicate::new(1, SimilarityFn::Overlap, 0.0)])],
        )
    }

    /// The recovery contract: an engine rebuilt from the surviving rows
    /// (what `dime-store` replays after a crash) reports the same
    /// discovery as the engine that lived through the operations —
    /// despite the two freezing different token orders.
    #[test]
    fn reopen_from_rows_matches_the_original_engine() {
        let (pos, neg) = rules();
        let mut live =
            IncrementalDime::new(GroupBuilder::new(schema()).build(), pos.clone(), neg.clone());
        let mut rows: Vec<(Vec<String>, Option<Vec<Option<NodeId>>>)> = Vec::new();
        let script = [
            ("entity matching", "ann, bob"),
            ("entity matching redux", "ann, bob, carol"),
            ("organic synthesis", "dora"),
            ("entity matching again", "bob, carol"),
        ];
        for (t, a) in script {
            live.add_entity(&[t, a]);
            rows.push((vec![t.to_string(), a.to_string()], None));
        }
        live.remove_entity(1);
        rows.remove(1);

        let mut reopened =
            IncrementalDime::reopen(GroupBuilder::new(schema()).build(), pos, neg, &rows);
        assert_eq!(live.discovery(), reopened.discovery());
    }

    #[test]
    fn matches_batch_on_simple_sequence() {
        let (pos, neg) = rules();
        let mut inc =
            IncrementalDime::new(GroupBuilder::new(schema()).build(), pos.clone(), neg.clone());
        let rows = [
            ("entity matching rules", "ann, bob"),
            ("entity matching systems", "ann, bob, carol"),
            ("organic synthesis", "zed"),
            ("entity matching deep dive", "bob, carol"),
        ];
        for (t, a) in rows {
            inc.add_entity(&[t, a]);
        }
        let d = inc.discovery();
        assert_eq!(d, discover_naive(inc.group(), &pos, &neg));
        assert_eq!(d.mis_categorized().into_iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn starts_from_a_non_empty_group() {
        let (pos, neg) = rules();
        let mut b = GroupBuilder::new(schema());
        b.add_entity(&["a title", "ann, bob"]);
        b.add_entity(&["b title", "ann, bob"]);
        let mut inc = IncrementalDime::new(b.build(), pos.clone(), neg.clone());
        inc.add_entity(&["c title", "nobody here"]);
        let d = inc.discovery();
        assert_eq!(d, discover_naive(inc.group(), &pos, &neg));
    }

    #[test]
    #[should_panic(expected = "empty group")]
    fn empty_discovery_panics() {
        let (pos, neg) = rules();
        let mut inc = IncrementalDime::new(GroupBuilder::new(schema()).build(), pos, neg);
        let _ = inc.discovery();
    }

    /// Rebuilds the equivalent batch group from surviving rows, in id
    /// order — the reference against which removal is checked.
    fn batch_group(rows: &[(String, String)]) -> Group {
        let mut b = GroupBuilder::new(schema());
        for (t, a) in rows {
            b.add_entity(&[t.as_str(), a.as_str()]);
        }
        b.build()
    }

    #[test]
    fn remove_splits_a_bridged_partition() {
        let (pos, neg) = rules();
        let mut inc =
            IncrementalDime::new(GroupBuilder::new(schema()).build(), pos.clone(), neg.clone());
        // 0 and 2 only connect through bridge entity 1.
        inc.add_entity(&["t", "ann, bob"]);
        inc.add_entity(&["t", "ann, bob, carol, dan"]);
        inc.add_entity(&["t", "carol, dan"]);
        inc.add_entity(&["t", "zed, yan"]);
        assert_eq!(inc.discovery().partitions.len(), 2);
        assert!(inc.remove_entity(1));
        // Bridge gone: {old 0} and {old 2 → new 1} split apart.
        let d = inc.discovery();
        assert_eq!(d.partitions.len(), 3);
        let rows = vec![
            ("t".to_string(), "ann, bob".to_string()),
            ("t".to_string(), "carol, dan".to_string()),
            ("t".to_string(), "zed, yan".to_string()),
        ];
        assert_eq!(d, discover_naive(&batch_group(&rows), &pos, &neg));
    }

    #[test]
    fn remove_out_of_range_is_a_noop() {
        let (pos, neg) = rules();
        let mut inc = IncrementalDime::new(GroupBuilder::new(schema()).build(), pos, neg);
        inc.add_entity(&["t", "ann"]);
        assert!(!inc.remove_entity(1));
        assert!(!inc.remove_entity(99));
        assert_eq!(inc.len(), 1);
        assert!(inc.remove_entity(0));
        assert!(inc.is_empty());
    }

    #[test]
    fn add_after_remove_reuses_compacted_ids() {
        let (pos, neg) = rules();
        let mut inc =
            IncrementalDime::new(GroupBuilder::new(schema()).build(), pos.clone(), neg.clone());
        inc.add_entity(&["a", "ann, bob"]);
        inc.add_entity(&["b", "ann, bob"]);
        inc.add_entity(&["c", "zed"]);
        assert!(inc.remove_entity(0));
        let id = inc.add_entity(&["d", "ann, bob"]);
        assert_eq!(id, 2, "ids stay dense after a removal");
        let rows = vec![
            ("b".to_string(), "ann, bob".to_string()),
            ("c".to_string(), "zed".to_string()),
            ("d".to_string(), "ann, bob".to_string()),
        ];
        assert_eq!(inc.discovery(), discover_naive(&batch_group(&rows), &pos, &neg));
    }

    #[test]
    fn pairs_verified_counts_work() {
        let (pos, neg) = rules();
        let mut inc = IncrementalDime::new(GroupBuilder::new(schema()).build(), pos, neg);
        inc.add_entity(&["a", "ann, bob"]);
        assert_eq!(inc.pairs_verified(), 0, "first entity has nothing to verify against");
        inc.add_entity(&["b", "ann, bob"]);
        assert!(inc.pairs_verified() > 0);
    }

    #[test]
    fn trace_sink_sees_incremental_operations() {
        use dime_trace::Recorder;
        let (pos, neg) = rules();
        let rec = Arc::new(Recorder::new());
        let mut inc = IncrementalDime::new(GroupBuilder::new(schema()).build(), pos, neg)
            .with_sink(rec.clone());
        inc.add_entity(&["a", "ann, bob"]);
        inc.add_entity(&["b", "ann, bob"]);
        inc.add_entity(&["c", "zed"]);
        assert!(inc.remove_entity(2));
        let _ = inc.discovery();
        let report = rec.snapshot();
        assert_eq!(report.counter("entities_added"), 3);
        assert_eq!(report.counter("entities_removed"), 1);
        assert_eq!(report.counter("pairs_verified"), inc.pairs_verified());
        for phase in ["incremental_add", "incremental_remove", "union", "flag"] {
            assert!(
                report.phases.iter().any(|p| p.name == phase && p.count > 0),
                "missing phase {phase}"
            );
        }
        assert!(report.rule_hits.iter().any(|r| r.kind == dime_trace::RuleKind::Negative));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// The removal invariant: after any interleaving of insertions and
        /// removals, the result equals a from-scratch batch run on the
        /// final group.
        #[test]
        fn prop_add_remove_interleaving_equals_batch(
            ops in proptest::collection::vec(
                (proptest::bool::ANY, proptest::collection::vec(0u32..10, 0..5), 0usize..16),
                1..16,
            ),
        ) {
            let (pos, neg) = rules();
            let mut inc =
                IncrementalDime::new(GroupBuilder::new(schema()).build(), pos.clone(), neg.clone());
            let mut rows: Vec<(String, String)> = Vec::new();
            for (i, (is_remove, list, pick)) in ops.iter().enumerate() {
                if *is_remove && !rows.is_empty() {
                    let id = pick % rows.len();
                    prop_assert!(inc.remove_entity(id));
                    rows.remove(id);
                } else {
                    let joined: Vec<String> = list.iter().map(|x| format!("a{x}")).collect();
                    let title = format!("t{}", i % 3);
                    let authors = joined.join(", ");
                    inc.add_entity(&[title.as_str(), authors.as_str()]);
                    rows.push((title, authors));
                }
            }
            prop_assert_eq!(inc.len(), rows.len());
            if !rows.is_empty() {
                let d = inc.discovery();
                prop_assert_eq!(d, discover_naive(&batch_group(&rows), &pos, &neg));
            }
        }
    }

    #[test]
    fn set_rules_matches_an_engine_born_with_them() {
        let (pos, neg) = rules();
        // Start with deliberately weak rules, then install the real ones.
        let weak_pos = vec![Rule::positive(vec![Predicate::new(1, SimilarityFn::Overlap, 5.0)])];
        let weak_neg = vec![Rule::negative(vec![Predicate::new(1, SimilarityFn::Overlap, 0.0)])];
        let mut inc = IncrementalDime::new(GroupBuilder::new(schema()).build(), weak_pos, weak_neg);
        let script = [
            ("entity matching", "ann, bob"),
            ("entity matching redux", "ann, bob, carol"),
            ("organic synthesis", "dora"),
            ("entity matching again", "bob, carol"),
        ];
        for (t, a) in script {
            inc.add_entity(&[t, a]);
        }
        inc.remove_entity(2);
        inc.set_rules(pos.clone(), neg.clone());
        assert_eq!(inc.positive_rules(), &pos[..]);
        assert_eq!(inc.negative_rules(), &neg[..]);
        let d = inc.discovery();
        assert_eq!(d, discover_naive(inc.group(), &pos, &neg));
    }

    #[test]
    fn set_rules_keeps_later_insertions_comparable() {
        let (pos, neg) = rules();
        let mut inc =
            IncrementalDime::new(GroupBuilder::new(schema()).build(), pos.clone(), neg.clone());
        inc.add_entity(&["entity matching", "ann, bob"]);
        // Swap to the same rules (a no-op install), then keep streaming:
        // the frozen order must still accept new tokens deterministically.
        inc.set_rules(pos.clone(), neg.clone());
        inc.add_entity(&["entity matching redux", "ann, bob, carol"]);
        inc.add_entity(&["organic synthesis", "unseen tokens here"]);
        let d = inc.discovery();
        assert_eq!(d, discover_naive(inc.group(), &pos, &neg));
        assert_eq!(d.mis_categorized().into_iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn set_rules_accumulates_pairs_verified() {
        let (pos, neg) = rules();
        let mut inc =
            IncrementalDime::new(GroupBuilder::new(schema()).build(), pos.clone(), neg.clone());
        inc.add_entity(&["a", "ann, bob"]);
        inc.add_entity(&["b", "ann, bob"]);
        let before = inc.pairs_verified();
        assert!(before > 0);
        inc.set_rules(pos, neg);
        assert!(inc.pairs_verified() >= before, "the odometer never rewinds");
    }

    #[test]
    #[should_panic(expected = "negative rule")]
    fn set_rules_rejects_mispolarized_rules() {
        let (pos, neg) = rules();
        let mut inc =
            IncrementalDime::new(GroupBuilder::new(schema()).build(), pos.clone(), neg.clone());
        inc.set_rules(neg, pos);
    }

    #[test]
    fn batched_add_returns_dense_ids_and_matches_sequential() {
        let (pos, neg) = rules();
        let mut batched =
            IncrementalDime::new(GroupBuilder::new(schema()).build(), pos.clone(), neg.clone());
        let mut sequential = IncrementalDime::new(GroupBuilder::new(schema()).build(), pos, neg);
        let rows: Vec<Vec<String>> = [
            ("entity matching", "ann, bob"),
            ("entity matching redux", "ann, bob, carol"),
            ("organic synthesis", "dora"),
        ]
        .iter()
        .map(|(t, a)| vec![t.to_string(), a.to_string()])
        .collect();
        let ids = batched.add_entities(&rows);
        assert_eq!(ids, vec![0, 1, 2]);
        for row in &rows {
            let refs: Vec<&str> = row.iter().map(String::as_str).collect();
            sequential.add_entity(&refs);
        }
        assert_eq!(batched.pairs_verified(), sequential.pairs_verified());
        assert_eq!(batched.discovery(), sequential.discovery());
    }

    #[test]
    fn batched_add_reports_per_row_trace_spans() {
        use dime_trace::Recorder;
        let (pos, neg) = rules();
        let rec = Arc::new(Recorder::new());
        let mut inc = IncrementalDime::new(GroupBuilder::new(schema()).build(), pos, neg)
            .with_sink(rec.clone());
        inc.add_entities(&[
            vec!["a".to_string(), "ann, bob".to_string()],
            vec!["b".to_string(), "ann, bob".to_string()],
        ]);
        let report = rec.snapshot();
        assert_eq!(report.counter("entities_added"), 2);
        assert_eq!(report.counter("pairs_verified"), inc.pairs_verified());
        let adds = report.phases.iter().find(|p| p.name == "incremental_add").unwrap();
        assert_eq!(adds.count, 2, "one incremental_add span per batched row");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// The batching invariant the serve-layer verify pool relies on:
        /// any split of an add/remove script into batched-add runs yields
        /// state bit-identical to applying the same script one row at a
        /// time — same `pairs_verified`, same `discovery()`.
        #[test]
        fn prop_batched_add_equals_sequential(
            ops in proptest::collection::vec(
                (proptest::bool::ANY, proptest::collection::vec(0u32..10, 0..5), 0usize..16),
                1..16,
            ),
            splits in proptest::collection::vec(1usize..4, 1..16),
        ) {
            let (pos, neg) = rules();
            let mut batched =
                IncrementalDime::new(GroupBuilder::new(schema()).build(), pos.clone(), neg.clone());
            let mut sequential =
                IncrementalDime::new(GroupBuilder::new(schema()).build(), pos, neg);
            let mut live = 0usize;
            let mut pending: Vec<Vec<String>> = Vec::new();
            let flush = |batched: &mut IncrementalDime,
                             sequential: &mut IncrementalDime,
                             pending: &mut Vec<Vec<String>>| {
                let ids = batched.add_entities(pending);
                let mut seq_ids = Vec::new();
                for row in pending.iter() {
                    let refs: Vec<&str> = row.iter().map(String::as_str).collect();
                    seq_ids.push(sequential.add_entity(&refs));
                }
                pending.clear();
                (ids, seq_ids)
            };
            for (i, (is_remove, list, pick)) in ops.iter().enumerate() {
                if *is_remove && live > 0 {
                    // Removals interleave with batches: flush first, so the
                    // batched engine sees the same row set.
                    let (ids, seq_ids) = flush(&mut batched, &mut sequential, &mut pending);
                    prop_assert_eq!(ids, seq_ids);
                    let id = pick % live;
                    prop_assert!(batched.remove_entity(id));
                    prop_assert!(sequential.remove_entity(id));
                    live -= 1;
                } else {
                    let joined: Vec<String> = list.iter().map(|x| format!("a{x}")).collect();
                    pending.push(vec![format!("t{}", i % 3), joined.join(", ")]);
                    live += 1;
                    let batch_max = splits[i % splits.len()];
                    if pending.len() >= batch_max {
                        let (ids, seq_ids) = flush(&mut batched, &mut sequential, &mut pending);
                        prop_assert_eq!(ids, seq_ids);
                    }
                }
            }
            let (ids, seq_ids) = flush(&mut batched, &mut sequential, &mut pending);
            prop_assert_eq!(ids, seq_ids);
            prop_assert_eq!(batched.pairs_verified(), sequential.pairs_verified());
            prop_assert_eq!(batched.len(), sequential.len());
            if !batched.is_empty() {
                prop_assert_eq!(batched.discovery(), sequential.discovery());
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// The central incremental invariant: after any insertion sequence,
        /// the result equals a from-scratch batch run on the final group.
        #[test]
        fn prop_incremental_equals_batch(
            lists in proptest::collection::vec(proptest::collection::vec(0u32..10, 0..5), 1..12),
            titles in proptest::collection::vec("[a-c ]{0,10}", 12),
        ) {
            let (pos, neg) = rules();
            let mut inc =
                IncrementalDime::new(GroupBuilder::new(schema()).build(), pos.clone(), neg.clone());
            for (l, t) in lists.iter().zip(&titles) {
                let joined: Vec<String> = l.iter().map(|x| format!("a{x}")).collect();
                inc.add_entity(&[t.as_str(), joined.join(", ").as_str()]);
            }
            let d = inc.discovery();
            prop_assert_eq!(d, discover_naive(inc.group(), &pos, &neg));
        }
    }
}
