//! DIME⁺ — the signature-based fast algorithm (paper Section IV,
//! Algorithm 2).
//!
//! Both phases are filter–verify:
//!
//! * **Positive phase.** Per positive rule, every entity emits composite
//!   signatures ([`crate::signature`]); an inverted index turns shared
//!   signatures into candidate pairs. Candidates are verified in *benefit*
//!   order `B = P/C` (similarity probability over verification cost), and
//!   pairs already connected through transitivity are skipped via
//!   union-find — the paper's footnote-4 constant-time check.
//! * **Negative phase.** Per negative rule, partitions aggregate their
//!   members' per-predicate signature sets. A partition whose sets are
//!   disjoint from the pivot's on **every** predicate is flagged without
//!   any verification; otherwise cross-partition pairs are verified
//!   most-likely-dissimilar first (the paper's `B = 1/(C·P)` benefit
//!   order, realized as an `O(n log n)` entity-level ordering by shared
//!   signature mass), stopping at the first satisfied pair.

use crate::arena::{CompiledRule, VerifyArena};
use crate::discover::{
    check_polarities, cumulate_steps, pick_pivot, Discovery, ScrollStep, Witness,
};
use crate::entity::Group;
use crate::par::{par_map, par_shards, resolve_threads};
use crate::rule::Rule;
use crate::signature::{PredSigs, SigContext};
use dime_index::{ConcurrentUnionFind, InvertedIndex, UnionFind};
use dime_trace::{span, RuleKind, TraceSink, NOOP};
use std::collections::HashSet;

/// Tuning knobs for DIME⁺ (all defaults match the paper's design).
#[derive(Debug, Clone, Copy)]
pub struct DimePlusConfig {
    /// Verify positive candidates in benefit order (`true`) or in arbitrary
    /// index order (`false`). Exposed for the ablation benchmarks.
    pub benefit_order: bool,
    /// Skip candidate pairs already connected via union-find (`true`).
    /// Exposed for the ablation benchmarks.
    pub transitivity_skip: bool,
    /// Worker threads for the filter–verify phases: `1` (the default) runs
    /// the sequential engine over [`UnionFind`]; `> 1` shards signature
    /// generation, candidate gathering, verification, and partition
    /// flagging across scoped threads over a [`ConcurrentUnionFind`];
    /// `0` means one worker per available core. Every setting produces the
    /// identical [`Discovery`].
    pub threads: usize,
}

impl Default for DimePlusConfig {
    fn default() -> Self {
        Self { benefit_order: true, transitivity_skip: true, threads: 1 }
    }
}

impl DimePlusConfig {
    /// The default configuration with an explicit worker count (`0` = one
    /// worker per available core).
    pub fn with_threads(threads: usize) -> Self {
        Self { threads, ..Self::default() }
    }
}

/// Runs DIME⁺ with default configuration.
///
/// Produces exactly the same [`Discovery`] as [`crate::discover_naive`] —
/// the signature filter admits no false dismissals and verification is
/// exact — only faster.
///
/// # Examples
///
/// ```
/// use dime_core::{discover_fast, discover_naive, GroupBuilder, Predicate, Rule, Schema, SimilarityFn};
/// use dime_text::TokenizerKind;
///
/// let schema = Schema::new([("Authors", TokenizerKind::List(','))]);
/// let mut b = GroupBuilder::new(schema);
/// b.add_entity(&["ann, bob"]);
/// b.add_entity(&["ann, bob, carol"]);
/// b.add_entity(&["zed"]);
/// let group = b.build();
/// let pos = vec![Rule::positive(vec![Predicate::new(0, SimilarityFn::Overlap, 2.0)])];
/// let neg = vec![Rule::negative(vec![Predicate::new(0, SimilarityFn::Overlap, 0.0)])];
/// assert_eq!(discover_fast(&group, &pos, &neg), discover_naive(&group, &pos, &neg));
/// ```
pub fn discover_fast(group: &Group, positive: &[Rule], negative: &[Rule]) -> Discovery {
    discover_fast_with(group, positive, negative, DimePlusConfig::default())
}

/// Runs DIME⁺ with the filter–verify phases fanned out over `threads`
/// scoped workers (`0` = one worker per available core, `1` = the
/// sequential engine).
///
/// Produces the identical [`Discovery`] as [`discover_fast`] and
/// [`crate::discover_naive`] for every thread count: the final partition
/// is the connected closure of the rule-satisfying pairs, which is
/// independent of verification order, and the negative phase flags each
/// partition independently.
///
/// # Examples
///
/// ```
/// use dime_core::{discover_fast, discover_parallel, GroupBuilder, Predicate, Rule, Schema, SimilarityFn};
/// use dime_text::TokenizerKind;
///
/// let schema = Schema::new([("Authors", TokenizerKind::List(','))]);
/// let mut b = GroupBuilder::new(schema);
/// b.add_entity(&["ann, bob"]);
/// b.add_entity(&["ann, bob, carol"]);
/// b.add_entity(&["zed"]);
/// let group = b.build();
/// let pos = vec![Rule::positive(vec![Predicate::new(0, SimilarityFn::Overlap, 2.0)])];
/// let neg = vec![Rule::negative(vec![Predicate::new(0, SimilarityFn::Overlap, 0.0)])];
/// assert_eq!(discover_parallel(&group, &pos, &neg, 4), discover_fast(&group, &pos, &neg));
/// ```
pub fn discover_parallel(
    group: &Group,
    positive: &[Rule],
    negative: &[Rule],
    threads: usize,
) -> Discovery {
    discover_fast_with(group, positive, negative, DimePlusConfig::with_threads(threads))
}

/// Runs DIME⁺ with an explicit [`DimePlusConfig`].
pub fn discover_fast_with(
    group: &Group,
    positive: &[Rule],
    negative: &[Rule],
    config: DimePlusConfig,
) -> Discovery {
    discover_fast_traced(group, positive, negative, config, &NOOP)
}

/// Runs DIME⁺ exactly like [`discover_fast_with`] while reporting phase
/// spans (`signature_build`, `index_probe`, `verify`, `union`, `flag`),
/// counters, and per-rule hit counts to `sink`.
///
/// The five phase names tile the run: they never nest, so their summed
/// durations account for the whole wall-clock up to the (trivial)
/// book-keeping between phases. Tracing never changes the result — hot
/// loops accumulate plain local counters and flush once per phase, and a
/// disabled sink ([`dime_trace::NoopSink`]) skips even the clock reads.
pub fn discover_fast_traced(
    group: &Group,
    positive: &[Rule],
    negative: &[Rule],
    config: DimePlusConfig,
    sink: &dyn TraceSink,
) -> Discovery {
    check_polarities(positive, negative);
    let n = group.len();
    assert!(n > 0, "cannot discover in an empty group");
    let workers = resolve_threads(config.threads);
    if workers > 1 {
        return discover_parallel_impl(group, positive, negative, config, workers, sink);
    }
    let (mut ctx, arena) = {
        let _s = span(sink, "signature_build");
        (SigContext::new(group), VerifyArena::new(group))
    };

    // ---- Step 1: partitions via signature filter + ordered verification.
    let mut uf = UnionFind::new(n);
    for (ri, rule) in positive.iter().enumerate() {
        verify_positive_rule(group, &arena, &mut ctx, rule, &mut uf, config, sink, ri);
    }
    // ---- Step 2: components + pivot partition.
    let (partitions, pivot) = {
        let _s = span(sink, "union");
        let partitions = uf.components();
        let pivot = pick_pivot(&partitions);
        (partitions, pivot)
    };

    // ---- Step 3: negative rules over partitions.
    let mut per_rule: Vec<Vec<bool>> = Vec::with_capacity(negative.len());
    let mut witnesses: Vec<Witness> = Vec::new();
    for (ri, rule) in negative.iter().enumerate() {
        let (flags, rule_witnesses) = {
            let _s = span(sink, "flag");
            flag_partitions_fast(group, &arena, &mut ctx, rule, &partitions, pivot, sink)
        };
        if sink.enabled() {
            sink.rule_hits(RuleKind::Negative, ri, flags.iter().filter(|&&f| f).count() as u64);
        }
        for w in rule_witnesses {
            if !witnesses.iter().any(|x| x.partition == w.partition) {
                witnesses.push(Witness { rule: ri, ..w });
            }
        }
        per_rule.push(flags);
    }
    let steps: Vec<ScrollStep> = cumulate_steps(&partitions, &per_rule);
    Discovery { partitions, pivot, steps, witnesses }
}

/// The multi-threaded engine body: same three steps as the sequential
/// path, with each phase sharded across `workers` scoped threads and the
/// satisfied pairs merged through a lock-free [`ConcurrentUnionFind`].
fn discover_parallel_impl(
    group: &Group,
    positive: &[Rule],
    negative: &[Rule],
    config: DimePlusConfig,
    workers: usize,
    sink: &dyn TraceSink,
) -> Discovery {
    let n = group.len();
    let (mut ctx, arena) = {
        let _s = span(sink, "signature_build");
        (SigContext::new(group), VerifyArena::new(group))
    };

    // ---- Step 1: partitions via sharded filter + verification.
    let uf = ConcurrentUnionFind::new(n);
    for (ri, rule) in positive.iter().enumerate() {
        verify_positive_rule_parallel(
            group, &arena, &mut ctx, rule, &uf, config, workers, sink, ri,
        );
    }
    // ---- Step 2: components + pivot partition.
    let (partitions, pivot) = {
        let _s = span(sink, "union");
        let partitions = uf.components();
        let pivot = pick_pivot(&partitions);
        (partitions, pivot)
    };
    if sink.enabled() {
        sink.add("uf_merges", uf.merge_count());
    }

    // ---- Step 3: negative rules, each partition scanned independently.
    let mut per_rule: Vec<Vec<bool>> = Vec::with_capacity(negative.len());
    let mut witnesses: Vec<Witness> = Vec::new();
    for (ri, rule) in negative.iter().enumerate() {
        let (flags, rule_witnesses) = {
            let _s = span(sink, "flag");
            flag_partitions_parallel(&arena, &mut ctx, rule, &partitions, pivot, workers, sink)
        };
        if sink.enabled() {
            sink.rule_hits(RuleKind::Negative, ri, flags.iter().filter(|&&f| f).count() as u64);
        }
        for w in rule_witnesses {
            if !witnesses.iter().any(|x| x.partition == w.partition) {
                witnesses.push(Witness { rule: ri, ..w });
            }
        }
        per_rule.push(flags);
    }
    let steps: Vec<ScrollStep> = cumulate_steps(&partitions, &per_rule);
    Discovery { partitions, pivot, steps, witnesses }
}

/// Parallel filter + verification for one positive rule.
///
/// Candidate generation is sharded per signature bucket and verification
/// is striped across workers in (approximate) benefit order. The result is
/// order-independent: a pair's verification outcome never depends on
/// union-find state, and a pair skipped by the transitivity check is
/// already connected, so the final components are the connected closure of
/// the satisfying candidate pairs under any interleaving.
#[allow(clippy::too_many_arguments)] // internal engine body; `ri` and `sink` ride along
fn verify_positive_rule_parallel(
    group: &Group,
    arena: &VerifyArena,
    ctx: &mut SigContext<'_>,
    rule: &Rule,
    uf: &ConcurrentUnionFind,
    config: DimePlusConfig,
    workers: usize,
    sink: &dyn TraceSink,
    ri: usize,
) {
    let n = group.len();
    let mut index = InvertedIndex::new();
    let mut wildcards: Vec<u32> = Vec::new();
    let mut sig_count = vec![0usize; n];
    {
        let _s = span(sink, "signature_build");
        for (eid, sigs) in
            ctx.positive_rule_signatures_threaded(rule, workers).into_iter().enumerate()
        {
            match sigs {
                None => wildcards.push(eid as u32),
                Some(sigs) => {
                    sig_count[eid] = sigs.len();
                    for s in sigs {
                        index.insert(s, eid as u32);
                    }
                }
            }
        }
    }
    if sink.enabled() {
        sink.add("signatures_built", index.posting_count() as u64);
        sink.add("wildcard_entities", wildcards.len() as u64);
    }

    let probe = span(sink, "index_probe");
    // Sharded candidate gathering: each worker walks its residue class of
    // signature buckets (and of wildcard entities) and emits packed pairs,
    // pre-filtered against components built by *earlier* rules — no unions
    // happen while gathering, so the candidate set is deterministic.
    let buckets: Vec<&[u32]> = index.lists().collect();
    let shards = if n < crate::par::SEQ_CUTOFF { 1 } else { workers };
    let mut packed: Vec<u64> = par_shards(shards, |shard| {
        let mut out: Vec<u64> = Vec::new();
        for bucket in buckets.iter().skip(shard).step_by(shards) {
            let mut uniq = bucket.to_vec();
            uniq.sort_unstable();
            uniq.dedup();
            for i in 0..uniq.len() {
                for j in i + 1..uniq.len() {
                    let (a, b) = order_pair(uniq[i], uniq[j]);
                    if config.transitivity_skip && uf.same(a as usize, b as usize) {
                        continue;
                    }
                    out.push((u64::from(a) << 32) | u64::from(b));
                }
            }
        }
        for w in wildcards.iter().skip(shard).step_by(shards) {
            for other in 0..n as u32 {
                if other == *w {
                    continue;
                }
                if config.transitivity_skip && uf.same(*w as usize, other as usize) {
                    continue;
                }
                let (a, b) = order_pair(*w, other);
                out.push((u64::from(a) << 32) | u64::from(b));
            }
        }
        out
    });

    packed.sort_unstable();
    let mut candidates: Vec<(u32, u32, u32)> = Vec::new();
    let mut k = 0usize;
    while k < packed.len() {
        let key = packed[k];
        let mut count = 1u32;
        while k + (count as usize) < packed.len() && (packed[k + count as usize] == key) {
            count += 1;
        }
        candidates.push(((key >> 32) as u32, key as u32, count));
        k += count as usize;
    }

    let ordered: Vec<(u32, u32)> = if config.benefit_order {
        let mut keyed: Vec<(f64, u32, u32)> = par_map(candidates.len(), workers, |i| {
            let (a, b, c) = candidates[i];
            let avg = (sig_count[a as usize] + sig_count[b as usize]).max(1) as f64 / 2.0;
            let prob = c as f64 / avg;
            let cost = arena.rule_cost(rule, a as usize, b as usize).max(1e-9);
            (prob / cost, a, b)
        });
        keyed.sort_by(|x, y| y.0.total_cmp(&x.0).then_with(|| (x.1, x.2).cmp(&(y.1, y.2))));
        keyed.into_iter().map(|(_, a, b)| (a, b)).collect()
    } else {
        // `candidates` is already sorted by (a, b) via the packed sort.
        candidates.iter().map(|&(a, b, _)| (a, b)).collect()
    };
    drop(probe);
    if sink.enabled() {
        let total_pairs = (n as u64) * (n as u64 - 1) / 2;
        sink.add("candidate_pairs", ordered.len() as u64);
        sink.add("pairs_pruned_filter", total_pairs.saturating_sub(ordered.len() as u64));
        // Sharded gathering scans each inverted list exactly once instead
        // of point-probing, so each bucket counts as one probe.
        sink.add("index_probes", index.probe_count() + buckets.len() as u64);
    }

    // Striped verification: worker `t` takes pairs t, t+workers, … so all
    // workers advance through the benefit ranking together. Unions land in
    // the shared concurrent union-find as they are found. Each stripe
    // returns its local tally (and its own worker span, so traces show the
    // interleaving across thread ids).
    let verify = span(sink, "verify");
    let compiled = arena.compile(rule);
    let stripes = if ordered.len() < crate::par::SEQ_CUTOFF { 1 } else { workers };
    let tallies: Vec<VerifyTally> = par_shards(stripes, |shard| {
        let _w = span(sink, "verify_worker");
        let mut tally = VerifyTally::default();
        for &(a, b) in ordered.iter().skip(shard).step_by(stripes) {
            if config.transitivity_skip && uf.same(a as usize, b as usize) {
                tally.skipped += 1;
                continue;
            }
            tally.verified += 1;
            if arena.eval_compiled(&compiled, a as usize, b as usize) {
                tally.hits += 1;
                uf.union(a as usize, b as usize);
            }
        }
        vec![tally]
    });
    drop(verify);
    if sink.enabled() {
        let total = tallies.iter().fold(VerifyTally::default(), VerifyTally::fold);
        sink.add("pairs_verified", total.verified);
        sink.add("pairs_skipped_transitivity", total.skipped);
        sink.rule_hits(RuleKind::Positive, ri, total.hits);
    }
}

/// Parallel negative phase for one rule: partitions are flagged against
/// the pivot concurrently — each partition's signature aggregation and
/// scan is independent — and results are collected in partition order, so
/// flags (and thus `cumulate_steps`) match the sequential engine exactly.
fn flag_partitions_parallel(
    arena: &VerifyArena,
    ctx: &mut SigContext<'_>,
    rule: &Rule,
    partitions: &[Vec<usize>],
    pivot: usize,
    workers: usize,
    sink: &dyn TraceSink,
) -> (Vec<bool>, Vec<Witness>) {
    let m = rule.predicates.len();
    let ent_sigs: Vec<Vec<PredSigs>> = ctx.rule_sigs_negative_all(rule, workers);

    let aggregate = |members: &[usize]| -> (Vec<HashSet<u64>>, Vec<bool>) {
        let mut sets: Vec<HashSet<u64>> = vec![HashSet::new(); m];
        let mut wild = vec![false; m];
        for &e in members {
            for (pi, ps) in ent_sigs[e].iter().enumerate() {
                match ps {
                    PredSigs::Sigs(s) => sets[pi].extend(s.iter().copied()),
                    _ => wild[pi] = true,
                }
            }
        }
        (sets, wild)
    };

    let (pivot_sets, pivot_wild) = aggregate(&partitions[pivot]);
    let score = |sigs: &[PredSigs], other: &[HashSet<u64>]| -> usize {
        sigs.iter()
            .zip(other)
            .map(|(ps, set)| match ps {
                PredSigs::Sigs(s) => s.iter().filter(|v| set.contains(v)).count(),
                _ => set.len(), // wildcard: assume maximally similar
            })
            .sum()
    };

    // Per-partition result plus local counters: (flag, witness,
    // evaluations performed, flagged-by-filter-alone).
    let compiled = arena.compile(rule);
    let results: Vec<(bool, Option<Witness>, u64, bool)> =
        par_map(partitions.len(), workers, |pi| {
            if pi == pivot {
                return (false, None, 0, false);
            }
            let part = &partitions[pi];
            let (sets, wild) = aggregate(part);
            let filter_conclusive =
                (0..m).all(|k| !wild[k] && !pivot_wild[k] && sets[k].is_disjoint(&pivot_sets[k]));
            if filter_conclusive {
                let w = Witness {
                    partition: pi,
                    rule: 0,
                    entity: part[0],
                    pivot_entity: partitions[pivot][0],
                };
                return (true, Some(w), 0, true);
            }
            let mut part_order: Vec<(usize, usize)> =
                part.iter().map(|&e| (score(&ent_sigs[e], &pivot_sets), e)).collect();
            part_order.sort_unstable();
            let mut pivot_order: Vec<(usize, usize)> =
                partitions[pivot].iter().map(|&p| (score(&ent_sigs[p], &sets), p)).collect();
            pivot_order.sort_unstable();
            let mut evals = 0u64;
            for &(_, e) in &part_order {
                for &(_, p) in &pivot_order {
                    evals += 1;
                    if arena.eval_compiled(&compiled, e, p) {
                        let w = Witness { partition: pi, rule: 0, entity: e, pivot_entity: p };
                        return (true, Some(w), evals, false);
                    }
                }
            }
            (false, None, evals, false)
        });

    if sink.enabled() {
        sink.add("negative_pairs_verified", results.iter().map(|r| r.2).sum());
        sink.add("partitions_flagged_filter_only", results.iter().filter(|r| r.3).count() as u64);
    }
    let flags: Vec<bool> = results.iter().map(|(f, ..)| *f).collect();
    let witnesses: Vec<Witness> = results.into_iter().filter_map(|(_, w, ..)| w).collect();
    (flags, witnesses)
}

/// Filter + ordered verification for one positive rule, merging satisfied
/// pairs into `uf`.
#[allow(clippy::too_many_arguments)] // internal engine body; `ri` and `sink` ride along
fn verify_positive_rule(
    group: &Group,
    arena: &VerifyArena,
    ctx: &mut SigContext<'_>,
    rule: &Rule,
    uf: &mut UnionFind,
    config: DimePlusConfig,
    sink: &dyn TraceSink,
    ri: usize,
) {
    let n = group.len();
    let mut index = InvertedIndex::new();
    let mut wildcards: Vec<u32> = Vec::new();
    let mut sig_count = vec![0usize; n];
    {
        let _s = span(sink, "signature_build");
        for (eid, sigs) in ctx.positive_rule_signatures(rule).into_iter().enumerate() {
            match sigs {
                None => wildcards.push(eid as u32),
                Some(sigs) => {
                    sig_count[eid] = sigs.len();
                    for s in sigs {
                        index.insert(s, eid as u32);
                    }
                }
            }
        }
    }
    if sink.enabled() {
        sink.add("signatures_built", index.posting_count() as u64);
        sink.add("wildcard_entities", wildcards.len() as u64);
    }

    let probe = span(sink, "index_probe");
    // Candidate pairs with shared-signature counts (the probability
    // numerator of the benefit order). Pairs already connected by earlier
    // rules are pruned here — the transitivity short-circuit applied at
    // gathering time, which keeps the candidate set small when a previous
    // rule has already built large components.
    let mut packed: Vec<u64> = Vec::new();
    for sig_list in index_lists(&index) {
        for i in 0..sig_list.len() {
            for j in i + 1..sig_list.len() {
                let (a, b) = order_pair(sig_list[i], sig_list[j]);
                if config.transitivity_skip && uf.same(a as usize, b as usize) {
                    continue;
                }
                packed.push((u64::from(a) << 32) | u64::from(b));
            }
        }
    }
    // Wildcard entities pair with everyone.
    for &w in &wildcards {
        for other in 0..n as u32 {
            if other == w {
                continue;
            }
            if config.transitivity_skip && uf.same(w as usize, other as usize) {
                continue;
            }
            let (a, b) = order_pair(w, other);
            packed.push((u64::from(a) << 32) | u64::from(b));
        }
    }
    // Sort + run-length count: dedups and yields the shared-signature count
    // per pair far cheaper than a hash map at this volume.
    packed.sort_unstable();
    let mut candidates: Vec<(u32, u32, u32)> = Vec::new();
    let mut k = 0usize;
    while k < packed.len() {
        let key = packed[k];
        let mut count = 1u32;
        while k + (count as usize) < packed.len() && (packed[k + count as usize] == key) {
            count += 1;
        }
        candidates.push(((key >> 32) as u32, key as u32, count));
        k += count as usize;
    }

    let ordered: Vec<(u32, u32)> = if config.benefit_order {
        // Benefit B = P/C with P ≈ shared / avg(sig counts), C = rule cost.
        let mut keyed: Vec<(f64, u32, u32)> = candidates
            .iter()
            .map(|&(a, b, c)| {
                let avg = (sig_count[a as usize] + sig_count[b as usize]).max(1) as f64 / 2.0;
                let prob = c as f64 / avg;
                let cost = arena.rule_cost(rule, a as usize, b as usize).max(1e-9);
                (prob / cost, a, b)
            })
            .collect();
        keyed.sort_by(|x, y| y.0.total_cmp(&x.0).then_with(|| (x.1, x.2).cmp(&(y.1, y.2))));
        keyed.into_iter().map(|(_, a, b)| (a, b)).collect()
    } else {
        candidates.sort_unstable_by_key(|&(a, b, _)| (a, b));
        candidates.into_iter().map(|(a, b, _)| (a, b)).collect()
    };
    drop(probe);
    if sink.enabled() {
        let total_pairs = (n as u64) * (n as u64 - 1) / 2;
        sink.add("candidate_pairs", ordered.len() as u64);
        sink.add("pairs_pruned_filter", total_pairs.saturating_sub(ordered.len() as u64));
        sink.add("index_probes", index.probe_count());
    }

    let mut tally = VerifyTally::default();
    {
        let _s = span(sink, "verify");
        let compiled = arena.compile(rule);
        for (a, b) in ordered {
            let (a, b) = (a as usize, b as usize);
            try_union(arena, &compiled, uf, a, b, config.transitivity_skip, &mut tally);
        }
    }
    if sink.enabled() {
        sink.add("pairs_verified", tally.verified);
        sink.add("pairs_skipped_transitivity", tally.skipped);
        sink.add("uf_merges", tally.merges);
        sink.rule_hits(RuleKind::Positive, ri, tally.hits);
    }
}

/// Local accumulation for one verification pass: hot loops bump these
/// plain integers and flush them to the [`TraceSink`] once per phase.
#[derive(Debug, Default, Clone, Copy)]
struct VerifyTally {
    /// Pairs skipped because transitivity already connected them.
    skipped: u64,
    /// Pairs actually evaluated against the rule.
    verified: u64,
    /// Evaluations that satisfied the rule.
    hits: u64,
    /// Unions that merged two previously-disjoint components.
    merges: u64,
}

impl VerifyTally {
    fn fold(self, other: &VerifyTally) -> VerifyTally {
        VerifyTally {
            skipped: self.skipped + other.skipped,
            verified: self.verified + other.verified,
            hits: self.hits + other.hits,
            merges: self.merges + other.merges,
        }
    }
}

fn try_union(
    arena: &VerifyArena,
    rule: &CompiledRule<'_>,
    uf: &mut UnionFind,
    a: usize,
    b: usize,
    transitivity_skip: bool,
    tally: &mut VerifyTally,
) {
    if transitivity_skip && uf.same(a, b) {
        tally.skipped += 1;
        return;
    }
    tally.verified += 1;
    if arena.eval_compiled(rule, a, b) {
        tally.hits += 1;
        if uf.union(a, b) {
            tally.merges += 1;
        }
    }
}

#[inline]
fn order_pair(a: u32, b: u32) -> (u32, u32) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Iterates the inverted lists of an index (helper: the index API exposes
/// lists by signature; we re-enumerate via candidate extraction instead).
fn index_lists(index: &InvertedIndex) -> impl Iterator<Item = Vec<u32>> + '_ {
    index.signatures().map(move |s| {
        let mut l = index.list(s).unwrap_or(&[]).to_vec();
        l.sort_unstable();
        l.dedup();
        l
    })
}

/// Decides, for one negative rule, which partitions are mis-categorized,
/// returning per-partition flags plus the witnessing pairs (`rule` fields
/// are filled in by the caller).
pub(crate) fn flag_partitions_fast(
    group: &Group,
    arena: &VerifyArena,
    ctx: &mut SigContext<'_>,
    rule: &Rule,
    partitions: &[Vec<usize>],
    pivot: usize,
    sink: &dyn TraceSink,
) -> (Vec<bool>, Vec<Witness>) {
    let m = rule.predicates.len();
    let mut witnesses: Vec<Witness> = Vec::new();
    let mut negative_evals = 0u64;
    let mut filter_only_flags = 0u64;
    // Per-entity per-predicate signature sets.
    let ent_sigs: Vec<Vec<PredSigs>> =
        group.entities().iter().map(|e| ctx.rule_sigs_negative(e, rule)).collect();

    // Aggregate a partition's signature set per predicate, plus a wildcard
    // flag (any member with a Wildcard/Trivial prevents safe flagging).
    let aggregate = |members: &[usize]| -> (Vec<HashSet<u64>>, Vec<bool>) {
        let mut sets: Vec<HashSet<u64>> = vec![HashSet::new(); m];
        let mut wild = vec![false; m];
        for &e in members {
            for (pi, ps) in ent_sigs[e].iter().enumerate() {
                match ps {
                    PredSigs::Sigs(s) => sets[pi].extend(s.iter().copied()),
                    _ => wild[pi] = true,
                }
            }
        }
        (sets, wild)
    };

    let (pivot_sets, pivot_wild) = aggregate(&partitions[pivot]);
    let compiled = arena.compile(rule);
    let mut flags = vec![false; partitions.len()];
    for (pi, part) in partitions.iter().enumerate() {
        if pi == pivot {
            continue;
        }
        let (sets, wild) = aggregate(part);
        let filter_conclusive =
            (0..m).all(|k| !wild[k] && !pivot_wild[k] && sets[k].is_disjoint(&pivot_sets[k]));
        if filter_conclusive {
            // Every pair satisfies every predicate: flag with no
            // verification (Algorithm 2 lines 18-19). Any pair witnesses.
            flags[pi] = true;
            filter_only_flags += 1;
            witnesses.push(Witness {
                partition: pi,
                rule: 0,
                entity: part[0],
                pivot_entity: partitions[pivot][0],
            });
            continue;
        }
        // Verification in benefit order B = 1/(C·P): verify the pairs most
        // likely to be *dissimilar* first and stop at the first satisfied
        // pair. Materializing per-pair benefits is quadratic, so both sides
        // are ordered at the entity level by ascending shared-signature
        // mass against the opposite partition's signature sets — the same
        // heuristic probability, O(n log n) instead of O(n²).
        let score = |sigs: &[PredSigs], other: &[HashSet<u64>]| -> usize {
            sigs.iter()
                .zip(other)
                .map(|(ps, set)| match ps {
                    PredSigs::Sigs(s) => s.iter().filter(|v| set.contains(v)).count(),
                    _ => set.len(), // wildcard: assume maximally similar
                })
                .sum()
        };
        let mut part_order: Vec<(usize, usize)> =
            part.iter().map(|&e| (score(&ent_sigs[e], &pivot_sets), e)).collect();
        part_order.sort_unstable();
        let mut pivot_order: Vec<(usize, usize)> =
            partitions[pivot].iter().map(|&p| (score(&ent_sigs[p], &sets), p)).collect();
        pivot_order.sort_unstable();
        'verify: for &(_, e) in &part_order {
            for &(_, p) in &pivot_order {
                negative_evals += 1;
                if arena.eval_compiled(&compiled, e, p) {
                    flags[pi] = true;
                    witnesses.push(Witness { partition: pi, rule: 0, entity: e, pivot_entity: p });
                    break 'verify;
                }
            }
        }
    }
    if sink.enabled() {
        sink.add("negative_pairs_verified", negative_evals);
        sink.add("partitions_flagged_filter_only", filter_only_flags);
    }
    (flags, witnesses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discover::discover_naive;
    use crate::entity::{GroupBuilder, Schema};
    use crate::rule::tests::{figure1_group, paper_rules};
    use crate::rule::{Predicate, SimilarityFn};
    use dime_text::TokenizerKind;
    use proptest::prelude::*;

    #[test]
    fn matches_naive_on_paper_example() {
        let g = figure1_group();
        let (pos, neg) = paper_rules();
        let fast = discover_fast(&g, &pos, &neg);
        let naive = discover_naive(&g, &pos, &neg);
        assert_eq!(fast, naive);
        assert_eq!(fast.mis_categorized().into_iter().collect::<Vec<_>>(), vec![4, 5]);
    }

    #[test]
    fn fast_witnesses_are_valid() {
        let g = figure1_group();
        let (pos, neg) = paper_rules();
        let d = discover_fast(&g, &pos, &neg);
        assert!(!d.witnesses.is_empty());
        for w in &d.witnesses {
            assert!(
                neg[w.rule].eval(&g, g.entity(w.entity), g.entity(w.pivot_entity)),
                "witness {w:?} does not satisfy its rule"
            );
            assert!(d.partitions[w.partition].contains(&w.entity));
            assert!(d.pivot_members().contains(&w.pivot_entity));
        }
    }

    #[test]
    fn all_config_combinations_agree() {
        let g = figure1_group();
        let (pos, neg) = paper_rules();
        let reference = discover_naive(&g, &pos, &neg);
        for benefit_order in [false, true] {
            for transitivity_skip in [false, true] {
                for threads in [1usize, 2, 4] {
                    let cfg = DimePlusConfig { benefit_order, transitivity_skip, threads };
                    let got = discover_fast_with(&g, &pos, &neg, cfg);
                    assert_eq!(got, reference, "config {cfg:?} diverged");
                }
            }
        }
    }

    #[test]
    fn parallel_matches_naive_on_paper_example() {
        let g = figure1_group();
        let (pos, neg) = paper_rules();
        let reference = discover_naive(&g, &pos, &neg);
        for threads in [0usize, 1, 2, 3, 8] {
            assert_eq!(
                discover_parallel(&g, &pos, &neg, threads),
                reference,
                "threads = {threads} diverged"
            );
        }
    }

    #[test]
    fn parallel_witnesses_are_valid() {
        let g = figure1_group();
        let (pos, neg) = paper_rules();
        let d = discover_parallel(&g, &pos, &neg, 4);
        assert!(!d.witnesses.is_empty());
        for w in &d.witnesses {
            assert!(
                neg[w.rule].eval(&g, g.entity(w.entity), g.entity(w.pivot_entity)),
                "witness {w:?} does not satisfy its rule"
            );
            assert!(d.partitions[w.partition].contains(&w.entity));
            assert!(d.pivot_members().contains(&w.pivot_entity));
        }
    }

    /// The shrunk case once recorded in
    /// `proptest-regressions/dime_plus.txt`: entities whose author lists
    /// and titles are almost all empty, with `theta = 2`, exercising the
    /// empty-token signature markers and the tied-singleton pivot path.
    /// Promoted to a named test so all three engines stay pinned on it.
    #[test]
    fn regression_empty_token_entities_theta2() {
        let lists: Vec<Vec<u32>> =
            vec![vec![], vec![], vec![], vec![], vec![1], vec![], vec![], vec![], vec![2, 1]];
        let titles: Vec<String> =
            ["", "", "", "", "b ", "", "", "", "b"].iter().map(|s| s.to_string()).collect();
        let g = random_group(&lists, &titles);
        let (pos, neg) = regression_rules(2);
        let naive = discover_naive(&g, &pos, &neg);
        // Entities 4 and 8 share author a1 (overlap ≥ 1 + title Jaccard
        // ≥ 0.5); every other entity is a singleton, and the tied pivot
        // must fall to the smallest-id partition.
        assert_eq!(
            naive.partitions,
            vec![vec![0], vec![1], vec![2], vec![3], vec![4, 8], vec![5], vec![6], vec![7]]
        );
        assert_eq!(naive.pivot, 4);
        assert_eq!(discover_fast(&g, &pos, &neg), naive);
        for benefit_order in [false, true] {
            for transitivity_skip in [false, true] {
                for threads in [1usize, 2, 4] {
                    let cfg = DimePlusConfig { benefit_order, transitivity_skip, threads };
                    assert_eq!(
                        discover_fast_with(&g, &pos, &neg, cfg),
                        naive,
                        "config {cfg:?} diverged on the regression seed"
                    );
                }
            }
        }
    }

    /// The rule set the equivalence proptest (and the regression seed)
    /// runs under.
    fn regression_rules(theta: usize) -> (Vec<Rule>, Vec<Rule>) {
        let pos = vec![
            Rule::positive(vec![Predicate::new(1, SimilarityFn::Overlap, theta as f64)]),
            Rule::positive(vec![
                Predicate::new(1, SimilarityFn::Overlap, 1.0),
                Predicate::new(0, SimilarityFn::Jaccard, 0.5),
            ]),
        ];
        let neg = vec![
            Rule::negative(vec![Predicate::new(1, SimilarityFn::Overlap, 0.0)]),
            Rule::negative(vec![
                Predicate::new(1, SimilarityFn::Overlap, 1.0),
                Predicate::new(0, SimilarityFn::Jaccard, 0.2),
            ]),
        ];
        (pos, neg)
    }

    #[test]
    fn traced_run_equals_untraced_and_populates_report() {
        use dime_trace::Recorder;
        let g = figure1_group();
        let (pos, neg) = paper_rules();
        let reference = discover_fast(&g, &pos, &neg);
        for threads in [1usize, 4] {
            let rec = Recorder::new();
            let cfg = DimePlusConfig::with_threads(threads);
            let traced = discover_fast_traced(&g, &pos, &neg, cfg, &rec);
            assert_eq!(traced, reference, "tracing changed the result (threads = {threads})");
            let report = rec.snapshot();
            for phase in ["signature_build", "index_probe", "verify", "union", "flag"] {
                assert!(
                    report.phases.iter().any(|p| p.name == phase && p.count > 0),
                    "missing phase {phase} (threads = {threads})"
                );
            }
            assert!(report.counter("signatures_built") > 0);
            assert!(report.counter("candidate_pairs") > 0);
            assert!(report.counter("pairs_verified") > 0);
            assert!(report.counter("index_probes") > 0);
            assert!(
                report.rule_hits.iter().any(|r| r.kind == RuleKind::Positive && r.hits > 0),
                "no positive rule hits recorded"
            );
            assert!(
                report.rule_hits.iter().any(|r| r.kind == RuleKind::Negative && r.hits > 0),
                "no negative rule hits recorded"
            );
            if threads > 1 {
                let workers: HashSet<u64> = report
                    .spans
                    .iter()
                    .filter(|s| s.name == "verify_worker")
                    .map(|s| s.thread)
                    .collect();
                assert!(!workers.is_empty(), "parallel run recorded no worker spans");
            }
        }
    }

    /// The tiling contract behind `dime --trace`: the five phase names
    /// never nest among themselves, so summed phase durations are
    /// comparable against total wall-clock.
    #[test]
    fn phase_spans_do_not_nest() {
        use dime_trace::Recorder;
        let g = figure1_group();
        let (pos, neg) = paper_rules();
        let rec = Recorder::new();
        let _ = discover_fast_traced(&g, &pos, &neg, DimePlusConfig::default(), &rec);
        let phases = ["signature_build", "index_probe", "verify", "union", "flag"];
        for s in &rec.snapshot().spans {
            if phases.contains(&s.name) {
                assert_eq!(s.depth, 0, "phase span {} recorded at depth {}", s.name, s.depth);
            }
        }
    }

    #[test]
    fn single_entity_group() {
        let schema = Schema::new([("A", TokenizerKind::Words)]);
        let mut b = GroupBuilder::new(schema);
        b.add_entity(&["x"]);
        let g = b.build();
        let pos = vec![Rule::positive(vec![Predicate::new(0, SimilarityFn::Overlap, 1.0)])];
        let neg = vec![Rule::negative(vec![Predicate::new(0, SimilarityFn::Overlap, 0.0)])];
        let d = discover_fast(&g, &pos, &neg);
        assert_eq!(d.partitions.len(), 1);
        assert!(d.mis_categorized().is_empty());
    }

    /// Random-group equivalence between DIME and DIME⁺ — the central
    /// correctness property of the signature framework.
    fn random_group(lists: &[Vec<u32>], titles: &[String]) -> Group {
        let schema =
            Schema::new([("Title", TokenizerKind::Words), ("Authors", TokenizerKind::List(','))]);
        let mut b = GroupBuilder::new(schema);
        for (l, t) in lists.iter().zip(titles) {
            let joined: Vec<String> = l.iter().map(|x| format!("a{x}")).collect();
            b.add_entity(&[t.as_str(), joined.join(", ").as_str()]);
        }
        b.build()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// The central correctness property of the signature framework:
        /// all three engines — naive, fast, and parallel at several thread
        /// counts — produce the identical `Discovery` on random groups.
        #[test]
        fn prop_fast_equals_naive(
            lists in proptest::collection::vec(proptest::collection::vec(0u32..10, 0..5), 1..14),
            titles in proptest::collection::vec("[a-c ]{0,12}", 14),
            theta in 1usize..3,
        ) {
            let titles = &titles[..lists.len()];
            let g = random_group(&lists, titles);
            let (pos, neg) = regression_rules(theta);
            let naive = discover_naive(&g, &pos, &neg);
            let fast = discover_fast(&g, &pos, &neg);
            prop_assert_eq!(&fast, &naive);
            for threads in [1usize, 2, 4] {
                let par = discover_parallel(&g, &pos, &neg, threads);
                prop_assert_eq!(&par, &naive, "threads = {}", threads);
            }
        }

        /// Engine equivalence with *edit* predicates in play: the fast and
        /// parallel engines verify through the arena's bounded Myers/banded
        /// kernels while the naive engine compares the full similarity —
        /// the discoveries must still be identical (unicode titles
        /// included, exercising the char-slice kernel).
        #[test]
        fn prop_fast_equals_naive_edit_rules(
            titles in proptest::collection::vec("[a-cö ]{0,10}", 2..10),
        ) {
            let lists: Vec<Vec<u32>> = (0..titles.len()).map(|i| vec![i as u32 % 3]).collect();
            let g = random_group(&lists, &titles);
            let pos = vec![Rule::positive(vec![
                Predicate::new(0, SimilarityFn::EditSimilarity, 0.6),
            ])];
            let neg = vec![
                Rule::negative(vec![Predicate::new(0, SimilarityFn::EditSimilarity, 0.2)]),
                Rule::negative(vec![Predicate::new(0, SimilarityFn::EditDistance, 6.0)]),
            ];
            let naive = discover_naive(&g, &pos, &neg);
            prop_assert_eq!(&discover_fast(&g, &pos, &neg), &naive);
            for threads in [2usize, 4] {
                let par = discover_parallel(&g, &pos, &neg, threads);
                prop_assert_eq!(&par, &naive, "threads = {}", threads);
            }
        }
    }
}
