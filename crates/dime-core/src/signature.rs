//! Signature generation for rules (paper Section IV-B).
//!
//! For every (entity, predicate, polarity) this module produces a signature
//! set with the filter guarantees DIME⁺ relies on:
//!
//! * **positive** predicate `f ≥ θ`: if a pair satisfies the predicate, the
//!   two signature sets intersect (no false dismissals in the filter);
//! * **negative** predicate `f ≤ σ`: if the two signature sets are
//!   *disjoint*, the predicate is guaranteed to hold (safe to flag without
//!   verification).
//!
//! Three outcomes are possible per value:
//!
//! * [`PredSigs::Sigs`] — a concrete (possibly empty) signature set. For a
//!   positive predicate an empty set means the value can never satisfy it;
//!   for a negative predicate it means the predicate holds against
//!   everything (e.g. an empty author list has overlap 0 with anything).
//! * [`PredSigs::Wildcard`] — no sound signature exists (e.g. a string too
//!   short for the q-gram count filter); the entity must be verified
//!   against everything.
//! * [`PredSigs::Trivial`] — the predicate is satisfied by every pair
//!   (e.g. `overlap ≥ 0`); it contributes nothing to filtering and is
//!   skipped.
//!
//! Composite signatures for a positive rule (a conjunction) are tuples with
//! one component per non-trivial predicate, hashed to `u64`. Hash
//! collisions only ever *add* candidates.

use crate::entity::{Entity, Group};
use crate::rule::{Polarity, Predicate, Rule, SimilarityFn};
use dime_ontology::{node_signature, tau_min};
use dime_text::{edit_prefix_len, overlap_prefix_len, qgrams, GlobalOrder, TokenId};
use std::borrow::Cow;
use std::collections::HashMap;

/// q-gram length used for character-based signatures.
pub(crate) const Q: usize = 2;

/// Epsilon for float-derived integer bounds: always round in the *sound*
/// direction (longer prefixes / shallower signature depths).
const FP_EPS: f64 = 1e-9;

/// Cap on the number of composite signatures one entity may emit for one
/// rule. The batch planner sizes the predicate subset to stay under it; an
/// entity that would still exceed it (possible only on the incremental
/// path, whose plan is fixed up front) becomes a wildcard.
const MAX_COMPOSITE: usize = 1024;

/// Deterministic 64-bit mixer (SplitMix64 finalizer) — stable across runs,
/// unlike `std`'s randomized hasher.
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hashes a string to `u64` (FNV-1a, then mixed).
#[inline]
fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix64(h)
}

/// Combines a predicate-scoped salt with a raw signature component.
#[inline]
fn salted(salt: u64, component: u64) -> u64 {
    mix64(salt ^ component.rotate_left(17))
}

/// The signature set of one (entity, predicate, polarity).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredSigs {
    /// Concrete signatures (see module docs for the empty-set semantics).
    Sigs(Vec<u64>),
    /// No sound signature; verify against everything.
    Wildcard,
    /// Predicate satisfied by every pair; skip in filtering.
    Trivial,
}

/// Shared signature-generation state for one group: the global token order
/// and a cache of ontology `τ_min` values per (attribute, threshold).
pub struct SigContext<'g> {
    group: &'g Group,
    order: Cow<'g, GlobalOrder>,
    tau_cache: HashMap<(usize, u64), u32>,
    /// When set, ontology `τ_min` uses the ontology's minimum node depth
    /// instead of the depths present in the current group — sound for
    /// entities added later (see [`crate::IncrementalDime`]).
    conservative_tau: bool,
}

impl<'g> SigContext<'g> {
    /// Builds the context (computes the document-frequency global order).
    pub fn new(group: &'g Group) -> Self {
        Self {
            group,
            order: Cow::Owned(GlobalOrder::from_dictionary(group.dictionary())),
            tau_cache: HashMap::new(),
            conservative_tau: false,
        }
    }

    /// Builds a context around a *frozen* token order and conservative
    /// ontology signature depths — the configuration under which signatures
    /// stay mutually consistent as the group grows.
    pub fn with_frozen_order(group: &'g Group, order: &'g GlobalOrder) -> Self {
        Self {
            group,
            order: Cow::Borrowed(order),
            tau_cache: HashMap::new(),
            conservative_tau: true,
        }
    }

    /// The underlying group.
    pub fn group(&self) -> &'g Group {
        self.group
    }

    /// Signature set of `entity` for one `pred` under `polarity`.
    pub fn predicate_sigs(
        &mut self,
        entity: &Entity,
        pred: &Predicate,
        polarity: Polarity,
    ) -> PredSigs {
        self.warm_tau(pred, polarity);
        match polarity {
            Polarity::Positive => self.positive_sigs(entity, pred),
            Polarity::Negative => self.negative_sigs(entity, pred),
        }
    }

    /// Composite signatures of **every** entity of the group for a positive
    /// rule. Per entity: `None` means wildcard (pair it with everything);
    /// `Some(sigs)` may be empty, meaning the entity can never satisfy the
    /// rule.
    ///
    /// The subset of predicates that participates in the tuples is chosen
    /// once per rule (smallest average signature sets first, capped so the
    /// largest per-entity cross product stays under an internal budget) —
    /// signature tuples are only comparable when every entity uses the same
    /// predicate subset. Components combine by XOR, so tuple hashes are
    /// independent of construction order.
    pub fn positive_rule_signatures(&mut self, rule: &Rule) -> Vec<Option<Vec<u64>>> {
        self.positive_rule_signatures_threaded(rule, 1)
    }

    /// [`SigContext::positive_rule_signatures`] with per-entity rows and
    /// tuple composition fanned out over `threads` workers. The `τ_min`
    /// cache is warmed up front so row generation is read-only; results
    /// are identical to the sequential path for every thread count.
    pub fn positive_rule_signatures_threaded(
        &mut self,
        rule: &Rule,
        threads: usize,
    ) -> Vec<Option<Vec<u64>>> {
        debug_assert_eq!(rule.polarity, Polarity::Positive);
        for pred in &rule.predicates {
            self.warm_tau(pred, Polarity::Positive);
        }
        let n = self.group.len();
        let m = rule.predicates.len();
        // Per-entity, per-predicate signature sets (salted by predicate).
        let ctx = &*self;
        let per: Vec<Vec<PredSigs>> =
            crate::par::par_map(n, threads, |eid| ctx.salted_positive_row(eid, rule));
        // Rule-level predicate subset: non-trivial predicates ordered by
        // average signature-set size, greedily added while the *maximum*
        // per-entity tuple count stays bounded.
        let mut stats: Vec<(usize, f64, usize)> = (0..m)
            .filter_map(|pi| {
                let mut sum = 0usize;
                let mut max = 0usize;
                let mut informative = false;
                for row in &per {
                    match &row[pi] {
                        PredSigs::Sigs(s) => {
                            sum += s.len();
                            max = max.max(s.len().max(1));
                            informative = true;
                        }
                        PredSigs::Wildcard => {
                            max = max.max(1);
                            informative = true;
                        }
                        PredSigs::Trivial => {}
                    }
                }
                informative.then(|| (pi, sum as f64 / n as f64, max))
            })
            .collect();
        if stats.is_empty() {
            // Every predicate trivial for every entity: all pairs match.
            return vec![None; n];
        }
        stats.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let mut chosen: Vec<usize> = vec![stats[0].0];
        let mut worst = stats[0].2;
        for &(pi, _, mx) in &stats[1..] {
            if worst.saturating_mul(mx) > MAX_COMPOSITE {
                break;
            }
            worst *= mx;
            chosen.push(pi);
        }
        let plan = PositiveRulePlan { chosen };
        crate::par::par_map(n, threads, |eid| compose_row(&per[eid], &plan))
    }

    /// Chooses the predicate subset a rule's composite tuples will use,
    /// independent of any particular entity set — the incremental engine
    /// fixes a plan once and composes every later entity against it.
    pub fn plan_positive_rule(&self, rule: &Rule) -> PositiveRulePlan {
        debug_assert_eq!(rule.polarity, Polarity::Positive);
        // Without entity statistics, keep every non-trivial predicate under
        // a conservative per-predicate budget.
        let chosen: Vec<usize> = rule
            .predicates
            .iter()
            .enumerate()
            .filter(|(_, p)| !is_trivially_true(p, Polarity::Positive))
            .map(|(i, _)| i)
            .collect();
        PositiveRulePlan { chosen }
    }

    /// Composite signatures of one entity under a fixed [`PositiveRulePlan`]
    /// — only comparable with signatures produced under the *same* plan and
    /// the same (frozen) token order.
    pub fn entity_positive_signatures(
        &mut self,
        eid: usize,
        rule: &Rule,
        plan: &PositiveRulePlan,
    ) -> Option<Vec<u64>> {
        for pred in &rule.predicates {
            self.warm_tau(pred, Polarity::Positive);
        }
        let row = self.salted_positive_row(eid, rule);
        compose_row(&row, plan)
    }

    fn salted_positive_row(&self, eid: usize, rule: &Rule) -> Vec<PredSigs> {
        let e = self.group.entity(eid);
        (0..rule.predicates.len())
            .map(|pi| match self.positive_sigs(e, &rule.predicates[pi]) {
                PredSigs::Sigs(s) => {
                    let salt = mix64(pi as u64 + 1);
                    PredSigs::Sigs(s.into_iter().map(|c| salted(salt, c)).collect())
                }
                other => other,
            })
            .collect()
    }

    /// Per-predicate signatures of `entity` for a negative rule, in
    /// predicate order.
    pub fn rule_sigs_negative(&mut self, entity: &Entity, rule: &Rule) -> Vec<PredSigs> {
        debug_assert_eq!(rule.polarity, Polarity::Negative);
        for pred in &rule.predicates {
            self.warm_tau(pred, Polarity::Negative);
        }
        rule.predicates.iter().map(|p| self.negative_sigs(entity, p)).collect()
    }

    /// [`SigContext::rule_sigs_negative`] for **every** entity of the
    /// group, fanned out over `threads` workers (the `τ_min` cache is
    /// warmed first so workers only read).
    pub fn rule_sigs_negative_all(&mut self, rule: &Rule, threads: usize) -> Vec<Vec<PredSigs>> {
        debug_assert_eq!(rule.polarity, Polarity::Negative);
        for pred in &rule.predicates {
            self.warm_tau(pred, Polarity::Negative);
        }
        let ctx = &*self;
        crate::par::par_map(self.group.len(), threads, |eid| {
            let e = ctx.group.entity(eid);
            rule.predicates.iter().map(|p| ctx.negative_sigs(e, p)).collect()
        })
    }

    // ---- positive predicates --------------------------------------------

    fn positive_sigs(&self, entity: &Entity, pred: &Predicate) -> PredSigs {
        let value = entity.value(pred.attr);
        let theta = pred.threshold;
        match pred.func {
            SimilarityFn::Overlap => {
                let c = theta.ceil().max(0.0) as usize;
                if c == 0 {
                    return PredSigs::Trivial;
                }
                self.set_prefix_sigs(&value.tokens, c)
            }
            SimilarityFn::Jaccard | SimilarityFn::Dice | SimilarityFn::Cosine => {
                if theta <= 0.0 {
                    return PredSigs::Trivial;
                }
                if theta > 1.0 {
                    return PredSigs::Sigs(Vec::new()); // unsatisfiable
                }
                if value.tokens.is_empty() {
                    // An empty set only reaches θ > 0 against another empty
                    // set (similarity 1 by convention): one shared marker.
                    return PredSigs::Sigs(vec![mix64(0xE117)]);
                }
                let c = Self::set_overlap_bound(pred.func, theta, value.tokens.len());
                self.set_prefix_sigs(&value.tokens, c)
            }
            SimilarityFn::EditDistance => {
                // +ε: a float θ that *represents* an integer must not floor
                // below it — a too-short prefix is a false dismissal.
                let t = (theta + FP_EPS).floor().max(0.0) as usize;
                self.gram_prefix_sigs(&value.text, t)
            }
            SimilarityFn::EditSimilarity => {
                if theta <= 0.0 {
                    return PredSigs::Trivial;
                }
                let len = value.char_len as usize;
                if len == 0 {
                    return PredSigs::Sigs(vec![mix64(0xE55)]);
                }
                // sim ≥ θ ⇒ d ≤ (1−θ)·|v|/θ (derived from max ≤ |v| + d).
                // +ε: the quotient of an exactly-representable bound can
                // land at 0.999…8 and floor a distance too low (observed:
                // θ = 0.8, |v| = 4 → 0.9999999999999998).
                let dmax = (((1.0 - theta) * len as f64 / theta) + FP_EPS).floor() as usize;
                self.gram_prefix_sigs(&value.text, dmax)
            }
            SimilarityFn::Ontology => {
                if theta <= 0.0 {
                    return PredSigs::Trivial;
                }
                match value.node {
                    None => PredSigs::Sigs(Vec::new()), // sim 0 < θ, never
                    Some(node) => {
                        let tm = self.tau_for(pred.attr, theta);
                        let ont =
                            self.group.ontology(pred.attr).expect("mapped node implies ontology");
                        let sig = node_signature(ont, node, tm);
                        PredSigs::Sigs(vec![mix64(0x0e70 ^ u64::from(sig) << 8)])
                    }
                }
            }
        }
    }

    // ---- negative predicates --------------------------------------------

    fn negative_sigs(&self, entity: &Entity, pred: &Predicate) -> PredSigs {
        let value = entity.value(pred.attr);
        let sigma = pred.threshold;
        match pred.func {
            SimilarityFn::Overlap => {
                // overlap ≤ σ: scheme at θ' = ⌊σ⌋ + 1; no share ⇒ ov ≤ σ.
                if sigma < 0.0 {
                    return PredSigs::Wildcard; // predicate can never hold
                }
                let c = sigma.floor() as usize + 1;
                match self.set_prefix_sigs(&value.tokens, c) {
                    // Too few tokens to ever reach overlap σ+1: the
                    // predicate holds against everything.
                    PredSigs::Sigs(s) if s.is_empty() => PredSigs::Sigs(Vec::new()),
                    other => other,
                }
            }
            SimilarityFn::Jaccard | SimilarityFn::Dice | SimilarityFn::Cosine => {
                if sigma < 0.0 {
                    return PredSigs::Wildcard;
                }
                if sigma >= 1.0 {
                    return PredSigs::Sigs(Vec::new()); // f ≤ 1 always holds
                }
                if value.tokens.is_empty() {
                    // Empty vs empty has similarity 1 > σ — must verify.
                    return PredSigs::Sigs(vec![mix64(0xE117)]);
                }
                if sigma == 0.0 {
                    // f ≤ 0 ⇔ no common token: every token is a signature.
                    return PredSigs::Sigs(self.hash_tokens(&value.tokens));
                }
                let c = Self::set_overlap_bound(pred.func, sigma, value.tokens.len());
                self.set_prefix_sigs(&value.tokens, c)
            }
            SimilarityFn::EditDistance => {
                // d ≥ σ: scheme at θ' = ⌈σ⌉ − 1; no share ⇒ d > σ−1 ⇒ d ≥ σ.
                let s = sigma.ceil() as i64 - 1;
                if s < 0 {
                    return PredSigs::Sigs(Vec::new()); // d ≥ σ ≤ 0 always
                }
                self.gram_prefix_sigs(&value.text, s as usize)
            }
            SimilarityFn::EditSimilarity => {
                if sigma < 0.0 {
                    return PredSigs::Wildcard;
                }
                if sigma >= 1.0 {
                    return PredSigs::Sigs(Vec::new());
                }
                if sigma == 0.0 {
                    return PredSigs::Wildcard; // sim ≤ 0 needs verification
                }
                let len = value.char_len as usize;
                if len == 0 {
                    return PredSigs::Sigs(vec![mix64(0xE55)]);
                }
                let dmax = (((1.0 - sigma) * len as f64 / sigma) + FP_EPS).floor() as usize;
                self.gram_prefix_sigs(&value.text, dmax)
            }
            SimilarityFn::Ontology => {
                if sigma < 0.0 {
                    return PredSigs::Wildcard;
                }
                if sigma >= 1.0 {
                    return PredSigs::Sigs(Vec::new());
                }
                match value.node {
                    // Unmapped ⇒ similarity 0 ≤ σ against everything.
                    None => PredSigs::Sigs(Vec::new()),
                    Some(node) => {
                        let tm = self.tau_for(pred.attr, sigma.max(f64::MIN_POSITIVE));
                        let ont =
                            self.group.ontology(pred.attr).expect("mapped node implies ontology");
                        let sig = node_signature(ont, node, tm);
                        PredSigs::Sigs(vec![mix64(0x0e70 ^ u64::from(sig) << 8)])
                    }
                }
            }
        }
    }

    // ---- helpers ---------------------------------------------------------

    /// Per-value intersection lower bound implied by `f ≥ θ` for the
    /// set-based similarity `func` on a value of `len` tokens.
    fn set_overlap_bound(func: SimilarityFn, theta: f64, len: usize) -> usize {
        let l = len as f64;
        let raw = match func {
            SimilarityFn::Jaccard => theta * l,
            SimilarityFn::Dice => theta * l / 2.0,
            SimilarityFn::Cosine => theta * theta * l,
            // dime-check: allow(panic-reaches-service) — the single caller matches on the set-based functions before calling; edit-family predicates never reach here
            _ => unreachable!("set_overlap_bound only serves set predicates"),
        };
        // −ε before ceil: rounding the bound *up* past its exact value
        // would shorten the prefix below soundness; one too low merely
        // lengthens it.
        (((raw - FP_EPS).ceil() as usize).max(1)).max(1)
    }

    /// Prefix signatures for an intersection bound `c` on a token set.
    fn set_prefix_sigs(&self, tokens: &[TokenId], c: usize) -> PredSigs {
        let plen = overlap_prefix_len(tokens.len(), c);
        if plen == 0 {
            return PredSigs::Sigs(Vec::new());
        }
        let sorted = self.order.sorted(tokens);
        PredSigs::Sigs(sorted[..plen].iter().map(|&t| mix64(0x70C ^ u64::from(t) << 8)).collect())
    }

    /// Hashes every token of a set (the σ = 0 full-set signature).
    fn hash_tokens(&self, tokens: &[TokenId]) -> Vec<u64> {
        tokens.iter().map(|&t| mix64(0x70C ^ u64::from(t) << 8)).collect()
    }

    /// q-gram prefix signatures for an edit-distance bound `t`.
    fn gram_prefix_sigs(&self, text: &str, t: usize) -> PredSigs {
        let grams = qgrams(text, Q);
        match edit_prefix_len(grams.len(), Q, t) {
            None => PredSigs::Wildcard,
            Some(plen) => {
                let mut hashed: Vec<u64> = grams.iter().map(|g| hash_str(g)).collect();
                // Rarity order for grams: we approximate the global gram
                // order by the hash itself, which is shared by all values —
                // any fixed total order preserves the prefix guarantee.
                hashed.sort_unstable();
                hashed.truncate(plen);
                PredSigs::Sigs(hashed)
            }
        }
    }

    /// `τ_min` for an ontology predicate: the minimum `τ_n` over every
    /// mapped node of this attribute in the group. Reads through the cache
    /// without writing, so signature rows can be generated from `&self` on
    /// worker threads; the public entry points warm the cache first (see
    /// [`SigContext::warm_tau`]) so repeated lookups stay memoized.
    fn tau_for(&self, attr: usize, theta: f64) -> u32 {
        if let Some(&t) = self.tau_cache.get(&(attr, theta.to_bits())) {
            return t;
        }
        self.compute_tau(attr, theta)
    }

    /// Ensures the `τ_min` value a predicate's signatures will need is in
    /// the cache — called once per predicate before row generation, which
    /// keeps [`SigContext::tau_for`] a pure read on the hot path.
    fn warm_tau(&mut self, pred: &Predicate, polarity: Polarity) {
        if pred.func != SimilarityFn::Ontology {
            return;
        }
        let theta = match polarity {
            Polarity::Positive if pred.threshold > 0.0 => pred.threshold,
            Polarity::Negative if (0.0..1.0).contains(&pred.threshold) => {
                pred.threshold.max(f64::MIN_POSITIVE)
            }
            _ => return, // trivial / unsatisfiable branches never reach τ
        };
        let key = (pred.attr, theta.to_bits());
        if !self.tau_cache.contains_key(&key) {
            let t = self.compute_tau(pred.attr, theta);
            self.tau_cache.insert(key, t);
        }
    }

    fn compute_tau(&self, attr: usize, theta: f64) -> u32 {
        match self.group.ontology(attr) {
            None => 1,
            Some(ont) if self.conservative_tau => {
                // Any future entity could map to the shallowest node.
                tau_min(theta, [ont.min_node_depth()])
            }
            Some(ont) => tau_min(
                theta,
                self.group
                    .entities()
                    .iter()
                    .filter_map(|e| e.value(attr).node)
                    .map(|n| ont.depth(n)),
            ),
        }
    }
}

/// The predicate subset a positive rule's composite tuples are built from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PositiveRulePlan {
    /// Indices into the rule's predicate list.
    pub chosen: Vec<usize>,
}

/// Whether a predicate is satisfied by every pair regardless of values
/// (threshold-only check — mirrors the `Trivial` signature outcomes).
fn is_trivially_true(pred: &Predicate, polarity: Polarity) -> bool {
    match (polarity, pred.func) {
        (Polarity::Positive, SimilarityFn::Overlap) => pred.threshold <= 0.0,
        (
            Polarity::Positive,
            SimilarityFn::Jaccard
            | SimilarityFn::Dice
            | SimilarityFn::Cosine
            | SimilarityFn::EditSimilarity
            | SimilarityFn::Ontology,
        ) => pred.threshold <= 0.0,
        _ => false,
    }
}

/// Folds one entity's per-predicate signatures into composite tuples under
/// a plan (see [`SigContext::positive_rule_signatures`] for the semantics
/// of `None` / empty results).
fn compose_row(row: &[PredSigs], plan: &PositiveRulePlan) -> Option<Vec<u64>> {
    if plan.chosen.is_empty() {
        return None; // nothing to index on: brute force
    }
    // Unsatisfiable on ANY non-trivial predicate → never matches.
    if row.iter().any(|p| matches!(p, PredSigs::Sigs(s) if s.is_empty())) {
        return Some(Vec::new());
    }
    let mut parts: Vec<&Vec<u64>> = Vec::with_capacity(plan.chosen.len());
    for &pi in &plan.chosen {
        match &row[pi] {
            PredSigs::Sigs(s) => parts.push(s),
            // Wildcard on a chosen predicate, or trivial for this entity
            // while informative for others: no sound tuple — brute force.
            PredSigs::Wildcard | PredSigs::Trivial => return None,
        }
    }
    // XOR cross product (order-independent), mixed at the end. Signatures
    // are only comparable when every entity composes over the same
    // predicate subset, so an entity whose cross product would blow the
    // budget cannot simply emit fewer components — it becomes a wildcard
    // and is verified against everything instead. (The batch planner sizes
    // the subset so this cannot trigger; it protects the incremental path,
    // whose plan is fixed before the data is seen.)
    let product: usize = parts.iter().map(|p| p.len().max(1)).product();
    if product > MAX_COMPOSITE {
        return None;
    }
    let mut acc: Vec<u64> = vec![0];
    for list in parts {
        let mut next = Vec::with_capacity(acc.len() * list.len());
        for &a in &acc {
            for &c in list {
                next.push(a ^ c);
            }
        }
        acc = next;
    }
    let mut out: Vec<u64> = acc.into_iter().map(mix64).collect();
    out.sort_unstable();
    out.dedup();
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{GroupBuilder, Schema};
    use crate::rule::tests::{figure1_group, paper_rules};
    use dime_text::TokenizerKind;
    use proptest::prelude::*;

    fn sigs(p: &PredSigs) -> &Vec<u64> {
        match p {
            PredSigs::Sigs(s) => s,
            other => panic!("expected Sigs, got {other:?}"),
        }
    }

    #[test]
    fn positive_overlap_prefix_counts() {
        let g = figure1_group();
        let mut ctx = SigContext::new(&g);
        let pred = Predicate::new(1, SimilarityFn::Overlap, 2.0);
        // KATARA has 6 authors → prefix 6-2+1 = 5 signatures.
        let s = ctx.predicate_sigs(g.entity(1), &pred, Polarity::Positive);
        assert_eq!(sigs(&s).len(), 5);
    }

    #[test]
    fn positive_overlap_unsatisfiable_for_short_values() {
        let schema = Schema::new([("Authors", TokenizerKind::List(','))]);
        let mut b = GroupBuilder::new(schema);
        b.add_entity(&["solo author"]);
        let g = b.build();
        let mut ctx = SigContext::new(&g);
        let pred = Predicate::new(0, SimilarityFn::Overlap, 2.0);
        let s = ctx.predicate_sigs(g.entity(0), &pred, Polarity::Positive);
        assert!(sigs(&s).is_empty());
    }

    #[test]
    fn trivial_predicates_are_skipped() {
        let g = figure1_group();
        let mut ctx = SigContext::new(&g);
        let pred = Predicate::new(1, SimilarityFn::Overlap, 0.0);
        assert_eq!(ctx.predicate_sigs(g.entity(0), &pred, Polarity::Positive), PredSigs::Trivial);
        // A rule of only trivial predicates indexes nothing → wildcard.
        let rule = Rule::positive(vec![pred]);
        assert!(ctx.positive_rule_signatures(&rule).iter().all(Option::is_none));
    }

    #[test]
    fn negative_overlap_zero_uses_full_token_set() {
        let g = figure1_group();
        let mut ctx = SigContext::new(&g);
        let pred = Predicate::new(1, SimilarityFn::Overlap, 0.0);
        let s = ctx.predicate_sigs(g.entity(1), &pred, Polarity::Negative);
        // θ' = 1 → prefix = all 6 authors.
        assert_eq!(sigs(&s).len(), 6);
    }

    #[test]
    fn ontology_node_signatures_match_for_same_field() {
        let g = figure1_group();
        let mut ctx = SigContext::new(&g);
        let pred = Predicate::new(2, SimilarityFn::Ontology, 0.75);
        // SIGMOD (entity 1) and VLDB (entity 2) and ICDE (entity 3) share a
        // database node signature.
        let s1 = sigs(&ctx.predicate_sigs(g.entity(1), &pred, Polarity::Positive)).clone();
        let s2 = sigs(&ctx.predicate_sigs(g.entity(2), &pred, Polarity::Positive)).clone();
        let s3 = sigs(&ctx.predicate_sigs(g.entity(3), &pred, Polarity::Positive)).clone();
        assert_eq!(s1, s2);
        assert_eq!(s1, s3);
        // The chemistry venue maps elsewhere.
        let s5 = sigs(&ctx.predicate_sigs(g.entity(5), &pred, Polarity::Positive)).clone();
        assert_ne!(s1, s5);
    }

    #[test]
    fn composite_rule_signatures_pair_scholar_entities() {
        let g = figure1_group();
        let (pos, _) = paper_rules();
        let mut ctx = SigContext::new(&g);
        // ϕ2+ (overlap ≥ 1 ∧ ontology ≥ 0.75): entities 1 and 3 share the
        // (nan tang, database) tuple.
        let all = ctx.positive_rule_signatures(&pos[1]);
        let s1 = all[1].as_ref().unwrap();
        let s3 = all[3].as_ref().unwrap();
        assert!(s1.iter().any(|x| s3.contains(x)), "composite tuples must intersect");
        // Entities 1 and 4 (NJ Tang / information retrieval) share nothing.
        let s4 = all[4].as_ref().unwrap();
        assert!(!s1.iter().any(|x| s4.contains(x)));
    }

    /// The filter-completeness property over the paper's group: whenever a
    /// positive rule matches a pair, the composite signature sets intersect.
    #[test]
    fn positive_filter_complete_on_figure1() {
        let g = figure1_group();
        let (pos, _) = paper_rules();
        let mut ctx = SigContext::new(&g);
        for rule in &pos {
            let all = ctx.positive_rule_signatures(rule);
            for i in 0..g.len() {
                for j in i + 1..g.len() {
                    if rule.eval(&g, g.entity(i), g.entity(j)) {
                        match (&all[i], &all[j]) {
                            (Some(a), Some(b)) => {
                                assert!(
                                    a.iter().any(|x| b.contains(x)),
                                    "pair ({i},{j}) satisfies {rule} but sigs disjoint"
                                );
                            }
                            _ => {} // wildcard: always a candidate
                        }
                    }
                }
            }
        }
    }

    /// The negative soundness property: per-predicate disjoint signatures
    /// imply the negative rule holds.
    #[test]
    fn negative_filter_sound_on_figure1() {
        let g = figure1_group();
        let (_, neg) = paper_rules();
        let mut ctx = SigContext::new(&g);
        for rule in &neg {
            let all: Vec<Vec<PredSigs>> =
                g.entities().iter().map(|e| ctx.rule_sigs_negative(e, rule)).collect();
            for i in 0..g.len() {
                for j in 0..g.len() {
                    if i == j {
                        continue;
                    }
                    let disjoint_everywhere =
                        all[i].iter().zip(all[j].iter()).all(|(a, b)| match (a, b) {
                            (PredSigs::Sigs(a), PredSigs::Sigs(b)) => {
                                !a.iter().any(|x| b.contains(x))
                            }
                            _ => false, // wildcard/trivial: cannot conclude
                        });
                    if disjoint_everywhere {
                        assert!(
                            rule.eval(&g, g.entity(i), g.entity(j)),
                            "pair ({i},{j}) had disjoint sigs but {rule} does not hold"
                        );
                    }
                }
            }
        }
    }

    /// Regression: edit-similarity bounds at exact thresholds must not
    /// floor below the true distance bound (observed false dismissal:
    /// "lihu" vs "l ihu" at θ = 0.8 — sim exactly 0.8, d = 1, but
    /// (1−0.8)·4/0.8 evaluates to 0.9999999999999998).
    #[test]
    fn edit_similarity_boundary_is_not_dismissed() {
        let schema = Schema::new([("Name", TokenizerKind::Words)]);
        let mut b = GroupBuilder::new(schema);
        b.add_entity(&["lihu"]);
        b.add_entity(&["l ihu"]);
        let g = b.build();
        let pred = Predicate::new(0, SimilarityFn::EditSimilarity, 0.8);
        assert!(pred.eval(&g, g.entity(0), g.entity(1), Polarity::Positive));
        let rule = Rule::positive(vec![pred]);
        let mut ctx = SigContext::new(&g);
        let all = ctx.positive_rule_signatures(&rule);
        match (&all[0], &all[1]) {
            (Some(a), Some(b)) => {
                assert!(a.iter().any(|x| b.contains(x)), "boundary pair must share a signature");
            }
            _ => {} // wildcard would also be sound
        }
    }

    proptest! {
        /// Filter completeness for every set-based similarity family:
        /// whenever the positive predicate holds, signature sets intersect.
        #[test]
        fn prop_set_family_filters_complete(
            lists in proptest::collection::vec(proptest::collection::vec(0u32..15, 1..8), 2..10),
            theta in 0.05f64..0.95,
        ) {
            let schema = Schema::new([("A", TokenizerKind::List(','))]);
            let mut b = GroupBuilder::new(schema);
            for l in &lists {
                let joined: Vec<String> = l.iter().map(|x| format!("t{x}")).collect();
                b.add_entity(&[joined.join(", ").as_str()]);
            }
            let g = b.build();
            let mut ctx = SigContext::new(&g);
            for func in [SimilarityFn::Jaccard, SimilarityFn::Dice, SimilarityFn::Cosine] {
                let pred = Predicate::new(0, func, theta);
                let rule = Rule::positive(vec![pred]);
                let all = ctx.positive_rule_signatures(&rule);
                for i in 0..g.len() {
                    for j in i + 1..g.len() {
                        let sim = pred.similarity(&g, g.entity(i), g.entity(j));
                        if sim >= theta {
                            match (&all[i], &all[j]) {
                                (Some(a), Some(b)) => prop_assert!(
                                    a.iter().any(|x| b.contains(x)),
                                    "{func:?} sim {sim} ≥ {theta} but sigs disjoint"
                                ),
                                _ => {} // wildcard is always a candidate
                            }
                        }
                    }
                }
            }
        }

        /// Negative ontology soundness on a random tree: per-predicate
        /// signature disjointness implies the predicate holds.
        #[test]
        fn prop_ontology_negative_sound(
            assignments in proptest::collection::vec(0usize..12, 2..10),
            sigma in 0.05f64..0.95,
        ) {
            use dime_ontology::Ontology;
            use std::sync::Arc;
            // Whole values never auto-map, so assign ontology nodes directly.
            let mut b2 = GroupBuilder::new(Schema::new([("V", TokenizerKind::Whole)]));
            let mut ont2 = Ontology::new("root");
            let mut nodes2 = Vec::new();
            for f in 0..3 {
                for s in 0..2 {
                    for v in 0..2 {
                        nodes2.push(ont2.add_path(&[
                            &format!("f{f}"), &format!("s{f}{s}"), &format!("v{f}{s}{v}"),
                        ]));
                    }
                }
            }
            b2.attach_ontology("V", Arc::new(ont2));
            for (i, &a) in assignments.iter().enumerate() {
                b2.add_entity_with_nodes(
                    &[format!("value-{i}").as_str()],
                    &[Some(nodes2[a % nodes2.len()])],
                );
            }
            let g = b2.build();
            let mut ctx = SigContext::new(&g);
            let pred = Predicate::new(0, SimilarityFn::Ontology, sigma);
            let rule = Rule::negative(vec![pred]);
            let all: Vec<Vec<PredSigs>> =
                g.entities().iter().map(|e| ctx.rule_sigs_negative(e, &rule)).collect();
            for i in 0..g.len() {
                for j in 0..g.len() {
                    if i == j { continue; }
                    let disjoint = match (&all[i][0], &all[j][0]) {
                        (PredSigs::Sigs(a), PredSigs::Sigs(b)) => !a.iter().any(|x| b.contains(x)),
                        _ => false,
                    };
                    if disjoint {
                        prop_assert!(
                            rule.eval(&g, g.entity(i), g.entity(j)),
                            "disjoint node sigs but ontology sim > {sigma}"
                        );
                    }
                }
            }
        }

        /// Same two properties on random author-list groups.
        #[test]
        fn prop_filter_properties_random(lists in proptest::collection::vec(
            proptest::collection::vec(0u32..12, 0..6), 2..12), theta in 1usize..4) {
            let schema = Schema::new([("Authors", TokenizerKind::List(','))]);
            let mut b = GroupBuilder::new(schema);
            for l in &lists {
                let joined: Vec<String> = l.iter().map(|x| format!("a{x}")).collect();
                b.add_entity(&[joined.join(", ").as_str()]);
            }
            let g = b.build();
            let mut ctx = SigContext::new(&g);
            let pos = Rule::positive(vec![Predicate::new(0, SimilarityFn::Overlap, theta as f64)]);
            let neg = Rule::negative(vec![Predicate::new(0, SimilarityFn::Overlap, theta as f64 - 1.0)]);
            let psigs = ctx.positive_rule_signatures(&pos);
            let nsigs: Vec<_> = g.entities().iter().map(|e| ctx.rule_sigs_negative(e, &neg)).collect();
            for i in 0..g.len() {
                for j in 0..g.len() {
                    if i == j { continue; }
                    if pos.eval(&g, g.entity(i), g.entity(j)) {
                        if let (Some(a), Some(b)) = (&psigs[i], &psigs[j]) {
                            prop_assert!(a.iter().any(|x| b.contains(x)));
                        }
                    }
                    let disjoint = nsigs[i].iter().zip(nsigs[j].iter()).all(|(a, b)| match (a, b) {
                        (PredSigs::Sigs(a), PredSigs::Sigs(b)) => !a.iter().any(|x| b.contains(x)),
                        _ => false,
                    });
                    if disjoint {
                        prop_assert!(neg.eval(&g, g.entity(i), g.entity(j)));
                    }
                }
            }
        }
    }
}
