//! The entity and group model (paper Section II).
//!
//! An entity is defined over a multi-valued relation `R(A₁, …, Aₘ)`; each
//! attribute value is a list of values ("Authors" holds several names). A
//! *group* is a set of entities that some upstream categorizer placed
//! together — a Google Scholar profile, an Amazon category — and is the
//! unit DIME operates on.
//!
//! Internally every attribute value keeps three *facets*, one per
//! similarity family:
//!
//! * `tokens` — sorted, deduplicated interned token ids (set-based);
//! * `text` — the raw joined string (character-based);
//! * `node` — the mapped ontology node, if the attribute has an ontology
//!   (ontology-based).

use dime_ontology::{NodeId, Ontology};
use dime_text::{Dictionary, TokenId, TokenizerKind};
use std::sync::Arc;

/// Definition of one attribute of the relation.
#[derive(Debug, Clone)]
pub struct AttrDef {
    /// Attribute name, e.g. `"Authors"`.
    pub name: String,
    /// How raw strings split into set-similarity tokens.
    pub tokenizer: TokenizerKind,
}

/// The relation schema: an ordered list of attributes.
#[derive(Debug, Clone)]
pub struct Schema {
    attrs: Vec<AttrDef>,
}

impl Schema {
    /// Builds a schema from `(name, tokenizer)` pairs.
    pub fn new(attrs: impl IntoIterator<Item = (&'static str, TokenizerKind)>) -> Self {
        Self {
            attrs: attrs
                .into_iter()
                .map(|(name, tokenizer)| AttrDef { name: name.to_owned(), tokenizer })
                .collect(),
        }
    }

    /// Builds a schema from owned `(name, tokenizer)` pairs — the
    /// constructor used when attribute names come from data files rather
    /// than source code.
    pub fn from_owned(attrs: impl IntoIterator<Item = (String, TokenizerKind)>) -> Self {
        Self {
            attrs: attrs.into_iter().map(|(name, tokenizer)| AttrDef { name, tokenizer }).collect(),
        }
    }

    /// Number of attributes `m`.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The attribute definitions in order.
    pub fn attrs(&self) -> &[AttrDef] {
        &self.attrs
    }

    /// Index of the attribute named `name` (case-sensitive).
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }
}

/// One attribute value of an entity, with all three similarity facets.
#[derive(Debug, Clone)]
pub struct AttrValue {
    /// Sorted, deduplicated token ids of the value.
    pub tokens: Vec<TokenId>,
    /// The raw (lowercased, trimmed) string for character-based similarity.
    pub text: String,
    /// The ontology node this value maps to, when the attribute has an
    /// ontology and the value matched one of its nodes.
    pub node: Option<NodeId>,
    /// Number of *chars* in `text`, cached at construction. The edit DP
    /// runs over chars, so cost and threshold math must use this — not
    /// `text.len()`, which counts bytes and inflates for multi-byte UTF-8.
    pub char_len: u32,
    /// Whether `text` is pure ASCII (cached so the verify kernels can pick
    /// the byte-slice fast path without rescanning).
    pub is_ascii: bool,
}

impl AttrValue {
    /// Builds a value, caching the char length and ASCII-ness of `text`.
    pub fn new(tokens: Vec<TokenId>, text: String, node: Option<NodeId>) -> Self {
        let is_ascii = text.is_ascii();
        let char_len = if is_ascii { text.len() } else { text.chars().count() } as u32;
        Self { tokens, text, node, char_len, is_ascii }
    }
}

impl Default for AttrValue {
    fn default() -> Self {
        Self::new(Vec::new(), String::new(), None)
    }
}

/// An entity: one row of the multi-valued relation.
#[derive(Debug, Clone)]
pub struct Entity {
    /// Position of this entity within its group (stable id).
    pub id: usize,
    /// One value per schema attribute.
    pub values: Vec<AttrValue>,
}

impl Entity {
    /// The value of attribute `attr`.
    pub fn value(&self, attr: usize) -> &AttrValue {
        &self.values[attr]
    }
}

/// A group of entities categorized together, plus the shared similarity
/// context (token dictionary and per-attribute ontologies).
#[derive(Debug, Clone)]
pub struct Group {
    schema: Arc<Schema>,
    dictionary: Dictionary,
    ontologies: Vec<Option<Arc<Ontology>>>,
    entities: Vec<Entity>,
}

impl Group {
    /// The schema of this group's entities.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The shared token dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }

    /// The ontology attached to attribute `attr`, if any.
    pub fn ontology(&self, attr: usize) -> Option<&Ontology> {
        self.ontologies.get(attr).and_then(|o| o.as_deref())
    }

    /// All entities, indexed by id.
    pub fn entities(&self) -> &[Entity] {
        &self.entities
    }

    /// The entity with id `id`.
    pub fn entity(&self, id: usize) -> &Entity {
        &self.entities[id]
    }

    /// Number of entities `n`.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// Whether the group has no entities.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Appends an entity with explicit ontology nodes (the growable-group
    /// entry point used by [`crate::IncrementalDime`]). Semantics match
    /// [`GroupBuilder::add_entity_with_nodes`].
    ///
    /// # Panics
    ///
    /// Panics if lengths differ from the schema arity.
    pub fn push_entity_with_nodes(
        &mut self,
        raw_values: &[&str],
        nodes: &[Option<NodeId>],
    ) -> usize {
        assert_eq!(raw_values.len(), self.schema.len(), "value arity mismatch");
        assert_eq!(nodes.len(), self.schema.len(), "node arity mismatch");
        let id = self.entities.len();
        let values = raw_values
            .iter()
            .zip(self.schema.attrs().to_vec())
            .zip(nodes)
            .map(|((raw, def), &node)| {
                let toks = def.tokenizer.tokenize(raw);
                let tokens = self.dictionary.observe(&toks);
                AttrValue::new(tokens, raw.trim().to_lowercase(), node)
            })
            .collect();
        self.entities.push(Entity { id, values });
        id
    }

    /// Appends an entity, auto-mapping ontology nodes like
    /// [`GroupBuilder::add_entity`].
    pub fn push_entity(&mut self, raw_values: &[&str]) -> usize {
        let nodes: Vec<Option<NodeId>> = raw_values
            .iter()
            .enumerate()
            .map(|(i, raw)| auto_map_value(self.ontologies[i].as_deref(), raw))
            .collect();
        self.push_entity_with_nodes(raw_values, &nodes)
    }

    /// Removes the entity with id `id`, compacting ids: every entity with a
    /// larger id shifts down by one so ids stay dense (`0..len`). Returns
    /// `false` (and changes nothing) for an out-of-range id.
    ///
    /// Tokens the removed entity interned stay in the dictionary — a
    /// dictionary only grows, which is what keeps frozen token orders (see
    /// [`crate::IncrementalDime`]) valid across removals.
    pub fn remove_entity(&mut self, id: usize) -> bool {
        if id >= self.entities.len() {
            return false;
        }
        self.entities.remove(id);
        for e in &mut self.entities[id..] {
            e.id -= 1;
        }
        true
    }
}

/// Maps a raw value to an ontology node: exact whole-value lookup first,
/// then the deepest per-token match, then — per paper footnote 2's
/// "approximate matching based on similarity functions" — the best
/// edit-similarity match above [`APPROX_MAP_THRESHOLD`] (0.8 — one edit on
/// a six-character name), which absorbs
/// typos like "SIGMD" → "sigmod".
fn auto_map_value(ont: Option<&Ontology>, raw: &str) -> Option<NodeId> {
    let ont = ont?;
    let normalized = raw.trim().to_lowercase();
    // The root is the ontology's *name*, not a category — never a target
    // (mapping "unknown venue" to a root called "venue" would make it
    // spuriously similar to everything).
    if let Some(n) = ont.lookup(&normalized).filter(|&n| n != ont.root()) {
        return Some(n);
    }
    if let Some(n) = dime_text::tokenize_words(raw)
        .iter()
        .filter_map(|t| ont.lookup(t))
        .filter(|&n| n != ont.root())
        .max_by_key(|&n| ont.depth(n))
    {
        return Some(n);
    }
    approx_map_value(ont, &normalized)
}

/// Minimum normalized edit similarity for an approximate ontology match.
const APPROX_MAP_THRESHOLD: f64 = 0.8;

/// Best approximate node match by edit similarity, if any clears the
/// threshold (the whole value and each token are both tried).
fn approx_map_value(ont: &Ontology, normalized: &str) -> Option<NodeId> {
    if normalized.is_empty() {
        return None;
    }
    let tokens = dime_text::tokenize_words(normalized);
    let mut best: Option<(f64, u32, NodeId)> = None;
    for id in 1..ont.len() as NodeId {
        let name = ont.name(id);
        // Length pre-filter: similarity ≥ τ needs |len difference| small.
        let sim_whole = bounded_edit_similarity(name, normalized);
        let sim_tok =
            tokens.iter().map(|t| bounded_edit_similarity(name, t)).fold(0.0f64, f64::max);
        let sim = sim_whole.max(sim_tok);
        if sim >= APPROX_MAP_THRESHOLD {
            let depth = ont.depth(id);
            if best.is_none_or(|(bs, bd, _)| (sim, depth) > (bs, bd)) {
                best = Some((sim, depth, id));
            }
        }
    }
    best.map(|(_, _, id)| id)
}

/// Edit similarity with a cheap length-difference bound applied first.
fn bounded_edit_similarity(a: &str, b: &str) -> f64 {
    let (la, lb) = (a.chars().count(), b.chars().count());
    let max = la.max(lb);
    if max == 0 {
        return 1.0;
    }
    // sim = 1 − d/max and d ≥ |la − lb|.
    let bound = 1.0 - (la.abs_diff(lb) as f64) / max as f64;
    if bound < APPROX_MAP_THRESHOLD {
        return 0.0;
    }
    dime_text::edit_similarity(a, b)
}

/// Incrementally constructs a [`Group`].
///
/// # Examples
///
/// ```
/// use dime_core::{GroupBuilder, Schema};
/// use dime_text::TokenizerKind;
/// use dime_ontology::Ontology;
/// use std::sync::Arc;
///
/// let schema = Schema::new([
///     ("Title", TokenizerKind::Words),
///     ("Authors", TokenizerKind::List(',')),
///     ("Venue", TokenizerKind::Words),
/// ]);
/// let mut venues = Ontology::new("venue");
/// venues.add_path(&["computer science", "database", "sigmod"]);
///
/// let mut b = GroupBuilder::new(schema);
/// b.attach_ontology("Venue", Arc::new(venues));
/// let id = b.add_entity(&["KATARA: a data cleaning system", "Xu Chu, Nan Tang", "SIGMOD 2015"]);
/// let group = b.build();
/// assert_eq!(group.len(), 1);
/// // "SIGMOD 2015" auto-mapped to the sigmod node via token lookup.
/// assert!(group.entity(id).value(2).node.is_some());
/// ```
#[derive(Debug)]
pub struct GroupBuilder {
    schema: Arc<Schema>,
    dictionary: Dictionary,
    ontologies: Vec<Option<Arc<Ontology>>>,
    entities: Vec<Entity>,
}

impl GroupBuilder {
    /// Starts a builder over `schema`.
    pub fn new(schema: Schema) -> Self {
        let n = schema.len();
        Self {
            schema: Arc::new(schema),
            dictionary: Dictionary::new(),
            ontologies: vec![None; n],
            entities: Vec::new(),
        }
    }

    /// Attaches an ontology to the attribute named `attr_name`.
    ///
    /// # Panics
    ///
    /// Panics if the schema has no such attribute.
    pub fn attach_ontology(&mut self, attr_name: &str, ontology: Arc<Ontology>) {
        let idx = self
            .schema
            .attr_index(attr_name)
            // dime-check: allow(panic-reaches-service) — documented `# Panics` contract; the serve path only passes attribute names it just read out of this same schema
            .unwrap_or_else(|| panic!("schema has no attribute {attr_name:?}"));
        self.ontologies[idx] = Some(ontology);
    }

    /// Adds an entity from raw attribute strings, auto-mapping ontology
    /// nodes: the whole normalized value is looked up first, then each
    /// token, keeping the **deepest** matching node.
    ///
    /// Returns the new entity's id.
    ///
    /// # Panics
    ///
    /// Panics if `raw_values.len()` differs from the schema arity.
    pub fn add_entity(&mut self, raw_values: &[&str]) -> usize {
        let nodes: Vec<Option<NodeId>> =
            raw_values.iter().enumerate().map(|(i, raw)| self.auto_map(i, raw)).collect();
        self.add_entity_with_nodes(raw_values, &nodes)
    }

    /// Adds an entity with explicit per-attribute ontology nodes (use
    /// `None` for unmapped / ontology-less attributes). Data generators use
    /// this to bypass name lookup.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ from the schema arity.
    pub fn add_entity_with_nodes(
        &mut self,
        raw_values: &[&str],
        nodes: &[Option<NodeId>],
    ) -> usize {
        assert_eq!(raw_values.len(), self.schema.len(), "value arity mismatch");
        assert_eq!(nodes.len(), self.schema.len(), "node arity mismatch");
        let id = self.entities.len();
        let values = raw_values
            .iter()
            .zip(self.schema.attrs())
            .zip(nodes)
            .map(|((raw, def), &node)| {
                let toks = def.tokenizer.tokenize(raw);
                let tokens = self.dictionary.observe(&toks);
                AttrValue::new(tokens, raw.trim().to_lowercase(), node)
            })
            .collect();
        self.entities.push(Entity { id, values });
        id
    }

    /// Finalizes the group.
    pub fn build(self) -> Group {
        Group {
            schema: self.schema,
            dictionary: self.dictionary,
            ontologies: self.ontologies,
            entities: self.entities,
        }
    }

    fn auto_map(&self, attr: usize, raw: &str) -> Option<NodeId> {
        auto_map_value(self.ontologies[attr].as_deref(), raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new([
            ("Title", TokenizerKind::Words),
            ("Authors", TokenizerKind::List(',')),
            ("Venue", TokenizerKind::Words),
        ])
    }

    #[test]
    fn schema_lookup() {
        let s = schema();
        assert_eq!(s.len(), 3);
        assert_eq!(s.attr_index("Authors"), Some(1));
        assert_eq!(s.attr_index("authors"), None);
    }

    #[test]
    fn builder_tokenizes_per_attribute() {
        let mut b = GroupBuilder::new(schema());
        let id = b.add_entity(&["A Data Cleaning System", "Nan Tang, Xu Chu", "VLDB 2013"]);
        let g = b.build();
        let e = g.entity(id);
        assert_eq!(e.value(0).tokens.len(), 4); // a data cleaning system
        assert_eq!(e.value(1).tokens.len(), 2); // two author names
        let names: Vec<&str> =
            e.value(1).tokens.iter().map(|&t| g.dictionary().resolve(t).unwrap()).collect();
        assert!(names.contains(&"nan tang"));
    }

    #[test]
    fn auto_mapping_finds_deepest_node() {
        let mut venues = Ontology::new("venue");
        venues.add_path(&["computer science", "database", "vldb"]);
        let mut b = GroupBuilder::new(schema());
        b.attach_ontology("Venue", Arc::new(venues.clone()));
        let id = b.add_entity(&["t", "a", "VLDB 2013"]);
        let g = b.build();
        let node = g.entity(id).value(2).node.unwrap();
        assert_eq!(g.ontology(2).unwrap().name(node), "vldb");
    }

    #[test]
    fn unmapped_value_has_no_node() {
        let mut venues = Ontology::new("venue");
        venues.add_path(&["cs", "db", "vldb"]);
        let mut b = GroupBuilder::new(schema());
        b.attach_ontology("Venue", Arc::new(venues));
        let id = b.add_entity(&["t", "a", "Journal of Unknown Things"]);
        let g = b.build();
        assert!(g.entity(id).value(2).node.is_none());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_panics() {
        let mut b = GroupBuilder::new(schema());
        b.add_entity(&["only one"]);
    }

    #[test]
    #[should_panic(expected = "no attribute")]
    fn unknown_ontology_attr_panics() {
        let mut b = GroupBuilder::new(schema());
        b.attach_ontology("Nope", Arc::new(Ontology::new("x")));
    }

    #[test]
    fn approximate_mapping_absorbs_typos() {
        let mut venues = Ontology::new("venue");
        venues.add_path(&["cs", "db", "sigmod"]);
        let mut b = GroupBuilder::new(schema());
        b.attach_ontology("Venue", Arc::new(venues));
        let id = b.add_entity(&["t", "a", "SIGMD"]); // one deletion away
        let g = b.build();
        let n = g.entity(id).value(2).node.unwrap();
        assert_eq!(g.ontology(2).unwrap().name(n), "sigmod");
    }

    #[test]
    fn approximate_mapping_rejects_distant_values() {
        let mut venues = Ontology::new("venue");
        venues.add_path(&["cs", "db", "sigmod"]);
        let mut b = GroupBuilder::new(schema());
        b.attach_ontology("Venue", Arc::new(venues));
        let id = b.add_entity(&["t", "a", "Journal of Obscure Results"]);
        let g = b.build();
        assert!(g.entity(id).value(2).node.is_none());
    }

    #[test]
    fn group_push_matches_builder_semantics() {
        let mut b = GroupBuilder::new(schema());
        b.add_entity(&["first title", "ann, bob", "vldb"]);
        let mut g = b.build();
        let id = g.push_entity(&["second title", "ann, carol", "icde"]);
        assert_eq!(id, 1);
        assert_eq!(g.len(), 2);
        // Token sharing with pre-push entities works through the same
        // dictionary.
        let t0 = &g.entity(0).value(1).tokens;
        let t1 = &g.entity(1).value(1).tokens;
        assert!(t0.iter().any(|t| t1.contains(t)), "ann should be shared");
    }

    #[test]
    fn group_push_auto_maps_ontology() {
        let mut venues = Ontology::new("venue");
        venues.add_path(&["cs", "db", "vldb"]);
        let mut b = GroupBuilder::new(schema());
        b.attach_ontology("Venue", Arc::new(venues));
        let mut g = b.build();
        let id = g.push_entity(&["t", "a", "VLDB 2013"]);
        assert!(g.entity(id).value(2).node.is_some());
    }

    #[test]
    fn shared_dictionary_across_entities() {
        let mut b = GroupBuilder::new(schema());
        b.add_entity(&["data cleaning", "nan tang", "vldb"]);
        b.add_entity(&["data quality", "nan tang", "icde"]);
        let g = b.build();
        // "data" and "nan tang" interned once each.
        let t0 = &g.entity(0).value(0).tokens;
        let t1 = &g.entity(1).value(0).tokens;
        assert!(t0.iter().any(|t| t1.contains(t)));
        assert_eq!(g.entity(0).value(1).tokens, g.entity(1).value(1).tokens);
    }
}
