//! Positive and negative rules (paper Section II).
//!
//! A rule is a conjunction of predicates `fᵢ(Aᵢ) ⊙ tᵢ` where `fᵢ` is a
//! similarity function over an attribute and `tᵢ` a threshold. The
//! comparison direction `⊙` follows the rule's *polarity*:
//!
//! * a **positive** rule holds when every predicate attests *similarity*
//!   (`f ≥ θ`, or `distance ≤ θ` for [`SimilarityFn::EditDistance`]);
//! * a **negative** rule holds when every predicate attests
//!   *dissimilarity* (`f ≤ σ`, or `distance ≥ σ`).
//!
//! A rule returning `false` means "don't know", never "the opposite holds".

use crate::entity::{Entity, Group};
use dime_ontology::ontology_similarity_opt;
use dime_text::{
    cosine, dice, edit_distance, edit_distance_leq, edit_similarity, jaccard, overlap,
};
use std::fmt;

/// An edit predicate's threshold comparison collapsed to an exact integer
/// bound on the distance.
///
/// `holds(similarity(a, b))` for [`SimilarityFn::EditDistance`] /
/// [`SimilarityFn::EditSimilarity`] is a monotone function of the integer
/// distance `d`, so the f64 comparison can be pre-solved into one of these
/// forms and then decided by the *bounded* kernel
/// ([`dime_text::edit_distance_leq`]) without ever computing the full
/// distance. The cutoffs are derived guess-then-adjust against the exact
/// floating-point comparison, so the resulting boolean is bit-identical to
/// the unbounded evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EditCheck {
    /// The predicate holds for every achievable distance.
    Always,
    /// The predicate holds for no achievable distance.
    Never,
    /// Holds iff `d ≤ k`.
    AtMost(usize),
    /// Holds iff `d ≥ k`.
    AtLeast(usize),
}

impl EditCheck {
    /// Decides the check on raw strings with the bounded kernel: `O(k·min)`
    /// work instead of the full `O(n·m)` distance.
    pub(crate) fn eval_str(self, a: &str, b: &str) -> bool {
        match self {
            EditCheck::Always => true,
            EditCheck::Never => false,
            EditCheck::AtMost(k) => edit_distance_leq(a, b, k).is_some(),
            EditCheck::AtLeast(k) => k == 0 || edit_distance_leq(a, b, k - 1).is_none(),
        }
    }
}

/// Solves `holds(d as f64)` for an [`SimilarityFn::EditDistance`] predicate
/// into an exact [`EditCheck`].
pub(crate) fn edit_distance_check(threshold: f64, polarity: Polarity) -> EditCheck {
    // The exact comparison `Predicate::holds` performs on the raw distance
    // (EditDistance is the lower-is-similar function).
    let pred = |d: usize| match polarity {
        Polarity::Positive => (d as f64) <= threshold,
        Polarity::Negative => (d as f64) >= threshold,
    };
    let to_k = |g: f64| {
        if g >= usize::MAX as f64 {
            usize::MAX
        } else {
            g.max(0.0) as usize
        }
    };
    match polarity {
        Polarity::Positive => {
            // pred is non-increasing in d: find the largest d that holds.
            if !pred(0) {
                return EditCheck::Never; // threshold < 0 or NaN
            }
            let mut k = to_k(threshold.floor());
            while k < usize::MAX && pred(k + 1) {
                k += 1;
            }
            while k > 0 && !pred(k) {
                k -= 1;
            }
            EditCheck::AtMost(k)
        }
        Polarity::Negative => {
            // pred is non-decreasing in d: find the smallest d that holds.
            if pred(0) {
                return EditCheck::Always; // threshold ≤ 0
            }
            if threshold.is_nan() {
                return EditCheck::Never;
            }
            let mut k = to_k(threshold.ceil()).max(1);
            while k > 1 && pred(k - 1) {
                k -= 1;
            }
            while k < usize::MAX && !pred(k) {
                k += 1;
            }
            EditCheck::AtLeast(k)
        }
    }
}

/// Solves `holds(1 − d/max_len)` for an [`SimilarityFn::EditSimilarity`]
/// predicate into an exact [`EditCheck`]. `max_len` is the larger char
/// count of the pair and must be non-zero (the caller special-cases two
/// empty strings, whose similarity is defined as 1).
pub(crate) fn edit_similarity_check(
    threshold: f64,
    polarity: Polarity,
    max_len: usize,
) -> EditCheck {
    debug_assert!(max_len > 0);
    // The exact f64 the scalar path computes for distance d, and the exact
    // comparison `Predicate::holds` applies to it. d ranges over 0..=max_len.
    let sim = |d: usize| 1.0 - d as f64 / max_len as f64;
    let pred = |d: usize| match polarity {
        Polarity::Positive => sim(d) >= threshold,
        Polarity::Negative => sim(d) <= threshold,
    };
    match polarity {
        Polarity::Positive => {
            // sim is non-increasing in d, so pred is too.
            if !pred(0) {
                return EditCheck::Never;
            }
            if pred(max_len) {
                return EditCheck::Always;
            }
            let guess = ((1.0 - threshold) * max_len as f64).floor();
            let mut k = (guess.max(0.0) as usize).min(max_len);
            while k + 1 <= max_len && pred(k + 1) {
                k += 1;
            }
            while k > 0 && !pred(k) {
                k -= 1;
            }
            EditCheck::AtMost(k)
        }
        Polarity::Negative => {
            // pred is non-decreasing in d.
            if pred(0) {
                return EditCheck::Always;
            }
            if !pred(max_len) {
                return EditCheck::Never;
            }
            let guess = ((1.0 - threshold) * max_len as f64).ceil();
            let mut k = (guess.max(1.0) as usize).min(max_len);
            while k > 1 && pred(k - 1) {
                k -= 1;
            }
            while k < max_len && !pred(k) {
                k += 1;
            }
            EditCheck::AtLeast(k)
        }
    }
}

/// The similarity functions DIME's predicates may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimilarityFn {
    /// `|a ∩ b|` over token sets (`f_ov` in the paper).
    Overlap,
    /// Jaccard over token sets (`f_j`).
    Jaccard,
    /// Dice coefficient over token sets.
    Dice,
    /// Cosine over binary token vectors.
    Cosine,
    /// Normalized edit similarity `1 − d/max(len)` over raw text.
    EditSimilarity,
    /// Raw Levenshtein distance over text — **lower is more similar**.
    EditDistance,
    /// Ontology similarity `2|LCA|/(|n|+|n′|)` (`f_on`).
    Ontology,
}

impl SimilarityFn {
    /// Whether larger values mean "more similar" (false only for
    /// [`SimilarityFn::EditDistance`]).
    pub fn higher_is_similar(self) -> bool {
        !matches!(self, SimilarityFn::EditDistance)
    }

    /// Short display name matching the paper's notation.
    pub fn symbol(self) -> &'static str {
        match self {
            SimilarityFn::Overlap => "f_ov",
            SimilarityFn::Jaccard => "f_j",
            SimilarityFn::Dice => "f_dice",
            SimilarityFn::Cosine => "f_cos",
            SimilarityFn::EditSimilarity => "f_es",
            SimilarityFn::EditDistance => "f_ed",
            SimilarityFn::Ontology => "f_on",
        }
    }
}

/// Whether a rule asserts similarity or dissimilarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// "Similar ⇒ same category" (`ϕ⁺`).
    Positive,
    /// "Dissimilar ⇒ different category" (`φ⁻`).
    Negative,
}

/// One predicate `f(A) ⊙ threshold` of a rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Predicate {
    /// Index of the attribute in the group's schema.
    pub attr: usize,
    /// The similarity function applied to that attribute.
    pub func: SimilarityFn,
    /// The threshold (θ for positive rules, σ for negative rules).
    pub threshold: f64,
}

impl Predicate {
    /// Convenience constructor.
    pub fn new(attr: usize, func: SimilarityFn, threshold: f64) -> Self {
        Self { attr, func, threshold }
    }

    /// Computes the raw similarity (or distance) of this predicate's
    /// function on the two entities' values of this attribute.
    pub fn similarity(&self, group: &Group, a: &Entity, b: &Entity) -> f64 {
        let va = a.value(self.attr);
        let vb = b.value(self.attr);
        match self.func {
            SimilarityFn::Overlap => overlap(&va.tokens, &vb.tokens),
            SimilarityFn::Jaccard => jaccard(&va.tokens, &vb.tokens),
            SimilarityFn::Dice => dice(&va.tokens, &vb.tokens),
            SimilarityFn::Cosine => cosine(&va.tokens, &vb.tokens),
            SimilarityFn::EditSimilarity => edit_similarity(&va.text, &vb.text),
            SimilarityFn::EditDistance => edit_distance(&va.text, &vb.text) as f64,
            SimilarityFn::Ontology => match group.ontology(self.attr) {
                Some(ont) => ontology_similarity_opt(ont, va.node, vb.node),
                None => 0.0,
            },
        }
    }

    /// Whether the computed `value` satisfies this predicate under the given
    /// polarity (see the module docs for the direction table).
    pub fn holds(&self, value: f64, polarity: Polarity) -> bool {
        match (polarity, self.func.higher_is_similar()) {
            (Polarity::Positive, true) => value >= self.threshold,
            (Polarity::Positive, false) => value <= self.threshold,
            (Polarity::Negative, true) => value <= self.threshold,
            (Polarity::Negative, false) => value >= self.threshold,
        }
    }

    /// Evaluates the predicate on an entity pair.
    ///
    /// Edit predicates never compute the full distance here: the threshold
    /// comparison is collapsed to an exact integer bound ([`EditCheck`])
    /// and decided by the bounded kernel, so an adversarially long pair
    /// costs `O(θ·min)` instead of `O(n·m)` while the boolean stays
    /// identical to `holds(similarity(..))`.
    pub fn eval(&self, group: &Group, a: &Entity, b: &Entity, polarity: Polarity) -> bool {
        match self.func {
            SimilarityFn::EditDistance => {
                let (va, vb) = (a.value(self.attr), b.value(self.attr));
                edit_distance_check(self.threshold, polarity).eval_str(&va.text, &vb.text)
            }
            SimilarityFn::EditSimilarity => {
                let (va, vb) = (a.value(self.attr), b.value(self.attr));
                let max = va.char_len.max(vb.char_len) as usize;
                if max == 0 {
                    return self.holds(1.0, polarity);
                }
                edit_similarity_check(self.threshold, polarity, max).eval_str(&va.text, &vb.text)
            }
            _ => self.holds(self.similarity(group, a, b), polarity),
        }
    }

    /// The verification cost estimate of the paper (Section IV-C): the
    /// dominant term of computing this predicate on the pair.
    pub fn cost(&self, group: &Group, a: &Entity, b: &Entity) -> f64 {
        let va = a.value(self.attr);
        let vb = b.value(self.attr);
        match self.func {
            SimilarityFn::Overlap
            | SimilarityFn::Jaccard
            | SimilarityFn::Dice
            | SimilarityFn::Cosine => (va.tokens.len() + vb.tokens.len()) as f64,
            SimilarityFn::EditSimilarity | SimilarityFn::EditDistance => {
                // The DP runs over *chars*, so the cost model must too;
                // `text.len()` (bytes) over-prices non-ASCII values and
                // distorts the benefit order. Char counts are cached at
                // group-load time.
                let min = va.char_len.min(vb.char_len) as f64;
                (self.threshold.max(1.0)) * min
            }
            SimilarityFn::Ontology => {
                let ont = group.ontology(self.attr);
                let d = |n: Option<dime_ontology::NodeId>| {
                    n.and_then(|n| ont.map(|o| o.depth(n))).unwrap_or(1) as f64
                };
                d(va.node) + d(vb.node)
            }
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(A{}) ? {}", self.func.symbol(), self.attr, self.threshold)
    }
}

/// A conjunction of predicates with a polarity.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// The conjunction; must be non-empty for a meaningful rule.
    pub predicates: Vec<Predicate>,
    /// Positive (`ϕ⁺`) or negative (`φ⁻`).
    pub polarity: Polarity,
}

impl Rule {
    /// Builds a positive rule from predicates.
    pub fn positive(predicates: Vec<Predicate>) -> Self {
        Self { predicates, polarity: Polarity::Positive }
    }

    /// Builds a negative rule from predicates.
    pub fn negative(predicates: Vec<Predicate>) -> Self {
        Self { predicates, polarity: Polarity::Negative }
    }

    /// Evaluates the conjunction on a pair of entities.
    ///
    /// Returns `true` when **all** predicates hold; `false` means
    /// "don't know".
    pub fn eval(&self, group: &Group, a: &Entity, b: &Entity) -> bool {
        self.predicates.iter().all(|p| p.eval(group, a, b, self.polarity))
    }

    /// Total verification cost estimate for the pair.
    pub fn cost(&self, group: &Group, a: &Entity, b: &Entity) -> f64 {
        self.predicates.iter().map(|p| p.cost(group, a, b)).sum()
    }

    /// Renders the rule in the textual DSL accepted by
    /// [`crate::parse_rule`], resolving attribute indices to names through
    /// `schema`. Round-trips: `parse_rule(&r.to_dsl(s), s) == r`.
    ///
    /// # Panics
    ///
    /// Panics if a predicate references an attribute outside the schema.
    pub fn to_dsl(&self, schema: &crate::entity::Schema) -> String {
        let polarity = match self.polarity {
            Polarity::Positive => "positive",
            Polarity::Negative => "negative",
        };
        let clauses: Vec<String> = self
            .predicates
            .iter()
            .map(|p| {
                let func = match p.func {
                    SimilarityFn::Overlap => "overlap",
                    SimilarityFn::Jaccard => "jaccard",
                    SimilarityFn::Dice => "dice",
                    SimilarityFn::Cosine => "cosine",
                    SimilarityFn::EditSimilarity => "edit_sim",
                    SimilarityFn::EditDistance => "edit_dist",
                    SimilarityFn::Ontology => "ontology",
                };
                let name = &schema.attrs()[p.attr].name;
                let op = match (self.polarity, p.func.higher_is_similar()) {
                    (Polarity::Positive, true) | (Polarity::Negative, false) => ">=",
                    _ => "<=",
                };
                format!("{func}({name}) {op} {}", p.threshold)
            })
            .collect();
        format!("{polarity}: {}", clauses.join(" and "))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match (self.polarity, true) {
            (Polarity::Positive, _) => "≥",
            (Polarity::Negative, _) => "≤",
        };
        let parts: Vec<String> = self
            .predicates
            .iter()
            .map(|p| {
                let op = if p.func.higher_is_similar() {
                    op
                } else if self.polarity == Polarity::Positive {
                    "≤"
                } else {
                    "≥"
                };
                format!("{}(A{}) {} {}", p.func.symbol(), p.attr, op, p.threshold)
            })
            .collect();
        let sign = match self.polarity {
            Polarity::Positive => "ϕ+",
            Polarity::Negative => "φ-",
        };
        write!(f, "{}: {}", sign, parts.join(" ∧ "))
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::entity::{GroupBuilder, Schema};
    use dime_ontology::Ontology;
    use dime_text::TokenizerKind;
    use std::sync::Arc;

    /// Builds the six Google Scholar entities of paper Figure 1.
    pub(crate) fn figure1_group() -> Group {
        let schema = Schema::new([
            ("Title", TokenizerKind::Words),
            ("Authors", TokenizerKind::List(',')),
            ("Venue", TokenizerKind::Words),
        ]);
        let mut venues = Ontology::new("venue");
        for v in ["icpads"] {
            venues.add_path(&["computer science", "system", v]);
        }
        for v in ["sigmod", "vldb", "icde"] {
            venues.add_path(&["computer science", "database", v]);
        }
        venues.add_path(&["computer science", "information retrieval", "sigir"]);
        venues.add_path(&["chemical sciences", "chemical sciences (general)", "rsc advances"]);
        let mut b = GroupBuilder::new(schema);
        b.attach_ontology("Venue", Arc::new(venues));
        b.add_entity(&[
            "Win: an efficient data placement strategy for parallel xml databases",
            "Nan Tang, Guoren Wang, Jeffrey Xu Yu",
            "ICPADS 2005",
        ]);
        b.add_entity(&[
            "KATARA: A data cleaning system powered by knowledge bases and crowdsourcing",
            "Xu Chu, John Morcos, Ihab F. Ilyas, Mourad Ouzzani, Paolo Papotti, Nan Tang",
            "SIGMOD 2015",
        ]);
        b.add_entity(&[
            "NADEEF: A generalized data cleaning system",
            "Amr Ebaid, Ahmed Elmagarmid, Ihab F. Ilyas, Nan Tang",
            "VLDB 2013",
        ]);
        b.add_entity(&[
            "Hierarchical indexing approach to support xpath queries",
            "Nan Tang, Jeffrey Xu Yu, M. Tamer Ozsu, Kam-Fai Wong",
            "ICDE 2008",
        ]);
        b.add_entity(&[
            "Discriminative bi-term topic model for social news clustering",
            "Yunqing Xia, NJ Tang, Amir Hussain, Erik Cambria",
            "SIGIR 2005",
        ]);
        b.add_entity(&[
            "Extractive and oxidative desulfurization of model oil in polyethylene glycol",
            "Jianlong Wang, Rijie Zhao, Baixin Han, Nan Tang, Kaixi Li",
            "RSC Advances 1905",
        ]);
        b.build()
    }

    /// The paper's running rules over `figure1_group` (attr 1 = Authors,
    /// attr 2 = Venue).
    pub(crate) fn paper_rules() -> (Vec<Rule>, Vec<Rule>) {
        let pos = vec![
            Rule::positive(vec![Predicate::new(1, SimilarityFn::Overlap, 2.0)]),
            Rule::positive(vec![
                Predicate::new(1, SimilarityFn::Overlap, 1.0),
                Predicate::new(2, SimilarityFn::Ontology, 0.75),
            ]),
        ];
        let neg = vec![
            Rule::negative(vec![Predicate::new(1, SimilarityFn::Overlap, 0.0)]),
            Rule::negative(vec![
                Predicate::new(1, SimilarityFn::Overlap, 1.0),
                Predicate::new(2, SimilarityFn::Ontology, 0.25),
            ]),
        ];
        (pos, neg)
    }

    #[test]
    fn example_2_rule_evaluations() {
        let g = figure1_group();
        let (pos, neg) = paper_rules();
        let e = |i: usize| g.entity(i);
        // KATARA (id 1) and NADEEF (id 2) share two authors (Ihab F. Ilyas
        // and Nan Tang) — ϕ1+ holds.
        assert!(pos[0].eval(&g, e(1), e(2)));
        // Win/ICPADS (id 0) and KATARA/SIGMOD (id 1): share only Nan Tang;
        // ontology sim of icpads vs sigmod is 2·2/(4+4) = 0.5 < 0.75 → ϕ2+
        // fails (they still connect transitively through id 3).
        assert!(!pos[1].eval(&g, e(0), e(1)));
        // KATARA/SIGMOD (id 1) vs Hierarchical/ICDE (id 3): share Nan Tang,
        // venues both under Database → 0.75 → ϕ2+ holds (paper Example 2).
        assert!(pos[1].eval(&g, e(1), e(3)));
        // id 4 (Discriminative, "NJ Tang") has no overlapping author with
        // id 1 → φ1- holds.
        assert!(neg[0].eval(&g, e(4), e(1)));
        // id 5 (chemistry paper) shares exactly one author with id 1 and its
        // venue RSC Advances (depth 4, field Chemical Sciences) has ontology
        // similarity 2·1/(4+4) = 0.25 ≤ 0.25 with SIGMOD → φ2- holds.
        assert!(neg[1].eval(&g, e(5), e(1)));
        // But φ1- does not: overlap is 1, not 0.
        assert!(!neg[0].eval(&g, e(5), e(1)));
    }

    #[test]
    fn edit_distance_polarity_is_inverted() {
        let p = Predicate::new(0, SimilarityFn::EditDistance, 2.0);
        assert!(p.holds(1.0, Polarity::Positive)); // d=1 ≤ 2 → similar
        assert!(!p.holds(3.0, Polarity::Positive));
        assert!(p.holds(3.0, Polarity::Negative)); // d=3 ≥ 2 → dissimilar
        assert!(!p.holds(1.0, Polarity::Negative));
    }

    #[test]
    fn missing_ontology_means_zero_similarity() {
        let g = figure1_group();
        // Attribute 0 (Title) has no ontology: similarity must be 0.
        let p = Predicate::new(0, SimilarityFn::Ontology, 0.5);
        let s = p.similarity(&g, g.entity(0), g.entity(1));
        assert_eq!(s, 0.0);
    }

    #[test]
    fn rule_display_formats_directions() {
        let (pos, neg) = paper_rules();
        let s = format!("{}", pos[1]);
        assert!(s.contains("≥"), "{s}");
        let s = format!("{}", neg[1]);
        assert!(s.contains("≤"), "{s}");
    }

    #[test]
    fn cost_estimates_are_positive() {
        let g = figure1_group();
        let (pos, _) = paper_rules();
        let c = pos[1].cost(&g, g.entity(0), g.entity(1));
        assert!(c > 0.0);
    }

    #[test]
    fn edit_checks_solve_exact_cutoffs() {
        assert_eq!(edit_distance_check(2.0, Polarity::Positive), EditCheck::AtMost(2));
        assert_eq!(edit_distance_check(2.5, Polarity::Positive), EditCheck::AtMost(2));
        assert_eq!(edit_distance_check(-0.5, Polarity::Positive), EditCheck::Never);
        assert_eq!(edit_distance_check(f64::NAN, Polarity::Positive), EditCheck::Never);
        assert_eq!(edit_distance_check(0.0, Polarity::Negative), EditCheck::Always);
        assert_eq!(edit_distance_check(2.0, Polarity::Negative), EditCheck::AtLeast(2));
        assert_eq!(edit_distance_check(2.5, Polarity::Negative), EditCheck::AtLeast(3));
        assert_eq!(edit_distance_check(f64::NAN, Polarity::Negative), EditCheck::Never);
        // sim = 1 − d/8: `≥ 0.75` holds iff d ≤ 2, `≤ 0.75` iff d ≥ 2.
        assert_eq!(edit_similarity_check(0.75, Polarity::Positive, 8), EditCheck::AtMost(2));
        assert_eq!(edit_similarity_check(0.75, Polarity::Negative, 8), EditCheck::AtLeast(2));
        assert_eq!(edit_similarity_check(0.0, Polarity::Positive, 8), EditCheck::Always);
        assert_eq!(edit_similarity_check(1.0, Polarity::Negative, 8), EditCheck::Always);
        assert_eq!(edit_similarity_check(0.999, Polarity::Negative, 8), EditCheck::AtLeast(1));
        assert_eq!(edit_similarity_check(1.5, Polarity::Positive, 8), EditCheck::Never);
    }

    #[test]
    fn bounded_edit_eval_matches_unbounded_holds() {
        let schema = Schema::new([("Name", TokenizerKind::Words)]);
        let texts = ["", "a", "ab", "abc", "abcd", "ozsu", "özsu", "nan tang", "n j tang"];
        let mut gb = GroupBuilder::new(schema);
        for t in texts {
            gb.add_entity(&[t]);
        }
        let g = gb.build();
        let thresholds =
            [-1.0, 0.0, 0.2, 0.25, 0.4, 0.5, 0.75, 0.875, 1.0, 1.5, 2.0, 3.0, 8.0, f64::NAN];
        for func in [SimilarityFn::EditDistance, SimilarityFn::EditSimilarity] {
            for t in thresholds {
                let p = Predicate::new(0, func, t);
                for pol in [Polarity::Positive, Polarity::Negative] {
                    for i in 0..texts.len() {
                        for j in 0..texts.len() {
                            let (a, b) = (g.entity(i), g.entity(j));
                            assert_eq!(
                                p.eval(&g, a, b, pol),
                                p.holds(p.similarity(&g, a, b), pol),
                                "{func:?} θ={t} {pol:?} {:?} vs {:?}",
                                texts[i],
                                texts[j],
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn long_adversarial_pair_evaluates_bounded() {
        // Two 8000-char strings sharing nothing: `eval` must answer through
        // the banded `O(θ·min)` path, never the full O(n·m) table.
        let a = "ab".repeat(4000);
        let b = "cd".repeat(4000);
        let schema = Schema::new([("Name", TokenizerKind::Words)]);
        let mut gb = GroupBuilder::new(schema);
        gb.add_entity(&[&a]);
        gb.add_entity(&[&b]);
        let g = gb.build();
        let p = Predicate::new(0, SimilarityFn::EditDistance, 3.0);
        assert!(!p.eval(&g, g.entity(0), g.entity(1), Polarity::Positive));
        assert!(p.eval(&g, g.entity(0), g.entity(1), Polarity::Negative));
        let p = Predicate::new(0, SimilarityFn::EditSimilarity, 0.999);
        assert!(!p.eval(&g, g.entity(0), g.entity(1), Polarity::Positive));
        assert!(p.eval(&g, g.entity(0), g.entity(1), Polarity::Negative));
    }

    #[test]
    fn edit_cost_uses_char_counts() {
        // "ööööö" is 5 chars but 10 bytes. A byte-based cost model prices
        // the unicode pair above the 6-char ASCII pair; the char-based
        // model must price it below, matching the work the DP actually does.
        let schema = Schema::new([("Name", TokenizerKind::Words)]);
        let mut gb = GroupBuilder::new(schema);
        gb.add_entity(&["ööööö"]);
        gb.add_entity(&["üüüüü"]);
        gb.add_entity(&["abcdef"]);
        gb.add_entity(&["uvwxyz"]);
        let g = gb.build();
        let p = Predicate::new(0, SimilarityFn::EditSimilarity, 0.8);
        let unicode_cost = p.cost(&g, g.entity(0), g.entity(1));
        let ascii_cost = p.cost(&g, g.entity(2), g.entity(3));
        assert_eq!(unicode_cost, 5.0); // θ.max(1) · min char count
        assert_eq!(ascii_cost, 6.0);
        assert!(unicode_cost < ascii_cost, "verification order must follow char counts");
    }

    #[test]
    fn dsl_rendering_roundtrips() {
        use crate::parse::parse_rule;
        let g = figure1_group();
        let (pos, neg) = paper_rules();
        for r in pos.iter().chain(neg.iter()) {
            let dsl = r.to_dsl(g.schema());
            let back = parse_rule(&dsl, g.schema()).unwrap_or_else(|e| panic!("{dsl}: {e}"));
            assert_eq!(&back, r, "{dsl}");
        }
    }

    #[test]
    fn empty_rule_is_vacuously_true() {
        let g = figure1_group();
        let r = Rule::positive(vec![]);
        assert!(r.eval(&g, g.entity(0), g.entity(5)));
    }
}
