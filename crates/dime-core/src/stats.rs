//! Partition statistics (paper Table I, Exp-4).
//!
//! After step 1 of DIME, partitions are bucketed by size — `[1, 10)`,
//! `[10, 100)`, `[100, 1000)`, … — and for every bucket we report how many
//! partitions fall into it, how many entities they contain, and how many of
//! those entities are (per ground truth) mis-categorized. The paper uses
//! this to show that conservative positive rules isolate almost all errors
//! inside small partitions.

use std::collections::HashSet;

/// Statistics of one partition-size bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BucketStats {
    /// Number of partitions whose size falls in this bucket.
    pub partitions: usize,
    /// Total entities across those partitions.
    pub entities: usize,
    /// How many of those entities are truly mis-categorized.
    pub errors: usize,
}

/// Decade bucket boundaries: bucket `i` covers sizes `[10^i, 10^(i+1))`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionStats {
    buckets: Vec<BucketStats>,
}

impl PartitionStats {
    /// Computes the bucketed statistics of `partitions` against the ground
    /// truth set of mis-categorized entity ids.
    pub fn compute(partitions: &[Vec<usize>], truth_errors: &HashSet<usize>) -> Self {
        let mut buckets: Vec<BucketStats> = Vec::new();
        for part in partitions {
            let b = Self::bucket_of(part.len());
            if buckets.len() <= b {
                buckets.resize(b + 1, BucketStats::default());
            }
            buckets[b].partitions += 1;
            buckets[b].entities += part.len();
            buckets[b].errors += part.iter().filter(|e| truth_errors.contains(e)).count();
        }
        Self { buckets }
    }

    /// The bucket index for a partition of `size` entities:
    /// `floor(log10(size))`, with empty partitions (which should not occur)
    /// in bucket 0.
    pub fn bucket_of(size: usize) -> usize {
        if size == 0 {
            return 0;
        }
        (size as f64).log10().floor() as usize
    }

    /// Stats of bucket `i` (`[10^i, 10^(i+1))`); zero stats if absent.
    pub fn bucket(&self, i: usize) -> BucketStats {
        self.buckets.get(i).copied().unwrap_or_default()
    }

    /// Number of trailing buckets present.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Iterates `(bucket_index, stats)` for all buckets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, BucketStats)> + '_ {
        self.buckets.iter().copied().enumerate()
    }

    /// Fraction of all errors that live in partitions of size < 10 — the
    /// headline claim of Table I. Returns 1.0 when there are no errors.
    pub fn small_partition_error_fraction(&self) -> f64 {
        let total: usize = self.buckets.iter().map(|b| b.errors).sum();
        if total == 0 {
            return 1.0;
        }
        self.bucket(0).errors as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(PartitionStats::bucket_of(1), 0);
        assert_eq!(PartitionStats::bucket_of(9), 0);
        assert_eq!(PartitionStats::bucket_of(10), 1);
        assert_eq!(PartitionStats::bucket_of(99), 1);
        assert_eq!(PartitionStats::bucket_of(100), 2);
        assert_eq!(PartitionStats::bucket_of(999), 2);
    }

    #[test]
    fn compute_matches_divyakant_style_layout() {
        // 3 small partitions (two w/ errors), 1 medium, 1 large clean.
        let partitions = vec![
            vec![0],
            vec![1, 2],
            vec![3, 4, 5],
            (6..36).map(|x| x).collect::<Vec<_>>(),
            (36..186).collect::<Vec<_>>(),
        ];
        let errors: HashSet<usize> = [0, 1, 7].into_iter().collect();
        let s = PartitionStats::compute(&partitions, &errors);
        assert_eq!(s.bucket(0), BucketStats { partitions: 3, entities: 6, errors: 2 });
        assert_eq!(s.bucket(1), BucketStats { partitions: 1, entities: 30, errors: 1 });
        assert_eq!(s.bucket(2), BucketStats { partitions: 1, entities: 150, errors: 0 });
    }

    #[test]
    fn error_fraction() {
        let partitions = vec![vec![0], (1..12).collect::<Vec<_>>()];
        let errors: HashSet<usize> = [0, 1].into_iter().collect();
        let s = PartitionStats::compute(&partitions, &errors);
        assert!((s.small_partition_error_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_errors_fraction_is_one() {
        let s = PartitionStats::compute(&[vec![0]], &HashSet::new());
        assert_eq!(s.small_partition_error_fraction(), 1.0);
    }
}
