//! Minimal scoped-thread fan-out used by the parallel DIME⁺ engine.
//!
//! The engine only needs two shapes — an order-preserving indexed map and
//! a plain worker fan-out — so this wraps `std::thread::scope` directly
//! instead of pulling in a work-stealing runtime: the work units (one
//! entity row, one signature-bucket shard, one partition) are already
//! coarse and balanced, so contiguous chunking is within noise of
//! stealing, and the dependency footprint stays zero.

/// Inputs below this size run on one worker: spawning a scope of threads
/// costs on the order of 0.1 ms, which dwarfs the work of a few dozen
/// items and would dominate the many small groups of a batch run.
pub(crate) const SEQ_CUTOFF: usize = 64;

/// Resolves a `threads` knob: `0` means one worker per available core.
pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
    } else {
        threads
    }
}

/// Maps `f` over `0..n` on up to `threads` scoped workers, preserving
/// index order in the result. Falls back to a plain sequential map for a
/// single worker (or tiny inputs), so callers can use one code path.
///
/// A panic in any worker propagates to the caller after all workers have
/// been joined by the scope.
pub(crate) fn par_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n < SEQ_CUTOFF {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut parts: Vec<Vec<T>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            let f = &f;
            handles.push(scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>()));
        }
        for h in handles {
            parts.push(h.join().expect("parallel worker panicked"));
        }
    });
    parts.into_iter().flatten().collect()
}

/// Runs `f(worker_index)` once per worker and concatenates the returned
/// buffers in worker order — the fan-out used for sharded candidate
/// generation and striped verification, where each worker walks its own
/// residue class or bucket slice.
pub(crate) fn par_shards<T, F>(threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> Vec<T> + Sync,
{
    let threads = threads.max(1);
    if threads <= 1 {
        return f(0);
    }
    let mut parts: Vec<Vec<T>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let f = &f;
            handles.push(scope.spawn(move || f(t)));
        }
        for h in handles {
            parts.push(h.join().expect("parallel worker panicked"));
        }
    });
    parts.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let seq: Vec<usize> = (0..97).map(|i| i * 3).collect();
        for threads in [1, 2, 5, 16] {
            assert_eq!(par_map(97, threads, |i| i * 3), seq, "threads = {threads}");
        }
        assert!(par_map(0, 4, |i| i).is_empty());
    }

    #[test]
    fn par_shards_concatenates_in_worker_order() {
        let got = par_shards(4, |t| vec![t, t]);
        assert_eq!(got, vec![0, 0, 1, 1, 2, 2, 3, 3]);
        assert_eq!(par_shards(1, |t| vec![t]), vec![0]);
    }

    #[test]
    fn resolve_threads_maps_zero_to_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
