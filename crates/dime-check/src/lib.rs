//! `dime-check` — in-repo static analysis that enforces the invariants
//! the rest of the workspace documents.
//!
//! The production surfaces grown over the last several PRs — the
//! concurrent serve loop, the lock-free union-find, the CRC-checked WAL
//! with its fsync-before-rename contract — rest on conventions that were
//! stated in DESIGN.md but, until this crate, checked by nothing. In the
//! spirit of the source paper's rule-based refinement, the cheapest route
//! to trustworthiness is a small set of explicit, machine-checkable rules
//! applied exhaustively: a token-level lexer (strings, raw strings, char
//! literals, nested block comments — see [`lexer`]), structural scoping
//! for `#[cfg(test)]`/`mod tests` regions and function extents
//! ([`scope`]), and a rule engine ([`analyze`]) that walks every
//! workspace crate and emits `file:line:col` diagnostics, a `--json`
//! report with a suppression inventory, and a non-zero exit on any
//! unsuppressed finding.
//!
//! Deviations are annotated in place:
//!
//! ```text
//! // dime-check: allow(atomic-ordering) — monotone counter, no ordering dependency
//! ```
//!
//! A missing reason, an unknown rule name, or an allow that covers
//! nothing are themselves diagnostics ([`rules::RuleId::is_hygiene`]), so
//! the annotation layer cannot rot. The rule catalog is documented in
//! DESIGN.md ("Static analysis: the rule catalog"); `dime-check` lints
//! itself along with the rest of the workspace.

#![forbid(unsafe_code)]

pub mod analyze;
pub mod flow;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;
pub mod scope;
pub mod suppress;
pub mod workspace;

pub use analyze::{analyze_source, FileContext, FileKind, FileReport, Finding};
pub use graph::CallGraph;
pub use parse::{parse_items, Item, ItemKind};
pub use report::RunReport;
pub use rules::{RuleId, ALL_RULES};
pub use suppress::Suppression;
pub use workspace::{infer_context, workspace_files, SourceFile};

use std::path::{Path, PathBuf};

/// One source file held in memory: what [`analyze_files`] — and the
/// call-graph layer under it — consumes.
#[derive(Debug, Clone)]
pub struct FileSource {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    pub src: String,
    pub ctx: FileContext,
}

/// Analyzes a set of files together: every per-file rule, plus the
/// flow-aware rules that need the whole set's call graph. Returns one
/// report per input file, in order. Flow findings reconcile against
/// suppression comments exactly like per-file findings.
pub fn analyze_files(files: &[FileSource]) -> Vec<FileReport> {
    let mut raws: Vec<Vec<Finding>> =
        files.iter().map(|f| analyze::raw_findings(&f.src, &f.ctx)).collect();
    for (idx, finding) in flow::flow_findings(files) {
        raws[idx].push(finding);
    }
    files.iter().zip(raws).map(|(f, raw)| analyze::reconcile_raw(&f.src, raw)).collect()
}

/// Analyzes every source file of the workspace at `root`.
pub fn run_workspace(root: &Path) -> std::io::Result<RunReport> {
    let mut files = Vec::new();
    for file in workspace_files(root)? {
        let src = std::fs::read_to_string(&file.path)?;
        files.push(FileSource { rel: file.rel, src, ctx: file.ctx });
    }
    let reports = analyze_files(&files);
    let mut run = RunReport::default();
    for (file, report) in files.into_iter().zip(reports) {
        run.push(file.rel, &file.src, report);
    }
    Ok(run)
}

/// Locates the workspace root for tools and tests, trying in order:
///
/// 1. the `DIME_CHECK_ROOT` environment variable (set by the offline
///    harness, whose test binaries run far from the checkout);
/// 2. this crate's compile-time manifest directory, two levels up
///    (absent under plain `rustc`, hence `option_env!`);
/// 3. an upward search from the current directory for a `Cargo.toml`
///    next to a `crates/` directory.
pub fn find_workspace_root() -> Option<PathBuf> {
    if let Ok(root) = std::env::var("DIME_CHECK_ROOT") {
        let root = PathBuf::from(root);
        if root.join("Cargo.toml").is_file() {
            return Some(root);
        }
    }
    if let Some(manifest) = option_env!("CARGO_MANIFEST_DIR") {
        if let Some(root) = Path::new(manifest).parent().and_then(Path::parent) {
            if root.join("Cargo.toml").is_file() {
                return Some(root.to_path_buf());
            }
        }
    }
    let mut at = std::env::current_dir().ok()?;
    loop {
        if at.join("Cargo.toml").is_file() && at.join("crates").is_dir() {
            return Some(at);
        }
        if !at.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance gate, as a test: the workspace this crate lives in
    /// analyzes clean — zero unsuppressed findings — and every
    /// suppression in the tree carries a non-empty reason. Deleting any
    /// single `// dime-check: allow(…)` makes the uncovered finding (or
    /// the unused twin of a stale one) fail this test.
    #[test]
    fn workspace_is_clean_and_every_suppression_is_reasoned() {
        let Some(root) = find_workspace_root() else {
            eprintln!("workspace root not found; skipping (set DIME_CHECK_ROOT)");
            return;
        };
        let run = run_workspace(&root).expect("workspace walk");
        assert_eq!(run.finding_count(), 0, "unsuppressed findings:\n{}", run.render_human());
        for file in &run.files {
            for s in &file.suppressions {
                assert!(
                    !s.reason.trim().is_empty(),
                    "{}:{}: allow({}) carries no reason",
                    file.path,
                    s.line,
                    s.rule_name
                );
            }
        }
        assert!(run.suppression_count() > 0, "the workspace is expected to carry allows");
    }

    /// The JSON report round-trips the suppression inventory: every allow
    /// in the tree appears with its rule, file, and reason.
    #[test]
    fn json_report_carries_the_suppression_inventory() {
        let Some(root) = find_workspace_root() else { return };
        let run = run_workspace(&root).expect("workspace walk");
        let json = run.render_json();
        assert!(json.contains("\"suppressions\":["));
        for file in &run.files {
            for s in &file.suppressions {
                assert!(json.contains(&format!("\"rule\":\"{}\"", s.rule_name)), "{}", s.rule_name);
            }
        }
        assert!(json.contains("\"diagnostics\":0"), "clean tree must report zero diagnostics");
    }
}
