//! Workspace walking: enumerates every Rust source file of every member
//! crate and classifies it into a [`FileContext`].
//!
//! The walk is convention-driven rather than manifest-driven — this
//! workspace (like most) lays crates out as `crates/<name>` plus a root
//! facade package — so the checker needs no TOML parser and no cargo:
//!
//! * `crates/<name>/src/**`: library code (`src/bin/**`, `src/main.rs`
//!   are binaries; `src/lib.rs` is the crate root);
//! * `crates/<name>/{tests,benches,examples}/**`: test, bench, example
//!   kinds, with `tests/fixtures/**` excluded — rule fixtures contain
//!   deliberate violations;
//! * the root package's `src/**`, `tests/**`, `examples/**` likewise.
//!
//! `target/` and dot-directories are never entered.

use crate::analyze::{FileContext, FileKind};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One file to analyze: absolute path, display path, and context.
#[derive(Debug)]
pub struct SourceFile {
    pub path: PathBuf,
    /// Workspace-relative, `/`-separated — stable across machines.
    pub rel: String,
    pub ctx: FileContext,
}

/// Enumerates the workspace's Rust sources under `root`, sorted by
/// relative path so reports are deterministic.
pub fn workspace_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    if !root.join("Cargo.toml").is_file() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} has no Cargo.toml — not a workspace root", root.display()),
        ));
    }
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> =
            fs::read_dir(&crates_dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
        members.sort();
        for member in members {
            if member.is_dir() {
                let name = member
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                collect_package(root, &member, &name, &mut out)?;
            }
        }
    }
    // The root facade package ("dime"): same layout, workspace root dir.
    collect_package(root, root, "dime", &mut out)?;
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

/// Collects one package's sources given its directory and crate name.
fn collect_package(
    root: &Path,
    pkg: &Path,
    name: &str,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    let src = pkg.join("src");
    if src.is_dir() {
        let crate_root = src.join("lib.rs");
        walk(&src, &mut |path| {
            let kind = if path.starts_with(src.join("bin")) || path == src.join("main.rs") {
                FileKind::Bin
            } else {
                FileKind::Lib
            };
            push(root, path, name, kind, path == crate_root, out);
        })?;
    }
    for (dir, kind) in
        [("tests", FileKind::Test), ("benches", FileKind::Bench), ("examples", FileKind::Example)]
    {
        let dir = pkg.join(dir);
        if dir.is_dir() {
            walk(&dir, &mut |path| {
                push(root, path, name, kind, false, out);
            })?;
        }
    }
    Ok(())
}

fn push(
    root: &Path,
    path: &Path,
    name: &str,
    kind: FileKind,
    is_crate_root: bool,
    out: &mut Vec<SourceFile>,
) {
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/");
    let file_stem = path.file_stem().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default();
    out.push(SourceFile {
        path: path.to_path_buf(),
        rel,
        ctx: FileContext { crate_name: name.to_string(), kind, is_crate_root, file_stem },
    });
}

/// Depth-first walk over `.rs` files, skipping `target`, dot-entries, and
/// `fixtures` directories (rule fixtures are deliberate violations).
fn walk(dir: &Path, f: &mut impl FnMut(&Path)) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        if name.starts_with('.') || name == "target" || name == "fixtures" {
            continue;
        }
        if path.is_dir() {
            walk(&path, f)?;
        } else if name.ends_with(".rs") {
            f(&path);
        }
    }
    Ok(())
}

/// Infers a context for one explicitly-passed file path (the non
/// `--workspace` mode): crate from a `crates/<name>/` component, kind
/// from the conventional directory names, crate root from `src/lib.rs`.
pub fn infer_context(path: &Path) -> FileContext {
    let parts: Vec<String> =
        path.components().map(|c| c.as_os_str().to_string_lossy().into_owned()).collect();
    let crate_name = parts
        .iter()
        .position(|p| p == "crates")
        .and_then(|i| parts.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "dime".to_string());
    let has = |d: &str| parts.iter().any(|p| p == d);
    let file = parts.last().map(String::as_str).unwrap_or("");
    let kind = if has("tests") {
        FileKind::Test
    } else if has("benches") {
        FileKind::Bench
    } else if has("examples") {
        FileKind::Example
    } else if has("bin") || file == "main.rs" {
        FileKind::Bin
    } else {
        FileKind::Lib
    };
    let is_crate_root =
        file == "lib.rs" && parts.iter().rev().nth(1).map(String::as_str) == Some("src");
    let file_stem = file.strip_suffix(".rs").unwrap_or(file).to_string();
    FileContext { crate_name, kind, is_crate_root, file_stem }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infer_contexts_from_paths() {
        let c = infer_context(Path::new("crates/dime-serve/src/server.rs"));
        assert_eq!(
            (c.crate_name.as_str(), c.kind, c.is_crate_root, c.file_stem.as_str()),
            ("dime-serve", FileKind::Lib, false, "server")
        );

        let c = infer_context(Path::new("crates/dime-store/src/lib.rs"));
        assert!(c.is_crate_root);

        let c = infer_context(Path::new("crates/dime-bench/src/bin/exp_serve.rs"));
        assert_eq!(c.kind, FileKind::Bin);

        let c = infer_context(Path::new("tests/serve.rs"));
        assert_eq!((c.crate_name.as_str(), c.kind), ("dime", FileKind::Test));

        let c = infer_context(Path::new("crates/dime-bench/benches/bench_scale.rs"));
        assert_eq!(c.kind, FileKind::Bench);
    }

    /// The walker classifies this very repository correctly when run from
    /// a checkout (skipped silently when the layout is absent).
    #[test]
    fn walks_this_workspace() {
        let Some(root) = crate::find_workspace_root() else { return };
        let files = workspace_files(&root).expect("walk");
        assert!(files.len() > 50, "expected a real workspace, got {}", files.len());
        let rels: Vec<&str> = files.iter().map(|f| f.rel.as_str()).collect();
        assert!(rels.contains(&"crates/dime-serve/src/server.rs"));
        assert!(rels.iter().all(|r| !r.contains("/fixtures/")), "fixtures must be excluded");
        let this = files.iter().find(|f| f.rel == "crates/dime-check/src/lib.rs").expect("self");
        assert!(this.ctx.is_crate_root, "dime-check lints itself");
        let bins = files.iter().filter(|f| f.ctx.kind == FileKind::Bin).count();
        assert!(bins > 10, "bench experiment binaries should classify as Bin: {bins}");
    }
}
