//! A lightweight item-level parser on top of the total lexer: modules,
//! functions, and impl blocks with byte spans.
//!
//! This is the structural layer the workspace call graph ([`crate::graph`])
//! and the flow-aware rules ([`crate::flow`]) stand on. It is *not* a Rust
//! parser — it recognizes exactly three item shapes by keyword and brace
//! matching, and it inherits the lexer's totality: on any input, well-formed
//! or garbage, [`parse_items`] never panics, and the items it returns obey
//! the span discipline the property test in `tests/parse_prop.rs` pins:
//!
//! * within one nesting level, item spans are sorted and non-overlapping
//!   (they tile the stretch of file they cover);
//! * a child item's span lies strictly inside its parent's body span;
//! * a braced item's span ends exactly at its body's closing `}`.
//!
//! Nesting deeper than [`MAX_DEPTH`] is recorded but not descended into —
//! adversarial brace soup must not overflow the stack.

use crate::lexer::{Token, TokenKind};
use crate::scope::{is, matching_close, significant};

/// The three item shapes the parser recognizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name { … }` or `mod name;`.
    Mod,
    /// `fn name(…) { … }` or a body-less declaration (trait method,
    /// extern shim). `fn` in type position has no name and is not an item.
    Fn,
    /// `impl Type { … }` / `impl Trait for Type { … }`; the name is the
    /// best-effort self-type name.
    Impl,
}

/// One parsed item: kind, name, byte span, body span, and nested items.
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    /// The item's name (`fn` and `mod`: the declared identifier; `impl`:
    /// the last self-type path segment before the body).
    pub name: String,
    /// Byte offset of the item keyword token.
    pub start: usize,
    /// Byte offset one past the item (its closing `}` or `;`).
    pub end: usize,
    /// The `{ … }` span, braces included; `None` for body-less items.
    pub body: Option<(usize, usize)>,
    /// Items nested inside the body (fns in mods, methods in impls,
    /// fns declared inside fn bodies).
    pub children: Vec<Item>,
}

/// Recursion ceiling: items nested deeper are recorded with empty
/// `children` instead of overflowing the stack on adversarial input.
pub const MAX_DEPTH: usize = 64;

/// Parses the file into a forest of items. Total: never panics, and the
/// returned spans tile (see the module docs for the exact invariants).
pub fn parse_items(src: &str, tokens: &[Token]) -> Vec<Item> {
    let toks = significant(tokens);
    let mut out = Vec::new();
    parse_range(src, &toks, 0, toks.len(), 0, &mut out);
    out
}

/// Depth-first preorder walk over an item forest.
pub fn flatten(items: &[Item]) -> Vec<&Item> {
    let mut out = Vec::new();
    let mut stack: Vec<&Item> = items.iter().rev().collect();
    while let Some(item) = stack.pop() {
        out.push(item);
        stack.extend(item.children.iter().rev());
    }
    out
}

fn parse_range(src: &str, toks: &[Token], lo: usize, hi: usize, depth: usize, out: &mut Vec<Item>) {
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let next = match t.text(src) {
            "mod" => parse_mod(src, toks, i, hi, depth, out),
            "fn" => parse_fn(src, toks, i, hi, depth, out),
            "impl" => parse_impl(src, toks, i, hi, depth, out),
            _ => None,
        };
        match next {
            // Defensive: a malformed item must still advance the cursor.
            Some(n) => i = n.max(i + 1),
            None => i += 1,
        }
    }
}

/// Byte offset one past token `i - 1` (the last token consumed), clamped
/// to the source length for out-of-range indices.
fn end_of(src: &str, toks: &[Token], past: usize) -> usize {
    past.checked_sub(1).and_then(|i| toks.get(i)).map_or(src.len(), |t| t.end)
}

/// Parses the body at `open` (holding `{`): returns the consumed extent,
/// the body span, and the children parsed inside it.
fn parse_body(
    src: &str,
    toks: &[Token],
    open: usize,
    hi: usize,
    depth: usize,
) -> (usize, (usize, usize), Vec<Item>) {
    let close = matching_close(toks, src, open).min(hi.max(open + 1));
    let body_end = end_of(src, toks, close);
    let mut children = Vec::new();
    if depth < MAX_DEPTH {
        parse_range(src, toks, open + 1, close.saturating_sub(1), depth + 1, &mut children);
    }
    (close, (toks[open].start, body_end), children)
}

/// `mod name { … }` / `mod name;`. Returns the index past the item.
fn parse_mod(
    src: &str,
    toks: &[Token],
    at: usize,
    hi: usize,
    depth: usize,
    out: &mut Vec<Item>,
) -> Option<usize> {
    let name = toks.get(at + 1).filter(|t| t.kind == TokenKind::Ident)?.text(src).to_string();
    let after = toks.get(at + 2).filter(|_| at + 2 < hi)?;
    if is(after, src, TokenKind::Punct, "{") {
        let (close, body, children) = parse_body(src, toks, at + 2, hi, depth);
        out.push(Item {
            kind: ItemKind::Mod,
            name,
            start: toks[at].start,
            end: body.1,
            body: Some(body),
            children,
        });
        Some(close)
    } else if is(after, src, TokenKind::Punct, ";") {
        out.push(Item {
            kind: ItemKind::Mod,
            name,
            start: toks[at].start,
            end: after.end,
            body: None,
            children: Vec::new(),
        });
        Some(at + 3)
    } else {
        None
    }
}

/// `fn name … { … }` / `fn name …;`. Skips `(…)`/`[…]` groups while
/// hunting for the body so parameter defaults cannot fake one; `fn` in
/// type position has no trailing identifier and returns `None`.
fn parse_fn(
    src: &str,
    toks: &[Token],
    at: usize,
    hi: usize,
    depth: usize,
    out: &mut Vec<Item>,
) -> Option<usize> {
    let name = toks.get(at + 1).filter(|t| t.kind == TokenKind::Ident)?.text(src).to_string();
    let mut j = at + 2;
    let mut open = None;
    while j < hi {
        let t = &toks[j];
        if is(t, src, TokenKind::Punct, ";") {
            break;
        }
        if is(t, src, TokenKind::Punct, "{") {
            open = Some(j);
            break;
        }
        if is(t, src, TokenKind::Punct, "(") || is(t, src, TokenKind::Punct, "[") {
            j = matching_close(toks, src, j).max(j + 1);
            continue;
        }
        j += 1;
    }
    match open {
        Some(o) => {
            let (close, body, children) = parse_body(src, toks, o, hi, depth);
            out.push(Item {
                kind: ItemKind::Fn,
                name,
                start: toks[at].start,
                end: body.1,
                body: Some(body),
                children,
            });
            Some(close)
        }
        None => {
            // Declaration (`;`) or truncated input: consume to the `;`
            // inclusive, or to the end of the scanned stretch.
            let past = (j + 1).min(hi);
            out.push(Item {
                kind: ItemKind::Fn,
                name,
                start: toks[at].start,
                end: end_of(src, toks, past),
                body: None,
                children: Vec::new(),
            });
            Some(past)
        }
    }
}

/// Keywords that can appear in an impl header but never name the self
/// type (the `where` clause ends name collection entirely).
const IMPL_NON_NAMES: [&str; 8] = ["for", "dyn", "mut", "const", "unsafe", "as", "crate", "where"];

/// `impl … { … }`. The name is the last identifier at angle-bracket depth
/// zero before the body (after `for` when present), which resolves
/// `impl<T> Trait for Type<T>` to `Type`.
fn parse_impl(
    src: &str,
    toks: &[Token],
    at: usize,
    hi: usize,
    depth: usize,
    out: &mut Vec<Item>,
) -> Option<usize> {
    let mut j = at + 1;
    let mut open = None;
    let mut angle = 0i32;
    let mut name = String::new();
    while j < hi {
        let t = &toks[j];
        match t.kind {
            TokenKind::Punct => {
                let s = t.text(src);
                if s == "{" {
                    open = Some(j);
                    break;
                }
                if s == ";" {
                    break;
                }
                if s == "(" || s == "[" {
                    j = matching_close(toks, src, j).max(j + 1);
                    continue;
                }
                if s == "<" {
                    angle += 1;
                } else if s == ">" {
                    angle -= 1;
                }
            }
            TokenKind::Ident => {
                let s = t.text(src);
                if s == "where" {
                    // The where clause constrains generics; whatever name
                    // we have is final.
                    while j < hi {
                        let t = &toks[j];
                        if is(t, src, TokenKind::Punct, "{") || is(t, src, TokenKind::Punct, ";") {
                            break;
                        }
                        j += 1;
                    }
                    continue;
                }
                if angle <= 0 && !IMPL_NON_NAMES.contains(&s) {
                    name = s.to_string();
                }
            }
            _ => {}
        }
        j += 1;
    }
    let o = open?;
    let (close, body, children) = parse_body(src, toks, o, hi, depth);
    out.push(Item {
        kind: ItemKind::Impl,
        name,
        start: toks[at].start,
        end: body.1,
        body: Some(body),
        children,
    });
    Some(close)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> Vec<Item> {
        parse_items(src, &lex(src))
    }

    fn names(items: &[Item]) -> Vec<(ItemKind, String)> {
        items.iter().map(|i| (i.kind, i.name.clone())).collect()
    }

    #[test]
    fn top_level_items_in_order() {
        let src = "fn a() {}\nmod m { fn b() {} }\nimpl S { fn c(&self) {} }";
        let got = items(src);
        assert_eq!(
            names(&got),
            vec![
                (ItemKind::Fn, "a".into()),
                (ItemKind::Mod, "m".into()),
                (ItemKind::Impl, "S".into()),
            ]
        );
        assert_eq!(names(&got[1].children), vec![(ItemKind::Fn, "b".into())]);
        assert_eq!(names(&got[2].children), vec![(ItemKind::Fn, "c".into())]);
    }

    #[test]
    fn spans_tile_and_nest() {
        let src = "fn a() { fn inner() {} }\nfn b() {}";
        let got = items(src);
        assert_eq!(got.len(), 2);
        assert!(got[0].end <= got[1].start, "sibling spans must not overlap");
        let inner = &got[0].children[0];
        let (bs, be) = got[0].body.unwrap();
        assert!(bs < inner.start && inner.end <= be, "child inside parent body");
    }

    #[test]
    fn impl_trait_for_type_names_the_type() {
        let src = "impl<T: Clone> Iterator for Chunks<T> { fn next(&mut self) {} }";
        let got = items(src);
        assert_eq!(got[0].name, "Chunks");
        assert_eq!(got[0].children[0].name, "next");
    }

    #[test]
    fn impl_with_where_clause_keeps_the_type_name() {
        let src = "impl<T> Wrapper<T> where T: Clone { fn get(&self) {} }";
        let got = items(src);
        assert_eq!(got[0].name, "Wrapper");
    }

    #[test]
    fn fn_declarations_and_type_position() {
        let src = "extern \"C\" { fn read(fd: i32) -> isize; }\nfn real(f: fn(u32)) { f(1); }";
        let got = items(src);
        // `fn read(…);` is a body-less item; `fn(u32)` is not an item.
        let flat = flatten(&got);
        let fns: Vec<&str> =
            flat.iter().filter(|i| i.kind == ItemKind::Fn).map(|i| i.name.as_str()).collect();
        assert_eq!(fns, vec!["read", "real"]);
        assert!(flat.iter().find(|i| i.name == "read").unwrap().body.is_none());
    }

    #[test]
    fn mod_declaration_without_body() {
        let got = items("mod wire;\nfn f() {}");
        assert_eq!(names(&got), vec![(ItemKind::Mod, "wire".into()), (ItemKind::Fn, "f".into())]);
        assert!(got[0].body.is_none());
    }

    #[test]
    fn braces_in_strings_do_not_end_bodies() {
        let src = "fn f() { let s = \"}\"; inner(); }\nfn g() {}";
        let got = items(src);
        assert_eq!(got.len(), 2);
        assert!(got[0].end < got[1].start);
    }

    #[test]
    fn unbalanced_input_never_panics() {
        for src in ["fn f() {", "}}}", "mod", "impl {", "fn", "fn x", "mod m {{ fn", "impl < {"] {
            let _ = items(src);
        }
    }

    #[test]
    fn deep_nesting_is_bounded_not_fatal() {
        let mut src = String::new();
        for i in 0..(MAX_DEPTH + 8) {
            src.push_str(&format!("fn f{i}() {{ "));
        }
        src.push_str(&"}".repeat(MAX_DEPTH + 8));
        let got = items(&src);
        assert_eq!(got.len(), 1, "one top-level item with bounded descent");
    }
}
