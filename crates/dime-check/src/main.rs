//! The `dime-check` command-line front end.
//!
//! ```text
//! dime-check --workspace [--root DIR] [--json]
//! dime-check [--json] FILE...
//! dime-check --list-rules [--json]
//! ```
//!
//! Exit status: 0 when the analyzed set is clean, 1 when any unsuppressed
//! finding remains, 2 on usage or I/O errors. All printing in the
//! workspace's static-analysis layer happens here, in the binary — the
//! library stays silent, as `stdout-in-lib` demands.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use dime_check::{
    analyze_source, find_workspace_root, infer_context, run_workspace, RunReport, ALL_RULES,
};

struct Options {
    workspace: bool,
    json: bool,
    list_rules: bool,
    root: Option<PathBuf>,
    files: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: dime-check (--workspace [--root DIR] | FILE...) [--json]\n       dime-check --list-rules [--json]\n"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts =
        Options { workspace: false, json: false, list_rules: false, root: None, files: Vec::new() };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => opts.workspace = true,
            "--json" => opts.json = true,
            "--list-rules" => opts.list_rules = true,
            "--root" => {
                let dir = it.next().ok_or("--root needs a directory argument")?;
                opts.root = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}"));
            }
            file => opts.files.push(PathBuf::from(file)),
        }
    }
    if !opts.list_rules && !opts.workspace && opts.files.is_empty() {
        return Err("nothing to analyze: pass --workspace or file paths".into());
    }
    if opts.workspace && !opts.files.is_empty() {
        return Err("--workspace and explicit files are mutually exclusive".into());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("dime-check: {msg}");
            }
            eprint!("{}", usage());
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        if opts.json {
            // Machine-readable catalog: tooling (CI doc-drift checks,
            // editor integrations) keys off `id`; `flow` marks rules
            // that only run under `--workspace`.
            let rules: Vec<String> = ALL_RULES
                .iter()
                .map(|rule| {
                    format!(
                        "{{\"id\":\"{}\",\"description\":\"{}\",\"hygiene\":{},\"flow\":{}}}",
                        rule.name(),
                        rule.describe().replace('"', "\\\""),
                        rule.is_hygiene(),
                        rule.is_flow()
                    )
                })
                .collect();
            println!("{{\"rules\":[{}]}}", rules.join(","));
        } else {
            for rule in ALL_RULES {
                println!("{:<26} {}", rule.name(), rule.describe());
            }
        }
        return ExitCode::SUCCESS;
    }

    let run = if opts.workspace {
        let root = match opts.root.or_else(find_workspace_root) {
            Some(root) => root,
            None => {
                eprintln!("dime-check: workspace root not found; pass --root DIR");
                return ExitCode::from(2);
            }
        };
        match run_workspace(&root) {
            Ok(run) => run,
            Err(e) => {
                eprintln!("dime-check: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut run = RunReport::default();
        for path in &opts.files {
            let src = match std::fs::read_to_string(path) {
                Ok(src) => src,
                Err(e) => {
                    eprintln!("dime-check: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let ctx = infer_context(path);
            run.push(path.display().to_string(), &src, analyze_source(&src, &ctx));
        }
        run
    };

    if opts.json {
        print!("{}", run.render_json());
    } else {
        print!("{}", run.render_human());
    }
    if run.finding_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
