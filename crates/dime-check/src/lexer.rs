//! A total, panic-free, token-level lexer for Rust source text.
//!
//! The rules in [`crate::rules`] match on *token sequences*, so the lexer's
//! one job is to never misclassify source bytes: an `unwrap` inside a
//! string literal, a `rename(` inside a nested block comment, or a
//! `#[cfg(test)]` spelled inside a raw string must all come out as literal
//! or comment tokens, not as matchable identifiers. To that end it handles
//! line comments, nested block comments, string literals with escapes, raw
//! strings (`r"…"`, `r#"…"#`, any hash depth), byte and C-string variants,
//! char literals versus lifetimes, and raw identifiers (`r#fn`).
//!
//! The lexer is *total*: every byte of the input belongs to exactly one
//! token or to an inter-token whitespace gap, tokens are emitted in source
//! order without overlap, and every token boundary is a UTF-8 character
//! boundary. `tests::prop_lex_round_trips_offsets` rebuilds the source
//! from the token spans and their gaps and asserts byte equality on
//! arbitrary input, so downstream `file:line:col` diagnostics can trust
//! the offsets.

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers like `r#fn`).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// Numeric literal (integers, floats lex as number/punct/number).
    Number,
    /// Any string-like literal: `"…"`, `r"…"`, `b"…"`, `br#"…"#`, `c"…"`.
    Str,
    /// Char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// `// …` (doc `///`/`//!` included) up to, not including, the newline.
    LineComment,
    /// `/* … */` with arbitrary nesting; unterminated runs to EOF.
    BlockComment,
    /// Any other single character.
    Punct,
}

/// One token: a classification plus its byte span in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Token {
    /// The token's text. Spans are produced on char boundaries, so this
    /// never panics for tokens returned by [`lex`] on the same source.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// Maps byte offsets to 1-based `(line, column)` pairs; columns count
/// characters, matching what editors display.
#[derive(Debug)]
pub struct LineMap {
    line_starts: Vec<usize>,
}

impl LineMap {
    pub fn new(src: &str) -> Self {
        let mut line_starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        Self { line_starts }
    }

    /// The 1-based line number containing `offset`.
    pub fn line(&self, offset: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= offset)
    }

    /// The byte offset at which 1-based `line` starts, if it exists.
    pub fn line_start(&self, line: usize) -> Option<usize> {
        self.line_starts.get(line.checked_sub(1)?).copied()
    }

    /// Number of lines (a trailing newline opens a final empty line).
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// 1-based `(line, column)` of `offset` within `src`.
    pub fn line_col(&self, src: &str, offset: usize) -> (usize, usize) {
        let line = self.line(offset);
        let start = self.line_start(line).unwrap_or(0);
        let col = src.get(start..offset).map_or(1, |s| s.chars().count() + 1);
        (line, col)
    }
}

struct Lexer<'a> {
    src: &'a str,
    /// `(byte offset, char)` pairs; `i` indexes into this.
    chars: Vec<(usize, char)>,
    i: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self { src, chars: src.char_indices().collect(), i: 0 }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).map(|&(_, c)| c)
    }

    /// Byte offset of the current character (or EOF).
    fn pos(&self) -> usize {
        self.chars.get(self.i).map_or(self.src.len(), |&(o, _)| o)
    }

    fn bump(&mut self) {
        self.i += 1;
    }

    /// Consumes until after the terminator of a non-raw string/char
    /// literal, honoring backslash escapes. `quote` is `"` or `'`.
    fn eat_quoted(&mut self, quote: char) {
        while let Some(c) = self.peek(0) {
            self.bump();
            if c == '\\' {
                self.bump(); // the escaped character, whatever it is
            } else if c == quote {
                return;
            }
        }
    }

    /// Consumes a raw-string body: the caller has consumed up to and
    /// including the opening quote; `hashes` is the `#` count.
    fn eat_raw(&mut self, hashes: usize) {
        while let Some(c) = self.peek(0) {
            self.bump();
            if c == '"' && (0..hashes).all(|k| self.peek(k) == Some('#')) {
                for _ in 0..hashes {
                    self.bump();
                }
                return;
            }
        }
    }

    /// Whether a raw-string opener (`#`* then `"`) starts at `ahead`
    /// characters from the cursor; returns the hash count.
    fn raw_opener(&self, ahead: usize) -> Option<usize> {
        let mut n = 0;
        while self.peek(ahead + n) == Some('#') {
            n += 1;
        }
        (self.peek(ahead + n) == Some('"')).then_some(n)
    }

    fn eat_ident(&mut self) {
        while self.peek(0).is_some_and(|c| c.is_alphanumeric() || c == '_') {
            self.bump();
        }
    }

    fn next_token(&mut self) -> Option<Token> {
        while self.peek(0).is_some_and(char::is_whitespace) {
            self.bump();
        }
        let c = self.peek(0)?;
        let start = self.pos();
        let kind = match c {
            '/' if self.peek(1) == Some('/') => {
                while self.peek(0).is_some_and(|c| c != '\n') {
                    self.bump();
                }
                TokenKind::LineComment
            }
            '/' if self.peek(1) == Some('*') => {
                self.bump();
                self.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (self.peek(0), self.peek(1)) {
                        (Some('/'), Some('*')) => {
                            depth += 1;
                            self.bump();
                            self.bump();
                        }
                        (Some('*'), Some('/')) => {
                            depth -= 1;
                            self.bump();
                            self.bump();
                        }
                        (Some(_), _) => self.bump(),
                        (None, _) => break, // unterminated: runs to EOF
                    }
                }
                TokenKind::BlockComment
            }
            '"' => {
                self.bump();
                self.eat_quoted('"');
                TokenKind::Str
            }
            // Raw strings and raw identifiers share the `r` prefix.
            'r' | 'b' | 'c' if self.string_prefix() => self.eat_prefixed_literal(),
            '\'' => {
                // `'\…'` and `'x'` are char literals; otherwise a lifetime
                // (or a bare quote, kept as an empty-named lifetime).
                if self.peek(1) == Some('\\')
                    || (self.peek(2) == Some('\'') && self.peek(1) != Some('\''))
                {
                    self.bump();
                    self.eat_quoted('\'');
                    TokenKind::Char
                } else {
                    self.bump();
                    self.eat_ident();
                    TokenKind::Lifetime
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                self.eat_ident();
                TokenKind::Ident
            }
            c if c.is_ascii_digit() => {
                // Integers, prefixed (0x/0b/0o) and suffixed (1u64)
                // literals; `1.5` lexes as number/punct/number, which no
                // rule cares about.
                self.eat_ident();
                TokenKind::Number
            }
            _ => {
                self.bump();
                TokenKind::Punct
            }
        };
        Some(Token { kind, start, end: self.pos() })
    }

    /// Whether the cursor sits on a string-literal prefix: `r"`/`r#"`,
    /// `b"`/`b'`/`br"`, `c"`/`cr"`, or a raw identifier `r#ident`.
    fn string_prefix(&self) -> bool {
        match self.peek(0) {
            Some('r') => self.raw_opener(1).is_some() || self.raw_ident_ahead(),
            Some('b') => {
                matches!(self.peek(1), Some('"') | Some('\''))
                    || (self.peek(1) == Some('r') && self.raw_opener(2).is_some())
            }
            Some('c') => {
                self.peek(1) == Some('"')
                    || (self.peek(1) == Some('r') && self.raw_opener(2).is_some())
            }
            _ => false,
        }
    }

    fn raw_ident_ahead(&self) -> bool {
        self.peek(1) == Some('#') && self.peek(2).is_some_and(|c| c.is_alphabetic() || c == '_')
    }

    fn eat_prefixed_literal(&mut self) -> TokenKind {
        match self.peek(0) {
            Some('r') if self.raw_ident_ahead() => {
                self.bump(); // r
                self.bump(); // #
                self.eat_ident();
                return TokenKind::Ident;
            }
            Some('r') => {
                self.bump();
            }
            Some('b') | Some('c') => {
                self.bump();
                if self.peek(0) == Some('r') {
                    self.bump();
                }
            }
            _ => {}
        }
        if self.peek(0) == Some('\'') {
            self.bump();
            self.eat_quoted('\'');
            return TokenKind::Char;
        }
        let hashes = {
            let mut n = 0;
            while self.peek(0) == Some('#') {
                self.bump();
                n += 1;
            }
            n
        };
        if self.peek(0) == Some('"') {
            self.bump();
            if hashes == 0 {
                self.eat_quoted('"');
            } else {
                self.eat_raw(hashes);
            }
        }
        TokenKind::Str
    }
}

/// Lexes `src` completely. Never panics; every returned span lies on char
/// boundaries and the spans are sorted and non-overlapping.
pub fn lex(src: &str) -> Vec<Token> {
    let mut lexer = Lexer::new(src);
    let mut tokens = Vec::new();
    while let Some(t) = lexer.next_token() {
        tokens.push(t);
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).iter().map(|t| (t.kind, t.text(src).to_string())).collect()
    }

    /// Rebuilds the source from token spans plus the whitespace gaps
    /// between them; equality proves the offsets are exact.
    fn reconstruct(src: &str, tokens: &[Token]) -> Option<String> {
        let mut out = String::new();
        let mut at = 0;
        for t in tokens {
            let gap = src.get(at..t.start)?;
            if !gap.chars().all(char::is_whitespace) {
                return None;
            }
            out.push_str(gap);
            out.push_str(src.get(t.start..t.end)?);
            at = t.end;
        }
        let tail = src.get(at..)?;
        if !tail.chars().all(char::is_whitespace) {
            return None;
        }
        out.push_str(tail);
        Some(out)
    }

    #[test]
    fn idents_and_puncts() {
        let got = kinds("let x = a.unwrap();");
        assert_eq!(got[0], (TokenKind::Ident, "let".into()));
        assert_eq!(got[3], (TokenKind::Ident, "a".into()));
        assert_eq!(got[5], (TokenKind::Ident, "unwrap".into()));
    }

    #[test]
    fn strings_hide_identifiers() {
        let got = kinds(r#"let s = "x.unwrap()";"#);
        assert!(got.iter().all(|(k, t)| *k != TokenKind::Ident || t != "unwrap"));
        assert!(got.iter().any(|(k, _)| *k == TokenKind::Str));
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        let src = r###"let s = r#"inner " quote and panic!()"# ; x"###;
        let got = kinds(src);
        assert!(got.iter().any(|(k, t)| *k == TokenKind::Str && t.contains("panic")));
        assert_eq!(got.last().map(|(_, t)| t.as_str()), Some("x"));
    }

    #[test]
    fn byte_and_c_strings() {
        for src in [r#"b"bytes.unwrap()""#, r##"br#"raw"#"##, r#"c"c-str""#, "b'q'"] {
            let got = kinds(src);
            assert_eq!(got.len(), 1, "{src} should be one literal: {got:?}");
            assert!(matches!(got[0].0, TokenKind::Str | TokenKind::Char), "{src}: {got:?}");
        }
    }

    #[test]
    fn nested_block_comments() {
        let got = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(got.len(), 3);
        assert_eq!(got[1].0, TokenKind::BlockComment);
        assert_eq!(got[2], (TokenKind::Ident, "b".into()));
    }

    #[test]
    fn unterminated_comment_and_string_run_to_eof() {
        assert_eq!(kinds("x /* never closed").len(), 2);
        assert_eq!(kinds("y \"never closed").len(), 2);
    }

    #[test]
    fn char_literal_versus_lifetime() {
        let got = kinds("'a' 'static '\\n' &'b T");
        assert_eq!(got[0].0, TokenKind::Char);
        assert_eq!(got[1], (TokenKind::Lifetime, "'static".into()));
        assert_eq!(got[2].0, TokenKind::Char);
        assert!(got.iter().any(|(k, t)| *k == TokenKind::Lifetime && t == "'b"));
    }

    #[test]
    fn raw_identifier_is_one_ident() {
        let got = kinds("r#fn r#loop normal");
        assert_eq!(got[0], (TokenKind::Ident, "r#fn".into()));
        assert_eq!(got[1], (TokenKind::Ident, "r#loop".into()));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let got = kinds(r#""a \" b" x"#);
        assert_eq!(got.len(), 2);
        assert_eq!(got[1], (TokenKind::Ident, "x".into()));
    }

    #[test]
    fn line_comment_stops_at_newline() {
        let got = kinds("// unwrap() here\nreal");
        assert_eq!(got[0].0, TokenKind::LineComment);
        assert_eq!(got[1], (TokenKind::Ident, "real".into()));
    }

    #[test]
    fn line_map_is_one_based_and_char_counted() {
        let src = "ab\ncdé f\n";
        let map = LineMap::new(src);
        assert_eq!(map.line_col(src, 0), (1, 1));
        assert_eq!(map.line_col(src, 3), (2, 1));
        // é is two bytes; the column after it counts characters.
        let f_at = src.find('f').unwrap();
        assert_eq!(map.line_col(src, f_at), (2, 5));
    }

    #[test]
    fn round_trip_on_tricky_sources() {
        for src in [
            "",
            "  \n\t ",
            "fn main() { let v = vec![1, 2]; v[0]; }",
            r##"let s = r#"a"# ; /* /* */ */ 'x' b'\'' "esc \\\" q" // tail"##,
            "emoji → 'λ' \"héllo\" café",
            "r\"unterminated raw",
            "#![forbid(unsafe_code)]",
        ] {
            let tokens = lex(src);
            assert_eq!(reconstruct(src, &tokens).as_deref(), Some(src), "round-trip {src:?}");
        }
    }
}
