//! Aggregated results over a set of files: `file:line:col` rendering and
//! the `--json` report, including the suppression inventory.
//!
//! JSON is emitted by hand — the checker is dependency-free on purpose
//! (see the crate manifest) and the schema is flat enough that escaping
//! strings is the only subtlety.

use crate::analyze::{FileReport, Finding, SuppressedFinding};
use crate::lexer::LineMap;
use crate::suppress::Suppression;

/// One file's findings located for display.
#[derive(Debug)]
pub struct Located {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    pub findings: Vec<(Finding, usize, usize)>,
    pub suppressed: Vec<SuppressedFinding>,
    pub suppressions: Vec<Suppression>,
}

/// The whole run: every analyzed file plus counts.
#[derive(Debug, Default)]
pub struct RunReport {
    pub files: Vec<Located>,
    pub files_scanned: usize,
}

impl RunReport {
    /// Attaches one file's report, resolving offsets to line/column.
    pub fn push(&mut self, path: String, src: &str, report: FileReport) {
        self.files_scanned += 1;
        let lines = LineMap::new(src);
        let findings = report
            .findings
            .into_iter()
            .map(|f| {
                let (line, col) = lines.line_col(src, f.offset);
                (f, line, col)
            })
            .collect::<Vec<_>>();
        if findings.is_empty() && report.suppressed.is_empty() && report.suppressions.is_empty() {
            return; // keep the report small: clean files carry no entry
        }
        self.files.push(Located {
            path,
            findings,
            suppressed: report.suppressed,
            suppressions: report.suppressions,
        });
    }

    /// Number of unsuppressed findings — the process exit is 1 iff > 0.
    pub fn finding_count(&self) -> usize {
        self.files.iter().map(|f| f.findings.len()).sum()
    }

    pub fn suppressed_count(&self) -> usize {
        self.files.iter().map(|f| f.suppressed.len()).sum()
    }

    pub fn suppression_count(&self) -> usize {
        self.files.iter().map(|f| f.suppressions.len()).sum()
    }

    /// Every unsuppressed finding in deterministic order: sorted by
    /// `(path, line, rule)`, so the rendering is stable regardless of
    /// directory-walk order or of which pass (per-file or flow) produced
    /// a finding.
    fn sorted_findings(&self) -> Vec<(&str, usize, usize, &Finding)> {
        let mut out: Vec<_> = self
            .files
            .iter()
            .flat_map(|file| {
                file.findings.iter().map(|(f, line, col)| (file.path.as_str(), *line, *col, f))
            })
            .collect();
        out.sort_by(|a, b| (a.0, a.1, a.3.rule.name()).cmp(&(b.0, b.1, b.3.rule.name())));
        out
    }

    /// The suppression inventory, sorted by `(path, line, rule)`.
    fn sorted_suppressions(&self) -> Vec<(&str, &Suppression)> {
        let mut out: Vec<_> = self
            .files
            .iter()
            .flat_map(|file| file.suppressions.iter().map(|s| (file.path.as_str(), s)))
            .collect();
        out.sort_by(|a, b| {
            (a.0, a.1.line, a.1.rule_name.as_str()).cmp(&(b.0, b.1.line, b.1.rule_name.as_str()))
        });
        out
    }

    /// Human-readable rendering: one `file:line:col: rule: message` per
    /// finding, then a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for (path, line, col, f) in self.sorted_findings() {
            out.push_str(&format!("{}:{}:{}: {}: {}\n", path, line, col, f.rule.name(), f.message));
        }
        out.push_str(&format!(
            "dime-check: {} finding{} ({} suppressed by {} allows) across {} files\n",
            self.finding_count(),
            if self.finding_count() == 1 { "" } else { "s" },
            self.suppressed_count(),
            self.suppression_count(),
            self.files_scanned,
        ));
        out
    }

    /// The machine-readable report: unsuppressed diagnostics, the full
    /// suppression inventory (rule, file, line, reason), and summary
    /// counts.
    pub fn render_json(&self) -> String {
        let diags: Vec<String> = self
            .sorted_findings()
            .into_iter()
            .map(|(path, line, col, f)| {
                format!(
                    "{{\"rule\":{},\"path\":{},\"line\":{line},\"col\":{col},\"message\":{}}}",
                    json_str(f.rule.name()),
                    json_str(path),
                    json_str(&f.message)
                )
            })
            .collect();
        let sups: Vec<String> = self
            .sorted_suppressions()
            .into_iter()
            .map(|(path, s)| {
                format!(
                    "{{\"rule\":{},\"path\":{},\"line\":{},\"reason\":{}}}",
                    json_str(&s.rule_name),
                    json_str(path),
                    s.line,
                    json_str(&s.reason)
                )
            })
            .collect();
        format!(
            "{{\"diagnostics\":[{}],\"suppressions\":[{}],\"summary\":{{\"diagnostics\":{},\
             \"suppressions\":{},\"suppressed_findings\":{},\"files_scanned\":{}}}}}\n",
            diags.join(","),
            sups.join(","),
            self.finding_count(),
            self.suppression_count(),
            self.suppressed_count(),
            self.files_scanned,
        )
    }
}

/// Escapes a string for JSON output.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{analyze_source, FileContext, FileKind};

    fn run_on(src: &str) -> RunReport {
        let ctx = FileContext {
            crate_name: "dime-serve".into(),
            kind: FileKind::Lib,
            is_crate_root: false,
            file_stem: "x".into(),
        };
        let mut run = RunReport::default();
        run.push("crates/dime-serve/src/x.rs".into(), src, analyze_source(src, &ctx));
        run
    }

    #[test]
    fn human_rendering_carries_file_line_col() {
        let run = run_on("fn f(x: Option<u32>) {\n    x.unwrap();\n}");
        let text = run.render_human();
        assert!(text.contains("crates/dime-serve/src/x.rs:2:7: panic-in-service:"), "{text}");
        assert!(text.contains("1 finding "), "{text}");
    }

    #[test]
    fn json_lists_diagnostics_and_suppression_inventory() {
        let src = "fn f(v: &[u32]) {\n    let _ = v[0]; // dime-check: allow(panic-in-service) — caller guarantees non-empty\n    None::<u32>.unwrap();\n}";
        let json = run_on(src).render_json();
        assert!(json.contains("\"rule\":\"panic-in-service\""), "{json}");
        assert!(json.contains("caller guarantees non-empty"), "{json}");
        assert!(json.contains("\"suppressed_findings\":1"), "{json}");
        assert!(json.contains("\"diagnostics\":1"), "{json}");
    }

    #[test]
    fn rendering_is_sorted_by_path_line_rule() {
        // Push files in reverse path order; the report must not care.
        let ctx = FileContext {
            crate_name: "dime-serve".into(),
            kind: FileKind::Lib,
            is_crate_root: false,
            file_stem: "x".into(),
        };
        let panicky = "fn f(x: Option<u32>) {\n    x.unwrap();\n}";
        let mut run = RunReport::default();
        run.push("crates/dime-serve/src/zz.rs".into(), panicky, analyze_source(panicky, &ctx));
        run.push("crates/dime-serve/src/aa.rs".into(), panicky, analyze_source(panicky, &ctx));
        let human = run.render_human();
        let (a, z) = (human.find("aa.rs").unwrap(), human.find("zz.rs").unwrap());
        assert!(a < z, "findings must sort by path: {human}");
        let json = run.render_json();
        let (a, z) = (json.find("aa.rs").unwrap(), json.find("zz.rs").unwrap());
        assert!(a < z, "diagnostics must sort by path: {json}");
    }

    #[test]
    fn json_escaping_is_sound() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("tab\there"), "\"tab\\there\"");
    }

    #[test]
    fn clean_run_renders_zero() {
        let run = run_on("fn ok() {}");
        assert_eq!(run.finding_count(), 0);
        assert!(run.render_human().contains("0 findings"));
    }
}
