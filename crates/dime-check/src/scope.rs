//! Structural scoping over the token stream: which byte ranges are test
//! code, and which function body encloses a given offset.
//!
//! Rules like `panic-in-service` only govern production paths, so the
//! engine needs to know where test code starts and ends without parsing
//! Rust properly. Three shapes cover this workspace's conventions (and
//! most of the ecosystem's):
//!
//! * an item annotated `#[cfg(test)]` — canonically `mod tests { … }`,
//!   but any item form works (the region ends at the matching `}` of the
//!   item's first brace, or at a top-level `;` for brace-less items);
//! * an item annotated `#[test]`;
//! * a `mod tests { … }` block even without the `cfg` gate.
//!
//! `fsync-before-rename` additionally needs function extents: a `rename(`
//! is judged against `sync_all`/`sync_data` calls earlier in the *same*
//! function, so the tracker records every `fn` body's brace span.

use crate::lexer::{Token, TokenKind};

/// Byte ranges of test-scoped code, sorted and non-overlapping after
/// [`test_regions`] merges nested matches.
#[derive(Debug, Default)]
pub struct TestRegions {
    ranges: Vec<(usize, usize)>,
}

impl TestRegions {
    /// Whether `offset` falls inside any test region.
    pub fn contains(&self, offset: usize) -> bool {
        let i = self.ranges.partition_point(|&(s, _)| s <= offset);
        i > 0 && self.ranges.get(i - 1).is_some_and(|&(_, e)| offset < e)
    }
}

/// Significant tokens: everything the parser structure cares about —
/// comments are invisible to brace matching and attribute detection.
pub(crate) fn significant(tokens: &[Token]) -> Vec<Token> {
    tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .copied()
        .collect()
}

pub(crate) fn is(t: &Token, src: &str, kind: TokenKind, text: &str) -> bool {
    t.kind == kind && t.text(src) == text
}

/// Index just past the bracket that closes the one at `open` (which must
/// hold `{`, `(`, or `[`); scans to EOF on imbalance.
pub(crate) fn matching_close(toks: &[Token], src: &str, open: usize) -> usize {
    let (o, c) = match toks.get(open).map(|t| t.text(src)) {
        Some("{") => ("{", "}"),
        Some("(") => ("(", ")"),
        Some("[") => ("[", "]"),
        _ => return toks.len(),
    };
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            let s = t.text(src);
            if s == o {
                depth += 1;
            } else if s == c {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
        }
    }
    toks.len()
}

/// Parses an attribute starting at `#` (index `at`); returns
/// `(index past the closing ']', attribute marks a test item)`. The test
/// check is tolerant: `#[test]`, `#[cfg(test)]`, and any `cfg(…)` whose
/// argument list mentions the bare word `test` (e.g. `cfg(any(test, …))`).
fn parse_attr(toks: &[Token], src: &str, at: usize) -> Option<(usize, bool)> {
    let mut i = at + 1;
    // Inner attributes (`#![…]`) never gate an item; skip their `!`.
    let inner = toks.get(i).is_some_and(|t| is(t, src, TokenKind::Punct, "!"));
    if inner {
        i += 1;
    }
    if !toks.get(i).is_some_and(|t| is(t, src, TokenKind::Punct, "[")) {
        return None;
    }
    let end = matching_close(toks, src, i);
    let body = &toks[i + 1..end.saturating_sub(1)];
    let is_test = !inner
        && match body.first().map(|t| t.text(src)) {
            Some("test") => body.len() == 1,
            Some("cfg") => body.iter().any(|t| is(t, src, TokenKind::Ident, "test")),
            _ => false,
        };
    Some((end, is_test))
}

/// After an item's attributes, the item's extent: up to a top-level `;`
/// (brace-less items like `use` or a gated `mod tests;`) or the matching
/// `}` of its first brace.
fn item_end(toks: &[Token], src: &str, mut i: usize) -> usize {
    while let Some(t) = toks.get(i) {
        if is(t, src, TokenKind::Punct, ";") {
            return i + 1;
        }
        if is(t, src, TokenKind::Punct, "{") {
            return matching_close(toks, src, i);
        }
        // Skip over any bracketed group (generics stay flat: `<` is not
        // bracket-matched, but `(…)`/`[…]` in signatures are).
        if is(t, src, TokenKind::Punct, "(") || is(t, src, TokenKind::Punct, "[") {
            i = matching_close(toks, src, i);
            continue;
        }
        i += 1;
    }
    toks.len()
}

/// Computes the byte ranges of test-scoped code.
pub fn test_regions(src: &str, tokens: &[Token]) -> TestRegions {
    let toks = significant(tokens);
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if is(t, src, TokenKind::Punct, "#") {
            if let Some((mut after, is_test)) = parse_attr(&toks, src, i) {
                // Fold any stacked attributes into the same item.
                let mut any_test = is_test;
                while toks.get(after).is_some_and(|t| is(t, src, TokenKind::Punct, "#")) {
                    match parse_attr(&toks, src, after) {
                        Some((next, test)) => {
                            any_test |= test;
                            after = next;
                        }
                        None => break,
                    }
                }
                if any_test {
                    let end = item_end(&toks, src, after);
                    let hi = toks.get(end.saturating_sub(1)).map_or(src.len(), |t| t.end);
                    ranges.push((t.start, hi));
                    i = end;
                    continue;
                }
                i = after;
                continue;
            }
        }
        if is(t, src, TokenKind::Ident, "mod")
            && toks.get(i + 1).is_some_and(|t| is(t, src, TokenKind::Ident, "tests"))
            && toks.get(i + 2).is_some_and(|t| is(t, src, TokenKind::Punct, "{"))
        {
            let end = matching_close(&toks, src, i + 2);
            let hi = toks.get(end.saturating_sub(1)).map_or(src.len(), |t| t.end);
            ranges.push((t.start, hi));
            i = end;
            continue;
        }
        i += 1;
    }
    ranges.sort_unstable();
    // Merge overlaps so `contains` can binary-search.
    let mut merged: Vec<(usize, usize)> = Vec::new();
    for (s, e) in ranges {
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    TestRegions { ranges: merged }
}

/// One function body's byte extent (the `{ … }` span, braces included).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnBody {
    pub start: usize,
    pub end: usize,
}

/// Every `fn` body in the file, nested functions and methods included,
/// sorted by start offset. `fn` in type position (`fn()` pointers) has no
/// following identifier and is skipped.
pub fn fn_bodies(src: &str, tokens: &[Token]) -> Vec<FnBody> {
    let toks = significant(tokens);
    let mut bodies = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !is(t, src, TokenKind::Ident, "fn") {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|n| n.kind == TokenKind::Ident) {
            continue; // `fn(…)` type position
        }
        // Walk to the body's `{`, stopping at `;` (trait declarations).
        let mut j = i + 2;
        let mut found = None;
        while let Some(t) = toks.get(j) {
            if is(t, src, TokenKind::Punct, ";") {
                break;
            }
            if is(t, src, TokenKind::Punct, "{") {
                found = Some(j);
                break;
            }
            if is(t, src, TokenKind::Punct, "(") || is(t, src, TokenKind::Punct, "[") {
                j = matching_close(&toks, src, j);
                continue;
            }
            j += 1;
        }
        if let Some(open) = found {
            let end = matching_close(&toks, src, open);
            let hi = toks.get(end.saturating_sub(1)).map_or(src.len(), |t| t.end);
            bodies.push(FnBody { start: toks[open].start, end: hi });
        }
    }
    bodies.sort_by_key(|b| b.start);
    bodies
}

/// The innermost function body containing `offset`, if any.
pub fn enclosing_fn(bodies: &[FnBody], offset: usize) -> Option<FnBody> {
    bodies.iter().filter(|b| b.start <= offset && offset < b.end).max_by_key(|b| b.start).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn regions_of(src: &str) -> TestRegions {
        test_regions(src, &lex(src))
    }

    #[test]
    fn cfg_test_mod_is_a_region() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let r = regions_of(src);
        assert!(!r.contains(src.find("live").unwrap()));
        assert!(r.contains(src.find("unwrap").unwrap()));
    }

    #[test]
    fn bare_mod_tests_is_a_region() {
        let src = "mod tests { fn t() {} }\nfn live() {}";
        let r = regions_of(src);
        assert!(r.contains(src.find("fn t").unwrap()));
        assert!(!r.contains(src.find("live").unwrap()));
    }

    #[test]
    fn test_attr_covers_one_function() {
        let src = "#[test]\nfn t() { a(); }\nfn live() { b(); }";
        let r = regions_of(src);
        assert!(r.contains(src.find("a()").unwrap()));
        assert!(!r.contains(src.find("b()").unwrap()));
    }

    #[test]
    fn stacked_attributes_still_gate() {
        let src = "#[allow(dead_code)]\n#[cfg(test)]\nfn t() { a(); }\nfn live() {}";
        assert!(regions_of(src).contains(src.find("a()").unwrap()));
    }

    #[test]
    fn cfg_any_test_counts() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nmod helpers { fn h() {} }";
        assert!(regions_of(src).contains(src.find("fn h").unwrap()));
    }

    #[test]
    fn non_test_attrs_are_not_regions() {
        let src = "#[derive(Debug)]\nstruct S { x: u32 }\n#![forbid(unsafe_code)]";
        let r = regions_of(src);
        assert!(!r.contains(src.find("x: u32").unwrap()));
    }

    #[test]
    fn braces_in_strings_do_not_confuse_matching() {
        let src = "#[cfg(test)]\nmod tests { fn t() { let s = \"}\"; a(); } }\nfn live() {}";
        let r = regions_of(src);
        assert!(r.contains(src.find("a()").unwrap()));
        assert!(!r.contains(src.find("live").unwrap()));
    }

    #[test]
    fn fn_bodies_nest_and_resolve_innermost() {
        let src = "fn outer() { fn inner() { mark(); } other(); }";
        let bodies = fn_bodies(src, &lex(src));
        assert_eq!(bodies.len(), 2);
        let mark = src.find("mark").unwrap();
        let inner = enclosing_fn(&bodies, mark).unwrap();
        assert!(inner.start > bodies[0].start, "innermost body wins");
        let other = src.find("other").unwrap();
        assert_eq!(enclosing_fn(&bodies, other), Some(bodies[0]));
    }

    #[test]
    fn fn_type_position_is_not_a_body() {
        let src = "fn real(f: fn(u32) -> u32) { f(1); }";
        assert_eq!(fn_bodies(src, &lex(src)).len(), 1);
    }
}
