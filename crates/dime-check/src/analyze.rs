//! The rule engine: runs the catalog over one lexed file and reconciles
//! raw findings with suppression comments.
//!
//! Matching is token-sequence based — the lexer has already hidden
//! strings and comments — and scope-aware: source rules only govern
//! production code (library and binary kinds, outside test regions),
//! while suppression hygiene applies everywhere a `dime-check:` comment
//! appears.

use crate::lexer::{lex, LineMap, Token, TokenKind};
use crate::parse::{flatten, parse_items, ItemKind};
use crate::rules::RuleId;
use crate::scope::{enclosing_fn, fn_bodies, test_regions};
use crate::suppress::{parse_suppressions, Suppression};

/// How a file participates in its crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source (`src/**`, excluding `src/bin` and `src/main.rs`).
    Lib,
    /// Binary source (`src/bin/**`, `src/main.rs`).
    Bin,
    /// Integration tests (`tests/**`).
    Test,
    /// Benchmarks (`benches/**`).
    Bench,
    /// Examples (`examples/**`).
    Example,
}

impl FileKind {
    /// Production code: where the source rules apply.
    pub fn is_production(self) -> bool {
        matches!(self, FileKind::Lib | FileKind::Bin)
    }
}

/// Where a file sits: enough context for every applicability decision.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Package name (`dime-serve`, …; the facade package is `dime`).
    pub crate_name: String,
    pub kind: FileKind,
    /// Whether this file is the crate root (`src/lib.rs`).
    pub is_crate_root: bool,
    /// File name without the `.rs` extension (`poll`, `server`, …) —
    /// lets module-scoped rules target one file by convention.
    pub file_stem: String,
}

/// One rule violation at a byte offset.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: RuleId,
    pub offset: usize,
    pub message: String,
}

/// A finding that an active suppression covered.
#[derive(Debug, Clone)]
pub struct SuppressedFinding {
    pub finding: Finding,
    pub reason: String,
}

/// Everything the engine learned about one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Unsuppressed findings, source rules and hygiene alike. Non-empty
    /// means the check fails.
    pub findings: Vec<Finding>,
    /// Findings covered by an active suppression (reported in `--json`).
    pub suppressed: Vec<SuppressedFinding>,
    /// Every `dime-check:` comment seen, for the suppression inventory.
    pub suppressions: Vec<Suppression>,
}

/// Crates whose service path must not panic. dime-rulespec is here
/// because its parser runs inside the serve request path: a live `rules`
/// install hands it attacker-shaped bytes, so it answers with
/// diagnostics, never panics.
pub(crate) const SERVICE_CRATES: [&str; 4] =
    ["dime-serve", "dime-store", "dime-cluster", "dime-rulespec"];
/// Crates allowed to read the wall clock from library code.
const WALL_CLOCK_CRATES: [&str; 2] = ["dime-trace", "dime-bench"];
/// The bench harness prints measurements from its library by design.
const STDOUT_CRATES: [&str; 1] = ["dime-bench"];

/// Keywords that may directly precede `[` starting an array literal,
/// slice pattern, or type — contexts that are not indexing.
const NON_INDEX_KEYWORDS: [&str; 20] = [
    "let", "in", "if", "else", "match", "return", "break", "continue", "loop", "while", "for",
    "move", "mut", "ref", "as", "where", "unsafe", "box", "dyn", "yield",
];

/// Macros whose invocation panics (the assert family is deliberately not
/// listed: service code states invariants with `debug_assert!`, and the
/// few release asserts guard constructor contracts, not request paths).
pub(crate) const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Analyzes one file's source text under its context, per-file rules
/// only. `--workspace` mode additionally merges the flow rules' findings
/// before reconciling — see [`crate::analyze_files`].
pub fn analyze_source(src: &str, ctx: &FileContext) -> FileReport {
    reconcile_raw(src, raw_findings(src, ctx))
}

/// Runs every per-file rule, returning raw (pre-suppression) findings.
pub(crate) fn raw_findings(src: &str, ctx: &FileContext) -> Vec<Finding> {
    let tokens = lex(src);
    let mut raw = Vec::new();
    if ctx.kind.is_production() {
        let regions = test_regions(src, &tokens);
        let toks: Vec<Token> = tokens
            .iter()
            .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .copied()
            .collect();
        let live = |t: &Token| !regions.contains(t.start);
        if SERVICE_CRATES.contains(&ctx.crate_name.as_str()) {
            check_panic_in_service(src, &toks, &live, &mut raw);
            if matches!(ctx.crate_name.as_str(), "dime-store" | "dime-cluster") {
                check_fsync_before_rename(src, &toks, &live, &mut raw);
            }
        }
        check_atomic_ordering(src, &toks, &live, &mut raw);
        if ctx.kind == FileKind::Lib && !WALL_CLOCK_CRATES.contains(&ctx.crate_name.as_str()) {
            check_wall_clock(src, &toks, &live, &mut raw);
        }
        if ctx.kind == FileKind::Lib && !STDOUT_CRATES.contains(&ctx.crate_name.as_str()) {
            check_stdout_in_lib(src, &toks, &live, &mut raw);
        }
        if matches!(ctx.crate_name.as_str(), "dime-store" | "dime-cluster") {
            check_wal_tags(src, &toks, &live, &mut raw);
        }
        if ctx.crate_name == "dime-cluster" {
            check_decode_before_append(src, &toks, &live, &mut raw);
        }
        if ctx.is_crate_root {
            check_forbid_unsafe(src, &toks, &mut raw);
        }
    }
    raw
}

/// Reconciles raw findings (per-file and flow alike) against the file's
/// suppression comments.
pub(crate) fn reconcile_raw(src: &str, raw: Vec<Finding>) -> FileReport {
    let tokens = lex(src);
    let lines = LineMap::new(src);
    let suppressions = parse_suppressions(src, &tokens, &lines);
    reconcile(raw, suppressions, &lines)
}

/// Splits raw findings into suppressed and surfaced, then adds the
/// suppression hygiene findings.
fn reconcile(raw: Vec<Finding>, suppressions: Vec<Suppression>, lines: &LineMap) -> FileReport {
    let mut used = vec![false; suppressions.len()];
    let mut report = FileReport { suppressions: Vec::new(), ..Default::default() };
    for finding in raw {
        let line = lines.line(finding.offset);
        let cover = suppressions
            .iter()
            .position(|s| s.active() && s.rule == Some(finding.rule) && s.target_line == line);
        match cover {
            Some(i) => {
                used[i] = true;
                report
                    .suppressed
                    .push(SuppressedFinding { finding, reason: suppressions[i].reason.clone() });
            }
            None => report.findings.push(finding),
        }
    }
    for (i, s) in suppressions.iter().enumerate() {
        let hygiene = if !s.well_formed {
            Some((
                RuleId::UnknownRule,
                "unparsable dime-check comment (expected `dime-check: allow(<rule>) — <reason>`)"
                    .to_string(),
            ))
        } else if s.rule.is_none() {
            Some((RuleId::UnknownRule, format!("unknown rule `{}` in allow(…)", s.rule_name)))
        } else if s.reason.is_empty() {
            Some((
                RuleId::SuppressionMissingReason,
                format!("allow({}) carries no reason — append `— <why this is safe>`", s.rule_name),
            ))
        } else if !used[i] {
            Some((
                RuleId::UnusedSuppression,
                format!(
                    "allow({}) covers no finding on line {} — delete it",
                    s.rule_name, s.target_line
                ),
            ))
        } else {
            None
        };
        if let Some((rule, message)) = hygiene {
            report.findings.push(Finding { rule, offset: s.offset, message });
        }
    }
    report.findings.sort_by_key(|f| f.offset);
    report.suppressions = suppressions;
    report
}

fn ident_at<'a>(src: &'a str, toks: &[Token], i: usize) -> Option<&'a str> {
    toks.get(i).filter(|t| t.kind == TokenKind::Ident).map(|t| t.text(src))
}

fn punct_at(src: &str, toks: &[Token], i: usize, p: &str) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokenKind::Punct && t.text(src) == p)
}

/// `unwrap`/`expect` method calls, panicking macros, and `[…]` indexing.
fn check_panic_in_service(
    src: &str,
    toks: &[Token],
    live: &dyn Fn(&Token) -> bool,
    out: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        if !live(t) {
            continue;
        }
        match t.kind {
            TokenKind::Ident => {
                let name = t.text(src);
                if (name == "unwrap" || name == "expect")
                    && i > 0
                    && punct_at(src, toks, i - 1, ".")
                    && punct_at(src, toks, i + 1, "(")
                {
                    out.push(Finding {
                        rule: RuleId::PanicInService,
                        offset: t.start,
                        message: format!(
                            "`.{name}()` on the service path — return a typed error instead \
                             (or add a reasoned allow)"
                        ),
                    });
                } else if PANIC_MACROS.contains(&name) && punct_at(src, toks, i + 1, "!") {
                    out.push(Finding {
                        rule: RuleId::PanicInService,
                        offset: t.start,
                        message: format!("`{name}!` on the service path — answer with an error"),
                    });
                }
            }
            TokenKind::Punct if t.text(src) == "[" && i > 0 => {
                let prev = &toks[i - 1];
                let indexes = match prev.kind {
                    TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text(src)),
                    TokenKind::Punct => matches!(prev.text(src), ")" | "]" | "?"),
                    _ => false,
                };
                if indexes && live(prev) {
                    out.push(Finding {
                        rule: RuleId::PanicInService,
                        offset: t.start,
                        message: "`[…]` indexing can panic on the service path — use `.get(…)` \
                                  (or add a reasoned allow)"
                            .to_string(),
                    });
                }
            }
            _ => {}
        }
    }
}

/// Every `Ordering::Relaxed` outside an annotated (allow-commented) site.
fn check_atomic_ordering(
    src: &str,
    toks: &[Token],
    live: &dyn Fn(&Token) -> bool,
    out: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        if live(t)
            && ident_at(src, toks, i) == Some("Ordering")
            && punct_at(src, toks, i + 1, ":")
            && punct_at(src, toks, i + 2, ":")
            && ident_at(src, toks, i + 3) == Some("Relaxed")
        {
            out.push(Finding {
                rule: RuleId::AtomicOrdering,
                offset: t.start,
                message: "`Ordering::Relaxed` outside an annotated counter — state why no \
                          ordering is needed in an allow comment"
                    .to_string(),
            });
        }
    }
}

/// `rename(` must see `sync_all(`/`sync_data(` earlier in its function.
fn check_fsync_before_rename(
    src: &str,
    toks: &[Token],
    live: &dyn Fn(&Token) -> bool,
    out: &mut Vec<Finding>,
) {
    let bodies = fn_bodies(src, toks);
    let call = |name: &str, i: usize| {
        ident_at(src, toks, i) == Some(name) && punct_at(src, toks, i + 1, "(")
    };
    let syncs: Vec<usize> = (0..toks.len())
        .filter(|&i| call("sync_all", i) || call("sync_data", i))
        .map(|i| toks[i].start)
        .collect();
    for i in 0..toks.len() {
        if !call("rename", i) || !live(&toks[i]) {
            continue;
        }
        let at = toks[i].start;
        let synced = enclosing_fn(&bodies, at)
            .is_some_and(|body| syncs.iter().any(|&s| body.start <= s && s < at));
        if !synced {
            out.push(Finding {
                rule: RuleId::FsyncBeforeRename,
                offset: at,
                message: "`rename(` with no earlier `sync_all`/`sync_data` in this function — \
                          a rename only commits durably after the data is fsynced"
                    .to_string(),
            });
        }
    }
}

/// `Instant::now` and `SystemTime` in core library code.
fn check_wall_clock(
    src: &str,
    toks: &[Token],
    live: &dyn Fn(&Token) -> bool,
    out: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        if !live(t) {
            continue;
        }
        if ident_at(src, toks, i) == Some("Instant")
            && punct_at(src, toks, i + 1, ":")
            && punct_at(src, toks, i + 2, ":")
            && ident_at(src, toks, i + 3) == Some("now")
        {
            out.push(Finding {
                rule: RuleId::WallClockInCore,
                offset: t.start,
                message: "`Instant::now()` in core library code — wall-clock reads belong in \
                          dime-trace, dime-bench, or binaries (replay determinism)"
                    .to_string(),
            });
        } else if ident_at(src, toks, i) == Some("SystemTime") {
            out.push(Finding {
                rule: RuleId::WallClockInCore,
                offset: t.start,
                message: "`SystemTime` in core library code — wall-clock state breaks replay \
                          determinism"
                    .to_string(),
            });
        }
    }
}

/// The crate root must carry `#![forbid(unsafe_code)]`.
fn check_forbid_unsafe(src: &str, toks: &[Token], out: &mut Vec<Finding>) {
    let found = (0..toks.len()).any(|i| {
        punct_at(src, toks, i, "#")
            && punct_at(src, toks, i + 1, "!")
            && punct_at(src, toks, i + 2, "[")
            && ident_at(src, toks, i + 3) == Some("forbid")
            && punct_at(src, toks, i + 4, "(")
            && ident_at(src, toks, i + 5) == Some("unsafe_code")
    });
    if !found {
        out.push(Finding {
            rule: RuleId::ForbidUnsafeDrift,
            offset: 0,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
}

/// `wal-tag-exhaustive`, encode side: every tag byte an `*encode*`
/// function pushes must appear as a match arm in the paired `*decode*`
/// function.
///
/// Tags are recognized as `push(N)` with a single-token argument — a
/// number literal or a same-file `const NAME: u8 = N;` — inside any
/// function whose name contains `encode`. Match arms are number or
/// known-const tokens followed by `=>` inside functions whose name
/// contains `decode`. The pair for `encode_record` is `decode_record`
/// (name substitution); when no such function exists, the union of the
/// file's decode arms stands in. Files with no decode function are out
/// of scope — they construct frames someone else interprets.
fn check_wal_tags(
    src: &str,
    toks: &[Token],
    live: &dyn Fn(&Token) -> bool,
    out: &mut Vec<Finding>,
) {
    // Same-file integer constants: `const NAME: <ty> = N ;`.
    let mut consts: Vec<(&str, u64)> = Vec::new();
    for i in 0..toks.len() {
        if ident_at(src, toks, i) != Some("const") {
            continue;
        }
        let Some(name) = ident_at(src, toks, i + 1) else { continue };
        let mut j = i + 2;
        while j < toks.len() && !punct_at(src, toks, j, "=") && !punct_at(src, toks, j, ";") {
            j += 1;
        }
        if punct_at(src, toks, j, "=") {
            if let Some(t) = toks.get(j + 1).filter(|t| t.kind == TokenKind::Number) {
                if let Ok(v) = t.text(src).parse::<u64>() {
                    consts.push((name, v));
                }
            }
        }
    }
    let resolve = |i: usize| -> Option<u64> {
        let t = toks.get(i)?;
        match t.kind {
            TokenKind::Number => t.text(src).parse().ok(),
            TokenKind::Ident => {
                let name = t.text(src);
                consts.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
            }
            _ => None,
        }
    };

    let items = parse_items(src, toks);
    let fns: Vec<(&str, (usize, usize))> = flatten(&items)
        .into_iter()
        .filter(|it| it.kind == ItemKind::Fn)
        .filter_map(|it| it.body.map(|b| (it.name.as_str(), b)))
        .collect();
    let within = |body: (usize, usize)| {
        (0..toks.len()).filter(move |&i| body.0 <= toks[i].start && toks[i].start < body.1)
    };

    // Decode side: values matched by `=>` arms, per decode function.
    let mut decode_arms: Vec<(&str, Vec<u64>)> = Vec::new();
    for &(name, body) in fns.iter().filter(|(n, _)| n.contains("decode")) {
        let mut arms = Vec::new();
        for i in within(body) {
            if punct_at(src, toks, i + 1, "=") && punct_at(src, toks, i + 2, ">") {
                if let Some(v) = resolve(i) {
                    arms.push(v);
                }
            }
        }
        decode_arms.push((name, arms));
    }
    if decode_arms.is_empty() {
        return;
    }
    let all_arms: Vec<u64> = decode_arms.iter().flat_map(|(_, a)| a.iter().copied()).collect();

    // Encode side: `push(<tag>)` sites, checked against the paired arms.
    for &(name, body) in fns.iter().filter(|(n, _)| n.contains("encode")) {
        let paired = name.replace("encode", "decode");
        let arms = decode_arms
            .iter()
            .find(|(n, _)| *n == paired)
            .map(|(_, a)| a.as_slice())
            .unwrap_or(&all_arms);
        for i in within(body) {
            if ident_at(src, toks, i) != Some("push")
                || !punct_at(src, toks, i + 1, "(")
                || !punct_at(src, toks, i + 3, ")")
            {
                continue;
            }
            let Some(v) = resolve(i + 2) else { continue };
            let t = &toks[i + 2];
            if live(t) && !arms.contains(&v) {
                out.push(Finding {
                    rule: RuleId::WalTagExhaustive,
                    offset: t.start,
                    message: format!(
                        "tag `{}` (= {v}) constructed in `{name}` has no match arm in \
                         `{}` — an encoder must never emit a frame its decoder rejects",
                        t.text(src),
                        if decode_arms.iter().any(|(n, _)| *n == paired) {
                            paired.clone()
                        } else {
                            "any decode fn in this file".to_string()
                        },
                    ),
                });
            }
        }
    }
}

/// `wal-tag-exhaustive`, replication side: the cluster follower must
/// decode (validate) a streamed record before `append_raw`-ing its bytes
/// into the local WAL — an unvalidated append poisons recovery.
fn check_decode_before_append(
    src: &str,
    toks: &[Token],
    live: &dyn Fn(&Token) -> bool,
    out: &mut Vec<Finding>,
) {
    let bodies = fn_bodies(src, toks);
    let decodes: Vec<usize> = (0..toks.len())
        .filter(|&i| {
            ident_at(src, toks, i).is_some_and(|n| n.starts_with("decode"))
                && punct_at(src, toks, i + 1, "(")
        })
        .map(|i| toks[i].start)
        .collect();
    for i in 0..toks.len() {
        if ident_at(src, toks, i) != Some("append_raw")
            || !punct_at(src, toks, i + 1, "(")
            || !live(&toks[i])
        {
            continue;
        }
        if i > 0 && ident_at(src, toks, i - 1) == Some("fn") {
            continue;
        }
        let at = toks[i].start;
        let validated = enclosing_fn(&bodies, at)
            .is_some_and(|body| decodes.iter().any(|&d| body.start <= d && d < at));
        if !validated {
            out.push(Finding {
                rule: RuleId::WalTagExhaustive,
                offset: at,
                message: "`append_raw(` with no earlier `decode*(` in this function — the \
                          follower must validate a replicated record before appending its \
                          raw bytes"
                    .to_string(),
            });
        }
    }
}

/// `println!`/`print!` in library code.
fn check_stdout_in_lib(
    src: &str,
    toks: &[Token],
    live: &dyn Fn(&Token) -> bool,
    out: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        if live(t)
            && matches!(ident_at(src, toks, i), Some("println") | Some("print"))
            && punct_at(src, toks, i + 1, "!")
        {
            out.push(Finding {
                rule: RuleId::StdoutInLib,
                offset: t.start,
                message: format!(
                    "`{}!` in library code — stdout belongs to binaries; report through a \
                     sink or eprintln! for diagnostics",
                    t.text(src)
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(crate_name: &str, kind: FileKind) -> FileContext {
        FileContext {
            crate_name: crate_name.to_string(),
            kind,
            is_crate_root: false,
            file_stem: String::new(),
        }
    }

    fn rules_of(report: &FileReport) -> Vec<RuleId> {
        report.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn unwrap_flagged_only_on_service_crates() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let hit = analyze_source(src, &ctx("dime-serve", FileKind::Lib));
        assert_eq!(rules_of(&hit), vec![RuleId::PanicInService]);
        let core = analyze_source(src, &ctx("dime-core", FileKind::Lib));
        assert!(core.findings.is_empty(), "panic rule is scoped to serve/store");
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }";
        assert!(analyze_source(src, &ctx("dime-serve", FileKind::Lib)).findings.is_empty());
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn t() { None::<u32>.unwrap(); } }";
        assert!(analyze_source(src, &ctx("dime-store", FileKind::Lib)).findings.is_empty());
    }

    #[test]
    fn indexing_flagged_but_array_literals_are_not() {
        let src = "fn f(v: &[u32], i: usize) -> u32 { let a = [1, 2]; v[i] + a.len() as u32 }";
        let report = analyze_source(src, &ctx("dime-serve", FileKind::Lib));
        assert_eq!(rules_of(&report), vec![RuleId::PanicInService]);
        assert!(report.findings[0].message.contains("indexing"));
    }

    #[test]
    fn attributes_and_macro_brackets_are_not_indexing() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f() -> Vec<u32> { vec![1, 2] }";
        assert!(analyze_source(src, &ctx("dime-store", FileKind::Lib)).findings.is_empty());
    }

    #[test]
    fn panic_macro_flagged() {
        let src = "fn f() { panic!(\"boom\"); }";
        let report = analyze_source(src, &ctx("dime-serve", FileKind::Lib));
        assert_eq!(rules_of(&report), vec![RuleId::PanicInService]);
    }

    #[test]
    fn relaxed_needs_annotation_everywhere() {
        let src = "fn f(c: &std::sync::atomic::AtomicU64) { c.load(Ordering::Relaxed); }";
        let report = analyze_source(src, &ctx("dime-core", FileKind::Lib));
        assert_eq!(rules_of(&report), vec![RuleId::AtomicOrdering]);
        let ok = "fn f(c: &A) { c.load(Ordering::Relaxed); } // dime-check: allow(atomic-ordering) — test counter";
        let report = analyze_source(ok, &ctx("dime-core", FileKind::Lib));
        assert!(report.findings.is_empty());
        assert_eq!(report.suppressed.len(), 1);
    }

    #[test]
    fn rename_requires_prior_sync_in_same_fn() {
        let bad = "fn swap(d: &Path) { fs::rename(d.join(\"a\"), d.join(\"b\")); }";
        let report = analyze_source(bad, &ctx("dime-store", FileKind::Lib));
        assert_eq!(rules_of(&report), vec![RuleId::FsyncBeforeRename]);

        let good = "fn swap(f: &File, d: &Path) { f.sync_all(); fs::rename(d, d); }";
        assert!(analyze_source(good, &ctx("dime-store", FileKind::Lib)).findings.is_empty());

        let other_fn = "fn a(f: &File) { f.sync_all(); }\nfn b(d: &Path) { fs::rename(d, d); }";
        assert_eq!(
            rules_of(&analyze_source(other_fn, &ctx("dime-store", FileKind::Lib))),
            vec![RuleId::FsyncBeforeRename],
            "a sync in another function must not satisfy the contract"
        );
    }

    #[test]
    fn wall_clock_scoping() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(
            rules_of(&analyze_source(src, &ctx("dime-core", FileKind::Lib))),
            vec![RuleId::WallClockInCore]
        );
        assert!(analyze_source(src, &ctx("dime-trace", FileKind::Lib)).findings.is_empty());
        assert!(analyze_source(src, &ctx("dime-core", FileKind::Bin)).findings.is_empty());
        assert!(analyze_source(src, &ctx("dime-core", FileKind::Test)).findings.is_empty());
    }

    #[test]
    fn crate_root_must_forbid_unsafe() {
        let root = FileContext {
            crate_name: "x".into(),
            kind: FileKind::Lib,
            is_crate_root: true,
            file_stem: "lib".into(),
        };
        let report = analyze_source("pub fn f() {}", &root);
        assert_eq!(rules_of(&report), vec![RuleId::ForbidUnsafeDrift]);
        let ok = "#![forbid(unsafe_code)]\npub fn f() {}";
        assert!(analyze_source(ok, &root).findings.is_empty());
    }

    #[test]
    fn stdout_in_lib_flags_println_not_eprintln() {
        let src = "fn f() { println!(\"x\"); eprintln!(\"y\"); }";
        let report = analyze_source(src, &ctx("dime-core", FileKind::Lib));
        assert_eq!(rules_of(&report), vec![RuleId::StdoutInLib]);
        assert!(analyze_source(src, &ctx("dime-core", FileKind::Bin)).findings.is_empty());
    }

    #[test]
    fn unmatched_wal_tag_is_flagged() {
        let src = "fn encode_op(out: &mut Vec<u8>) { out.push(1); out.push(7); }\n\
                   fn decode_op(tag: u8) { match tag { 1 => {} _ => {} } }";
        let report = analyze_source(src, &ctx("dime-store", FileKind::Lib));
        let tags: Vec<&Finding> =
            report.findings.iter().filter(|f| f.rule == RuleId::WalTagExhaustive).collect();
        assert_eq!(tags.len(), 1, "{:?}", report.findings);
        assert!(tags[0].message.contains("= 7"));
        // Out of scope for crates without a WAL.
        assert!(analyze_source(src, &ctx("dime-core", FileKind::Lib))
            .findings
            .iter()
            .all(|f| f.rule != RuleId::WalTagExhaustive));
    }

    #[test]
    fn const_tags_resolve_and_match() {
        let src = "const TAG_A: u8 = 1;\nconst TAG_B: u8 = 2;\n\
                   fn encode(out: &mut Vec<u8>) { out.push(TAG_A); out.push(TAG_B); }\n\
                   fn decode(tag: u8) { match tag { TAG_A => {} TAG_B => {} _ => {} } }";
        assert!(analyze_source(src, &ctx("dime-cluster", FileKind::Lib)).findings.is_empty());
    }

    #[test]
    fn encode_without_any_decoder_is_out_of_scope() {
        let src = "fn encode_probe(out: &mut Vec<u8>) { out.push(9); }";
        assert!(analyze_source(src, &ctx("dime-store", FileKind::Lib)).findings.is_empty());
    }

    #[test]
    fn append_raw_requires_prior_decode() {
        let bad = "fn ingest(w: &mut Wal, payload: &[u8]) { w.append_raw(payload); }";
        let report = analyze_source(bad, &ctx("dime-cluster", FileKind::Lib));
        assert_eq!(rules_of(&report), vec![RuleId::WalTagExhaustive]);
        let good = "fn ingest(w: &mut Wal, payload: &[u8]) {\n\
                    decode_record(payload);\n    w.append_raw(payload);\n}";
        assert!(analyze_source(good, &ctx("dime-cluster", FileKind::Lib)).findings.is_empty());
        // dime-store owns append_raw's definition; the discipline binds
        // its cluster callers.
        assert!(analyze_source(bad, &ctx("dime-store", FileKind::Lib)).findings.is_empty());
    }

    #[test]
    fn suppression_without_reason_is_inert_and_diagnosed() {
        let src = "fn f(x: Option<u32>) { x.unwrap(); } // dime-check: allow(panic-in-service)";
        let rules = rules_of(&analyze_source(src, &ctx("dime-serve", FileKind::Lib)));
        assert!(rules.contains(&RuleId::PanicInService), "inert allow must not suppress");
        assert!(rules.contains(&RuleId::SuppressionMissingReason));
    }

    #[test]
    fn unused_suppression_is_drift() {
        let src = "fn f() {} // dime-check: allow(panic-in-service) — nothing here";
        let rules = rules_of(&analyze_source(src, &ctx("dime-serve", FileKind::Lib)));
        assert_eq!(rules, vec![RuleId::UnusedSuppression]);
    }

    #[test]
    fn unknown_rule_is_diagnosed() {
        let src = "fn f() {} // dime-check: allow(no-such) — reason";
        let rules = rules_of(&analyze_source(src, &ctx("dime-core", FileKind::Lib)));
        assert_eq!(rules, vec![RuleId::UnknownRule]);
    }

    #[test]
    fn standalone_suppression_covers_next_line() {
        let src = "fn f(v: &[u32]) -> u32 {\n    // dime-check: allow(panic-in-service) — index bounded by caller\n    v[0]\n}";
        let report = analyze_source(src, &ctx("dime-serve", FileKind::Lib));
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(report.suppressed[0].reason, "index bounded by caller");
    }

    #[test]
    fn hygiene_applies_in_test_files_too() {
        let src = "fn t() {} // dime-check: allow(panic-in-service)";
        let rules = rules_of(&analyze_source(src, &ctx("dime-serve", FileKind::Test)));
        assert_eq!(rules, vec![RuleId::SuppressionMissingReason]);
    }
}
