//! The rule catalog: identifiers, prose, and scoping metadata.
//!
//! Each rule guards an invariant another PR introduced in code and
//! documented in DESIGN.md; the catalog paragraph there names the PR. The
//! enforcement logic lives in [`crate::analyze`]; this module is the
//! single place rule names and applicability are defined, so the CLI's
//! `--list-rules`, the JSON report, and the suppression parser all agree.

/// Every rule the engine knows, in catalog order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleId {
    /// No `unwrap`/`expect`/panicking macro/`[…]` indexing on the service
    /// path (`dime-serve`, `dime-store`, `dime-cluster`, and
    /// `dime-rulespec` non-test code — the rulespec parser handles live
    /// wire input during `rules` installs).
    PanicInService,
    /// Every `Ordering::Relaxed` carries a reasoned suppression — the
    /// "annotated counter" discipline of the lock-free structures.
    AtomicOrdering,
    /// A `rename(` in `dime-store` or `dime-cluster` must be preceded by
    /// `sync_all`/`sync_data` in the same function (durable-rename
    /// contract).
    FsyncBeforeRename,
    /// `Instant::now`/`SystemTime` are confined to `dime-trace`,
    /// `dime-bench`, and binaries: engine state must replay
    /// deterministically.
    WallClockInCore,
    /// Every crate root keeps `#![forbid(unsafe_code)]`.
    ForbidUnsafeDrift,
    /// Library code never writes to stdout (`println!`/`print!`); stdout
    /// belongs to binaries and benches.
    StdoutInLib,
    /// Flow-aware successor of the old local poll-loop ban: no blocking
    /// syscall wrapper is *reachable* from the admission poll loop
    /// (`dime-serve/src/poll.rs`) through any same-thread call chain over
    /// the workspace call graph.
    BlockingReachesPollLoop,
    /// No panic source in a non-service crate is reachable from a
    /// protocol handler (`handle_*` in dime-serve/store/cluster/rulespec)
    /// over the call graph — `panic-in-service` closed under calls.
    PanicReachesService,
    /// Per-function lock-acquisition sequences must admit one global
    /// order; a cycle across functions (A before B somewhere, B before A
    /// elsewhere) is a deadlock candidate.
    LockOrder,
    /// Every WAL/replication tag constructed by an `encode` function in
    /// `dime-store`/`dime-cluster` is matched by the paired decoder, and
    /// the cluster follower decodes a frame before appending it raw.
    WalTagExhaustive,
    /// A suppression comment without a `— reason` tail.
    SuppressionMissingReason,
    /// A `dime-check:` comment naming no known rule (or unparsable).
    UnknownRule,
    /// A well-formed suppression whose target line has no finding of that
    /// rule: stale allows are drift, too.
    UnusedSuppression,
}

/// The ten source rules plus the three suppression hygiene rules.
pub const ALL_RULES: [RuleId; 13] = [
    RuleId::PanicInService,
    RuleId::AtomicOrdering,
    RuleId::FsyncBeforeRename,
    RuleId::WallClockInCore,
    RuleId::ForbidUnsafeDrift,
    RuleId::StdoutInLib,
    RuleId::BlockingReachesPollLoop,
    RuleId::PanicReachesService,
    RuleId::LockOrder,
    RuleId::WalTagExhaustive,
    RuleId::SuppressionMissingReason,
    RuleId::UnknownRule,
    RuleId::UnusedSuppression,
];

impl RuleId {
    /// The kebab-case name used in diagnostics and `allow(…)` comments.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::PanicInService => "panic-in-service",
            RuleId::AtomicOrdering => "atomic-ordering",
            RuleId::FsyncBeforeRename => "fsync-before-rename",
            RuleId::WallClockInCore => "wall-clock-in-core",
            RuleId::ForbidUnsafeDrift => "forbid-unsafe-drift",
            RuleId::StdoutInLib => "stdout-in-lib",
            RuleId::BlockingReachesPollLoop => "blocking-reaches-poll-loop",
            RuleId::PanicReachesService => "panic-reaches-service",
            RuleId::LockOrder => "lock-order",
            RuleId::WalTagExhaustive => "wal-tag-exhaustive",
            RuleId::SuppressionMissingReason => "suppression-missing-reason",
            RuleId::UnknownRule => "unknown-rule",
            RuleId::UnusedSuppression => "unused-suppression",
        }
    }

    /// Resolves an `allow(…)` argument; `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Self> {
        ALL_RULES.into_iter().find(|r| r.name() == name)
    }

    /// One-line description for `--list-rules` and the JSON report.
    pub fn describe(self) -> &'static str {
        match self {
            RuleId::PanicInService => {
                "no unwrap/expect, panicking macros, or [..] indexing in non-test \
                 dime-serve/dime-store/dime-cluster/dime-rulespec code"
            }
            RuleId::AtomicOrdering => {
                "every Ordering::Relaxed needs a reasoned allow naming it a counter \
                 with no ordering dependency"
            }
            RuleId::FsyncBeforeRename => {
                "rename() in dime-store or dime-cluster requires an earlier \
                 sync_all/sync_data in the same function"
            }
            RuleId::WallClockInCore => {
                "Instant::now/SystemTime only in dime-trace, dime-bench, and binaries \
                 (replay determinism)"
            }
            RuleId::ForbidUnsafeDrift => "every crate root keeps #![forbid(unsafe_code)]",
            RuleId::StdoutInLib => "library code must not print to stdout",
            RuleId::BlockingReachesPollLoop => {
                "no blocking read/write/accept/recv/lock call is reachable from the \
                 dime-serve poll loop over the workspace call graph (spawned-thread \
                 edges excluded); each non-blocking site carries a reasoned allow"
            }
            RuleId::PanicReachesService => {
                "no panic!/unreachable!/todo! source outside the service crates is \
                 reachable from a handle_* protocol handler over the call graph"
            }
            RuleId::LockOrder => {
                "lock acquisition sequences across all functions must admit a single \
                 global order; a cycle between lock classes is a deadlock candidate"
            }
            RuleId::WalTagExhaustive => {
                "every WAL/replication tag an encode fn constructs is matched by the \
                 paired decode fn, and the cluster follower decodes before append_raw"
            }
            RuleId::SuppressionMissingReason => {
                "a dime-check allow comment must carry `— <reason>`"
            }
            RuleId::UnknownRule => "a dime-check comment names no known rule",
            RuleId::UnusedSuppression => "a suppression whose target line has no finding",
        }
    }

    /// Whether this is a suppression-hygiene rule. Hygiene findings can
    /// never themselves be suppressed — the fix is always to repair the
    /// comment.
    pub fn is_hygiene(self) -> bool {
        matches!(
            self,
            RuleId::SuppressionMissingReason | RuleId::UnknownRule | RuleId::UnusedSuppression
        )
    }

    /// Whether this rule needs the whole-workspace call graph (and thus
    /// only runs under `--workspace`, not in single-file mode).
    pub fn is_flow(self) -> bool {
        matches!(
            self,
            RuleId::BlockingReachesPollLoop | RuleId::PanicReachesService | RuleId::LockOrder
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for rule in ALL_RULES {
            assert_eq!(RuleId::from_name(rule.name()), Some(rule));
        }
        assert_eq!(RuleId::from_name("no-such-rule"), None);
    }

    #[test]
    fn names_are_kebab_case() {
        for rule in ALL_RULES {
            assert!(
                rule.name().chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{}",
                rule.name()
            );
        }
    }
}
