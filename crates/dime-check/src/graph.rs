//! The workspace call graph: every production `fn` as a node, every
//! call-shaped token sequence as a site, resolved to workspace functions
//! where the name identifies one.
//!
//! Resolution is deliberately over-approximate — this is a linker's view,
//! not a type checker's. A call site names a function; candidates are
//! same-file functions first, then same-crate, then a globally unique
//! match; anything else stays unresolved (empty `targets`). Flow rules
//! ([`crate::flow`]) treat unresolved names as leaves: a leaf named
//! `read` is a potential syscall, a resolved `read` is traversed instead
//! of trusted. False edges cost a reasoned allow; missing edges would
//! cost an invariant, so the graph errs toward edges.
//!
//! Besides calls, the builder records the other token shapes flow rules
//! consume — panic-macro invocations and lock acquisitions — so each rule
//! is a walk over prebuilt vectors, not a re-scan of the workspace.

use crate::analyze::PANIC_MACROS;
use crate::lexer::{lex, Token, TokenKind};
use crate::parse::{flatten, parse_items, ItemKind};
use crate::scope::{is, matching_close, significant, test_regions};
use crate::FileSource;

/// One production function definition.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index into the [`FileSource`] slice the graph was built from.
    pub file: usize,
    pub name: String,
    /// The `{ … }` body span, braces included.
    pub body: (usize, usize),
    /// Whether the first parameter is `self` — a method. Free call sites
    /// never resolve to methods and method sites never to free functions,
    /// which keeps e.g. the poll loop's libc `close(fd)` from resolving
    /// to an unrelated `fn close(&mut self)` elsewhere in the crate.
    pub is_method: bool,
}

/// One call-shaped site (`name(` or `.name(`) inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Index of the enclosing [`FnNode`].
    pub caller: usize,
    pub name: String,
    /// Byte offset of the name token, in the caller's file.
    pub offset: usize,
    /// Whether the site is a method call (`.name(`).
    pub method: bool,
    /// Whether the site sits inside a `spawn(…)` argument: it runs on a
    /// different thread than its lexical caller.
    pub detached: bool,
    /// Resolved workspace callees; empty = external/unresolved leaf.
    pub targets: Vec<usize>,
}

/// One panic-macro invocation (`panic!`, `unreachable!`, …).
#[derive(Debug, Clone)]
pub struct MacroSite {
    pub caller: usize,
    pub name: String,
    pub offset: usize,
}

/// One lock acquisition: a free `lock(…)` call or a `.lock()` method.
#[derive(Debug, Clone)]
pub struct LockSite {
    pub caller: usize,
    /// The lock class, namespaced `{crate}:{field-or-binding}` — the last
    /// path segment of what is being locked, which is how DESIGN.md names
    /// the workspace's lock classes (sessions, inner, addr, follower, …).
    pub class: String,
    pub offset: usize,
}

/// The whole-workspace graph plus the site vectors flow rules consume.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub fns: Vec<FnNode>,
    pub sites: Vec<CallSite>,
    pub macros: Vec<MacroSite>,
    pub locks: Vec<LockSite>,
}

/// Keywords that look like `name(` but are control flow, not calls.
const CONTROL_KEYWORDS: [&str; 8] = ["if", "while", "for", "match", "return", "loop", "in", "fn"];

impl CallGraph {
    /// Builds the graph over every production file in `files`. Test
    /// regions contribute neither nodes nor sites.
    pub fn build(files: &[FileSource]) -> CallGraph {
        let mut g = CallGraph::default();
        // Pass 1: function nodes, so resolution can see the whole
        // workspace before any site is attributed.
        let mut per_file: Vec<Vec<Token>> = Vec::with_capacity(files.len());
        for (fi, f) in files.iter().enumerate() {
            if !f.ctx.kind.is_production() {
                per_file.push(Vec::new());
                continue;
            }
            let tokens = lex(&f.src);
            let regions = test_regions(&f.src, &tokens);
            let toks = significant(&tokens);
            let items = parse_items(&f.src, &toks);
            for item in flatten(&items) {
                if item.kind == ItemKind::Fn && !regions.contains(item.start) {
                    if let Some(body) = item.body {
                        let is_method = first_param_is_self(&f.src, &toks, item.start, body.0);
                        g.fns.push(FnNode { file: fi, name: item.name.clone(), body, is_method });
                    }
                }
            }
            per_file.push(toks);
        }
        // Pass 2: sites, attributed to the innermost enclosing function.
        for (fi, f) in files.iter().enumerate() {
            if !f.ctx.kind.is_production() {
                continue;
            }
            g.scan_file(fi, f, &per_file[fi]);
        }
        g.resolve(files);
        g
    }

    /// The innermost function of `file` whose body contains `offset`.
    fn enclosing(&self, file: usize, offset: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, n)| n.file == file && n.body.0 <= offset && offset < n.body.1)
            .max_by_key(|(_, n)| n.body.0)
            .map(|(i, _)| i)
    }

    fn scan_file(&mut self, fi: usize, f: &FileSource, toks: &[Token]) {
        let src = &f.src;
        let regions = test_regions(src, &lex(src));
        // Spawn argument spans: code inside runs on another thread.
        let mut spawn_spans: Vec<(usize, usize)> = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.kind == TokenKind::Ident
                && t.text(src) == "spawn"
                && toks.get(i + 1).is_some_and(|n| is(n, src, TokenKind::Punct, "("))
            {
                let close = matching_close(toks, src, i + 1);
                let end =
                    close.checked_sub(1).and_then(|c| toks.get(c)).map_or(src.len(), |t| t.end);
                spawn_spans.push((toks[i + 1].start, end));
            }
        }
        let detached = |offset: usize| spawn_spans.iter().any(|&(s, e)| s < offset && offset < e);

        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident || regions.contains(t.start) {
                continue;
            }
            let name = t.text(src);
            let Some(caller) = self.enclosing(fi, t.start) else { continue };
            if PANIC_MACROS.contains(&name)
                && toks.get(i + 1).is_some_and(|n| is(n, src, TokenKind::Punct, "!"))
            {
                self.macros.push(MacroSite { caller, name: name.to_string(), offset: t.start });
                continue;
            }
            if !toks.get(i + 1).is_some_and(|n| is(n, src, TokenKind::Punct, "(")) {
                continue;
            }
            if CONTROL_KEYWORDS.contains(&name) {
                continue;
            }
            let prev = i.checked_sub(1).map(|p| &toks[p]);
            if prev.is_some_and(|p| is(p, src, TokenKind::Ident, "fn")) {
                continue; // definition, not a call
            }
            let method = prev.is_some_and(|p| is(p, src, TokenKind::Punct, "."));
            if name == "lock" {
                if let Some(class) = lock_class(src, toks, i, method) {
                    self.locks.push(LockSite {
                        caller,
                        class: format!("{}:{}", f.ctx.crate_name, class),
                        offset: t.start,
                    });
                }
            }
            self.sites.push(CallSite {
                caller,
                name: name.to_string(),
                offset: t.start,
                method,
                detached: detached(t.start),
                targets: Vec::new(),
            });
        }
    }

    /// Resolves every site: same file, else same crate, else a globally
    /// unique name; otherwise the site stays a leaf. A tier only claims
    /// a site when it holds a call-form-compatible candidate (method
    /// sites resolve to methods, free sites to free functions).
    fn resolve(&mut self, files: &[FileSource]) {
        use std::collections::HashMap;
        let mut by_file: HashMap<(usize, &str), Vec<usize>> = HashMap::new();
        let mut by_crate: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
        let mut global: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, n) in self.fns.iter().enumerate() {
            by_file.entry((n.file, &n.name)).or_default().push(i);
            by_crate.entry((files[n.file].ctx.crate_name.as_str(), &n.name)).or_default().push(i);
            global.entry(&n.name).or_default().push(i);
        }
        let fns = &self.fns;
        for site in &mut self.sites {
            let compatible = |c: &Vec<usize>| -> Vec<usize> {
                c.iter().copied().filter(|&i| fns[i].is_method == site.method).collect()
            };
            let file = fns[site.caller].file;
            let krate = files[file].ctx.crate_name.as_str();
            let local = by_file.get(&(file, site.name.as_str())).map(&compatible);
            let crate_wide = by_crate.get(&(krate, site.name.as_str())).map(&compatible);
            let world = global.get(site.name.as_str()).map(&compatible);
            site.targets = match (local, crate_wide, world) {
                (Some(c), _, _) if !c.is_empty() => c,
                (_, Some(c), _) if !c.is_empty() => c,
                (_, _, Some(c)) if c.len() == 1 => c,
                _ => Vec::new(),
            };
            // A self-edge never extends reachability, and keeping it
            // would let a delegation wrapper (`impl Read for ArcRead {
            // fn read(…) { inner.read(…) } }`) swallow its own blocking
            // leaf by "resolving" the inner call to itself.
            site.targets.retain(|&t| t != site.caller);
        }
    }

    /// Breadth-first reachability from `entries` over call edges. Returns
    /// `parent[fn] = predecessor` for reached functions (`parent[entry] =
    /// entry`); `None` elsewhere. `follow_detached` controls whether
    /// `spawn(…)`-argument edges are traversed.
    pub fn reach(&self, entries: &[usize], follow_detached: bool) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.fns.len()];
        let mut queue: std::collections::VecDeque<usize> = entries.iter().copied().collect();
        for &e in entries {
            parent[e] = Some(e);
        }
        while let Some(at) = queue.pop_front() {
            for site in self.sites.iter().filter(|s| s.caller == at) {
                if site.detached && !follow_detached {
                    continue;
                }
                for &t in &site.targets {
                    if parent[t].is_none() {
                        parent[t] = Some(at);
                        queue.push_back(t);
                    }
                }
            }
        }
        parent
    }

    /// Renders the entry-to-`at` call chain the BFS recorded, as
    /// `entry → … → at` function names.
    pub fn chain(&self, parent: &[Option<usize>], mut at: usize) -> String {
        let mut names = vec![self.fns[at].name.clone()];
        while let Some(p) = parent[at] {
            if p == at {
                break;
            }
            names.push(self.fns[p].name.clone());
            at = p;
        }
        names.reverse();
        names.join(" → ")
    }
}

/// Whether the parameter list between `lo` and `hi` (an item's header
/// span) starts with a `self` receiver. Token-level: finds the first
/// `(` and looks for `self` before the first top-level `,`.
fn first_param_is_self(src: &str, toks: &[Token], lo: usize, hi: usize) -> bool {
    let Some(open) = toks
        .iter()
        .position(|t| t.start >= lo && t.start < hi && is(t, src, TokenKind::Punct, "("))
    else {
        return false;
    };
    let close = matching_close(toks, src, open);
    for t in &toks[open + 1..close.saturating_sub(1).max(open + 1)] {
        if is(t, src, TokenKind::Punct, ",") {
            break;
        }
        if is(t, src, TokenKind::Ident, "self") {
            return true;
        }
    }
    false
}

/// Extracts the lock class from a `lock` site: the last identifier of
/// what is being locked.
///
/// * free call `lock(&self.pool.inner)` → `inner`; nested calls or
///   indexing truncate first (`lock(&self.shard(id))` → `shard`);
/// * method `self.sessions.lock()` → `sessions`; a `)`/`]` receiver is
///   back-matched (`self.shards[i].lock()` → `shards`).
fn lock_class(src: &str, toks: &[Token], at: usize, method: bool) -> Option<String> {
    if method {
        // Receiver: walk back from the `.` at `at - 1`.
        let mut j = at.checked_sub(2)?;
        if is(&toks[j], src, TokenKind::Punct, ")") || is(&toks[j], src, TokenKind::Punct, "]") {
            let close = toks[j].text(src);
            let open = if close == ")" { "(" } else { "[" };
            let mut depth = 0usize;
            loop {
                let t = &toks[j];
                if is(t, src, TokenKind::Punct, close) {
                    depth += 1;
                } else if is(t, src, TokenKind::Punct, open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j = j.checked_sub(1)?;
            }
            j = j.checked_sub(1)?;
        }
        return toks.get(j).filter(|t| t.kind == TokenKind::Ident).map(|t| t.text(src).to_string());
    }
    // Free call: last identifier inside the parens, truncated at the
    // first nested group.
    let close = matching_close(toks, src, at + 1);
    let mut last = None;
    for t in toks.get(at + 2..close.saturating_sub(1))? {
        if t.kind == TokenKind::Punct && matches!(t.text(src), "(" | "[") {
            break;
        }
        if t.kind == TokenKind::Ident && t.text(src) != "self" {
            last = Some(t.text(src).to_string());
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{FileContext, FileKind};

    fn file(crate_name: &str, stem: &str, src: &str) -> FileSource {
        FileSource {
            rel: format!("crates/{crate_name}/src/{stem}.rs"),
            src: src.to_string(),
            ctx: FileContext {
                crate_name: crate_name.to_string(),
                kind: FileKind::Lib,
                is_crate_root: false,
                file_stem: stem.to_string(),
            },
        }
    }

    fn idx(g: &CallGraph, name: &str) -> usize {
        g.fns.iter().position(|n| n.name == name).unwrap()
    }

    #[test]
    fn same_file_calls_resolve() {
        let g = CallGraph::build(&[file("a", "m", "fn f() { g(); }\nfn g() {}")]);
        let site = g.sites.iter().find(|s| s.name == "g").unwrap();
        assert_eq!(site.targets, vec![idx(&g, "g")]);
    }

    #[test]
    fn cross_crate_calls_resolve_when_globally_unique() {
        let files = [file("a", "m", "fn f() { helper(); }"), file("b", "n", "fn helper() {}")];
        let g = CallGraph::build(&files);
        let site = g.sites.iter().find(|s| s.name == "helper").unwrap();
        assert_eq!(site.targets, vec![idx(&g, "helper")]);
    }

    #[test]
    fn ambiguous_cross_crate_names_stay_leaves() {
        let files = [
            file("a", "m", "fn f() { helper(); }"),
            file("b", "n", "fn helper() {}"),
            file("c", "o", "fn helper() {}"),
        ];
        let g = CallGraph::build(&files);
        let site = g.sites.iter().find(|s| s.name == "helper" && !s.targets.is_empty());
        assert!(site.is_none(), "two candidates in other crates must not resolve");
    }

    #[test]
    fn spawn_arguments_are_detached() {
        let src = "fn f() { spawn(move || { work(); }); after(); }\nfn work() {}\nfn after() {}";
        let g = CallGraph::build(&[file("a", "m", src)]);
        assert!(g.sites.iter().find(|s| s.name == "work").unwrap().detached);
        assert!(!g.sites.iter().find(|s| s.name == "after").unwrap().detached);
    }

    #[test]
    fn test_regions_contribute_nothing() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests { fn t() { f(); } }";
        let g = CallGraph::build(&[file("a", "m", src)]);
        assert_eq!(g.fns.len(), 1);
        assert!(g.sites.is_empty());
    }

    #[test]
    fn reachability_and_chains() {
        let src = "fn entry() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn other() {}";
        let g = CallGraph::build(&[file("a", "m", src)]);
        let parent = g.reach(&[idx(&g, "entry")], false);
        assert!(parent[idx(&g, "leaf")].is_some());
        assert!(parent[idx(&g, "other")].is_none());
        assert_eq!(g.chain(&parent, idx(&g, "leaf")), "entry → mid → leaf");
    }

    #[test]
    fn lock_classes_from_free_and_method_forms() {
        let src = "fn f(&self) {\n    let a = lock(&self.pool.inner);\n    let b = self.sessions.lock();\n    let c = self.shards[0].lock();\n    let d = lock(&self.shard(7));\n}";
        let g = CallGraph::build(&[file("dime-x", "m", src)]);
        let classes: Vec<&str> = g.locks.iter().map(|l| l.class.as_str()).collect();
        assert_eq!(
            classes,
            vec!["dime-x:inner", "dime-x:sessions", "dime-x:shards", "dime-x:shard"]
        );
    }
}
