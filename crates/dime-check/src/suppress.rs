//! Suppression comments: `// dime-check: allow(<rule>) — <reason>`.
//!
//! A suppression is an *annotation with teeth*: it must name a real rule,
//! carry a human reason after an em-dash (`—`; a plain `-` or `--` is
//! accepted), and actually cover a finding — each failure mode is its own
//! hygiene diagnostic, so an allow can never rot silently.
//!
//! Scoping is by line, which keeps every allow load-bearing and reviewable:
//!
//! * a trailing comment covers the findings of its own line;
//! * a standalone comment (nothing but the comment on its line) covers the
//!   next line holding any code, so several standalone suppressions may
//!   stack above one line.
//!
//! Doc comments (`///`, `//!`) are never parsed as suppressions, so the
//! format can be quoted freely in documentation.

use crate::lexer::{LineMap, Token, TokenKind};
use crate::rules::RuleId;

/// One parsed `dime-check:` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The named rule, when recognized.
    pub rule: Option<RuleId>,
    /// The raw rule name as written (kept for unknown-rule diagnostics).
    pub rule_name: String,
    /// The reason after the dash, trimmed; empty when absent.
    pub reason: String,
    /// 1-based line the comment sits on.
    pub line: usize,
    /// 1-based line whose findings this suppression covers.
    pub target_line: usize,
    /// Byte offset of the comment (for diagnostics).
    pub offset: usize,
    /// Whether the comment parsed as `allow(<name>)` at all.
    pub well_formed: bool,
}

impl Suppression {
    /// A suppression only covers findings when it is fully valid: known
    /// rule, well-formed, and a non-empty reason. Anything less is inert
    /// (and diagnosed), so deleting the reason re-surfaces the finding.
    pub fn active(&self) -> bool {
        self.well_formed && self.rule.is_some() && !self.reason.is_empty()
    }
}

/// Extracts the comment's claim, if it is a suppression-shaped comment.
/// Returns `(rule_name, reason, well_formed)`.
fn parse_body(body: &str) -> Option<(String, String, bool)> {
    let rest = body.trim_start();
    let rest = rest.strip_prefix("dime-check:")?;
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Some((String::new(), String::new(), false));
    };
    let Some(close) = rest.find(')') else {
        return Some((String::new(), String::new(), false));
    };
    let name = rest[..close].trim().to_string();
    let tail = rest[close + 1..].trim_start();
    let reason = ["—", "--", "-"]
        .iter()
        .find_map(|dash| tail.strip_prefix(dash))
        .map_or(String::new(), |r| r.trim().to_string());
    Some((name, reason, true))
}

/// Parses every suppression comment in the token stream and resolves each
/// one's target line.
pub fn parse_suppressions(src: &str, tokens: &[Token], lines: &LineMap) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let text = t.text(src);
        let Some(body) = text.strip_prefix("//") else { continue };
        if body.starts_with('/') || body.starts_with('!') {
            continue; // doc comment: documentation, not annotation
        }
        let Some((rule_name, reason, well_formed)) = parse_body(body) else { continue };
        let line = lines.line(t.start);
        let standalone = !tokens[..i].iter().any(|p| {
            !matches!(p.kind, TokenKind::LineComment | TokenKind::BlockComment)
                && lines.line(p.start) == line
        });
        let target_line =
            if standalone { next_code_line(tokens, lines, line).unwrap_or(line) } else { line };
        let rule = RuleId::from_name(&rule_name);
        out.push(Suppression {
            rule,
            rule_name,
            reason,
            line,
            target_line,
            offset: t.start,
            well_formed,
        });
    }
    out
}

/// The first line after `line` that holds a non-comment token.
fn next_code_line(tokens: &[Token], lines: &LineMap, line: usize) -> Option<usize> {
    tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .map(|t| lines.line(t.start))
        .find(|&l| l > line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<Suppression> {
        parse_suppressions(src, &lex(src), &LineMap::new(src))
    }

    #[test]
    fn trailing_comment_targets_its_own_line() {
        let src = "x.load(o); // dime-check: allow(atomic-ordering) — monotone counter\ny();";
        let s = &parse(src)[0];
        assert_eq!(s.rule, Some(RuleId::AtomicOrdering));
        assert_eq!(s.reason, "monotone counter");
        assert_eq!((s.line, s.target_line), (1, 1));
        assert!(s.active());
    }

    #[test]
    fn standalone_comment_targets_next_code_line() {
        let src =
            "\n// dime-check: allow(panic-in-service) — bounded above\n\n// plain note\nv[i];\n";
        let s = &parse(src)[0];
        assert_eq!((s.line, s.target_line), (2, 5));
    }

    #[test]
    fn stacked_standalone_comments_share_a_target() {
        let src = "// dime-check: allow(panic-in-service) — a\n// dime-check: allow(atomic-ordering) — b\ncode();\n";
        let got = parse(src);
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|s| s.target_line == 3));
    }

    #[test]
    fn missing_reason_is_inert() {
        for src in [
            "x(); // dime-check: allow(atomic-ordering)",
            "x(); // dime-check: allow(atomic-ordering) —",
            "x(); // dime-check: allow(atomic-ordering) —   ",
        ] {
            let s = &parse(src)[0];
            assert!(s.well_formed && s.reason.is_empty() && !s.active(), "{src}");
        }
    }

    #[test]
    fn ascii_dashes_are_accepted() {
        assert_eq!(
            parse("x(); // dime-check: allow(stdout-in-lib) -- cli progress")[0].reason,
            "cli progress"
        );
        assert_eq!(
            parse("x(); // dime-check: allow(stdout-in-lib) - cli progress")[0].reason,
            "cli progress"
        );
    }

    #[test]
    fn unknown_rule_is_recorded_not_dropped() {
        let s = &parse("x(); // dime-check: allow(made-up) — why not")[0];
        assert!(s.well_formed && s.rule.is_none());
        assert_eq!(s.rule_name, "made-up");
        assert!(!s.active());
    }

    #[test]
    fn malformed_body_is_flagged_not_ignored() {
        let s = &parse("x(); // dime-check: allows(typo) — oops")[0];
        assert!(!s.well_formed);
    }

    #[test]
    fn doc_comments_and_strings_are_not_suppressions() {
        let src = "/// // dime-check: allow(stdout-in-lib) — doc example\n//! // dime-check: allow(stdout-in-lib) — x\nlet s = \"// dime-check: allow(stdout-in-lib) — y\";";
        assert!(parse(src).is_empty());
    }

    #[test]
    fn non_dime_check_comments_are_ignored() {
        assert!(parse("// plain comment\n// TODO: dime-check maybe\nx();").is_empty());
    }
}
