//! Flow-aware rules: the call-graph closure of invariants the per-file
//! rules used to check only locally.
//!
//! Three rules run here, all over one [`CallGraph`] build:
//!
//! * `blocking-reaches-poll-loop` — from every function in the poll-loop
//!   module, no same-thread call chain may end in an unresolved blocking
//!   leaf (`read`, `write`, `lock`, …). `spawn(…)` edges are skipped:
//!   a spawned worker may block by design.
//! * `panic-reaches-service` — from every `handle_*` protocol handler,
//!   no chain (spawned threads included: a worker panic is still a
//!   service failure) may hit a panic macro in a *non-service* crate.
//!   Panic sources inside the service crates are already per-file
//!   findings of `panic-in-service`; this rule closes the gap the
//!   crate boundary used to hide.
//! * `lock-order` — each function contributes its lock-acquisition
//!   sequence as ordered pairs of lock classes; the union must stay
//!   acyclic or no global acquisition order exists and a cross-thread
//!   deadlock interleaving is constructible.
//!
//! Findings land at real byte offsets in real files, so the normal
//! suppression grammar covers them: a reasoned
//! `// dime-check: allow(blocking-reaches-poll-loop) — …` on the call
//! line works exactly as it does for per-file rules.

use crate::analyze::{Finding, SERVICE_CRATES};
use crate::graph::CallGraph;
use crate::rules::RuleId;
use crate::FileSource;

/// Call-shaped names that block (or can block) the calling thread when
/// they do not resolve to a workspace function.
pub(crate) const BLOCKING_CALLS: [&str; 14] = [
    "accept",
    "read",
    "write",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
    "flush",
    "sleep",
    "lock",
    "join",
    "recv",
    "recv_timeout",
    "send",
];

/// Runs every flow rule over `files`; findings are `(file index, finding)`
/// pairs the caller merges into the per-file reports before reconciling
/// suppressions.
pub fn flow_findings(files: &[FileSource]) -> Vec<(usize, Finding)> {
    let g = CallGraph::build(files);
    let mut out = Vec::new();
    blocking_reaches_poll_loop(files, &g, &mut out);
    panic_reaches_service(files, &g, &mut out);
    lock_order(files, &g, &mut out);
    out
}

/// Functions defined in the dime-serve poll-loop module.
fn poll_entries(files: &[FileSource], g: &CallGraph) -> Vec<usize> {
    (0..g.fns.len())
        .filter(|&i| {
            let ctx = &files[g.fns[i].file].ctx;
            ctx.crate_name == "dime-serve" && ctx.file_stem == "poll"
        })
        .collect()
}

fn blocking_reaches_poll_loop(
    files: &[FileSource],
    g: &CallGraph,
    out: &mut Vec<(usize, Finding)>,
) {
    let entries = poll_entries(files, g);
    if entries.is_empty() {
        return;
    }
    let parent = g.reach(&entries, false);
    for site in &g.sites {
        if site.detached
            || !site.targets.is_empty()
            || parent[site.caller].is_none()
            || !BLOCKING_CALLS.contains(&site.name.as_str())
        {
            continue;
        }
        let node = &g.fns[site.caller];
        let context = if entries.contains(&site.caller) {
            format!("inside poll-loop fn `{}`", node.name)
        } else {
            format!("reachable from the poll loop via {}", g.chain(&parent, site.caller))
        };
        out.push((
            node.file,
            Finding {
                rule: RuleId::BlockingReachesPollLoop,
                offset: site.offset,
                message: format!(
                    "`{}(` {context} — the admission thread owns every socket and must \
                     never block; use the readiness API (or add a reasoned allow naming \
                     the non-blocking fd)",
                    site.name
                ),
            },
        ));
    }
}

fn panic_reaches_service(files: &[FileSource], g: &CallGraph, out: &mut Vec<(usize, Finding)>) {
    let entries: Vec<usize> = (0..g.fns.len())
        .filter(|&i| {
            g.fns[i].name.starts_with("handle_")
                && SERVICE_CRATES.contains(&files[g.fns[i].file].ctx.crate_name.as_str())
        })
        .collect();
    if entries.is_empty() {
        return;
    }
    // A panic on a spawned worker still kills service work: follow
    // detached edges.
    let parent = g.reach(&entries, true);
    for m in &g.macros {
        if parent[m.caller].is_none() {
            continue;
        }
        let node = &g.fns[m.caller];
        if SERVICE_CRATES.contains(&files[node.file].ctx.crate_name.as_str()) {
            continue; // panic-in-service already governs these sites
        }
        out.push((
            node.file,
            Finding {
                rule: RuleId::PanicReachesService,
                offset: m.offset,
                message: format!(
                    "`{}!` is reachable from a protocol handler via {} — a library panic \
                     becomes a service failure; return an error across this chain (or add \
                     a reasoned allow stating why the input cannot occur)",
                    m.name,
                    g.chain(&parent, m.caller)
                ),
            },
        ));
    }
}

/// One directed lock-order edge `from → to` with its first witness site.
struct LockEdge {
    from: usize,
    to: usize,
    /// (file, offset of the second acquisition, function name).
    witness: (usize, usize, String),
}

fn lock_order(files: &[FileSource], g: &CallGraph, out: &mut Vec<(usize, Finding)>) {
    let _ = files;
    // Class universe, in first-seen order for determinism.
    let mut classes: Vec<String> = Vec::new();
    let class_of =
        |name: &str, classes: &mut Vec<String>| match classes.iter().position(|c| c == name) {
            Some(i) => i,
            None => {
                classes.push(name.to_string());
                classes.len() - 1
            }
        };
    // Per-function acquisition sequences → ordered pairs.
    let mut edges: Vec<LockEdge> = Vec::new();
    for caller in 0..g.fns.len() {
        let mut seq: Vec<(usize, usize)> = g
            .locks
            .iter()
            .filter(|l| l.caller == caller)
            .map(|l| (l.offset, class_of(&l.class, &mut classes)))
            .collect();
        seq.sort_unstable();
        for (i, &(_, a)) in seq.iter().enumerate() {
            for &(off_b, b) in &seq[i + 1..] {
                if a == b {
                    continue;
                }
                if !edges.iter().any(|e| e.from == a && e.to == b) {
                    edges.push(LockEdge {
                        from: a,
                        to: b,
                        witness: (g.fns[caller].file, off_b, g.fns[caller].name.clone()),
                    });
                }
            }
        }
    }
    // Mutual reachability = one strongly connected component: any SCC
    // with two classes defeats every global order. The class graphs here
    // are tiny, so quadratic reachability is fine.
    let n = classes.len();
    let mut reach = vec![vec![false; n]; n];
    for e in &edges {
        reach[e.from][e.to] = true;
    }
    for k in 0..n {
        for i in 0..n {
            if reach[i][k] {
                for j in 0..n {
                    if reach[k][j] {
                        reach[i][j] = true;
                    }
                }
            }
        }
    }
    let mut seen_scc: Vec<Vec<usize>> = Vec::new();
    for a in 0..n {
        let scc: Vec<usize> =
            (0..n).filter(|&b| (a == b) || (reach[a][b] && reach[b][a])).collect();
        if scc.len() < 2 || seen_scc.contains(&scc) {
            continue;
        }
        seen_scc.push(scc.clone());
        // The finding lands on the earliest witness of any in-cycle edge.
        let Some(e) = edges
            .iter()
            .filter(|e| scc.contains(&e.from) && scc.contains(&e.to))
            .min_by_key(|e| (e.witness.0, e.witness.1))
        else {
            continue;
        };
        let cycle: Vec<&str> = scc.iter().map(|&c| classes[c].as_str()).collect();
        out.push((
            e.witness.0,
            Finding {
                rule: RuleId::LockOrder,
                offset: e.witness.1,
                message: format!(
                    "lock classes {{{}}} are acquired in conflicting orders across \
                     functions (here `{}` after `{}` in `{}`) — no global acquisition \
                     order exists; fix the order (or add a reasoned allow proving the \
                     guards never overlap)",
                    cycle.join(", "),
                    classes[e.to],
                    classes[e.from],
                    e.witness.2
                ),
            },
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{FileContext, FileKind};

    fn file(crate_name: &str, stem: &str, src: &str) -> FileSource {
        FileSource {
            rel: format!("crates/{crate_name}/src/{stem}.rs"),
            src: src.to_string(),
            ctx: FileContext {
                crate_name: crate_name.to_string(),
                kind: FileKind::Lib,
                is_crate_root: false,
                file_stem: stem.to_string(),
            },
        }
    }

    fn rules_of(findings: &[(usize, Finding)]) -> Vec<RuleId> {
        findings.iter().map(|(_, f)| f.rule).collect()
    }

    #[test]
    fn transitive_blocking_call_is_found() {
        let files = [
            file("dime-serve", "poll", "fn poll_once() { drain(); }"),
            file("dime-serve", "util", "fn drain() { stream.read_exact(&mut buf); }"),
        ];
        let got = flow_findings(&files);
        assert_eq!(rules_of(&got), vec![RuleId::BlockingReachesPollLoop]);
        assert_eq!(got[0].0, 1, "the finding lands in the callee's file");
        assert!(got[0].1.message.contains("poll_once → drain"));
    }

    #[test]
    fn spawned_work_may_block() {
        let files = [
            file("dime-serve", "poll", "fn poll_once() { spawn(move || { worker(); }); }"),
            file("dime-serve", "util", "fn worker() { stream.read_exact(&mut buf); }"),
        ];
        assert!(flow_findings(&files).is_empty());
    }

    #[test]
    fn resolved_workspace_calls_are_traversed_not_flagged() {
        let files = [
            file("dime-serve", "poll", "fn poll_once() { flush(); }"),
            file("dime-serve", "util", "fn flush() { fsync_counter += 1; }"),
        ];
        assert!(flow_findings(&files).is_empty(), "a workspace `flush` is not a syscall");
    }

    #[test]
    fn panic_in_a_helper_crate_reaches_the_handler() {
        let files = [
            file("dime-serve", "server", "fn handle_request() { dime_core_helper(); }"),
            file("dime-core", "util", "fn dime_core_helper() { panic!(\"boom\"); }"),
        ];
        let got = flow_findings(&files);
        assert_eq!(rules_of(&got), vec![RuleId::PanicReachesService]);
        assert!(got[0].1.message.contains("handle_request → dime_core_helper"));
    }

    #[test]
    fn service_crate_panics_are_left_to_the_per_file_rule() {
        let files = [file("dime-serve", "server", "fn handle_request() { panic!(\"local\"); }")];
        assert!(flow_findings(&files).is_empty());
    }

    #[test]
    fn conflicting_lock_orders_are_a_cycle() {
        let src = "fn ab(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\n\
                   fn ba(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); }";
        let got = flow_findings(&[file("dime-x", "m", src)]);
        assert_eq!(rules_of(&got), vec![RuleId::LockOrder]);
        assert!(got[0].1.message.contains("alpha"));
        assert!(got[0].1.message.contains("beta"));
    }

    #[test]
    fn consistent_lock_orders_are_clean() {
        let src = "fn ab(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\n\
                   fn ab2(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }";
        assert!(flow_findings(&[file("dime-x", "m", src)]).is_empty());
    }
}
