//! Property tests for the item parser: on arbitrary input — well-formed
//! Rust, item-shaped fragments, or brace soup — `parse_items` must never
//! panic, and the item tree it returns must be well-formed: per-level
//! spans are sorted and non-overlapping, children sit inside their
//! parent's body, and a braced item's end coincides with its body's end.
//!
//! Same strategy vocabulary as `lexer_prop.rs`: `Just` fragments for the
//! constructs whose parsing is subtle (nested mods, impl blocks, where
//! clauses, unbalanced braces) plus near-ASCII soup, concatenated.

use dime_check::lexer::lex;
use dime_check::{parse_items, Item};
use proptest::prelude::*;

fn fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("fn f() { g(); }".to_string()),
        Just("pub fn g<T: Read>(x: T) -> u32 { 0 }".to_string()),
        Just("fn decl();".to_string()),
        Just("mod m { fn inner() {} }".to_string()),
        Just("mod decl;".to_string()),
        Just("pub mod outer { mod nested { fn leaf() {} } }".to_string()),
        Just("impl Foo { fn method(&self) {} }".to_string()),
        Just("impl<T> Trait<T> for Foo<T> where T: Clone { fn m() {} }".to_string()),
        Just("struct S { field: u32 }".to_string()),
        Just("let s = \"fn not_an_item() {}\";".to_string()),
        Just("// fn commented_out() {}\n".to_string()),
        Just("{ } } {".to_string()),
        Just("fn unbalanced() {".to_string()),
        Just("} mod after_imbalance { fn x() {} }".to_string()),
        Just("#[cfg(test)] mod tests { fn t() {} }".to_string()),
        Just("fn takes(f: fn() -> u32) {}".to_string()),
        Just("match x { 1 => {} _ => {} }".to_string()),
        "[ -~]{0,6}".prop_map(|s: String| s),
    ]
}

proptest! {
    #[test]
    fn parsing_fragment_soup_never_panics_and_spans_are_well_formed(
        parts in proptest::collection::vec(fragment(), 0..24)
    ) {
        check_items(&parts.concat());
    }

    #[test]
    fn parsing_ascii_soup_never_panics(
        src in "[ -~]{0,64}"
    ) {
        check_items(&src);
    }
}

fn check_items(src: &str) {
    let tokens = lex(src);
    let items = parse_items(src, &tokens);
    check_level(src, &items, 0, src.len());
}

/// Recursively checks one sibling level: sorted, non-overlapping spans
/// within the enclosing `[lo, hi)` window, bodies inside item spans,
/// children inside bodies.
fn check_level(src: &str, items: &[Item], lo: usize, hi: usize) {
    let mut prev_end = lo;
    for item in items {
        assert!(item.start < item.end, "empty item span {item:?}");
        assert!(item.start >= prev_end, "sibling spans overlap or are unsorted: {item:?}");
        assert!(item.end <= hi, "item escapes its parent window: {item:?}");
        assert!(src.is_char_boundary(item.start) && src.is_char_boundary(item.end));
        if let Some((blo, bhi)) = item.body {
            assert!(item.start <= blo && blo <= bhi, "body outside item: {item:?}");
            assert!(bhi == item.end, "a braced item must end with its body: {item:?}");
            check_level(src, &item.children, blo, bhi);
        } else {
            assert!(item.children.is_empty(), "bodyless item with children: {item:?}");
        }
        prev_end = item.end;
    }
}
