//! Every rule in the catalog has a fixture under `tests/fixtures/` in
//! which it fires exactly once. This pins two things at once: each rule
//! detects its seeded violation (re-introducing one in the workspace
//! cannot pass silently), and none of them over-fire on the surrounding
//! benign code.

use dime_check::{analyze_source, find_workspace_root, FileContext, FileKind, RuleId};

fn fixture(name: &str) -> String {
    let root = find_workspace_root().expect("workspace root (set DIME_CHECK_ROOT if needed)");
    let path = root.join("crates/dime-check/tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn ctx(crate_name: &str, kind: FileKind, is_crate_root: bool) -> FileContext {
    FileContext {
        crate_name: crate_name.to_string(),
        kind,
        is_crate_root,
        file_stem: String::new(),
    }
}

/// Runs one fixture and asserts the target rule fired exactly once.
fn fires_once(name: &str, ctx: &FileContext, rule: RuleId) -> dime_check::FileReport {
    let report = analyze_source(&fixture(name), ctx);
    let hits = report.findings.iter().filter(|f| f.rule == rule).count();
    assert_eq!(hits, 1, "{name}: expected {} exactly once, got {:?}", rule.name(), report.findings);
    report
}

#[test]
fn panic_in_service_fires_once() {
    let report = fires_once(
        "panic_in_service.rs",
        &ctx("dime-serve", FileKind::Lib, false),
        RuleId::PanicInService,
    );
    assert_eq!(report.findings.len(), 1);
}

#[test]
fn panic_fixture_is_clean_outside_service_crates() {
    let report =
        analyze_source(&fixture("panic_in_service.rs"), &ctx("dime-core", FileKind::Lib, false));
    assert!(
        report.findings.is_empty(),
        "the no-panic contract is scoped to serve/store/cluster/rulespec"
    );
}

#[test]
fn panic_in_service_covers_dime_rulespec() {
    // The rulespec parser chews on live wire input during `rules`
    // installs, so the no-panic contract extends to it.
    let report = fires_once(
        "panic_in_service.rs",
        &ctx("dime-rulespec", FileKind::Lib, false),
        RuleId::PanicInService,
    );
    assert_eq!(report.findings.len(), 1);
}

#[test]
fn panic_in_service_covers_dime_cluster() {
    let report = fires_once(
        "panic_in_service.rs",
        &ctx("dime-cluster", FileKind::Lib, false),
        RuleId::PanicInService,
    );
    assert_eq!(report.findings.len(), 1);
}

#[test]
fn atomic_ordering_fires_once_and_the_allow_suppresses() {
    let report = fires_once(
        "atomic_ordering.rs",
        &ctx("dime-index", FileKind::Lib, false),
        RuleId::AtomicOrdering,
    );
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.suppressed.len(), 1, "the annotated load is suppressed, not surfaced");
    assert_eq!(report.suppressed[0].reason, "fixture counter, no ordering dependency");
}

#[test]
fn fsync_before_rename_fires_once() {
    let report = fires_once(
        "fsync_before_rename.rs",
        &ctx("dime-store", FileKind::Lib, false),
        RuleId::FsyncBeforeRename,
    );
    assert_eq!(report.findings.len(), 1, "the synced swap must not fire");
}

#[test]
fn fsync_before_rename_covers_dime_cluster() {
    let report = fires_once(
        "fsync_before_rename.rs",
        &ctx("dime-cluster", FileKind::Lib, false),
        RuleId::FsyncBeforeRename,
    );
    assert_eq!(report.findings.len(), 1, "the durable-rename contract extends to the cluster");
}

#[test]
fn wall_clock_fires_once_outside_test_regions() {
    let report = fires_once(
        "wall_clock_in_core.rs",
        &ctx("dime-core", FileKind::Lib, false),
        RuleId::WallClockInCore,
    );
    assert_eq!(report.findings.len(), 1, "the test-module Instant::now is scoped out");
}

#[test]
fn forbid_unsafe_drift_fires_once_on_crate_roots() {
    let report = fires_once(
        "forbid_unsafe_drift.rs",
        &ctx("dime-core", FileKind::Lib, true),
        RuleId::ForbidUnsafeDrift,
    );
    assert_eq!(report.findings.len(), 1);
    let non_root =
        analyze_source(&fixture("forbid_unsafe_drift.rs"), &ctx("dime-core", FileKind::Lib, false));
    assert!(non_root.findings.is_empty(), "only crate roots carry the attribute");
}

#[test]
fn stdout_in_lib_fires_once() {
    let report = fires_once(
        "stdout_in_lib.rs",
        &ctx("dime-core", FileKind::Lib, false),
        RuleId::StdoutInLib,
    );
    assert_eq!(report.findings.len(), 1, "eprintln!/format! must not fire");
}

#[test]
fn suppression_missing_reason_fires_once_and_is_inert() {
    let report = fires_once(
        "suppression_missing_reason.rs",
        &ctx("dime-index", FileKind::Lib, false),
        RuleId::SuppressionMissingReason,
    );
    let rules: Vec<RuleId> = report.findings.iter().map(|f| f.rule).collect();
    assert!(
        rules.contains(&RuleId::AtomicOrdering),
        "a reasonless allow is inert: the finding it would cover surfaces too ({rules:?})"
    );
    assert_eq!(report.findings.len(), 2);
}

#[test]
fn unknown_rule_fires_once() {
    let report =
        fires_once("unknown_rule.rs", &ctx("dime-core", FileKind::Lib, false), RuleId::UnknownRule);
    assert_eq!(report.findings.len(), 1);
}

#[test]
fn unused_suppression_fires_once() {
    let report = fires_once(
        "unused_suppression.rs",
        &ctx("dime-serve", FileKind::Lib, false),
        RuleId::UnusedSuppression,
    );
    assert_eq!(report.findings.len(), 1);
}

#[test]
fn wal_tag_exhaustive_fires_once() {
    // `encode_op` pushes a literal `9` with no arm for it in
    // `decode_op`; the paired probe codec and the non-encode `put_nodes`
    // byte pushes must stay silent.
    let report = fires_once(
        "wal_tag_exhaustive.rs",
        &ctx("dime-store", FileKind::Lib, false),
        RuleId::WalTagExhaustive,
    );
    assert_eq!(report.findings.len(), 1);
}

#[test]
fn wal_tag_exhaustive_covers_dime_cluster() {
    // The replication stream codec in dime-cluster carries the same
    // encode/decode parity contract as the store WAL.
    let report = fires_once(
        "wal_tag_exhaustive.rs",
        &ctx("dime-cluster", FileKind::Lib, false),
        RuleId::WalTagExhaustive,
    );
    assert_eq!(report.findings.len(), 1);
}

#[test]
fn wal_tag_fixture_is_out_of_scope_elsewhere() {
    let report =
        analyze_source(&fixture("wal_tag_exhaustive.rs"), &ctx("dime-core", FileKind::Lib, false));
    assert!(report.findings.is_empty(), "tag parity is a store/cluster contract");
}

#[test]
fn every_rule_has_a_fixture_test() {
    // The catalog and the fixture tests move together: a new rule must
    // seed a fixture in which it fires exactly once. The flow-aware
    // rules (call-graph closures over several files) are pinned by
    // `tests/flow_fixtures.rs`; everything else lives in this file.
    let covered = [
        RuleId::PanicInService,
        RuleId::AtomicOrdering,
        RuleId::FsyncBeforeRename,
        RuleId::WallClockInCore,
        RuleId::ForbidUnsafeDrift,
        RuleId::StdoutInLib,
        RuleId::WalTagExhaustive,
        RuleId::SuppressionMissingReason,
        RuleId::UnknownRule,
        RuleId::UnusedSuppression,
        // pinned by tests/flow_fixtures.rs:
        RuleId::BlockingReachesPollLoop,
        RuleId::PanicReachesService,
        RuleId::LockOrder,
    ];
    for rule in dime_check::ALL_RULES {
        assert!(covered.contains(&rule), "rule {} has no fixture", rule.name());
    }
}
