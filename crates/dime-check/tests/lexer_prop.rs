//! Property tests for the lexer: on arbitrary input — well-formed or
//! garbage — lexing must never panic, and the token stream must tile the
//! input exactly (every byte belongs to at most one token, offsets are
//! monotone, and token boundaries land on `char` boundaries).
//!
//! Inputs are built two ways: concatenations of Rust-ish fragments
//! (strings, raw strings, comments, char literals, lifetimes — the
//! constructs whose lexing is subtle), and raw near-ASCII soup. The
//! strategies stay within the offline proptest stub's subset: `Just`,
//! `prop_oneof!`, `collection::vec`, `prop_map`, and one-char-class
//! regexes.

use dime_check::lexer::{lex, TokenKind};
use proptest::prelude::*;

fn fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("fn main() {}".to_string()),
        Just("\"a string\"".to_string()),
        Just("\"esc \\\" aped\"".to_string()),
        Just("r\"raw\"".to_string()),
        Just("r#\"raw # quote\"#".to_string()),
        Just("r##\"deeper \"# still\"##".to_string()),
        Just("b\"bytes\"".to_string()),
        Just("br#\"raw bytes\"#".to_string()),
        Just("'c'".to_string()),
        Just("'\\n'".to_string()),
        Just("'static".to_string()),
        Just("<'a>".to_string()),
        Just("// line comment\n".to_string()),
        Just("/* block */".to_string()),
        Just("/* outer /* nested */ outer */".to_string()),
        Just("/* unterminated".to_string()),
        Just("\"unterminated".to_string()),
        Just("r#\"unterminated".to_string()),
        Just("r#ident".to_string()),
        Just("0x1F_u64".to_string()),
        Just("1.5e-3".to_string()),
        Just("dime-check: allow(panic-in-service) — why".to_string()),
        Just("…—é".to_string()),
        Just("#![forbid(unsafe_code)]".to_string()),
        "[ -~]{0,6}".prop_map(|s: String| s),
    ]
}

proptest! {
    #[test]
    fn lexing_fragment_soup_never_panics_and_tiles_the_input(
        parts in proptest::collection::vec(fragment(), 0..24)
    ) {
        check_tiling(&parts.concat());
    }

    #[test]
    fn lexing_ascii_soup_never_panics_and_tiles_the_input(
        src in "[ -~]{0,64}"
    ) {
        check_tiling(&src);
    }
}

fn check_tiling(src: &str) {
    let tokens = lex(src);
    let mut prev_end = 0usize;
    for t in &tokens {
        prop_assert_is_fine(t.start < t.end, "empty token");
        prop_assert_is_fine(t.start >= prev_end, "overlapping tokens");
        prop_assert_is_fine(t.end <= src.len(), "token past the end");
        prop_assert_is_fine(src.is_char_boundary(t.start), "start off char boundary");
        prop_assert_is_fine(src.is_char_boundary(t.end), "end off char boundary");
        prop_assert_is_fine(!t.text(src).is_empty(), "text() must resolve");
        prev_end = t.end;
    }
    // The gaps between tokens are pure whitespace: reassembling tokens and
    // whitespace must reproduce the source byte-for-byte.
    let mut rebuilt = String::new();
    let mut at = 0usize;
    for t in &tokens {
        rebuilt.push_str(src.get(at..t.start).unwrap_or(""));
        rebuilt.push_str(t.text(src));
        at = t.end;
    }
    rebuilt.push_str(src.get(at..).unwrap_or(""));
    assert_eq!(rebuilt, src, "byte-offset round-trip");
    for gap in gaps(src, &tokens) {
        assert!(
            gap.chars().all(char::is_whitespace),
            "non-whitespace byte escaped tokenization: {gap:?} in {src:?}"
        );
    }
    let _ = tokens.iter().filter(|t| t.kind == TokenKind::Ident).count();
}

/// Substrings of `src` not covered by any token.
fn gaps<'a>(src: &'a str, tokens: &[dime_check::lexer::Token]) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut at = 0usize;
    for t in tokens {
        if t.start > at {
            out.extend(src.get(at..t.start));
        }
        at = t.end;
    }
    if at < src.len() {
        out.extend(src.get(at..));
    }
    out
}

/// A plain assert with a label (the stub's `prop_assert!` works too, but
/// a uniform helper keeps the property readable).
fn prop_assert_is_fine(cond: bool, what: &str) {
    assert!(cond, "{what}");
}
