//! Doc-drift guard: the rule catalog and DESIGN.md §7 move together.
//! The section's `**`rule-id`**` bullets must name exactly the
//! non-hygiene rules in the catalog — a rule without documentation
//! fails, and documentation for a removed rule fails too.

use dime_check::{find_workspace_root, ALL_RULES};

/// Rule ids named as `**`rule-id`**` bullets between `## 7` and `## 8`.
fn documented_rules() -> Vec<String> {
    let root = find_workspace_root().expect("workspace root (set DIME_CHECK_ROOT if needed)");
    let design = std::fs::read_to_string(root.join("DESIGN.md")).expect("DESIGN.md");
    let start = design.find("\n## 7").expect("DESIGN.md has a section 7");
    let end = design[start..].find("\n## 8").map(|i| start + i).unwrap_or(design.len());
    let section = &design[start..end];
    let mut out = Vec::new();
    for line in section.lines() {
        if let Some(rest) = line.trim_start().strip_prefix("* **`") {
            if let Some(id) = rest.split("`**").next() {
                out.push(id.to_string());
            }
        }
    }
    out
}

#[test]
fn every_source_rule_is_documented_in_design_section_7() {
    let documented = documented_rules();
    assert!(!documented.is_empty(), "no rule bullets found in DESIGN.md §7");
    for rule in ALL_RULES {
        if rule.is_hygiene() {
            continue; // hygiene rules are described in §7's prose, not as bullets
        }
        assert!(
            documented.iter().any(|d| d == rule.name()),
            "rule `{}` is in the catalog but has no `**`{}`**` bullet in DESIGN.md §7",
            rule.name(),
            rule.name()
        );
    }
}

#[test]
fn every_documented_rule_exists_in_the_catalog() {
    for id in documented_rules() {
        assert!(
            ALL_RULES.iter().any(|r| r.name() == id),
            "DESIGN.md §7 documents `{id}`, which is not in the catalog — stale bullet?"
        );
    }
}

#[test]
fn list_rules_json_and_docs_agree_on_flow_rules() {
    // The §7 prose promises that flow rules are marked in
    // `--list-rules --json`; pin that the marking exists for each.
    let flow: Vec<&str> = ALL_RULES.iter().filter(|r| r.is_flow()).map(|r| r.name()).collect();
    assert_eq!(flow, ["blocking-reaches-poll-loop", "panic-reaches-service", "lock-order"]);
}
