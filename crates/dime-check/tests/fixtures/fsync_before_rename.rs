//! Fixture: `fsync-before-rename` fires exactly once — the rename with
//! no earlier fsync in its function. The second function satisfies the
//! contract.

use std::fs::{self, File};
use std::io;
use std::path::Path;

pub fn unsynced_swap(dir: &Path) -> io::Result<()> {
    fs::rename(dir.join("tmp"), dir.join("cur"))
}

pub fn synced_swap(file: &File, dir: &Path) -> io::Result<()> {
    file.sync_all()?;
    fs::rename(dir.join("tmp"), dir.join("cur"))
}
