//! Fixture: `wall-clock-in-core` fires exactly once — `Instant::now()`
//! in library code of a non-exempt crate. The test copy of the same call
//! is scoped out.

use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn timing_in_tests_is_fine() {
        let _ = Instant::now();
    }
}
