//! Fixture: `panic-in-service` fires exactly once (analyzed as
//! `dime-serve` library code by `tests/fixtures.rs`; this directory is
//! excluded from the workspace walk).

pub fn boom(x: Option<u32>) -> u32 {
    // `.unwrap_or(…)` and friends are fine; only the panicking call fires.
    let _ = x.unwrap_or(0);
    x.unwrap()
}
