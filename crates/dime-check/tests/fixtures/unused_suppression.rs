//! Fixture: `unused-suppression` fires exactly once — a fully valid
//! allow that covers no finding on its target line.

// dime-check: allow(panic-in-service) — nothing on the next line can panic
pub fn fine() {}
