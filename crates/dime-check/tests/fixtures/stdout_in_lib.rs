//! Fixture: `stdout-in-lib` fires exactly once — the `println!`.
//! `eprintln!` (diagnostics) and formatting macros stay silent.

pub fn log(msg: &str) {
    println!("{msg}");
    eprintln!("{msg}");
    let _ = format!("{msg}");
}
