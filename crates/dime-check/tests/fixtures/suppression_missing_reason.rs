//! Fixture: `suppression-missing-reason` fires exactly once — the allow
//! names a real rule and would cover the `Relaxed` below it, but gives
//! no reason, so it is inert and diagnosed (the covered finding is also
//! surfaced; the test pins both).

use std::sync::atomic::{AtomicU64, Ordering};

pub fn read(c: &AtomicU64) -> u64 {
    // dime-check: allow(atomic-ordering)
    c.load(Ordering::Relaxed)
}
