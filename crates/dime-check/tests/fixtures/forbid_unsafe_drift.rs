//! Fixture: `forbid-unsafe-drift` fires exactly once — this file is
//! analyzed as a crate root (`src/lib.rs`) and carries no
//! `#![forbid(unsafe_code)]`.

pub fn harmless() {}
