//! Fixture: `unknown-rule` fires exactly once — the allow names a rule
//! that does not exist.

pub fn fine() {} // dime-check: allow(no-such-rule) — a reason that helps nothing
