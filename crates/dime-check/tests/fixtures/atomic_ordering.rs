//! Fixture: `atomic-ordering` fires exactly once — the unannotated
//! `Relaxed` load. The annotated one below it is suppressed.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn read(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

pub fn read_annotated(c: &AtomicU64) -> u64 {
    // dime-check: allow(atomic-ordering) — fixture counter, no ordering dependency
    c.load(Ordering::Relaxed)
}

pub fn read_ordered(c: &AtomicU64) -> u64 {
    c.load(Ordering::Acquire)
}
