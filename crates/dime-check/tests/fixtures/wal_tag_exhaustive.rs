//! Fixture: exactly one WAL tag constructed without a decode arm.
//!
//! `encode_op` pushes `TAG_OPEN`, `TAG_CLOSE`, and the literal `9`;
//! `decode_op` matches the two constants but nothing maps `9` — that
//! push fires. Everything else is benign: `put_nodes` pushes option
//! flags but is not an encode function, and `encode_probe`'s push of a
//! length byte is checked against the paired `decode_probe`, which
//! matches it.

const TAG_OPEN: u8 = 1;
const TAG_CLOSE: u8 = 5;

fn encode_op(op: &Op, out: &mut Vec<u8>) {
    match op {
        Op::Open => out.push(TAG_OPEN),
        Op::Close => out.push(TAG_CLOSE),
        Op::Legacy => out.push(9), // <- no decode arm maps 9
    }
}

fn decode_op(tag: u8) -> Option<Op> {
    match tag {
        TAG_OPEN => Some(Op::Open),
        TAG_CLOSE => Some(Op::Close),
        _ => None,
    }
}

fn encode_probe(out: &mut Vec<u8>) {
    out.push(2);
}

fn decode_probe(tag: u8) -> bool {
    matches!(tag, 2 => true)
}

fn put_nodes(out: &mut Vec<u8>, nodes: &[Option<u32>]) {
    for n in nodes {
        match n {
            Some(_) => out.push(1),
            None => out.push(0),
        }
    }
}
