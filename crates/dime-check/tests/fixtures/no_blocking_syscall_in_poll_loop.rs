//! Fixture: exactly one blocking call inside the poll-loop module.
//!
//! The `read_to_end` call fires. Everything else is benign: the extern
//! shim *declares* `read`/`write` (declarations are not calls), the
//! readiness helpers (`read_frame`, `try_send`, `try_recv`, `fill_buf`,
//! the epoll `wait`) are non-blocking by construction, the annotated
//! `write` carries a reasoned allow, and the test module is scoped out.

extern "C" {
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

fn signal(fd: i32) {
    let one: u64 = 1;
    // dime-check: allow(no-blocking-syscall-in-poll-loop) — eventfd opened with EFD_NONBLOCK; cannot block
    let _ = unsafe { write(fd, (&one as *const u64).cast(), 8) };
}

fn pump(reader: &mut FrameReader, stream: &mut TcpStream, buf: &mut Vec<u8>) {
    reader.read_frame();
    stream.read_to_end(buf); // <- the one blocking call
}

fn route(tx: &SyncSender<u8>, rx: &Receiver<u8>, poller: &mut Poller) {
    tx.try_send(1);
    rx.try_recv();
    poller.wait(timeout, events);
}

#[cfg(test)]
mod tests {
    #[test]
    fn blocking_is_fine_in_tests() {
        let mut s = connect();
        s.read_exact(&mut [0u8; 4]).unwrap();
    }
}
