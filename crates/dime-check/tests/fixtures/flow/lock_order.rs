//! Flow fixture: two functions acquiring the same two lock classes in
//! opposite orders — one `lock-order` finding at the cycle's witness.
//! `consistent` takes the same locks in the canonical order and adds no
//! second cycle.

fn forward(&self) {
    let pool = self.pool.lock();
    let sessions = self.sessions.lock();
    route(pool, sessions);
}

fn backward(&self) {
    let sessions = self.sessions.lock();
    let pool = self.pool.lock(); // <- cycle witness: pool after sessions
    route(pool, sessions);
}

fn consistent(&self) {
    let pool = self.pool.lock();
    let sessions = self.sessions.lock();
    audit(pool, sessions);
}
