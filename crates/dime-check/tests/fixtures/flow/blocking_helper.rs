//! Flow fixture, leaf side: a `dime-serve` helper module. `drain_conn`
//! runs on the admission thread (called from the poll loop) and hits a
//! blocking `read_exact` — the one finding. `worker_flush` blocks too,
//! but it is only ever reached through a `spawn(…)` edge, which the
//! blocking rule does not traverse.

fn drain_conn(conn: &mut Conn) {
    conn.stream.read_exact(&mut conn.buf); // <- blocks the admission thread
}

fn worker_flush(conn: &mut Conn) {
    conn.stream.write_all(&conn.out);
    conn.stream.flush();
}
