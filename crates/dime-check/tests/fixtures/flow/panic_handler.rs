//! Flow fixture, handler side: a `dime-serve` protocol handler calling
//! into a helper crate. The handler itself is panic-free — the per-file
//! `panic-in-service` rule already governs this crate — but the chain it
//! opens into `panic_helper.rs` is what `panic-reaches-service` walks.

fn handle_lookup(req: &Request) -> Response {
    let value = resolve_attr(&req.name);
    Response::ok(value)
}
