//! Flow fixture, entry side: the poll-loop module (`dime-serve`, stem
//! `poll`). Calls one same-crate helper (`drain_conn`, defined in
//! `blocking_helper.rs`) on the admission thread and hands one closure
//! to a spawned worker — the worker may block, the helper may not.

fn poll_once(conn: &mut Conn) {
    drain_conn(conn);
    spawn(move || {
        worker_flush(conn);
    });
}

fn register(poller: &mut Poller, fd: i32) {
    poller.add(fd, TOKEN_CONN);
}
