//! Flow fixture, library side: a `dime-core` helper reachable from the
//! protocol handler in `panic_handler.rs`. The `panic!` fires once —
//! dime-core is outside the service crates, so the per-file rule never
//! sees it and only the call-graph closure does. `offline_tool` also
//! panics, but nothing reachable from a handler calls it.

fn resolve_attr(name: &str) -> u32 {
    match lookup(name) {
        Some(v) => v,
        None => panic!("unknown attribute {name}"), // <- reachable from handle_lookup
    }
}

fn lookup(name: &str) -> Option<u32> {
    TABLE.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
}

fn offline_tool(name: &str) -> u32 {
    resolve_or_die(name)
}

fn resolve_or_die(name: &str) -> u32 {
    unreachable!("offline tooling only")
}
