//! Each flow-aware rule has a fixture set under `tests/fixtures/flow/`
//! in which it fires exactly once through `analyze_files` — the same
//! entry point the workspace run uses, so the call-graph resolution,
//! entry selection, and suppression reconciliation are all on the path.

use dime_check::{analyze_files, find_workspace_root, FileContext, FileKind, FileSource, RuleId};

fn flow_fixture(name: &str) -> String {
    let root = find_workspace_root().expect("workspace root (set DIME_CHECK_ROOT if needed)");
    let path = root.join("crates/dime-check/tests/fixtures/flow").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn source(name: &str, crate_name: &str, file_stem: &str) -> FileSource {
    FileSource {
        rel: format!("crates/{crate_name}/src/{file_stem}.rs"),
        src: flow_fixture(name),
        ctx: FileContext {
            crate_name: crate_name.to_string(),
            kind: FileKind::Lib,
            is_crate_root: false,
            file_stem: file_stem.to_string(),
        },
    }
}

/// Asserts the target rule fired exactly once across the whole set, and
/// that nothing else fired — fixtures are otherwise clean.
fn fires_once_across(files: &[FileSource], rule: RuleId) {
    let reports = analyze_files(files);
    let all: Vec<_> = reports.iter().flat_map(|r| r.findings.iter()).collect();
    let hits = all.iter().filter(|f| f.rule == rule).count();
    assert_eq!(hits, 1, "expected {} exactly once, got {all:?}", rule.name());
    assert_eq!(all.len(), 1, "fixtures must be clean apart from the seeded finding: {all:?}");
}

#[test]
fn blocking_reaches_poll_loop_fires_once() {
    // The poll loop calls `drain_conn` directly (blocking `read_exact`
    // fires) and hands `worker_flush` to `spawn` — the detached edge is
    // not walked, so its `write_all`/`flush` stay silent.
    let files = [
        source("blocking_poll.rs", "dime-serve", "poll"),
        source("blocking_helper.rs", "dime-serve", "conn"),
    ];
    fires_once_across(&files, RuleId::BlockingReachesPollLoop);
}

#[test]
fn blocking_rule_needs_a_poll_entry() {
    // Same helper, but no file with the `poll` stem in the set: no
    // entry points, no findings.
    let files = [source("blocking_helper.rs", "dime-serve", "conn")];
    let reports = analyze_files(&files);
    assert!(reports[0].findings.is_empty(), "{:?}", reports[0].findings);
}

#[test]
fn panic_reaches_service_fires_once() {
    // `handle_lookup` (dime-serve) reaches the `panic!` in dime-core's
    // `resolve_attr`; the `unreachable!` in `resolve_or_die` is only
    // reachable from `offline_tool`, which no handler calls.
    let files = [
        source("panic_handler.rs", "dime-serve", "server"),
        source("panic_helper.rs", "dime-core", "attr"),
    ];
    fires_once_across(&files, RuleId::PanicReachesService);
}

#[test]
fn panic_rule_needs_a_handler_entry() {
    // The helper crate alone has two panic sites but no `handle_*`
    // entry in a service crate — the closure never starts.
    let files = [source("panic_helper.rs", "dime-core", "attr")];
    let reports = analyze_files(&files);
    assert!(reports[0].findings.is_empty(), "{:?}", reports[0].findings);
}

#[test]
fn lock_order_fires_once() {
    // `forward` takes pool→sessions, `backward` takes sessions→pool:
    // one cycle, one finding at its witness. `consistent` re-walks the
    // canonical order and must not add a second finding.
    let files = [source("lock_order.rs", "dime-cluster", "router")];
    fires_once_across(&files, RuleId::LockOrder);
}

#[test]
fn flow_findings_reconcile_with_suppressions() {
    // A reasoned allow on the blocking line suppresses the flow finding
    // through the same comment machinery as per-file rules.
    let helper = flow_fixture("blocking_helper.rs").replace(
        "conn.stream.read_exact(&mut conn.buf);",
        "// dime-check: allow(blocking-reaches-poll-loop) — fixture: suppression path\n    \
         conn.stream.read_exact(&mut conn.buf);",
    );
    let mut files = [
        source("blocking_poll.rs", "dime-serve", "poll"),
        source("blocking_helper.rs", "dime-serve", "conn"),
    ];
    files[1].src = helper;
    let reports = analyze_files(&files);
    let all: Vec<_> = reports.iter().flat_map(|r| r.findings.iter()).collect();
    assert!(all.is_empty(), "the allow must cover the flow finding: {all:?}");
    assert_eq!(reports[1].suppressed.len(), 1);
    assert_eq!(reports[1].suppressed[0].reason, "fixture: suppression path");
}
