//! Signature-based inverted index (paper Section IV-A/IV-C).
//!
//! DIME⁺'s filter step builds, per rule, a map *signature → entities that
//! emit it*. Entities sharing an inverted list become candidate pairs; all
//! other pairs are pruned, because the signature schemes guarantee that
//! rule-satisfying pairs share at least one signature.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// An inverted index from opaque signature values to entity ids.
///
/// Signatures are pre-hashed to `u64` by the caller (composite tuple
/// signatures hash their components together); a hash collision merely
/// creates an extra candidate pair, which verification discards — it can
/// never lose a true pair.
///
/// # Examples
///
/// ```
/// use dime_index::InvertedIndex;
///
/// let mut idx = InvertedIndex::new();
/// idx.insert(10, 0);
/// idx.insert(10, 1);
/// idx.insert(99, 2);
/// let pairs = idx.candidate_pairs();
/// assert_eq!(pairs, vec![(0, 1)]);
/// ```
#[derive(Debug, Default)]
pub struct InvertedIndex {
    lists: HashMap<u64, Vec<u32>>,
    /// Point-lookup count ([`InvertedIndex::list`] calls), kept atomic so
    /// the parallel engine can probe through a shared reference.
    probes: AtomicU64,
}

impl Clone for InvertedIndex {
    /// Cloning requires `&mut`-free access, so the probe counter is read
    /// atomically. The snapshot is best-effort by design: `probes` is a
    /// statistics counter with no ordering relationship to `lists` (which
    /// only changes under `&mut self`), so a clone taken while other
    /// threads probe may miss their in-flight increments — the count is
    /// diagnostic, never load-bearing.
    fn clone(&self) -> Self {
        Self {
            lists: self.lists.clone(),
            // dime-check: allow(atomic-ordering) — best-effort snapshot of a diagnostic counter; lists is quiescent under &mut elsewhere
            probes: AtomicU64::new(self.probes.load(Ordering::Relaxed)),
        }
    }
}

impl InvertedIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `entity` to the inverted list of `signature`.
    ///
    /// Duplicate consecutive insertions of the same entity on the same list
    /// are suppressed, so an entity emitting the same signature repeatedly
    /// is stored once.
    pub fn insert(&mut self, signature: u64, entity: u32) {
        match self.lists.entry(signature) {
            Entry::Occupied(mut e) => {
                let list = e.get_mut();
                if list.last() != Some(&entity) {
                    list.push(entity);
                }
            }
            Entry::Vacant(e) => {
                e.insert(vec![entity]);
            }
        }
    }

    /// The inverted list for `signature`, if any. Counted as one probe.
    pub fn list(&self, signature: u64) -> Option<&[u32]> {
        // dime-check: allow(atomic-ordering) — monotone probe counter; no reader orders against it
        self.probes.fetch_add(1, Ordering::Relaxed);
        self.lists.get(&signature).map(Vec::as_slice)
    }

    /// Number of point lookups served so far — the observability layer's
    /// "index probe" counter. Monotone for the life of the index.
    pub fn probe_count(&self) -> u64 {
        // dime-check: allow(atomic-ordering) — monotone counter read for observability; staleness is acceptable
        self.probes.load(Ordering::Relaxed)
    }

    /// Number of distinct signatures.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// Whether the index holds no signatures.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// Enumerates deduplicated candidate pairs `(a, b)` with `a < b`:
    /// every unordered pair of entities that co-occurs on some list.
    ///
    /// Pairs are returned sorted, which makes downstream processing
    /// deterministic.
    pub fn candidate_pairs(&self) -> Vec<(u32, u32)> {
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for list in self.lists.values() {
            // Lists are small in practice; a unique-entity pass guards
            // against an entity appearing twice non-consecutively.
            let mut uniq = list.clone();
            uniq.sort_unstable();
            uniq.dedup();
            for i in 0..uniq.len() {
                for j in i + 1..uniq.len() {
                    pairs.push((uniq[i], uniq[j]));
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// Total number of postings across all lists.
    pub fn posting_count(&self) -> usize {
        self.lists.values().map(Vec::len).sum()
    }

    /// Iterates over all distinct signatures in the index.
    pub fn signatures(&self) -> impl Iterator<Item = u64> + '_ {
        self.lists.keys().copied()
    }

    /// Iterates over the inverted lists themselves (postings per
    /// signature) — lets the parallel engine shard candidate generation by
    /// bucket without a per-signature hash lookup. Iteration order follows
    /// the internal map and is unspecified.
    pub fn lists(&self) -> impl Iterator<Item = &[u32]> + '_ {
        self.lists.values().map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_index_has_no_pairs() {
        let idx = InvertedIndex::new();
        assert!(idx.candidate_pairs().is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    fn pairs_require_shared_signature() {
        let mut idx = InvertedIndex::new();
        idx.insert(1, 0);
        idx.insert(2, 1);
        assert!(idx.candidate_pairs().is_empty());
        idx.insert(1, 1);
        assert_eq!(idx.candidate_pairs(), vec![(0, 1)]);
    }

    #[test]
    fn pairs_are_deduped_across_lists() {
        let mut idx = InvertedIndex::new();
        for sig in [1, 2, 3] {
            idx.insert(sig, 0);
            idx.insert(sig, 1);
        }
        assert_eq!(idx.candidate_pairs(), vec![(0, 1)]);
    }

    #[test]
    fn consecutive_duplicate_insert_suppressed() {
        let mut idx = InvertedIndex::new();
        idx.insert(1, 5);
        idx.insert(1, 5);
        assert_eq!(idx.list(1), Some(&[5u32][..]));
        assert_eq!(idx.posting_count(), 1);
    }

    #[test]
    fn lists_expose_all_postings() {
        let mut idx = InvertedIndex::new();
        idx.insert(1, 0);
        idx.insert(1, 1);
        idx.insert(2, 7);
        let mut all: Vec<Vec<u32>> = idx.lists().map(<[u32]>::to_vec).collect();
        all.sort();
        assert_eq!(all, vec![vec![0, 1], vec![7]]);
    }

    #[test]
    fn probes_count_point_lookups_and_survive_clone() {
        let mut idx = InvertedIndex::new();
        idx.insert(1, 0);
        assert_eq!(idx.probe_count(), 0);
        idx.list(1);
        idx.list(2); // misses count too: the probe happened
        assert_eq!(idx.probe_count(), 2);
        let copy = idx.clone();
        assert_eq!(copy.probe_count(), 2);
    }

    #[test]
    fn self_pairs_never_emitted() {
        let mut idx = InvertedIndex::new();
        idx.insert(1, 3);
        idx.insert(2, 3);
        assert!(idx.candidate_pairs().is_empty());
    }

    proptest! {
        /// A pair is a candidate iff the two entities share some signature.
        #[test]
        fn prop_candidates_iff_shared(postings in proptest::collection::vec((0u64..6, 0u32..8), 0..40)) {
            let mut idx = InvertedIndex::new();
            let mut sigs_of: std::collections::HashMap<u32, std::collections::HashSet<u64>> = Default::default();
            for &(s, e) in &postings {
                idx.insert(s, e);
                sigs_of.entry(e).or_default().insert(s);
            }
            let pairs: std::collections::HashSet<(u32, u32)> = idx.candidate_pairs().into_iter().collect();
            for (&a, sa) in &sigs_of {
                for (&b, sb) in &sigs_of {
                    if a < b {
                        let share = sa.intersection(sb).next().is_some();
                        prop_assert_eq!(pairs.contains(&(a, b)), share);
                    }
                }
            }
        }
    }
}
