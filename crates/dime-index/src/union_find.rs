//! Disjoint-set forest with union-by-rank and path compression.
//!
//! DIME⁺ uses this for the constant-time "already in the same partition?"
//! check (paper footnote 4) that lets the verification step skip candidate
//! pairs whose answer is implied by transitivity, and for assembling the
//! final connected components.

/// A disjoint-set (union-find) structure over `0..len`.
///
/// # Examples
///
/// ```
/// use dime_index::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(!uf.same(0, 1));
/// uf.union(0, 1);
/// uf.union(1, 2);
/// assert!(uf.same(0, 2));   // transitivity
/// assert_eq!(uf.components().len(), 2); // {0,1,2} and {3}
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        Self { parent: (0..len as u32).collect(), rank: vec![0; len], components: len }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Appends a new singleton element, returning its index — used by the
    /// incremental engine as entities arrive.
    pub fn push(&mut self) -> usize {
        let id = self.parent.len();
        self.parent.push(id as u32);
        self.rank.push(0);
        self.components += 1;
        id
    }

    /// The representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // Compress the path.
        let mut cur = x;
        while self.parent[cur] as usize != cur {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Whether `a` and `b` are in the same set — the transitivity
    /// short-circuit of the verification phase.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Merges the sets of `a` and `b`. Returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] { (ra, rb) } else { (rb, ra) };
        self.parent[lo] = hi as u32;
        if self.rank[ra] == self.rank[rb] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// Current number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Materializes all components as member lists (each sorted ascending;
    /// components ordered by their smallest member).
    pub fn components(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        let mut out: Vec<Vec<usize>> = by_root.into_values().collect();
        out.sort_by_key(|c| c[0]); // members are pushed in ascending order
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn singletons_at_start() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.component_count(), 3);
        assert!(uf.same(1, 1));
        assert!(!uf.same(0, 2));
    }

    #[test]
    fn union_merges_and_reports() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0)); // already merged
        assert_eq!(uf.component_count(), 3);
    }

    #[test]
    fn components_are_sorted() {
        let mut uf = UnionFind::new(5);
        uf.union(3, 1);
        uf.union(4, 3);
        let comps = uf.components();
        assert_eq!(comps, vec![vec![0], vec![1, 3, 4], vec![2]]);
    }

    #[test]
    fn push_grows_structure() {
        let mut uf = UnionFind::new(1);
        let b = uf.push();
        assert_eq!(b, 1);
        assert_eq!(uf.component_count(), 2);
        uf.union(0, b);
        assert!(uf.same(0, 1));
    }

    #[test]
    fn empty_structure() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert!(uf.components().is_empty());
    }

    proptest! {
        /// Union-find agrees with a naive reachability closure.
        #[test]
        fn prop_matches_naive_closure(edges in proptest::collection::vec((0usize..12, 0usize..12), 0..25)) {
            let n = 12;
            let mut uf = UnionFind::new(n);
            let mut adj = vec![vec![false; n]; n];
            for &(a, b) in &edges {
                uf.union(a, b);
                adj[a][b] = true;
                adj[b][a] = true;
            }
            // Floyd–Warshall style closure.
            for k in 0..n {
                for i in 0..n {
                    if adj[i][k] {
                        for j in 0..n {
                            if adj[k][j] {
                                adj[i][j] = true;
                            }
                        }
                    }
                }
            }
            for i in 0..n {
                for j in 0..n {
                    let reachable = i == j || adj[i][j];
                    prop_assert_eq!(uf.same(i, j), reachable, "pair ({}, {})", i, j);
                }
            }
        }

        /// Component count + sizes are consistent.
        #[test]
        fn prop_component_invariants(edges in proptest::collection::vec((0usize..10, 0usize..10), 0..20)) {
            let mut uf = UnionFind::new(10);
            for &(a, b) in &edges {
                uf.union(a, b);
            }
            let comps = uf.components();
            prop_assert_eq!(comps.len(), uf.component_count());
            let total: usize = comps.iter().map(Vec::len).sum();
            prop_assert_eq!(total, 10);
        }
    }
}
