//! Lock-free concurrent disjoint-set forest for the parallel DIME⁺ engine.
//!
//! The sequential [`crate::UnionFind`] needs `&mut self` for every
//! operation, which serializes the verification phase. This variant keeps
//! the parent array in `AtomicU32` cells so any number of worker threads
//! can `find`/`same`/`union` through a shared reference; roots are merged
//! with a single compare-and-swap and paths are shortened by pointer
//! halving (Anderson & Woll style), so no locks are involved.
//!
//! Concurrency semantics, which are exactly what the transitivity
//! short-circuit needs:
//!
//! * connectivity only ever *grows* — once two elements are connected they
//!   stay connected, so a `true` from [`ConcurrentUnionFind::same`] is
//!   always trustworthy, even mid-race;
//! * a `false` from `same` may be stale (a racing `union` landed after the
//!   reads). Callers treat `false` as "verify the pair", so a stale answer
//!   costs one redundant verification and never correctness;
//! * the final partition is the connected closure of the union edges,
//!   independent of thread interleaving, so once the workers have joined,
//!   [`ConcurrentUnionFind::components`] is deterministic.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// A wait-free-read, lock-free-update disjoint-set over `0..len`,
/// shareable across threads by reference.
///
/// Roots merge child-under-smaller-id (no rank array — path halving keeps
/// chains short in practice), so the representative of every set is its
/// smallest *root at merge time*; [`ConcurrentUnionFind::components`]
/// canonicalizes regardless.
///
/// # Examples
///
/// ```
/// use dime_index::ConcurrentUnionFind;
///
/// let uf = ConcurrentUnionFind::new(4);
/// std::thread::scope(|s| {
///     s.spawn(|| uf.union(0, 1));
///     s.spawn(|| uf.union(1, 2));
/// });
/// assert!(uf.same(0, 2)); // transitivity
/// assert_eq!(uf.components(), vec![vec![0, 1, 2], vec![3]]);
/// ```
#[derive(Debug)]
pub struct ConcurrentUnionFind {
    parent: Vec<AtomicU32>,
    merges: AtomicU64,
}

impl ConcurrentUnionFind {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        assert!(len <= u32::MAX as usize, "element ids must fit in u32");
        Self { parent: (0..len as u32).map(AtomicU32::new).collect(), merges: AtomicU64::new(0) }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The current representative of `x`'s set, with path halving: every
    /// traversed node is pointed at its grandparent, so later finds get
    /// shorter chains. Exact once all concurrent unions have finished.
    pub fn find(&self, x: usize) -> usize {
        let mut x = x;
        loop {
            let p = self.parent[x].load(Ordering::Acquire) as usize;
            if p == x {
                return x;
            }
            let gp = self.parent[p].load(Ordering::Acquire) as usize;
            if gp != p {
                // Halve the path. A lost race just means someone else
                // already shortened it; either way progress continues.
                let _ = self.parent[x].compare_exchange(
                    p as u32,
                    gp as u32,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
            }
            x = p;
        }
    }

    /// Whether `a` and `b` are currently known to be connected.
    ///
    /// `true` is definitive (connectivity never shrinks); `false` may miss
    /// a union that raced with the reads — safe wherever `false` means
    /// "do the full check", as in the verification short-circuit.
    pub fn same(&self, a: usize, b: usize) -> bool {
        loop {
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                return true;
            }
            // `ra` might have stopped being a root between the two finds;
            // retry until it is stable so a quiescent answer is exact.
            if self.parent[ra].load(Ordering::Acquire) as usize == ra {
                return false;
            }
        }
    }

    /// Merges the sets of `a` and `b`; returns `true` if this call did the
    /// merge (they were previously disjoint).
    pub fn union(&self, a: usize, b: usize) -> bool {
        let (mut a, mut b) = (a, b);
        loop {
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                return false;
            }
            // Attach the larger root under the smaller: a deterministic
            // direction that needs no rank array. The CAS only succeeds
            // while `child` is still a root, so no union is ever lost.
            let (child, parent) = if ra > rb { (ra, rb) } else { (rb, ra) };
            if self.parent[child]
                .compare_exchange(child as u32, parent as u32, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // dime-check: allow(atomic-ordering) — monotone merge counter; correctness rides on the AcqRel CAS above
                self.merges.fetch_add(1, Ordering::Relaxed);
                return true;
            }
            // Lost the race: restart from the (now stale) roots, which are
            // closer to the new roots than the original arguments.
            a = ra;
            b = rb;
        }
    }

    /// Number of unions that actually merged two sets. Since connectivity
    /// only grows and every merge is one winning CAS, after workers join
    /// this equals `len() - component_count()` exactly, whatever the
    /// interleaving — the observability layer's "union-find merges".
    pub fn merge_count(&self) -> u64 {
        // dime-check: allow(atomic-ordering) — counter read after workers join; the join is the synchronization point
        self.merges.load(Ordering::Relaxed)
    }

    /// Current number of disjoint sets (exact when no unions are racing).
    pub fn component_count(&self) -> usize {
        (0..self.len()).filter(|&x| self.parent[x].load(Ordering::Acquire) as usize == x).count()
    }

    /// Materializes all components in the same canonical form as
    /// [`crate::UnionFind::components`]: members sorted ascending,
    /// components ordered by smallest member. Call after workers join.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let mut by_root: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for x in 0..self.len() {
            by_root.entry(self.find(x)).or_default().push(x);
        }
        let mut out: Vec<Vec<usize>> = by_root.into_values().collect();
        out.sort_by_key(|c| c[0]); // members are pushed in ascending order
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnionFind;
    use proptest::prelude::*;

    #[test]
    fn singletons_at_start() {
        let uf = ConcurrentUnionFind::new(3);
        assert_eq!(uf.component_count(), 3);
        assert!(uf.same(1, 1));
        assert!(!uf.same(0, 2));
    }

    #[test]
    fn union_merges_and_reports() {
        let uf = ConcurrentUnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.component_count(), 3);
    }

    #[test]
    fn empty_structure() {
        let uf = ConcurrentUnionFind::new(0);
        assert!(uf.is_empty());
        assert!(uf.components().is_empty());
    }

    #[test]
    fn concurrent_unions_agree_with_sequential() {
        // A chain built from many threads in arbitrary interleavings must
        // produce the same components as the sequential structure.
        let n = 512;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let mut seq = UnionFind::new(n);
        for &(a, b) in &edges {
            seq.union(a, b);
        }
        for threads in [2usize, 4, 8] {
            let uf = ConcurrentUnionFind::new(n);
            std::thread::scope(|s| {
                for t in 0..threads {
                    let edges = &edges;
                    let uf = &uf;
                    s.spawn(move || {
                        for e in edges.iter().skip(t).step_by(threads) {
                            uf.union(e.0, e.1);
                        }
                    });
                }
            });
            assert_eq!(uf.components(), seq.components(), "threads = {threads}");
            // Exactly n-1 CASes can win while building one chain, no
            // matter how the racing workers interleave.
            assert_eq!(uf.merge_count(), (n - 1) as u64);
        }
    }

    #[test]
    fn concurrent_stripes_stay_disjoint() {
        // Each thread unions its own residue class; classes never mix.
        let n = 300;
        let threads = 6;
        let uf = ConcurrentUnionFind::new(n);
        std::thread::scope(|s| {
            for t in 0..threads {
                let uf = &uf;
                s.spawn(move || {
                    let members: Vec<usize> = (t..n).step_by(threads).collect();
                    for w in members.windows(2) {
                        uf.union(w[0], w[1]);
                    }
                });
            }
        });
        let comps = uf.components();
        assert_eq!(comps.len(), threads);
        for (t, c) in comps.iter().enumerate() {
            assert_eq!(c, &(t..n).step_by(threads).collect::<Vec<_>>());
        }
    }

    proptest! {
        /// Random edge lists: concurrent (single-threaded use) matches the
        /// sequential union-find exactly.
        #[test]
        fn prop_matches_sequential(edges in proptest::collection::vec((0usize..24, 0usize..24), 0..60)) {
            let n = 24;
            let conc = ConcurrentUnionFind::new(n);
            let mut seq = UnionFind::new(n);
            for &(a, b) in &edges {
                prop_assert_eq!(conc.union(a, b), seq.union(a, b));
            }
            prop_assert_eq!(conc.components(), seq.components());
            prop_assert_eq!(conc.component_count(), seq.component_count());
            for i in 0..n {
                for j in 0..n {
                    prop_assert_eq!(conc.same(i, j), seq.same(i, j));
                }
            }
        }
    }
}
