//! Index structures backing the DIME⁺ signature framework: a disjoint-set
//! forest ([`UnionFind`]) for transitivity short-circuiting and connected
//! components, and a signature [`InvertedIndex`] for the filter step.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod inverted;
mod union_find;

pub use inverted::InvertedIndex;
pub use union_find::UnionFind;
