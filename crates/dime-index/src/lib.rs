//! Index structures backing the DIME⁺ signature framework: a disjoint-set
//! forest ([`UnionFind`]) for transitivity short-circuiting and connected
//! components, its lock-free sibling ([`ConcurrentUnionFind`]) for the
//! parallel engine, and a signature [`InvertedIndex`] for the filter step.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod concurrent;
mod inverted;
mod union_find;

pub use concurrent::ConcurrentUnionFind;
pub use inverted::InvertedIndex;
pub use union_find::UnionFind;
