//! Linear SVM baseline (paper Exp-2, following Bilenko & Mooney).
//!
//! A linear SVM with balanced class weights is trained on pair-similarity
//! feature vectors (the paper's second, better formulation) via the
//! Pegasos stochastic sub-gradient method. For discovery, every entity
//! pair of the group is classified; positive pairs become edges, connected
//! components become clusters, and everything outside the largest
//! component is reported mis-categorized.

use crate::features::PairFeatures;
use dime_core::Group;
use dime_index::UnionFind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// A trained linear separator `sign(w·x + b)`.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    /// Feature weights.
    pub w: Vec<f64>,
    /// Bias term.
    pub b: f64,
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct SvmConfig {
    /// Regularization strength λ.
    pub lambda: f64,
    /// Number of epochs over the training set.
    pub epochs: usize,
    /// RNG seed for sampling order.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self { lambda: 1e-3, epochs: 60, seed: 7 }
    }
}

impl LinearSvm {
    /// Trains with Pegasos on `(x, y)` pairs, `y ∈ {−1, +1}`, with
    /// balanced class weights (each example's loss is scaled inversely to
    /// its class frequency, the paper's "balanced class weights").
    ///
    /// # Panics
    ///
    /// Panics on empty input or inconsistent dimensions.
    pub fn train(xs: &[Vec<f64>], ys: &[f64], config: &SvmConfig) -> Self {
        assert!(!xs.is_empty(), "empty training set");
        assert_eq!(xs.len(), ys.len());
        let dim = xs[0].len();
        assert!(xs.iter().all(|x| x.len() == dim), "inconsistent feature dimensions");
        let n = xs.len();
        let n_pos = ys.iter().filter(|&&y| y > 0.0).count().max(1);
        let n_neg = (n - ys.iter().filter(|&&y| y > 0.0).count()).max(1);
        let weight = |y: f64| {
            if y > 0.0 {
                n as f64 / (2.0 * n_pos as f64)
            } else {
                n as f64 / (2.0 * n_neg as f64)
            }
        };
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut w = vec![0.0f64; dim];
        let mut b = 0.0f64;
        let mut t = 1usize;
        for _ in 0..config.epochs {
            for _ in 0..n {
                let i = rng.gen_range(0..n);
                let eta = 1.0 / (config.lambda * t as f64);
                let margin = ys[i] * (dot(&w, &xs[i]) + b);
                // Regularization shrink.
                for wj in w.iter_mut() {
                    *wj *= 1.0 - eta * config.lambda;
                }
                if margin < 1.0 {
                    let c = eta * weight(ys[i]) * ys[i];
                    for (wj, xj) in w.iter_mut().zip(&xs[i]) {
                        *wj += c * xj;
                    }
                    b += c;
                }
                t += 1;
            }
        }
        Self { w, b }
    }

    /// The decision value `w·x + b`.
    pub fn decision(&self, x: &[f64]) -> f64 {
        dot(&self.w, x) + self.b
    }

    /// Classifies `x` as the positive class iff the decision value is
    /// non-negative.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.decision(x) >= 0.0
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// The full SVM discovery pipeline of Exp-2.
#[derive(Debug)]
pub struct SvmPipeline {
    features: PairFeatures,
    model: LinearSvm,
    /// Decision threshold calibrated on the training pairs. Grouping by
    /// connected components is merciless to false-positive edges (one
    /// false link merges an error cluster into the correct component, while
    /// a missed edge rarely changes components at all), so the pipeline
    /// classifies at the training-optimal F_β threshold with β = 0.3 —
    /// strongly precision-weighted — rather than at raw `sign(w·x + b)`.
    threshold: f64,
}

impl SvmPipeline {
    /// Trains on labeled example pairs from (possibly several) groups.
    /// `examples` yields `(group, pair, is_same_category)` triples.
    pub fn train<'a>(
        features: PairFeatures,
        examples: impl IntoIterator<Item = (&'a Group, (usize, usize), bool)>,
        config: &SvmConfig,
    ) -> Self {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (group, (a, b), same) in examples {
            xs.push(features.extract(group, a, b));
            ys.push(if same { 1.0 } else { -1.0 });
        }
        let model = LinearSvm::train(&xs, &ys, config);
        // Calibrate the decision threshold: sweep the training decision
        // values, pick the one maximizing the precision-weighted F_β
        // (β = 0.3) of the positive class, ties broken toward precision.
        let mut decisions: Vec<(f64, bool)> =
            xs.iter().zip(&ys).map(|(x, &y)| (model.decision(x), y > 0.0)).collect();
        decisions.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total_pos = decisions.iter().filter(|d| d.1).count();
        let mut best = (0.0f64, f64::MIN);
        for k in 0..=decisions.len() {
            // Threshold just below decisions[k..] → classify those positive.
            let tp = decisions[k..].iter().filter(|d| d.1).count();
            let fp = decisions[k..].len() - tp;
            let fnn = total_pos - tp;
            let p = if tp + fp == 0 { 1.0 } else { tp as f64 / (tp + fp) as f64 };
            let r = if total_pos == 0 { 1.0 } else { tp as f64 / (tp + fnn) as f64 };
            const BETA2: f64 = 0.09; // β = 0.3
            let f =
                if p == 0.0 && r == 0.0 { 0.0 } else { (1.0 + BETA2) * p * r / (BETA2 * p + r) };
            let t = if k == 0 {
                f64::NEG_INFINITY
            } else if k == decisions.len() {
                decisions[k - 1].0 + 1e-9
            } else {
                (decisions[k - 1].0 + decisions[k].0) / 2.0
            };
            // Strictly-better F, or equal F at a higher (more precise) cut.
            if f > best.1 + 1e-12 || (f > best.1 - 1e-12 && t > best.0) {
                best = (t, f);
            }
        }
        Self { features, model, threshold: best.0 }
    }

    /// Access to the trained model.
    pub fn model(&self) -> &LinearSvm {
        &self.model
    }

    /// The calibrated decision threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Classifies one pair of a group.
    pub fn same_category(&self, group: &Group, a: usize, b: usize) -> bool {
        self.model.decision(&self.features.extract(group, a, b)) >= self.threshold
    }

    /// Discovers mis-categorized entities: classify **all** pairs, build
    /// connected components, flag everything outside the largest one.
    ///
    /// Faithful to the paper's baseline, every pair is classified — the
    /// skip-already-connected-pairs trick is DIME⁺'s optimization, and
    /// granting it to the baseline would hide the Figure 9 cost the paper
    /// reports for SVM.
    pub fn discover(&self, group: &Group) -> BTreeSet<usize> {
        let n = group.len();
        let mut uf = UnionFind::new(n);
        for a in 0..n {
            for b in a + 1..n {
                if self.same_category(group, a, b) {
                    uf.union(a, b);
                }
            }
        }
        let comps = uf.components();
        let largest = comps
            .iter()
            .enumerate()
            .max_by_key(|(i, c)| (c.len(), std::cmp::Reverse(*i)))
            .map(|(i, _)| i)
            .unwrap_or(0);
        comps
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != largest)
            .flat_map(|(_, c)| c.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dime_core::{GroupBuilder, Schema, SimilarityFn};
    use dime_text::TokenizerKind;

    #[test]
    fn learns_linearly_separable_data() {
        let xs = vec![
            vec![0.9, 0.8],
            vec![0.8, 0.9],
            vec![1.0, 0.7],
            vec![0.1, 0.2],
            vec![0.2, 0.1],
            vec![0.0, 0.3],
        ];
        let ys = vec![1.0, 1.0, 1.0, -1.0, -1.0, -1.0];
        let svm = LinearSvm::train(&xs, &ys, &SvmConfig::default());
        for (x, y) in xs.iter().zip(&ys) {
            assert_eq!(svm.predict(x), *y > 0.0, "x={x:?}");
        }
    }

    #[test]
    fn balanced_weights_handle_imbalance() {
        // 9 positives, 1 negative: unweighted SGD tends to ignore the
        // negative; balanced weights must classify it correctly.
        let mut xs: Vec<Vec<f64>> = (0..9).map(|i| vec![0.6 + 0.04 * i as f64]).collect();
        xs.push(vec![0.05]);
        let mut ys = vec![1.0; 9];
        ys.push(-1.0);
        let svm = LinearSvm::train(&xs, &ys, &SvmConfig::default());
        assert!(!svm.predict(&[0.05]));
        assert!(svm.predict(&[0.8]));
    }

    #[test]
    fn pipeline_discovers_outlier() {
        let schema = Schema::new([("A", TokenizerKind::List(','))]);
        let mut b = GroupBuilder::new(schema);
        b.add_entity(&["a, b, c"]);
        b.add_entity(&["a, b, d"]);
        b.add_entity(&["a, c, d"]);
        b.add_entity(&["x, y"]);
        let g = b.build();
        let features = PairFeatures::new(vec![(0, SimilarityFn::Jaccard)]);
        let examples = vec![
            (&g, (0, 1), true),
            (&g, (0, 2), true),
            (&g, (1, 2), true),
            (&g, (0, 3), false),
            (&g, (1, 3), false),
        ];
        let pipe = SvmPipeline::train(features, examples, &SvmConfig::default());
        let mis = pipe.discover(&g);
        assert_eq!(mis.into_iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_panics() {
        let _ = LinearSvm::train(&[], &[], &SvmConfig::default());
    }
}
