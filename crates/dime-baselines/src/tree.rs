//! CART decision tree (Gini impurity, bounded depth) — the ML rule-learning
//! baseline of paper Exp-6 (run with maximum depth 4, as in the paper).
//!
//! The tree consumes the same pair-similarity features as the SVM and
//! classifies pairs as same-category / different-category. Axis-aligned
//! splits on similarity features are exactly threshold predicates, which is
//! why decision trees are a natural rule-generation baseline — and why
//! their greedy impurity criterion differs from DIME-Rule's coverage
//! objective.

/// A trained decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<TreeNode>,
}

#[derive(Debug, Clone)]
enum TreeNode {
    Leaf {
        /// Probability of the positive class at this leaf.
        p_pos: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Index of the `x[feature] <= threshold` child.
        left: usize,
        /// Index of the `x[feature] > threshold` child.
        right: usize,
    },
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum tree depth (paper: 4).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self { max_depth: 4, min_samples_split: 2 }
    }
}

impl DecisionTree {
    /// Fits a CART tree to `(x, y)` pairs, `y` = is-positive-class.
    ///
    /// # Panics
    ///
    /// Panics on empty input or inconsistent dimensions.
    pub fn fit(xs: &[Vec<f64>], ys: &[bool], config: &TreeConfig) -> Self {
        assert!(!xs.is_empty(), "empty training set");
        assert_eq!(xs.len(), ys.len());
        let dim = xs[0].len();
        assert!(xs.iter().all(|x| x.len() == dim), "inconsistent feature dimensions");
        let mut nodes = Vec::new();
        let idx: Vec<usize> = (0..xs.len()).collect();
        Self::build(xs, ys, &idx, config, 0, &mut nodes);
        Self { nodes }
    }

    fn build(
        xs: &[Vec<f64>],
        ys: &[bool],
        idx: &[usize],
        config: &TreeConfig,
        depth: usize,
        nodes: &mut Vec<TreeNode>,
    ) -> usize {
        let n_pos = idx.iter().filter(|&&i| ys[i]).count();
        let p_pos = n_pos as f64 / idx.len() as f64;
        let pure = n_pos == 0 || n_pos == idx.len();
        if pure || depth >= config.max_depth || idx.len() < config.min_samples_split {
            nodes.push(TreeNode::Leaf { p_pos });
            return nodes.len() - 1;
        }
        match best_split(xs, ys, idx) {
            None => {
                nodes.push(TreeNode::Leaf { p_pos });
                nodes.len() - 1
            }
            Some((feature, threshold)) => {
                let (li, ri): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| xs[i][feature] <= threshold);
                debug_assert!(!li.is_empty() && !ri.is_empty());
                // Reserve our slot first so children get later indices.
                let me = nodes.len();
                nodes.push(TreeNode::Leaf { p_pos }); // placeholder
                let left = Self::build(xs, ys, &li, config, depth + 1, nodes);
                let right = Self::build(xs, ys, &ri, config, depth + 1, nodes);
                nodes[me] = TreeNode::Split { feature, threshold, left, right };
                me
            }
        }
    }

    /// Probability of the positive class for `x`.
    pub fn prob(&self, x: &[f64]) -> f64 {
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                TreeNode::Leaf { p_pos } => return *p_pos,
                TreeNode::Split { feature, threshold, left, right } => {
                    cur = if x[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Classifies `x` as the positive class iff `prob ≥ 0.5`.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.prob(x) >= 0.5
    }

    /// Actual depth of the trained tree.
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[TreeNode], i: usize) -> usize {
            match &nodes[i] {
                TreeNode::Leaf { .. } => 0,
                TreeNode::Split { left, right, .. } => {
                    1 + rec(nodes, *left).max(rec(nodes, *right))
                }
            }
        }
        rec(&self.nodes, 0)
    }
}

/// Gini impurity of a (pos, total) split side.
fn gini(pos: usize, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let p = pos as f64 / total as f64;
    2.0 * p * (1.0 - p)
}

/// Finds the `(feature, threshold)` minimizing weighted Gini impurity, or
/// `None` when no split separates anything.
fn best_split(xs: &[Vec<f64>], ys: &[bool], idx: &[usize]) -> Option<(usize, f64)> {
    let dim = xs[idx[0]].len();
    let total = idx.len();
    let total_pos = idx.iter().filter(|&&i| ys[i]).count();
    let mut best: Option<(f64, usize, f64)> = None;
    #[allow(clippy::needless_range_loop)] // `f` is a feature id, not a slice walk
    for f in 0..dim {
        // Sort sample indices by this feature.
        let mut order: Vec<usize> = idx.to_vec();
        order.sort_by(|&a, &b| xs[a][f].total_cmp(&xs[b][f]));
        let mut left_pos = 0usize;
        for k in 0..total - 1 {
            if ys[order[k]] {
                left_pos += 1;
            }
            let (va, vb) = (xs[order[k]][f], xs[order[k + 1]][f]);
            if va == vb {
                continue; // can't split between equal values
            }
            let left_n = k + 1;
            let right_n = total - left_n;
            let right_pos = total_pos - left_pos;
            let impurity = (left_n as f64 * gini(left_pos, left_n)
                + right_n as f64 * gini(right_pos, right_n))
                / total as f64;
            let threshold = (va + vb) / 2.0;
            if best.is_none_or(|(bi, _, _)| impurity < bi) {
                best = Some((impurity, f, threshold));
            }
        }
    }
    best.map(|(_, f, t)| (f, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<Vec<f64>>, Vec<bool>) {
        let xs = vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]];
        let ys = vec![false, true, true, false];
        (xs, ys)
    }

    #[test]
    fn fits_xor_with_depth_two() {
        let (xs, ys) = xor_data();
        let tree = DecisionTree::fit(&xs, &ys, &TreeConfig::default());
        for (x, y) in xs.iter().zip(&ys) {
            assert_eq!(tree.predict(x), *y);
        }
        assert!(tree.depth() <= 2 + 1);
    }

    #[test]
    fn respects_max_depth() {
        let (xs, ys) = xor_data();
        let tree = DecisionTree::fit(&xs, &ys, &TreeConfig { max_depth: 1, min_samples_split: 2 });
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let xs = vec![vec![0.1], vec![0.9]];
        let ys = vec![true, true];
        let tree = DecisionTree::fit(&xs, &ys, &TreeConfig::default());
        assert_eq!(tree.depth(), 0);
        assert!(tree.predict(&[0.5]));
    }

    #[test]
    fn identical_features_yield_leaf() {
        let xs = vec![vec![0.5], vec![0.5], vec![0.5]];
        let ys = vec![true, false, true];
        let tree = DecisionTree::fit(&xs, &ys, &TreeConfig::default());
        assert_eq!(tree.depth(), 0);
        assert!(tree.predict(&[0.5])); // majority class
    }

    #[test]
    fn threshold_split_on_similarity_feature() {
        // Pairs with similarity > 0.5 are matches.
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 20.0]).collect();
        let ys: Vec<bool> = (0..20).map(|i| i >= 10).collect();
        let tree = DecisionTree::fit(&xs, &ys, &TreeConfig::default());
        assert!(!tree.predict(&[0.2]));
        assert!(tree.predict(&[0.8]));
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_panics() {
        let _ = DecisionTree::fit(&[], &[], &TreeConfig::default());
    }
}
