//! SIFI — "how similar is similar" (Wang et al., PVLDB 2011), the
//! heuristic rule-tuning baseline of paper Exp-6.
//!
//! An expert supplies the *structure* of each rule — which attributes and
//! similarity functions it uses — and SIFI searches for the similarity
//! thresholds maximizing the objective on the examples. We implement the
//! threshold search as coordinate descent over the finite candidate
//! thresholds of Theorem 3: optimize one predicate's threshold holding the
//! others fixed, sweep until a fixed point.

use dime_core::{Group, Polarity, Predicate, Rule, SimilarityFn};
use dime_rulegen::score;

/// An expert-provided rule structure: the `(attribute, function)` slots of
/// one conjunction.
pub type RuleStructure = Vec<(usize, SimilarityFn)>;

/// Optimizes thresholds for a set of rule structures.
///
/// `wanted` / `unwanted` follow the rule-generation convention: for
/// positive rules pass `(S⁺, S⁻)`, for negative rules `(S⁻, S⁺)`.
pub fn sifi_optimize(
    group: &Group,
    structures: &[RuleStructure],
    wanted: &[(usize, usize)],
    unwanted: &[(usize, usize)],
    polarity: Polarity,
) -> Vec<Rule> {
    structures.iter().map(|s| optimize_rule(group, s, wanted, unwanted, polarity)).collect()
}

/// Candidate thresholds for one `(attr, func)` slot: similarity values on
/// the wanted examples (Theorem 3).
fn slot_thresholds(
    group: &Group,
    attr: usize,
    func: SimilarityFn,
    wanted: &[(usize, usize)],
) -> Vec<f64> {
    let mut ts: Vec<f64> = wanted
        .iter()
        .map(|&(a, b)| {
            Predicate::new(attr, func, 0.0).similarity(group, group.entity(a), group.entity(b))
        })
        .collect();
    ts.sort_by(f64::total_cmp);
    ts.dedup();
    ts
}

fn optimize_rule(
    group: &Group,
    structure: &RuleStructure,
    wanted: &[(usize, usize)],
    unwanted: &[(usize, usize)],
    polarity: Polarity,
) -> Rule {
    assert!(!structure.is_empty(), "rule structure cannot be empty");
    let slots: Vec<Vec<f64>> =
        structure.iter().map(|&(attr, func)| slot_thresholds(group, attr, func, wanted)).collect();
    // Initialize each threshold to the loosest candidate (covers all wanted
    // examples), then tighten greedily.
    let init = |k: usize| -> f64 {
        let ts = &slots[k];
        if ts.is_empty() {
            return 0.0;
        }
        match polarity {
            Polarity::Positive => ts[0],            // smallest ≥-threshold
            Polarity::Negative => ts[ts.len() - 1], // largest ≤-threshold
        }
    };
    let mut rule = Rule {
        predicates: structure
            .iter()
            .enumerate()
            .map(|(k, &(attr, func))| Predicate::new(attr, func, init(k)))
            .collect(),
        polarity,
    };
    let mut best = score(group, std::slice::from_ref(&rule), wanted, unwanted);
    // Coordinate descent until a fixed point (bounded sweeps for safety).
    for _ in 0..8 {
        let mut improved = false;
        for (k, slot) in slots.iter().enumerate() {
            let current = rule.predicates[k].threshold;
            let mut best_t = current;
            for &t in slot {
                if t == current {
                    continue;
                }
                rule.predicates[k].threshold = t;
                let s = score(group, std::slice::from_ref(&rule), wanted, unwanted);
                if s > best {
                    best = s;
                    best_t = t;
                    improved = true;
                }
            }
            rule.predicates[k].threshold = best_t;
        }
        if !improved {
            break;
        }
    }
    rule
}

#[cfg(test)]
mod tests {
    use super::*;
    use dime_core::{Group, GroupBuilder, Schema};
    use dime_text::TokenizerKind;

    fn toy() -> (Group, Vec<(usize, usize)>, Vec<(usize, usize)>) {
        let schema = Schema::new([("Authors", TokenizerKind::List(','))]);
        let mut b = GroupBuilder::new(schema);
        b.add_entity(&["a, b, c"]);
        b.add_entity(&["a, b, d"]);
        b.add_entity(&["b, e, f"]);
        b.add_entity(&["x, y"]);
        let g = b.build();
        // Positives overlap ≥ 2 or = 1; negatives overlap 0.
        let pos = vec![(0, 1), (0, 2)];
        let neg = vec![(0, 3), (1, 3), (2, 3)];
        (g, pos, neg)
    }

    #[test]
    fn finds_separating_threshold() {
        let (g, pos, neg) = toy();
        let rules =
            sifi_optimize(&g, &[vec![(0, SimilarityFn::Overlap)]], &pos, &neg, Polarity::Positive);
        assert_eq!(rules.len(), 1);
        // overlap ≥ 1 covers both positives, no negatives → optimal.
        assert_eq!(rules[0].predicates[0].threshold, 1.0);
        assert_eq!(score(&g, &rules, &pos, &neg), 2.0);
    }

    #[test]
    fn negative_polarity_flips_direction() {
        let (g, pos, neg) = toy();
        let rules =
            sifi_optimize(&g, &[vec![(0, SimilarityFn::Overlap)]], &neg, &pos, Polarity::Negative);
        // overlap ≤ 0 covers all negatives, no positives.
        assert_eq!(rules[0].predicates[0].threshold, 0.0);
        assert_eq!(score(&g, &rules, &neg, &pos), 3.0);
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_structure_panics() {
        let (g, pos, neg) = toy();
        let _ = sifi_optimize(&g, &[vec![]], &pos, &neg, Polarity::Positive);
    }
}
