//! CR — collective relational entity resolution (Bhattacharya & Getoor,
//! TKDD 2007), the EM baseline of paper Exp-1.
//!
//! Agglomerative clustering: cluster similarity combines *attribute*
//! similarity (Jaccard over the clusters' merged token sets) with
//! *relational* similarity (Jaccard over reference attributes such as
//! coauthor lists), and clusters merge greedily in descending similarity
//! order until the best available merge falls below a termination
//! threshold. Mis-categorized entities are read off as everything outside
//! the largest surviving cluster — exactly how the paper adapts CR to the
//! mis-categorization task.
//!
//! Like the paper's runs, candidate merges are restricted to clusters that
//! share at least one token (full `O(k²)` similarity recomputation per
//! merge is hopeless at 10k entities even for the baseline).

use dime_core::Group;
use dime_index::{InvertedIndex, UnionFind};
use dime_text::TokenId;
use std::collections::{BTreeSet, BinaryHeap, HashSet};

/// How cluster-pair similarity is computed during agglomeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Linkage {
    /// Single linkage: cluster similarity is the best *entity-pair*
    /// similarity; merges cascade exactly like the paper describes for CR
    /// ("one incorrect decision leads to more errors in later iterations").
    #[default]
    Single,
    /// Cluster-representative linkage: Jaccard over the clusters' merged
    /// token unions, recomputed lazily as clusters grow. More conservative;
    /// union dilution makes large-cluster merges increasingly unlikely.
    UnionAverage,
}

/// CR configuration.
#[derive(Debug, Clone)]
pub struct CrConfig {
    /// Attributes contributing to the attribute-similarity term.
    pub attrs: Vec<usize>,
    /// Attributes contributing to the relational-similarity term.
    pub refs: Vec<usize>,
    /// Weight of the relational term in `[0, 1]`.
    pub alpha: f64,
    /// Termination threshold: stop when the best merge similarity drops
    /// below it (the paper sweeps {0.5, 0.6, 0.7} and reports the best).
    pub threshold: f64,
    /// Linkage criterion.
    pub linkage: Linkage,
}

/// The clustering result.
#[derive(Debug)]
pub struct CrResult {
    /// Clusters as sorted entity-id lists, ordered by smallest member.
    pub clusters: Vec<Vec<usize>>,
}

impl CrResult {
    /// Entities outside the largest cluster — CR's answer to the
    /// mis-categorization problem.
    pub fn mis_categorized(&self) -> BTreeSet<usize> {
        let largest = self
            .clusters
            .iter()
            .enumerate()
            .max_by_key(|(i, c)| (c.len(), std::cmp::Reverse(*i)))
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.clusters
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != largest)
            .flat_map(|(_, c)| c.iter().copied())
            .collect()
    }
}

#[derive(PartialEq)]
struct Merge {
    sim: f64,
    a: usize,
    b: usize,
    version: u64,
}

impl Eq for Merge {}
impl PartialOrd for Merge {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Merge {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.sim
            .partial_cmp(&other.sim)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (other.a, other.b).cmp(&(self.a, self.b)))
    }
}

/// Sorted-set Jaccard on cluster token unions.
fn jaccard_sets(a: &BTreeSet<TokenId>, b: &BTreeSet<TokenId>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Runs CR on a group.
pub fn cr_cluster(group: &Group, config: &CrConfig) -> CrResult {
    let n = group.len();
    assert!(n > 0, "cannot cluster an empty group");
    // Per-cluster merged token sets, one per configured attribute.
    let all_attrs: Vec<usize> = config.attrs.iter().chain(config.refs.iter()).copied().collect();
    let mut tokens: Vec<Vec<BTreeSet<TokenId>>> = (0..n)
        .map(|e| {
            all_attrs
                .iter()
                .map(|&a| group.entity(e).value(a).tokens.iter().copied().collect())
                .collect()
        })
        .collect();
    let attr_slots = 0..config.attrs.len();
    let ref_slots = config.attrs.len()..all_attrs.len();

    let similarity = |ta: &[BTreeSet<TokenId>], tb: &[BTreeSet<TokenId>]| -> f64 {
        let attr_sim = if attr_slots.is_empty() {
            0.0
        } else {
            attr_slots.clone().map(|i| jaccard_sets(&ta[i], &tb[i])).sum::<f64>()
                / attr_slots.len() as f64
        };
        let rel_sim = if ref_slots.is_empty() {
            0.0
        } else {
            ref_slots.clone().map(|i| jaccard_sets(&ta[i], &tb[i])).sum::<f64>()
                / ref_slots.len() as f64
        };
        (1.0 - config.alpha) * attr_sim + config.alpha * rel_sim
    };

    // Candidate pairs: entities sharing a token on any configured attribute.
    let mut index = InvertedIndex::new();
    for (e, entity_tokens) in tokens.iter().enumerate().take(n) {
        for (slot, set) in entity_tokens.iter().enumerate() {
            for &t in set {
                index.insert((slot as u64) << 32 | u64::from(t), e as u32);
            }
        }
    }

    let mut uf = UnionFind::new(n);
    let mut version = vec![0u64; n];
    let mut heap: BinaryHeap<Merge> = BinaryHeap::new();
    for (a, b) in index.candidate_pairs() {
        let (a, b) = (a as usize, b as usize);
        let sim = similarity(tokens[a].as_slice(), tokens[b].as_slice());
        if sim >= config.threshold {
            heap.push(Merge { sim, a, b, version: 0 });
        }
    }

    while let Some(m) = heap.pop() {
        let (ra, rb) = (uf.find(m.a), uf.find(m.b));
        if ra == rb {
            continue;
        }
        if config.linkage == Linkage::Single {
            // Single linkage: the initial pair similarity is the linkage.
            if m.sim >= config.threshold {
                uf.union(ra, rb);
            }
            continue;
        }
        // Stale entry: recompute against current cluster representatives.
        if m.version != version[ra] + version[rb] {
            let sim = similarity(tokens[ra].as_slice(), tokens[rb].as_slice());
            if sim >= config.threshold {
                heap.push(Merge { sim, a: ra, b: rb, version: version[ra] + version[rb] });
            }
            continue;
        }
        if m.sim < config.threshold {
            break;
        }
        // Merge rb into ra's representative set.
        uf.union(ra, rb);
        let root = uf.find(ra);
        let other = if root == ra { rb } else { ra };
        // Move out the other cluster's sets to avoid borrow overlap.
        let moved = std::mem::take(&mut tokens[other]);
        for (slot, set) in moved.into_iter().enumerate() {
            tokens[root][slot].extend(set);
        }
        version[root] += 1;
    }

    CrResult { clusters: uf.components() }
}

/// Runs CR over a threshold sweep and returns the result whose
/// mis-categorized set maximizes F-measure against `truth` — matching the
/// paper's "we tried three termination thresholds and reported the best".
pub fn cr_best_of(
    group: &Group,
    base: &CrConfig,
    thresholds: &[f64],
    truth: &HashSet<usize>,
) -> (CrResult, f64) {
    let mut best: Option<(CrResult, f64)> = None;
    for &t in thresholds {
        let mut cfg = base.clone();
        cfg.threshold = t;
        let res = cr_cluster(group, &cfg);
        let predicted = res.mis_categorized();
        let m = dime_metrics::evaluate_sets(predicted.iter(), truth.iter());
        if best.as_ref().is_none_or(|(_, bf)| m.f_measure > *bf) {
            best = Some((res, m.f_measure));
        }
    }
    best.expect("at least one threshold required")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dime_core::{GroupBuilder, Schema};
    use dime_text::TokenizerKind;

    fn group() -> Group {
        let schema = Schema::new([("Authors", TokenizerKind::List(','))]);
        let mut b = GroupBuilder::new(schema);
        b.add_entity(&["a, b, c"]);
        b.add_entity(&["a, b, d"]);
        b.add_entity(&["b, c, d"]);
        b.add_entity(&["x, y, z"]);
        b.add_entity(&["x, y, w"]);
        b.build()
    }

    fn cfg(threshold: f64) -> CrConfig {
        CrConfig {
            attrs: vec![0],
            refs: vec![],
            alpha: 0.0,
            threshold,
            linkage: Linkage::UnionAverage,
        }
    }

    #[test]
    fn clusters_two_communities() {
        let res = cr_cluster(&group(), &cfg(0.3));
        assert_eq!(res.clusters.len(), 2);
        assert_eq!(res.clusters[0], vec![0, 1, 2]);
        assert_eq!(res.clusters[1], vec![3, 4]);
    }

    #[test]
    fn mis_categorized_is_outside_largest() {
        let res = cr_cluster(&group(), &cfg(0.3));
        let mis: Vec<usize> = res.mis_categorized().into_iter().collect();
        assert_eq!(mis, vec![3, 4]);
    }

    #[test]
    fn high_threshold_blocks_merging() {
        let res = cr_cluster(&group(), &cfg(0.99));
        assert_eq!(res.clusters.len(), 5);
    }

    #[test]
    fn relational_term_contributes() {
        // With alpha=1 only the refs attribute matters.
        let g = group();
        let cfg = CrConfig {
            attrs: vec![],
            refs: vec![0],
            alpha: 1.0,
            threshold: 0.3,
            linkage: Linkage::UnionAverage,
        };
        let res = cr_cluster(&g, &cfg);
        assert_eq!(res.clusters.len(), 2);
    }

    #[test]
    fn single_linkage_cascades_merges() {
        // A chain a-b-c-d where only adjacent pairs are similar: single
        // linkage connects the whole chain; union-average splits it once
        // the union dilutes.
        let schema = Schema::new([("A", TokenizerKind::List(','))]);
        let mut b = GroupBuilder::new(schema);
        b.add_entity(&["a, b, c, d"]);
        b.add_entity(&["b, c, d, e"]);
        b.add_entity(&["c, d, e, f"]);
        b.add_entity(&["d, e, f, g"]);
        let g = b.build();
        let single = CrConfig {
            attrs: vec![0],
            refs: vec![],
            alpha: 0.0,
            threshold: 0.4,
            linkage: Linkage::Single,
        };
        let res = cr_cluster(&g, &single);
        assert_eq!(res.clusters.len(), 1, "chain should cascade: {:?}", res.clusters);
    }

    #[test]
    fn best_of_sweep_picks_highest_f() {
        let g = group();
        let truth: HashSet<usize> = [3, 4].into_iter().collect();
        let (_, f) = cr_best_of(&g, &cfg(0.0), &[0.2, 0.5, 0.9], &truth);
        assert_eq!(f, 1.0);
    }
}
