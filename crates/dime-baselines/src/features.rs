//! Pair-similarity feature extraction shared by the ML baselines.
//!
//! The paper's better-performing SVM formulation (Exp-2) represents an
//! entity *pair* by the vector of similarities between the two entities,
//! one dimension per `(attribute, similarity function)`; the decision tree
//! baseline consumes the same representation.

use dime_core::{Group, Predicate, SimilarityFn};

/// The feature space: one `(attribute, function)` per dimension.
#[derive(Debug, Clone)]
pub struct PairFeatures {
    dims: Vec<(usize, SimilarityFn)>,
}

impl PairFeatures {
    /// Builds a feature space from explicit dimensions.
    pub fn new(dims: Vec<(usize, SimilarityFn)>) -> Self {
        assert!(!dims.is_empty(), "feature space needs at least one dimension");
        Self { dims }
    }

    /// Default features for a group: Jaccard + Overlap on every attribute,
    /// Ontology where available.
    pub fn default_for(group: &Group) -> Self {
        let mut dims = Vec::new();
        for attr in 0..group.schema().len() {
            dims.push((attr, SimilarityFn::Jaccard));
            dims.push((attr, SimilarityFn::Overlap));
            if group.ontology(attr).is_some() {
                dims.push((attr, SimilarityFn::Ontology));
            }
        }
        Self { dims }
    }

    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// Whether the space is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// The dimensions.
    pub fn dims(&self) -> &[(usize, SimilarityFn)] {
        &self.dims
    }

    /// Extracts the similarity vector of a pair. Raw overlap counts are
    /// squashed by `x / (1 + x)` so every dimension lies in `[0, 1]`.
    pub fn extract(&self, group: &Group, a: usize, b: usize) -> Vec<f64> {
        let (ea, eb) = (group.entity(a), group.entity(b));
        self.dims
            .iter()
            .map(|&(attr, func)| {
                let v = Predicate::new(attr, func, 0.0).similarity(group, ea, eb);
                match func {
                    SimilarityFn::Overlap => v / (1.0 + v),
                    SimilarityFn::EditDistance => 1.0 / (1.0 + v),
                    _ => v,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dime_core::{GroupBuilder, Schema};
    use dime_text::TokenizerKind;

    fn group() -> Group {
        let schema = Schema::new([("A", TokenizerKind::List(','))]);
        let mut b = GroupBuilder::new(schema);
        b.add_entity(&["a, b"]);
        b.add_entity(&["a, b"]);
        b.add_entity(&["z"]);
        b.build()
    }

    #[test]
    fn features_are_unit_interval() {
        let g = group();
        let f = PairFeatures::default_for(&g);
        for (a, b) in [(0, 1), (0, 2)] {
            for v in f.extract(&g, a, b) {
                assert!((0.0..=1.0).contains(&v), "{v}");
            }
        }
    }

    #[test]
    fn identical_pair_scores_higher() {
        let g = group();
        let f = PairFeatures::default_for(&g);
        let same: f64 = f.extract(&g, 0, 1).iter().sum();
        let diff: f64 = f.extract(&g, 0, 2).iter().sum();
        assert!(same > diff);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_space_panics() {
        let _ = PairFeatures::new(vec![]);
    }
}
