//! Baselines from the DIME evaluation (paper Section VI), reimplemented
//! from their original descriptions:
//!
//! * [`cr_cluster`] — CR, collective relational entity resolution
//!   (Bhattacharya & Getoor): agglomerative clustering with attribute +
//!   relational similarity and a termination threshold (Exp-1, Exp-5);
//! * [`SvmPipeline`] — linear SVM with balanced class weights over
//!   pair-similarity features, Pegasos-trained (Exp-2, Exp-5);
//! * [`DecisionTree`] — CART with Gini impurity, max depth 4 (Exp-6);
//! * [`sifi_optimize`] — SIFI threshold search for expert-given rule
//!   structures (Exp-6);
//! * [`kmeans_cluster`] — the clustering strawman of the related-work
//!   discussion (k-means over bag-of-token embeddings, smaller clusters
//!   flagged), implemented to make the paper's "clustering fails here"
//!   claim testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cr;
mod features;
mod kmeans;
mod sifi;
mod svm;
mod tree;

pub use cr::{cr_best_of, cr_cluster, CrConfig, CrResult, Linkage};
pub use features::PairFeatures;
pub use kmeans::{kmeans_cluster, KMeansConfig, KMeansResult};
pub use sifi::{sifi_optimize, RuleStructure};
pub use svm::{LinearSvm, SvmConfig, SvmPipeline};
pub use tree::{DecisionTree, TreeConfig};
