//! k-means clustering baseline.
//!
//! The paper's related-work section singles out clustering ("perhaps the
//! most widely used is k-means") and claims that treating the smaller
//! cluster as mis-categorized *must* fail, because correct entities appear
//! in small partitions and mis-categorized ones can sit near big ones.
//! This module makes that claim testable: entities are embedded as
//! L2-normalized bag-of-token vectors over the union of their attributes,
//! Lloyd's algorithm with k-means++ seeding clusters them, and everything
//! outside the largest cluster is flagged.

use dime_core::Group;
use dime_text::TokenId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashMap};

/// k-means configuration.
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Number of clusters `k`.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iterations: usize,
    /// RNG seed for k-means++ seeding.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self { k: 2, max_iterations: 50, seed: 7 }
    }
}

/// Sparse L2-normalized entity embedding: token id → weight.
type SparseVec = HashMap<TokenId, f64>;

fn embed(group: &Group, entity: usize, attrs: &[usize]) -> SparseVec {
    let mut v: SparseVec = HashMap::new();
    for &a in attrs {
        for &t in &group.entity(entity).value(a).tokens {
            *v.entry(t).or_insert(0.0) += 1.0;
        }
    }
    let norm: f64 = v.values().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.values_mut() {
            *x /= norm;
        }
    }
    v
}

fn dot(a: &SparseVec, b: &SparseVec) -> f64 {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    small.iter().map(|(t, x)| x * large.get(t).copied().unwrap_or(0.0)).sum()
}

/// Cosine distance in `[0, 2]` between normalized sparse vectors.
fn distance(a: &SparseVec, b: &SparseVec) -> f64 {
    1.0 - dot(a, b)
}

/// The clustering result.
#[derive(Debug)]
pub struct KMeansResult {
    /// Cluster assignment per entity.
    pub assignment: Vec<usize>,
    /// Cluster sizes.
    pub sizes: Vec<usize>,
}

impl KMeansResult {
    /// Entities outside the largest cluster — the clustering answer to the
    /// mis-categorization problem.
    pub fn mis_categorized(&self) -> BTreeSet<usize> {
        let largest = self
            .sizes
            .iter()
            .enumerate()
            .max_by_key(|&(i, &s)| (s, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.assignment.iter().enumerate().filter(|&(_, &c)| c != largest).map(|(e, _)| e).collect()
    }
}

/// Runs k-means (Lloyd's algorithm, k-means++ seeding, cosine distance)
/// over bag-of-token embeddings of the given attributes.
///
/// # Panics
///
/// Panics on an empty group, `k == 0`, or an empty attribute list.
pub fn kmeans_cluster(group: &Group, attrs: &[usize], config: &KMeansConfig) -> KMeansResult {
    let n = group.len();
    assert!(n > 0, "cannot cluster an empty group");
    assert!(config.k > 0, "k must be positive");
    assert!(!attrs.is_empty(), "need at least one embedding attribute");
    let k = config.k.min(n);
    let points: Vec<SparseVec> = (0..n).map(|e| embed(group, e, attrs)).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // k-means++ seeding.
    let mut centroids: Vec<SparseVec> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..n)].clone());
    while centroids.len() < k {
        let d2: Vec<f64> = points
            .iter()
            .map(|p| centroids.iter().map(|c| distance(p, c)).fold(f64::INFINITY, f64::min).powi(2))
            .collect();
        let total: f64 = d2.iter().sum();
        if total <= f64::EPSILON {
            // All points coincide with a centroid; seed uniformly.
            centroids.push(points[rng.gen_range(0..n)].clone());
            continue;
        }
        let mut r = rng.gen::<f64>() * total;
        let mut chosen = n - 1;
        for (i, &d) in d2.iter().enumerate() {
            if r <= d {
                chosen = i;
                break;
            }
            r -= d;
        }
        centroids.push(points[chosen].clone());
    }

    // Lloyd iterations.
    let mut assignment = vec![0usize; n];
    for _ in 0..config.max_iterations {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| distance(p, &centroids[a]).total_cmp(&distance(p, &centroids[b])))
                .unwrap();
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        // Recompute centroids (mean, then renormalize).
        let mut sums: Vec<SparseVec> = vec![HashMap::new(); k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            counts[assignment[i]] += 1;
            for (&t, &x) in p {
                *sums[assignment[i]].entry(t).or_insert(0.0) += x;
            }
        }
        for (c, sum) in sums.into_iter().enumerate() {
            if counts[c] == 0 {
                continue; // keep the old centroid for empty clusters
            }
            let norm: f64 = sum.values().map(|x| x * x).sum::<f64>().sqrt();
            centroids[c] = if norm > 0.0 {
                sum.into_iter().map(|(t, x)| (t, x / norm)).collect()
            } else {
                sum
            };
        }
    }

    let mut sizes = vec![0usize; k];
    for &c in &assignment {
        sizes[c] += 1;
    }
    KMeansResult { assignment, sizes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dime_core::{GroupBuilder, Schema};
    use dime_text::TokenizerKind;

    fn group() -> Group {
        let mut b = GroupBuilder::new(Schema::new([("A", TokenizerKind::Words)]));
        // Two token communities.
        b.add_entity(&["alpha beta gamma"]);
        b.add_entity(&["alpha beta delta"]);
        b.add_entity(&["beta gamma delta"]);
        b.add_entity(&["omega psi chi"]);
        b.add_entity(&["omega psi phi"]);
        b.build()
    }

    #[test]
    fn separates_two_token_communities() {
        let res = kmeans_cluster(&group(), &[0], &KMeansConfig::default());
        assert_eq!(res.sizes.iter().sum::<usize>(), 5);
        // The two communities must not share a cluster.
        assert_eq!(res.assignment[0], res.assignment[1]);
        assert_eq!(res.assignment[3], res.assignment[4]);
        assert_ne!(res.assignment[0], res.assignment[3]);
        let mis: Vec<usize> = res.mis_categorized().into_iter().collect();
        assert_eq!(mis, vec![3, 4]);
    }

    #[test]
    fn k_capped_at_group_size() {
        let mut b = GroupBuilder::new(Schema::new([("A", TokenizerKind::Words)]));
        b.add_entity(&["solo"]);
        let g = b.build();
        let res = kmeans_cluster(&g, &[0], &KMeansConfig { k: 5, ..Default::default() });
        assert_eq!(res.assignment, vec![0]);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = group();
        let a = kmeans_cluster(&g, &[0], &KMeansConfig::default());
        let b = kmeans_cluster(&g, &[0], &KMeansConfig::default());
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = kmeans_cluster(&group(), &[0], &KMeansConfig { k: 0, ..Default::default() });
    }

    /// The paper's related-work claim, demonstrated: when correct entities
    /// form *two* well-separated communities (a big one and a small one)
    /// and the errors sit in a third, k=2 clustering inevitably lumps the
    /// small correct community with one side — either missing all errors
    /// or flagging the small correct community wholesale.
    #[test]
    fn clustering_fails_on_small_correct_communities() {
        let mut b = GroupBuilder::new(Schema::new([("A", TokenizerKind::Words)]));
        for i in 0..8 {
            b.add_entity(&[format!("data query index core{i}").as_str()]);
        }
        b.add_entity(&["niche topic entirely separate"]); // correct, small
        b.add_entity(&["niche topic entirely apart"]); // correct, small
        b.add_entity(&["chemistry solvent reaction"]); // the actual error
        let g = b.build();
        let res = kmeans_cluster(&g, &[0], &KMeansConfig::default());
        let flagged = res.mis_categorized();
        let wrong_call = flagged.contains(&8) || flagged.contains(&9) || !flagged.contains(&10);
        assert!(wrong_call, "k-means should be unable to isolate exactly the error");
    }
}
