//! The [`TraceSink`] trait: the one seam between instrumented code and
//! whatever is collecting (or discarding) the telemetry.

use crate::span::SpanRecord;

/// Which rule family a hit count belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleKind {
    /// A positive (same-category evidence) rule.
    Positive,
    /// A negative (mis-categorization evidence) rule.
    Negative,
}

impl RuleKind {
    /// Stable lowercase label, used in reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            RuleKind::Positive => "positive",
            RuleKind::Negative => "negative",
        }
    }
}

/// Receives telemetry from instrumented code. Every method defaults to a
/// no-op and `enabled()` defaults to `false`, so implementing the trait
/// for a disabled sink is zero lines and instrumented code can skip even
/// timestamp reads when tracing is off.
///
/// Hot loops must not call sink methods per element: accumulate locally
/// and flush at phase boundaries, so the virtual dispatch cost is
/// per-phase no matter the input size.
pub trait TraceSink: Sync {
    /// Whether this sink wants data. [`crate::span`] consults this to
    /// skip clock reads entirely when off.
    fn enabled(&self) -> bool {
        false
    }

    /// A completed span (called from the thread the span ran on).
    fn span(&self, _record: SpanRecord) {}

    /// Adds `n` to the named counter.
    fn add(&self, _counter: &'static str, _n: u64) {}

    /// Adds `hits` to the per-rule hit count for rule index `rule` of
    /// the given kind.
    fn rule_hits(&self, _kind: RuleKind, _rule: usize, _hits: u64) {}

    /// Records one value into the named histogram (unit-agnostic; the
    /// convention in this workspace is microseconds for latencies).
    fn latency(&self, _histogram: &'static str, _value: u64) {}
}

/// The disabled sink: every method inherits the no-op default.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {}

/// A `'static` no-op sink, handy wherever a `&dyn TraceSink` default is
/// needed without allocating.
pub static NOOP: NoopSink = NoopSink;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_disabled_and_inert() {
        assert!(!NOOP.enabled());
        NOOP.add("anything", 1);
        NOOP.rule_hits(RuleKind::Positive, 0, 1);
        NOOP.latency("anything", 1);
    }

    #[test]
    fn rule_kind_labels() {
        assert_eq!(RuleKind::Positive.label(), "positive");
        assert_eq!(RuleKind::Negative.label(), "negative");
    }
}
