//! Fixed-bucket latency histogram: 64 power-of-two buckets, lock-free
//! recording, mergeable, with quantile snapshots.
//!
//! Bucket `0` counts the value `0`; bucket `i >= 1` counts values in
//! `[2^(i-1), 2^i)`, with the top bucket absorbing everything above.
//! Quantiles are reported as the *upper bound* of the bucket the rank
//! falls in, so they are never under-estimates and carry at most a 2×
//! resolution error — and, crucially, they are exactly monotone under
//! [`Histogram::merge`] (a merged quantile always lies between the two
//! inputs' quantiles; see the property tests).
//!
//! Values are unit-agnostic `u64`s: record nanoseconds, microseconds, or
//! byte counts — the snapshot reports whatever unit went in.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets in a [`Histogram`]; covers the full `u64` range.
pub const BUCKETS: usize = 64;

/// A mergeable, lock-free histogram over `u64` values.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    total: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Clone for Histogram {
    fn clone(&self) -> Self {
        let out = Self::new();
        out.merge(self);
        out
    }
}

/// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`, capped.
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
}

/// Largest value a bucket can hold (its reported quantile value).
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed); // dime-check: allow(atomic-ordering) — histogram cells are independent counters; snapshots are point-in-time by contract
        self.total.fetch_add(v, Ordering::Relaxed); // dime-check: allow(atomic-ordering) — histogram cells are independent counters; snapshots are point-in-time by contract
        self.max.fetch_max(v, Ordering::Relaxed); // dime-check: allow(atomic-ordering) — histogram cells are independent counters; snapshots are point-in-time by contract
    }

    /// Folds another histogram into this one. Every bucket count, the
    /// total, and the max are component-wise non-decreasing.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed); // dime-check: allow(atomic-ordering) — histogram cells are independent counters; snapshots are point-in-time by contract
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed); // dime-check: allow(atomic-ordering) — histogram cells are independent counters; snapshots are point-in-time by contract
            }
        }
        self.total.fetch_add(other.total.load(Ordering::Relaxed), Ordering::Relaxed); // dime-check: allow(atomic-ordering) — histogram cells are independent counters; snapshots are point-in-time by contract
                                                                                      // dime-check: allow(atomic-ordering) — histogram cells are independent counters; snapshots are point-in-time by contract
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Folds a plain-data snapshot into this histogram — the cross-shard
    /// merge path, where the other side's counts arrived over the wire as
    /// a [`HistogramSnapshot`] rather than a live histogram. Identical
    /// monotonicity contract to [`Histogram::merge`].
    pub fn merge_snapshot(&self, other: &HistogramSnapshot) {
        for (mine, &n) in self.buckets.iter().zip(&other.buckets) {
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed); // dime-check: allow(atomic-ordering) — histogram cells are independent counters; snapshots are point-in-time by contract
            }
        }
        self.total.fetch_add(other.total, Ordering::Relaxed); // dime-check: allow(atomic-ordering) — histogram cells are independent counters; snapshots are point-in-time by contract
                                                              // dime-check: allow(atomic-ordering) — histogram cells are independent counters; snapshots are point-in-time by contract
        self.max.fetch_max(other.max, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum() // dime-check: allow(atomic-ordering) — histogram cells are independent counters; snapshots are point-in-time by contract
    }

    /// A point-in-time copy of all counts and derived quantiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: [u64; BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)); // dime-check: allow(atomic-ordering) — histogram cells are independent counters; snapshots are point-in-time by contract
        let count: u64 = buckets.iter().sum();
        let snap = HistogramSnapshot {
            count,
            total: self.total.load(Ordering::Relaxed), // dime-check: allow(atomic-ordering) — histogram cells are independent counters; snapshots are point-in-time by contract
            max: self.max.load(Ordering::Relaxed), // dime-check: allow(atomic-ordering) — histogram cells are independent counters; snapshots are point-in-time by contract
            p50: 0,
            p95: 0,
            p99: 0,
            buckets,
        };
        HistogramSnapshot {
            p50: snap.quantile(1, 2),
            p95: snap.quantile(19, 20),
            p99: snap.quantile(99, 100),
            ..snap
        }
    }
}

/// Plain-data view of a [`Histogram`] at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (saturating only at `u64` wrap; callers
    /// recording durations will not get near it).
    pub total: u64,
    /// Largest recorded value (exact, not bucketed).
    pub max: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 95th percentile (bucket upper bound).
    pub p95: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
    /// Raw per-bucket counts; see the module docs for bucket boundaries.
    pub buckets: [u64; BUCKETS],
}

impl HistogramSnapshot {
    /// The `num/den` quantile as a bucket upper bound: the value of the
    /// first bucket whose cumulative count reaches `ceil(count * num/den)`.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as u128 * num as u128 + den as u128 - 1) / den as u128) as u64;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bucket_upper(i);
            }
        }
        self.max
    }

    /// Mean of the recorded values, 0 when empty.
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.total / self.count
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(10), 1023);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.total, s.max, s.p50, s.p95, s.p99, s.mean()), (0, 0, 0, 0, 0, 0, 0));
    }

    #[test]
    fn single_value_quantiles() {
        let h = Histogram::new();
        h.record(100);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.total, 100);
        assert_eq!(s.max, 100);
        // 100 lands in [64, 128): every quantile reports the bucket top.
        assert_eq!((s.p50, s.p95, s.p99), (127, 127, 127));
    }

    #[test]
    fn quantiles_split_a_bimodal_distribution() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(10); // bucket [8, 16)
        }
        for _ in 0..10 {
            h.record(1000); // bucket [512, 1024)
        }
        let s = h.snapshot();
        assert_eq!(s.p50, 15);
        assert_eq!(s.p95, 1023);
        assert_eq!(s.max, 1000);
    }

    #[test]
    fn merge_adds_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        b.record(5);
        b.record(500);
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.total, 510);
        assert_eq!(s.max, 500);
    }

    #[test]
    fn merge_snapshot_matches_merge() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [0, 1, 7, 100, 1 << 20] {
            a.record(v);
            b.record(v * 3 + 1);
        }
        let via_merge = a.clone();
        via_merge.merge(&b);
        let via_snapshot = a.clone();
        via_snapshot.merge_snapshot(&b.snapshot());
        assert_eq!(via_snapshot.snapshot(), via_merge.snapshot());
    }

    #[test]
    fn clone_is_deep() {
        let a = Histogram::new();
        a.record(7);
        let b = a.clone();
        a.record(7);
        assert_eq!(b.count(), 1);
        assert_eq!(a.count(), 2);
    }

    fn from_values(values: &[u64]) -> Histogram {
        let h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        h
    }

    proptest! {
        /// The satellite property: merging never lowers any bucket count,
        /// and every merged quantile lies between the inputs' quantiles.
        #[test]
        fn merge_is_monotone(
            xs in proptest::collection::vec(0u64..1 << 40, 0..200),
            ys in proptest::collection::vec(0u64..1 << 40, 0..200),
        ) {
            let a = from_values(&xs);
            let b = from_values(&ys);
            let merged = a.clone();
            merged.merge(&b);
            let (sa, sb, sm) = (a.snapshot(), b.snapshot(), merged.snapshot());

            for i in 0..BUCKETS {
                prop_assert!(sm.buckets[i] >= sa.buckets[i]);
                prop_assert!(sm.buckets[i] >= sb.buckets[i]);
            }
            prop_assert_eq!(sm.count, sa.count + sb.count);
            prop_assert!(sm.max >= sa.max.max(sb.max));

            for (num, den) in [(1u64, 2u64), (19, 20), (99, 100)] {
                let (qa, qb, qm) =
                    (sa.quantile(num, den), sb.quantile(num, den), sm.quantile(num, den));
                if sa.count == 0 || sb.count == 0 {
                    // Merging with an empty histogram is the identity.
                    prop_assert_eq!(qm, qa.max(qb));
                } else {
                    prop_assert!(qm >= qa.min(qb), "q{num}/{den}: {qm} < min({qa}, {qb})");
                    prop_assert!(qm <= qa.max(qb), "q{num}/{den}: {qm} > max({qa}, {qb})");
                }
            }
        }

        /// Quantiles never under-report: the true quantile of the raw
        /// values is <= the bucketed quantile, within one bucket.
        #[test]
        fn quantile_upper_bounds_true_rank(
            values in proptest::collection::vec(0u64..1 << 40, 1..200),
        ) {
            let s = from_values(&values).snapshot();
            let mut xs = values;
            xs.sort_unstable();
            for (num, den) in [(1u64, 2u64), (19, 20), (99, 100)] {
                let rank = (xs.len() as u64 * num).div_ceil(den).max(1) as usize;
                let truth = xs[rank - 1];
                prop_assert!(s.quantile(num, den) >= truth);
            }
        }
    }
}
