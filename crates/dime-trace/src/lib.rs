//! Zero-dependency observability for the DIME engines: span-based
//! structured tracing with monotonic timestamps and thread tagging,
//! fixed-bucket latency histograms with quantile snapshots, and
//! per-rule / per-phase counters.
//!
//! The design center is the [`TraceSink`] trait: every method has a
//! no-op default, so the disabled path ([`NoopSink`], or the `NOOP`
//! static) costs one virtual call per *phase*, not per pair — hot loops
//! accumulate plain local integers and flush once at phase boundaries.
//! The collecting implementation is [`Recorder`], whose [`Recorder::snapshot`]
//! yields a plain-data [`TraceReport`] that callers render as a table or
//! serialize to JSON themselves (this crate deliberately has no
//! serialization dependency).
//!
//! Spans are RAII: [`span`] returns a [`SpanGuard`] that reports the
//! enclosed interval on drop, which keeps per-thread nesting balanced
//! even when a worker panics and unwinds mid-phase.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod recorder;
mod sink;
mod span;

pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use recorder::{PhaseStat, Recorder, RuleHitStat, TraceReport};
pub use sink::{NoopSink, RuleKind, TraceSink, NOOP};
pub use span::{now_nanos, span, thread_depth, thread_id, SpanGuard, SpanRecord};
