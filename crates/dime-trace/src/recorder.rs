//! The collecting [`TraceSink`]: aggregates phases, counters, rule hits,
//! and latency histograms, and keeps a bounded buffer of raw spans.

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::sink::{RuleKind, TraceSink};
use crate::span::SpanRecord;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Default cap on buffered raw spans. Phase aggregates stay exact past
/// the cap; only the per-span timeline is truncated (and the truncation
/// is counted), so a long-running server cannot grow without bound.
const DEFAULT_MAX_SPANS: usize = 4096;

#[derive(Default)]
struct Inner {
    spans: Vec<SpanRecord>,
    dropped_spans: u64,
    phases: BTreeMap<&'static str, (u64, u64)>, // name -> (count, total_ns)
    counters: BTreeMap<&'static str, u64>,
    rules: BTreeMap<(RuleKind, usize), u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

/// A thread-safe, in-memory trace collector.
///
/// Locks once per sink call — instrumented code flushes at phase
/// boundaries, so contention is per-phase, not per-pair.
pub struct Recorder {
    inner: Mutex<Inner>,
    max_spans: usize,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// An empty recorder with the default raw-span cap.
    pub fn new() -> Self {
        Self::with_max_spans(DEFAULT_MAX_SPANS)
    }

    /// An empty recorder keeping at most `max_spans` raw spans.
    pub fn with_max_spans(max_spans: usize) -> Self {
        Self { inner: Mutex::new(Inner::default()), max_spans }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panicking worker mid-record leaves only aggregate counters
        // possibly short by one flush; never poison the whole trace.
        // dime-check: allow(blocking-reaches-poll-loop) — reached only over name-collision edges (a HashMap `.remove(` and a Mutex `.lock(` resolving to same-named workspace fns); the admission thread never records trace spans
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// A plain-data copy of everything recorded so far.
    pub fn snapshot(&self) -> TraceReport {
        let inner = self.lock();
        TraceReport {
            spans: inner.spans.clone(),
            dropped_spans: inner.dropped_spans,
            phases: inner
                .phases
                .iter()
                .map(|(&name, &(count, total_ns))| PhaseStat {
                    name: name.to_string(),
                    count,
                    total_ns,
                })
                .collect(),
            counters: inner.counters.iter().map(|(&k, &v)| (k.to_string(), v)).collect(),
            rule_hits: inner
                .rules
                .iter()
                .map(|(&(kind, rule), &hits)| RuleHitStat { kind, rule, hits })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(&k, h)| (k.to_string(), h.snapshot()))
                .collect(),
        }
    }

    /// Clears all recorded data (the raw-span cap is kept).
    pub fn reset(&self) {
        *self.lock() = Inner::default();
    }
}

impl TraceSink for Recorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span(&self, record: SpanRecord) {
        let mut inner = self.lock();
        let slot = inner.phases.entry(record.name).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += record.duration_ns();
        if inner.spans.len() < self.max_spans {
            inner.spans.push(record);
        } else {
            inner.dropped_spans += 1;
        }
    }

    fn add(&self, counter: &'static str, n: u64) {
        *self.lock().counters.entry(counter).or_insert(0) += n;
    }

    fn rule_hits(&self, kind: RuleKind, rule: usize, hits: u64) {
        *self.lock().rules.entry((kind, rule)).or_insert(0) += hits;
    }

    fn latency(&self, histogram: &'static str, value: u64) {
        self.lock().histograms.entry(histogram).or_default().record(value);
    }
}

/// Aggregate time spent in one named phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase name, e.g. `"verify"`.
    pub name: String,
    /// Number of spans recorded under this name.
    pub count: u64,
    /// Total nanoseconds across those spans.
    pub total_ns: u64,
}

/// Hit count for one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleHitStat {
    /// Positive or negative family.
    pub kind: RuleKind,
    /// Rule index within its family (input order).
    pub rule: usize,
    /// Number of entity pairs (positive) or partitions (negative) the
    /// rule matched.
    pub hits: u64,
}

/// Everything a [`Recorder`] saw, as plain owned data: render it as a
/// table or serialize it downstream (this crate has no serializer).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceReport {
    /// Raw spans, oldest first, truncated at the recorder's cap.
    pub spans: Vec<SpanRecord>,
    /// Spans dropped once the cap was reached (aggregates stay exact).
    pub dropped_spans: u64,
    /// Per-phase aggregates, sorted by name.
    pub phases: Vec<PhaseStat>,
    /// Named counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Per-rule hit counts, positives before negatives, by rule index.
    pub rule_hits: Vec<RuleHitStat>,
    /// Named histogram snapshots, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl TraceReport {
    /// Total nanoseconds recorded under `phase`, 0 when absent.
    pub fn phase_total_ns(&self, phase: &str) -> u64 {
        self.phases.iter().find(|p| p.name == phase).map_or(0, |p| p.total_ns)
    }

    /// Value of a named counter, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(k, _)| k == name).map_or(0, |&(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{span, thread_depth};
    use proptest::prelude::*;

    #[test]
    fn aggregates_phases_counters_rules_histograms() {
        let rec = Recorder::new();
        {
            let _a = span(&rec, "verify");
        }
        {
            let _b = span(&rec, "verify");
        }
        rec.add("pairs_verified", 10);
        rec.add("pairs_verified", 5);
        rec.rule_hits(RuleKind::Positive, 0, 3);
        rec.rule_hits(RuleKind::Negative, 1, 2);
        rec.latency("flag_micros", 100);
        rec.latency("flag_micros", 200);

        let report = rec.snapshot();
        assert_eq!(report.spans.len(), 2);
        assert_eq!(report.phases.len(), 1);
        assert_eq!(report.phases[0].name, "verify");
        assert_eq!(report.phases[0].count, 2);
        assert_eq!(report.counter("pairs_verified"), 15);
        assert_eq!(report.counter("absent"), 0);
        assert_eq!(
            report.rule_hits,
            vec![
                RuleHitStat { kind: RuleKind::Positive, rule: 0, hits: 3 },
                RuleHitStat { kind: RuleKind::Negative, rule: 1, hits: 2 },
            ]
        );
        assert_eq!(report.histograms.len(), 1);
        assert_eq!(report.histograms[0].1.count, 2);
        assert_eq!(report.histograms[0].1.total, 300);
    }

    #[test]
    fn span_cap_truncates_but_keeps_aggregates_exact() {
        let rec = Recorder::with_max_spans(2);
        for _ in 0..5 {
            let _s = span(&rec, "verify");
        }
        let report = rec.snapshot();
        assert_eq!(report.spans.len(), 2);
        assert_eq!(report.dropped_spans, 3);
        assert_eq!(report.phases[0].count, 5);
    }

    #[test]
    fn reset_clears_everything() {
        let rec = Recorder::new();
        rec.add("c", 1);
        {
            let _s = span(&rec, "p");
        }
        rec.reset();
        assert_eq!(rec.snapshot(), TraceReport::default());
    }

    /// Checks one thread's spans nest like balanced parentheses: spans
    /// at depth d+1 fall inside the enclosing depth-d interval, and the
    /// count of recorded spans equals the count of opened guards.
    fn assert_balanced(spans: &[SpanRecord]) {
        for s in spans {
            assert!(s.end_ns >= s.start_ns);
        }
        // Recorded in drop (close) order: replay as a stack machine.
        let mut stack: Vec<SpanRecord> = Vec::new();
        let mut by_close = spans.to_vec();
        by_close.sort_by_key(|s| (s.end_ns, std::cmp::Reverse(s.depth)));
        for s in by_close {
            while let Some(top) = stack.last() {
                if top.depth >= s.depth {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(enclosing) = stack.last() {
                assert!(enclosing.depth < s.depth);
                assert!(enclosing.start_ns <= s.start_ns);
            }
            stack.push(s);
        }
    }

    /// Silences the default "thread panicked" banner for the deliberate
    /// panics below; anything else still reaches the previous hook.
    fn quiet_deliberate_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let deliberate = info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|m| m.contains("deliberate worker panic"));
                if !deliberate {
                    previous(info);
                }
            }));
        });
    }

    proptest! {
        /// The satellite property: panicking workers still close every
        /// span they opened, per-thread depth returns to zero, and the
        /// recorded spans nest properly.
        #[test]
        fn span_nesting_balanced_across_panicking_workers(
            depths in proptest::collection::vec(1u32..6, 1..8),
        ) {
            quiet_deliberate_panics();
            let rec = Recorder::new();
            std::thread::scope(|scope| {
                for &target in &depths {
                    let rec = &rec;
                    scope.spawn(move || {
                        let outcome = std::panic::catch_unwind(
                            std::panic::AssertUnwindSafe(|| {
                                open_nested(rec, target);
                            }),
                        );
                        // Plain asserts: a failure panics the scope,
                        // which fails the test.
                        assert!(outcome.is_err(), "worker was built to panic");
                        assert_eq!(thread_depth(), 0);
                    });
                }
            });
            let report = rec.snapshot();
            let opened: u32 = depths.iter().sum();
            prop_assert_eq!(report.spans.len() as u32, opened);

            let mut threads: std::collections::BTreeMap<u64, Vec<SpanRecord>> =
                std::collections::BTreeMap::new();
            for s in &report.spans {
                threads.entry(s.thread).or_default().push(*s);
            }
            prop_assert_eq!(threads.len(), depths.len());
            for spans in threads.values() {
                assert_balanced(spans);
                // Exactly one span per depth level 0..n on each worker.
                let mut levels: Vec<u32> = spans.iter().map(|s| s.depth).collect();
                levels.sort_unstable();
                prop_assert_eq!(levels, (0..spans.len() as u32).collect::<Vec<_>>());
            }
        }
    }

    /// Opens `n` nested spans then panics at the deepest point.
    fn open_nested(rec: &Recorder, n: u32) {
        let _guard = span(rec, "worker_phase");
        if n == 1 {
            panic!("deliberate worker panic");
        }
        open_nested(rec, n - 1);
    }
}
