//! RAII spans over a process-wide monotonic clock, tagged with small
//! per-thread ids so interleaved parallel workers stay attributable.

use crate::sink::TraceSink;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The process-wide epoch: all span timestamps are nanoseconds since the
/// first call, so records from different threads share one timeline.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (monotonic).
pub fn now_nanos() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    // dime-check: allow(atomic-ordering) — id allocator; uniqueness comes from fetch_add atomicity, not ordering
    static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// A small, dense id for the calling thread — assigned on first use.
/// (`std::thread::ThreadId` has no stable integer form.)
pub fn thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

/// The calling thread's current open-span depth. Returns to 0 whenever
/// every guard on this thread has dropped — including via panic unwind.
pub fn thread_depth() -> u32 {
    DEPTH.with(Cell::get)
}

/// One completed span: a named interval on one thread's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Phase name, e.g. `"verify"`.
    pub name: &'static str,
    /// Small id of the thread the span ran on (see [`thread_id`]).
    pub thread: u64,
    /// Nesting depth at entry: 0 for a top-level span.
    pub depth: u32,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the trace epoch.
    pub end_ns: u64,
}

impl SpanRecord {
    /// The span's duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// RAII guard from [`span`]: reports the interval to the sink on drop,
/// so nesting stays balanced even across a panic unwind.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
pub struct SpanGuard<'a> {
    sink: &'a dyn TraceSink,
    name: &'static str,
    start_ns: u64,
    depth: u32,
    active: bool,
}

/// Opens a span. When the sink is disabled this takes no timestamp and
/// the guard's drop is a no-op, so tracing costs nothing when off.
pub fn span<'a>(sink: &'a dyn TraceSink, name: &'static str) -> SpanGuard<'a> {
    if !sink.enabled() {
        return SpanGuard { sink, name, start_ns: 0, depth: 0, active: false };
    }
    let depth = DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    SpanGuard { sink, name, start_ns: now_nanos(), depth, active: true }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        self.sink.span(SpanRecord {
            name: self.name,
            thread: thread_id(),
            depth: self.depth,
            start_ns: self.start_ns,
            end_ns: now_nanos(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::NOOP;
    use crate::Recorder;

    #[test]
    fn noop_spans_touch_no_state() {
        let before = thread_depth();
        {
            let _a = span(&NOOP, "outer");
            let _b = span(&NOOP, "inner");
            assert_eq!(thread_depth(), before);
        }
        assert_eq!(thread_depth(), before);
    }

    #[test]
    fn nested_spans_record_depths_and_contained_intervals() {
        let rec = Recorder::new();
        {
            let _outer = span(&rec, "outer");
            let _inner = span(&rec, "inner");
        }
        let report = rec.snapshot();
        assert_eq!(report.spans.len(), 2);
        // Inner drops first, so it is recorded first.
        let (inner, outer) = (report.spans[0], report.spans[1]);
        assert_eq!((inner.name, inner.depth), ("inner", 1));
        assert_eq!((outer.name, outer.depth), ("outer", 0));
        assert!(outer.start_ns <= inner.start_ns);
        assert!(inner.end_ns <= outer.end_ns);
        assert_eq!(inner.thread, outer.thread);
    }

    #[test]
    fn thread_ids_are_distinct_and_stable() {
        let mine = thread_id();
        assert_eq!(mine, thread_id());
        let other = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(mine, other);
    }
}
