//! Effectiveness metrics and cross-validation utilities for the DIME
//! evaluation: precision, recall, F-measure over predicted vs. ground-truth
//! sets (Exp-1 … Exp-4), and deterministic k-fold splits (Exp-6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashSet;
use std::hash::Hash;

/// Precision / recall / F-measure triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prf {
    /// `tp / (tp + fp)`; 1.0 when nothing was predicted.
    pub precision: f64,
    /// `tp / (tp + fn)`; 1.0 when nothing was relevant.
    pub recall: f64,
    /// Harmonic mean of precision and recall; 0.0 when both are 0.
    pub f_measure: f64,
}

impl Prf {
    /// Builds the triple from raw confusion counts.
    pub fn from_counts(tp: usize, fp: usize, fnn: usize) -> Self {
        let precision = if tp + fp == 0 { 1.0 } else { tp as f64 / (tp + fp) as f64 };
        let recall = if tp + fnn == 0 { 1.0 } else { tp as f64 / (tp + fnn) as f64 };
        let f_measure = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self { precision, recall, f_measure }
    }

    /// The arithmetic mean of a collection of triples (used for the
    /// "average over 200 Scholar pages" style numbers). Empty input yields
    /// all-zero metrics.
    pub fn mean(items: &[Prf]) -> Self {
        if items.is_empty() {
            return Self { precision: 0.0, recall: 0.0, f_measure: 0.0 };
        }
        let n = items.len() as f64;
        Self {
            precision: items.iter().map(|p| p.precision).sum::<f64>() / n,
            recall: items.iter().map(|p| p.recall).sum::<f64>() / n,
            f_measure: items.iter().map(|p| p.f_measure).sum::<f64>() / n,
        }
    }
}

/// Evaluates a predicted set against a ground-truth set.
///
/// ```
/// use dime_metrics::evaluate_sets;
/// let truth = [1, 2, 3];
/// let predicted = [2, 3, 4];
/// let m = evaluate_sets(predicted.iter(), truth.iter());
/// assert!((m.precision - 2.0 / 3.0).abs() < 1e-12);
/// assert!((m.recall - 2.0 / 3.0).abs() < 1e-12);
/// ```
pub fn evaluate_sets<'a, T: Eq + Hash + 'a>(
    predicted: impl IntoIterator<Item = &'a T>,
    truth: impl IntoIterator<Item = &'a T>,
) -> Prf {
    let predicted: HashSet<&T> = predicted.into_iter().collect();
    let truth: HashSet<&T> = truth.into_iter().collect();
    let tp = predicted.intersection(&truth).count();
    Prf::from_counts(tp, predicted.len() - tp, truth.len() - tp)
}

/// Deterministic k-fold split of `0..n` in round-robin order.
///
/// Returns `k` folds of near-equal size; every index appears in exactly one
/// fold. Use fold `i` as the test set and the remainder as training.
///
/// ```
/// use dime_metrics::kfold;
/// let folds = kfold(7, 3);
/// assert_eq!(folds.len(), 3);
/// let total: usize = folds.iter().map(Vec::len).sum();
/// assert_eq!(total, 7);
/// ```
pub fn kfold(n: usize, k: usize) -> Vec<Vec<usize>> {
    assert!(k >= 1, "need at least one fold");
    let mut folds = vec![Vec::with_capacity(n / k + 1); k];
    for i in 0..n {
        folds[i % k].push(i);
    }
    folds
}

/// Complements a fold: all indices of `0..n` not in `fold` (the training
/// split corresponding to a test fold).
pub fn fold_complement(n: usize, fold: &[usize]) -> Vec<usize> {
    let test: HashSet<usize> = fold.iter().copied().collect();
    (0..n).filter(|i| !test.contains(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_prediction() {
        let m = evaluate_sets([1, 2].iter(), [1, 2].iter());
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f_measure, 1.0);
    }

    #[test]
    fn empty_cases() {
        let none: [u32; 0] = [];
        let m = evaluate_sets(none.iter(), none.iter());
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        let m = evaluate_sets(none.iter(), [1].iter());
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f_measure, 0.0);
        let m = evaluate_sets([1].iter(), none.iter());
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 1.0);
    }

    #[test]
    fn from_counts_matches_formulas() {
        let m = Prf::from_counts(3, 1, 2);
        assert!((m.precision - 0.75).abs() < 1e-12);
        assert!((m.recall - 0.6).abs() < 1e-12);
        let expect_f = 2.0 * 0.75 * 0.6 / 1.35;
        assert!((m.f_measure - expect_f).abs() < 1e-12);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        let m = Prf::mean(&[]);
        assert_eq!(m.f_measure, 0.0);
    }

    #[test]
    fn mean_averages() {
        let a = Prf::from_counts(1, 0, 0); // all 1.0
        let b = Prf::from_counts(0, 1, 1); // all 0.0
        let m = Prf::mean(&[a, b]);
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn kfold_partitions() {
        let folds = kfold(10, 3);
        assert_eq!(folds.iter().map(Vec::len).sum::<usize>(), 10);
        let mut all: Vec<usize> = folds.concat();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn fold_complement_is_disjoint_cover() {
        let folds = kfold(9, 4);
        for f in &folds {
            let train = fold_complement(9, f);
            assert_eq!(train.len() + f.len(), 9);
            assert!(train.iter().all(|i| !f.contains(i)));
        }
    }

    #[test]
    #[should_panic(expected = "at least one fold")]
    fn zero_folds_panics() {
        let _ = kfold(5, 0);
    }

    proptest! {
        #[test]
        fn prop_metrics_in_unit_interval(tp in 0usize..20, fp in 0usize..20, fnn in 0usize..20) {
            let m = Prf::from_counts(tp, fp, fnn);
            prop_assert!((0.0..=1.0).contains(&m.precision));
            prop_assert!((0.0..=1.0).contains(&m.recall));
            prop_assert!((0.0..=1.0).contains(&m.f_measure));
            // F is between min and max of P and R (harmonic mean property).
            if m.precision > 0.0 && m.recall > 0.0 {
                prop_assert!(m.f_measure <= m.precision.max(m.recall) + 1e-12);
                prop_assert!(m.f_measure >= m.precision.min(m.recall) - 1e-12);
            }
        }

        #[test]
        fn prop_kfold_balanced(n in 0usize..50, k in 1usize..8) {
            let folds = kfold(n, k);
            let max = folds.iter().map(Vec::len).max().unwrap();
            let min = folds.iter().map(Vec::len).min().unwrap();
            prop_assert!(max - min <= 1, "folds must differ by at most one");
        }
    }
}
