//! Ontology node signatures (paper Section IV-B, Lemmas 4.1 and 4.2).
//!
//! For the predicate `ontology_similarity ≥ θ`, the signature of a node `n`
//! with depth `|n|` is an ancestor at depth
//!
//! ```text
//! τ_n = ⌈ θ·|n| / (2 − θ) ⌉
//! ```
//!
//! because `sim(n, n′) ≥ θ` forces `|LCA(n, n′)| ≥ τ_n` (Lemma 4.1). Since
//! ancestor-descendant checks between two different signature depths are
//! awkward, DIME⁺ uses a single depth `τ_min = min over the group of τ_n`:
//! every node takes its ancestor at `τ_min` as its *node signature*, and
//! similar nodes are guaranteed to have **equal** node signatures
//! (Lemma 4.2).

use crate::{NodeId, Ontology};

/// Computes `τ_n = ⌈θ·depth/(2−θ)⌉`, clamped to at least 1 (the root).
///
/// ```
/// use dime_ontology::tau;
/// // Paper Example 6 with θ = 0.75:
/// assert_eq!(tau(0.75, 2), 2); // Computer Science
/// assert_eq!(tau(0.75, 3), 2); // Database
/// assert_eq!(tau(0.75, 4), 3); // VLDB
/// ```
pub fn tau(theta: f64, depth: u32) -> u32 {
    assert!((0.0..=1.0).contains(&theta), "ontology threshold must be in [0,1]");
    let raw = (theta * depth as f64) / (2.0 - theta);
    // −ε before ceil: rounding τ *up* past its exact value would pick a
    // signature deeper than the guaranteed LCA depth (a false dismissal);
    // one too shallow is merely less selective.
    (((raw - 1e-9).ceil()) as u32).max(1)
}

/// The minimum `τ_n` over a collection of node depths — the shared
/// signature depth for the group (paper: `τ_min`).
///
/// Returns 1 (the root depth) for an empty collection, which keeps every
/// signature valid though unselective.
pub fn tau_min(theta: f64, depths: impl IntoIterator<Item = u32>) -> u32 {
    depths.into_iter().map(|d| tau(theta, d)).min().unwrap_or(1)
}

/// The *node signature* of `node` at signature depth `tau_min`: its
/// ancestor at that depth (or the node itself if it is shallower).
pub fn node_signature(ont: &Ontology, node: NodeId, tau_min: u32) -> NodeId {
    let d = ont.depth(node).min(tau_min);
    ont.ancestor_at_depth(node, d).expect("depth clamped to node depth, ancestor must exist")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology_similarity;
    use proptest::prelude::*;

    #[test]
    fn paper_example_6_signatures() {
        let mut o = Ontology::new("venue");
        let cs = o.add_child(o.root(), "computer science");
        let db = o.add_child(cs, "database");
        let vldb = o.add_child(db, "vldb");
        let theta = 0.75;
        // τ values from Example 6.
        assert_eq!(tau(theta, o.depth(cs)), 2);
        assert_eq!(tau(theta, o.depth(db)), 2);
        assert_eq!(tau(theta, o.depth(vldb)), 3);
        // Per-node τ signatures: cs→cs, db→cs, vldb→db.
        assert_eq!(o.ancestor_at_depth(db, 2), Some(cs));
        assert_eq!(o.ancestor_at_depth(vldb, 3), Some(db));
        // Node signatures at τ_min = 2 are all "computer science".
        let tmin = tau_min(theta, [o.depth(cs), o.depth(db), o.depth(vldb)]);
        assert_eq!(tmin, 2);
        for n in [cs, db, vldb] {
            assert_eq!(node_signature(&o, n, tmin), cs);
        }
    }

    #[test]
    fn tau_is_clamped_to_root() {
        assert_eq!(tau(0.01, 1), 1);
        assert_eq!(tau(0.0, 5), 1);
    }

    #[test]
    fn tau_min_empty_defaults_to_root() {
        assert_eq!(tau_min(0.5, []), 1);
    }

    #[test]
    fn shallow_node_signature_is_itself() {
        let o = Ontology::new("r");
        assert_eq!(node_signature(&o, o.root(), 3), o.root());
    }

    /// Builds a random-ish tree and returns all node ids.
    fn build_tree(shape: &[usize]) -> (Ontology, Vec<NodeId>) {
        let mut o = Ontology::new("root");
        let mut frontier = vec![o.root()];
        let mut all = vec![o.root()];
        for (lvl, &width) in shape.iter().enumerate() {
            let mut next = Vec::new();
            for (pi, &p) in frontier.iter().enumerate() {
                for c in 0..width {
                    let id = o.add_child(p, &format!("n{lvl}-{pi}-{c}"));
                    next.push(id);
                    all.push(id);
                }
            }
            frontier = next;
        }
        (o, all)
    }

    proptest! {
        /// Lemma 4.2: sim(n, n′) ≥ θ ⇒ equal node signatures at τ_min.
        #[test]
        fn prop_lemma_4_2(theta in 0.05f64..0.99, i in 0usize..50, j in 0usize..50) {
            let (o, all) = build_tree(&[3, 2, 2]);
            let a = all[i % all.len()];
            let b = all[j % all.len()];
            let tmin = tau_min(theta, all.iter().map(|&n| o.depth(n)));
            if ontology_similarity(&o, a, b) >= theta {
                prop_assert_eq!(node_signature(&o, a, tmin), node_signature(&o, b, tmin),
                    "similar nodes must share a node signature");
            }
        }

        /// Lemma 4.1: sim ≥ θ ⇒ per-node τ ancestors are equal or in an
        /// ancestor-descendant relationship.
        #[test]
        fn prop_lemma_4_1(theta in 0.05f64..0.99, i in 0usize..50, j in 0usize..50) {
            let (o, all) = build_tree(&[3, 2, 2]);
            let a = all[i % all.len()];
            let b = all[j % all.len()];
            if ontology_similarity(&o, a, b) >= theta {
                let sa = o.ancestor_at_depth(a, tau(theta, o.depth(a))).unwrap();
                let sb = o.ancestor_at_depth(b, tau(theta, o.depth(b))).unwrap();
                prop_assert!(
                    sa == sb || o.is_ancestor_or_self(sa, sb) || o.is_ancestor_or_self(sb, sa)
                );
            }
        }

        /// τ is monotone in both θ and depth.
        #[test]
        fn prop_tau_monotone(t1 in 0.05f64..0.95, dt in 0.0f64..0.04, d in 1u32..30) {
            prop_assert!(tau(t1, d) <= tau(t1 + dt, d));
            prop_assert!(tau(t1, d) <= tau(t1, d + 1));
        }
    }
}
