//! Arena-backed ontology trees.
//!
//! An ontology (paper Fig. 4 — Google Scholar Metrics) is a rooted tree of
//! named category nodes: `Venue → Computer Science → Database → SIGMOD`.
//! Entities map to nodes (by exact or approximate name match) and their
//! *semantic* similarity is derived from tree structure (see
//! [`crate::similarity`]).

use std::collections::HashMap;

/// Index of a node within an [`Ontology`] arena.
pub type NodeId = u32;

/// One node of the ontology tree.
#[derive(Debug, Clone)]
pub struct Node {
    /// Display name (also the lookup key, normalized to lowercase).
    pub name: String,
    /// Parent node; `None` only for the root.
    pub parent: Option<NodeId>,
    /// Depth of the node; the root has depth 1 (paper convention).
    pub depth: u32,
    /// Children, in insertion order.
    pub children: Vec<NodeId>,
}

/// A rooted ontology tree with name lookup.
///
/// # Examples
///
/// ```
/// use dime_ontology::Ontology;
///
/// let mut ont = Ontology::new("venue");
/// let cs = ont.add_child(ont.root(), "computer science");
/// let db = ont.add_child(cs, "database");
/// let sigmod = ont.add_child(db, "sigmod");
/// assert_eq!(ont.depth(sigmod), 4);
/// assert_eq!(ont.lookup("sigmod"), Some(sigmod));
/// assert_eq!(ont.parent(sigmod), Some(db));
/// ```
#[derive(Debug, Clone)]
pub struct Ontology {
    nodes: Vec<Node>,
    by_name: HashMap<String, NodeId>,
}

impl Ontology {
    /// Creates an ontology containing only a root node named `root_name`.
    pub fn new(root_name: &str) -> Self {
        let root =
            Node { name: root_name.to_lowercase(), parent: None, depth: 1, children: Vec::new() };
        let mut by_name = HashMap::new();
        by_name.insert(root.name.clone(), 0);
        Self { nodes: vec![root], by_name }
    }

    /// The root node id (always 0).
    pub fn root(&self) -> NodeId {
        0
    }

    /// Adds a child named `name` under `parent`, returning its id.
    ///
    /// If a node with this (lowercased) name already exists anywhere in the
    /// tree, that node is returned instead — ontology names are unique keys.
    pub fn add_child(&mut self, parent: NodeId, name: &str) -> NodeId {
        let key = name.to_lowercase();
        if let Some(&id) = self.by_name.get(&key) {
            return id;
        }
        let id = self.nodes.len() as NodeId;
        let depth = self.nodes[parent as usize].depth + 1;
        self.nodes.push(Node {
            name: key.clone(),
            parent: Some(parent),
            depth,
            children: Vec::new(),
        });
        self.nodes[parent as usize].children.push(id);
        self.by_name.insert(key, id);
        id
    }

    /// Inserts a root-to-leaf path of names, creating missing nodes, and
    /// returns the id of the final (deepest) node.
    ///
    /// ```
    /// use dime_ontology::Ontology;
    /// let mut ont = Ontology::new("venue");
    /// let vldb = ont.add_path(&["computer science", "database", "vldb"]);
    /// assert_eq!(ont.depth(vldb), 4);
    /// ```
    pub fn add_path(&mut self, path: &[&str]) -> NodeId {
        let mut cur = self.root();
        for name in path {
            cur = self.add_child(cur, name);
        }
        cur
    }

    /// Finds a node by (case-insensitive) name.
    pub fn lookup(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(&name.to_lowercase()).copied()
    }

    /// Depth of `node` (root = 1).
    pub fn depth(&self, node: NodeId) -> u32 {
        self.nodes[node as usize].depth
    }

    /// Parent of `node`, `None` for the root.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node as usize].parent
    }

    /// Name of `node`.
    pub fn name(&self, node: NodeId) -> &str {
        &self.nodes[node as usize].name
    }

    /// Children of `node`.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node as usize].children
    }

    /// Total number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has only its root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// The ancestor of `node` at exactly `depth` (1 = root). Returns `node`
    /// itself if its depth equals `depth`; `None` if `node` is shallower.
    pub fn ancestor_at_depth(&self, node: NodeId, depth: u32) -> Option<NodeId> {
        let mut cur = node;
        let d = self.depth(node);
        if depth > d || depth == 0 {
            return None;
        }
        for _ in depth..d {
            cur = self.parent(cur).expect("non-root node must have a parent");
        }
        Some(cur)
    }

    /// Lowest common ancestor of two nodes.
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let (mut a, mut b) = (a, b);
        // Lift the deeper node to equal depth, then walk both up in lockstep.
        while self.depth(a) > self.depth(b) {
            a = self.parent(a).expect("deeper node has parent");
        }
        while self.depth(b) > self.depth(a) {
            b = self.parent(b).expect("deeper node has parent");
        }
        while a != b {
            a = self.parent(a).expect("non-root in lca walk");
            b = self.parent(b).expect("non-root in lca walk");
        }
        a
    }

    /// Whether `anc` is `node` or one of its ancestors.
    pub fn is_ancestor_or_self(&self, anc: NodeId, node: NodeId) -> bool {
        self.ancestor_at_depth(node, self.depth(anc)) == Some(anc)
    }

    /// The minimum depth of any non-root node (the root's depth, 1, if the
    /// tree has only a root). A lower bound for any value an entity could
    /// map to — used for conservative signature depths.
    pub fn min_node_depth(&self) -> u32 {
        self.nodes.iter().skip(1).map(|n| n.depth).min().unwrap_or(1)
    }

    /// All leaves (nodes without children).
    pub fn leaves(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as NodeId)
            .filter(|&id| self.nodes[id as usize].children.is_empty())
            .collect()
    }

    /// The root-to-node name path of `node` (excluding the root).
    pub fn path_of(&self, node: NodeId) -> Vec<String> {
        let mut path = Vec::with_capacity(self.depth(node) as usize);
        let mut cur = Some(node);
        while let Some(n) = cur {
            if n != self.root() {
                path.push(self.name(n).to_owned());
            }
            cur = self.parent(n);
        }
        path.reverse();
        path
    }

    /// Exports the tree as root-to-leaf paths — the inverse of repeatedly
    /// calling [`Ontology::add_path`], and the JSON interchange format of
    /// the `dime` CLI.
    pub fn to_paths(&self) -> Vec<Vec<String>> {
        self.leaves().into_iter().filter(|&l| l != self.root()).map(|l| self.path_of(l)).collect()
    }

    /// Renders the tree as an indented outline (two spaces per level).
    pub fn render(&self) -> String {
        fn rec(ont: &Ontology, node: NodeId, out: &mut String) {
            let indent = (ont.depth(node) - 1) as usize * 2;
            out.push_str(&" ".repeat(indent));
            out.push_str(ont.name(node));
            out.push('\n');
            for &c in ont.children(node) {
                rec(ont, c, out);
            }
        }
        let mut out = String::new();
        rec(self, self.root(), &mut out);
        out
    }

    /// Rebuilds an ontology from exported paths.
    pub fn from_paths(root_name: &str, paths: &[Vec<String>]) -> Self {
        let mut ont = Ontology::new(root_name);
        for p in paths {
            let parts: Vec<&str> = p.iter().map(String::as_str).collect();
            ont.add_path(&parts);
        }
        ont
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Ontology, NodeId, NodeId, NodeId, NodeId) {
        // venue ── cs ── database ── {sigmod, vldb}
        //      └── chem ── rsc
        let mut o = Ontology::new("venue");
        let db = o.add_path(&["computer science", "database"]);
        let sigmod = o.add_child(db, "sigmod");
        let vldb = o.add_child(db, "vldb");
        let rsc = o.add_path(&["chemical sciences", "rsc advances"]);
        (o, db, sigmod, vldb, rsc)
    }

    #[test]
    fn depths_follow_paper_convention() {
        let (o, db, sigmod, ..) = sample();
        assert_eq!(o.depth(o.root()), 1);
        assert_eq!(o.depth(db), 3);
        assert_eq!(o.depth(sigmod), 4);
    }

    #[test]
    fn lca_same_branch_and_cross_branch() {
        let (o, db, sigmod, vldb, rsc) = sample();
        assert_eq!(o.lca(sigmod, vldb), db);
        assert_eq!(o.lca(sigmod, sigmod), sigmod);
        assert_eq!(o.lca(sigmod, db), db);
        assert_eq!(o.lca(sigmod, rsc), o.root());
    }

    #[test]
    fn ancestor_at_depth_walks_up() {
        let (o, db, sigmod, ..) = sample();
        assert_eq!(o.ancestor_at_depth(sigmod, 3), Some(db));
        assert_eq!(o.ancestor_at_depth(sigmod, 1), Some(o.root()));
        assert_eq!(o.ancestor_at_depth(sigmod, 4), Some(sigmod));
        assert_eq!(o.ancestor_at_depth(db, 4), None);
        assert_eq!(o.ancestor_at_depth(db, 0), None);
    }

    #[test]
    fn add_child_is_idempotent_by_name() {
        let mut o = Ontology::new("r");
        let a = o.add_child(0, "X");
        let b = o.add_child(0, "x");
        assert_eq!(a, b);
        assert_eq!(o.len(), 2);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let (o, _, sigmod, ..) = sample();
        assert_eq!(o.lookup("SIGMOD"), Some(sigmod));
        assert_eq!(o.lookup("nope"), None);
    }

    #[test]
    fn is_ancestor_or_self_works() {
        let (o, db, sigmod, _, rsc) = sample();
        assert!(o.is_ancestor_or_self(db, sigmod));
        assert!(o.is_ancestor_or_self(sigmod, sigmod));
        assert!(o.is_ancestor_or_self(o.root(), rsc));
        assert!(!o.is_ancestor_or_self(sigmod, db));
        assert!(!o.is_ancestor_or_self(db, rsc));
    }

    #[test]
    fn paths_roundtrip() {
        let (o, ..) = sample();
        let paths = o.to_paths();
        assert!(paths.contains(&vec![
            "computer science".to_string(),
            "database".to_string(),
            "sigmod".to_string()
        ]));
        let rebuilt = Ontology::from_paths("venue", &paths);
        assert_eq!(rebuilt.len(), o.len());
        for id in 0..o.len() as NodeId {
            let name = o.name(id);
            let r = rebuilt.lookup(name).unwrap();
            assert_eq!(rebuilt.depth(r), o.depth(id), "{name}");
        }
    }

    #[test]
    fn render_is_indented_outline() {
        let (o, ..) = sample();
        let text = o.render();
        assert!(text.starts_with("venue\n"));
        assert!(text.contains("    database\n"));
        assert!(text.contains("      sigmod\n"));
    }

    #[test]
    fn path_of_excludes_root() {
        let (o, _, sigmod, ..) = sample();
        assert_eq!(o.path_of(sigmod), vec!["computer science", "database", "sigmod"]);
        assert!(o.path_of(o.root()).is_empty());
    }

    #[test]
    fn min_node_depth_is_two_for_populated_tree() {
        let (o, ..) = sample();
        assert_eq!(o.min_node_depth(), 2);
        assert_eq!(Ontology::new("solo").min_node_depth(), 1);
    }

    #[test]
    fn leaves_are_childless() {
        let (o, ..) = sample();
        let leaves = o.leaves();
        assert!(leaves.iter().all(|&l| o.children(l).is_empty()));
        assert_eq!(leaves.len(), 3); // sigmod, vldb, rsc advances
    }
}
