//! Ontology trees and semantic similarity for DIME.
//!
//! Implements the third similarity family of "Discovering Mis-Categorized
//! Entities" (ICDE 2018): **ontology-based similarity**. Categories form a
//! rooted tree ([`Ontology`], e.g. Google Scholar Metrics' venue taxonomy),
//! entities map to nodes, and similarity is `2·|LCA|/(|n|+|n′|)` over node
//! depths ([`ontology_similarity`]).
//!
//! For DIME⁺'s filter step this crate provides the *node signature* scheme
//! of Section IV-B ([`tau`], [`tau_min`], [`node_signature`]) with the
//! paper's Lemmas 4.1/4.2 verified as property tests, and for attributes
//! lacking a curated ontology it provides an [`Lda`] topic model plus
//! [`build_theme_hierarchy`] to learn one from text, as the paper does for
//! Amazon product descriptions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lda;
mod signature;
mod similarity;
mod tree;

pub use lda::{build_clustered_hierarchy, build_theme_hierarchy, Lda, LdaConfig, ThemeModel};
pub use signature::{node_signature, tau, tau_min};
pub use similarity::{ontology_similarity, ontology_similarity_opt};
pub use tree::{Node, NodeId, Ontology};
