//! Ontology similarity (paper Section II).
//!
//! For nodes `n`, `n′` of an ontology tree the similarity is
//!
//! ```text
//! sim(n, n′) = 2·|LCA(n, n′)| / (|n| + |n′|)
//! ```
//!
//! where `|n|` is the node's depth (root = 1). SIGMOD and VLDB, both at
//! depth 4 with LCA "Database" at depth 3, score `2·3 / (4+4) = 0.75`
//! (paper Example 4 — note the paper rounds this to 3/4).

use crate::{NodeId, Ontology};

/// Computes `2·|LCA|/(|n|+|n′|)` for two nodes of `ont`.
///
/// ```
/// use dime_ontology::{Ontology, ontology_similarity};
/// let mut ont = Ontology::new("venue");
/// let sigmod = ont.add_path(&["computer science", "database", "sigmod"]);
/// let vldb = ont.add_path(&["computer science", "database", "vldb"]);
/// assert_eq!(ontology_similarity(&ont, sigmod, vldb), 0.75);
/// assert_eq!(ontology_similarity(&ont, sigmod, sigmod), 1.0);
/// ```
pub fn ontology_similarity(ont: &Ontology, a: NodeId, b: NodeId) -> f64 {
    let lca = ont.lca(a, b);
    let da = ont.depth(a) as f64;
    let db = ont.depth(b) as f64;
    2.0 * ont.depth(lca) as f64 / (da + db)
}

/// Ontology similarity over *optional* node mappings: entities whose value
/// failed to map to the ontology are treated as maximally dissimilar
/// (similarity 0) to everything, including other unmapped values.
pub fn ontology_similarity_opt(ont: &Ontology, a: Option<NodeId>, b: Option<NodeId>) -> f64 {
    match (a, b) {
        (Some(a), Some(b)) => ontology_similarity(ont, a, b),
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> (Ontology, Vec<NodeId>) {
        let mut o = Ontology::new("venue");
        let mut nodes = vec![o.root()];
        nodes.push(o.add_path(&["cs", "db", "sigmod"]));
        nodes.push(o.add_path(&["cs", "db", "vldb"]));
        nodes.push(o.add_path(&["cs", "system", "icpads"]));
        nodes.push(o.add_path(&["chem", "rsc advances"]));
        nodes.push(o.lookup("db").unwrap());
        nodes.push(o.lookup("cs").unwrap());
        (o, nodes)
    }

    #[test]
    fn paper_example_4() {
        let (o, _) = sample();
        let s = o.lookup("sigmod").unwrap();
        let v = o.lookup("vldb").unwrap();
        assert_eq!(ontology_similarity(&o, s, v), 0.75);
    }

    #[test]
    fn cross_field_similarity_is_low() {
        let (o, _) = sample();
        let s = o.lookup("sigmod").unwrap();
        let r = o.lookup("rsc advances").unwrap();
        // LCA is the root (depth 1): 2·1/(4+3) ≈ 0.2857.
        assert!(ontology_similarity(&o, s, r) < 0.3);
    }

    #[test]
    fn ancestor_descendant() {
        let (o, _) = sample();
        let s = o.lookup("sigmod").unwrap();
        let db = o.lookup("db").unwrap();
        // LCA(sigmod, db) = db: 2·3/(4+3) = 6/7.
        assert!((ontology_similarity(&o, s, db) - 6.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn unmapped_values_are_dissimilar() {
        let (o, _) = sample();
        let s = o.lookup("sigmod").unwrap();
        assert_eq!(ontology_similarity_opt(&o, Some(s), None), 0.0);
        assert_eq!(ontology_similarity_opt(&o, None, None), 0.0);
        assert_eq!(ontology_similarity_opt(&o, Some(s), Some(s)), 1.0);
    }

    proptest! {
        #[test]
        fn prop_bounds_and_symmetry(i in 0usize..7, j in 0usize..7) {
            let (o, nodes) = sample();
            let s = ontology_similarity(&o, nodes[i], nodes[j]);
            prop_assert!(s > 0.0 && s <= 1.0);
            prop_assert!((s - ontology_similarity(&o, nodes[j], nodes[i])).abs() < 1e-12);
        }

        #[test]
        fn prop_self_similarity_is_one(i in 0usize..7) {
            let (o, nodes) = sample();
            prop_assert_eq!(ontology_similarity(&o, nodes[i], nodes[i]), 1.0);
        }
    }
}
