//! Latent Dirichlet Allocation via collapsed Gibbs sampling, used to build
//! *theme hierarchies* for attributes without a published ontology.
//!
//! The paper (Section VI-A) builds the ontology for Amazon's `Description`
//! attribute by running LDA over the descriptions and using the learned
//! themes as tree nodes. We reproduce that: [`Lda::fit`] learns `K` topics,
//! and [`build_theme_hierarchy`] stacks two LDA levels into a
//! root → theme → sub-theme tree, mapping every document to its sub-theme
//! node so that `ontology_similarity` over descriptions becomes
//! "same sub-theme > same theme > unrelated".

use crate::{NodeId, Ontology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters and iteration budget for Gibbs sampling.
#[derive(Debug, Clone, Copy)]
pub struct LdaConfig {
    /// Number of topics `K`.
    pub topics: usize,
    /// Dirichlet prior on document-topic distributions.
    pub alpha: f64,
    /// Dirichlet prior on topic-word distributions.
    pub beta: f64,
    /// Gibbs sweeps over the corpus.
    pub iterations: usize,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
}

impl LdaConfig {
    /// A sensible default: `α = min(50/K, 0.3)`, `β = 0.01`, 80 sweeps.
    ///
    /// The textbook `α = 50/K` assumes long documents; titles and short
    /// product descriptions have 5–25 tokens, where an `α` larger than the
    /// document length flattens the document-topic posterior and topics
    /// degrade into random word buckets. Capping `α` keeps documents
    /// concentrated on few topics.
    pub fn new(topics: usize, seed: u64) -> Self {
        Self {
            topics,
            alpha: (50.0 / topics.max(1) as f64).min(0.3),
            beta: 0.01,
            iterations: 80,
            seed,
        }
    }
}

/// A fitted LDA model.
#[derive(Debug, Clone)]
pub struct Lda {
    /// `doc_topic[d][k]` — number of tokens of document `d` assigned to `k`.
    doc_topic: Vec<Vec<u32>>,
    /// `topic_word[k][w]` — number of occurrences of word `w` in topic `k`.
    topic_word: Vec<Vec<u32>>,
    /// `topic_total[k]` — total tokens assigned to topic `k`.
    topic_total: Vec<u32>,
    beta: f64,
    vocab: usize,
}

impl Lda {
    /// Fits LDA to `docs` (each a sequence of word ids `< vocab`) by
    /// collapsed Gibbs sampling.
    ///
    /// # Panics
    ///
    /// Panics if `config.topics == 0` or any word id is `≥ vocab`.
    pub fn fit(docs: &[Vec<u32>], vocab: usize, config: &LdaConfig) -> Self {
        let k = config.topics;
        assert!(k > 0, "LDA needs at least one topic");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut doc_topic = vec![vec![0u32; k]; docs.len()];
        let mut topic_word = vec![vec![0u32; vocab]; k];
        let mut topic_total = vec![0u32; k];
        // Random initialization.
        let mut z: Vec<Vec<usize>> = docs
            .iter()
            .enumerate()
            .map(|(d, doc)| {
                doc.iter()
                    .map(|&w| {
                        assert!((w as usize) < vocab, "word id {w} out of vocab {vocab}");
                        let t = rng.gen_range(0..k);
                        doc_topic[d][t] += 1;
                        topic_word[t][w as usize] += 1;
                        topic_total[t] += 1;
                        t
                    })
                    .collect()
            })
            .collect();

        let (alpha, beta) = (config.alpha, config.beta);
        let vbeta = vocab as f64 * beta;
        let mut weights = vec![0.0f64; k];
        for _ in 0..config.iterations {
            for (d, doc) in docs.iter().enumerate() {
                for (i, &w) in doc.iter().enumerate() {
                    let w = w as usize;
                    let old = z[d][i];
                    doc_topic[d][old] -= 1;
                    topic_word[old][w] -= 1;
                    topic_total[old] -= 1;
                    // Full conditional: (N_dk + α)(N_kw + β)/(N_k + Vβ).
                    let mut total = 0.0;
                    for t in 0..k {
                        let p = (doc_topic[d][t] as f64 + alpha) * (topic_word[t][w] as f64 + beta)
                            / (topic_total[t] as f64 + vbeta);
                        total += p;
                        weights[t] = total;
                    }
                    let r = rng.gen::<f64>() * total;
                    let new = weights.partition_point(|&cum| cum < r).min(k - 1);
                    z[d][i] = new;
                    doc_topic[d][new] += 1;
                    topic_word[new][w] += 1;
                    topic_total[new] += 1;
                }
            }
        }
        Self { doc_topic, topic_word, topic_total, beta, vocab }
    }

    /// Number of topics.
    pub fn topics(&self) -> usize {
        self.topic_total.len()
    }

    /// The dominant topic of document `d` (argmax of its topic counts);
    /// ties break toward the lower topic index. Empty documents map to 0.
    pub fn doc_topic(&self, d: usize) -> usize {
        self.doc_topic[d]
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// The per-topic token counts of training document `d`.
    pub fn doc_topic_counts(&self, d: usize) -> &[u32] {
        &self.doc_topic[d]
    }

    /// Raw count of word `w` in topic `t`.
    pub fn topic_word_count(&self, t: usize, w: u32) -> u32 {
        self.topic_word[t][w as usize]
    }

    /// Total tokens assigned to topic `t`.
    pub fn topic_total(&self, t: usize) -> u32 {
        self.topic_total[t]
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Smoothed probability of word `w` under topic `t`.
    pub fn word_prob(&self, t: usize, w: u32) -> f64 {
        (self.topic_word[t][w as usize] as f64 + self.beta)
            / (self.topic_total[t] as f64 + self.vocab as f64 * self.beta)
    }

    /// Folds a *new* document into the model: the topic maximizing the
    /// document's log-likelihood `Σ_w ln p(w | t)` under a uniform topic
    /// prior. Empty documents map to topic 0.
    pub fn infer(&self, words: &[u32]) -> usize {
        if words.is_empty() {
            return 0;
        }
        (0..self.topics())
            .max_by(|&a, &b| {
                let la: f64 = words.iter().map(|&w| self.word_prob(a, w).ln()).sum();
                let lb: f64 = words.iter().map(|&w| self.word_prob(b, w).ln()).sum();
                la.total_cmp(&lb)
            })
            .unwrap_or(0)
    }

    /// The `n` highest-probability words of topic `t`.
    pub fn top_words(&self, t: usize, n: usize) -> Vec<u32> {
        let mut idx: Vec<u32> = (0..self.vocab as u32).collect();
        idx.sort_unstable_by(|&a, &b| {
            self.topic_word[t][b as usize].cmp(&self.topic_word[t][a as usize]).then(a.cmp(&b))
        });
        idx.truncate(n);
        idx
    }
}

/// Builds a two-level theme hierarchy from documents and maps each document
/// to its node.
///
/// Level 1 splits the corpus into `themes` topics; level 2 re-runs LDA with
/// `sub_themes` topics *within* each theme's documents. Documents land on
/// depth-3 sub-theme nodes (or the depth-2 theme node when a theme has too
/// few documents to split). Returns the ontology and one node per document.
pub fn build_theme_hierarchy(
    docs: &[Vec<u32>],
    vocab: usize,
    themes: usize,
    sub_themes: usize,
    seed: u64,
) -> (Ontology, Vec<NodeId>) {
    let mut ont = Ontology::new("themes");
    let mut doc_nodes = vec![ont.root(); docs.len()];
    if docs.is_empty() {
        return (ont, doc_nodes);
    }
    let top = Lda::fit(docs, vocab, &LdaConfig::new(themes, seed));
    // Partition documents by dominant theme.
    let mut by_theme: Vec<Vec<usize>> = vec![Vec::new(); themes];
    for d in 0..docs.len() {
        by_theme[top.doc_topic(d)].push(d);
    }
    for (t, members) in by_theme.iter().enumerate() {
        if members.is_empty() {
            continue;
        }
        let theme_node = ont.add_child(ont.root(), &format!("theme-{t}"));
        if members.len() < 2 * sub_themes || sub_themes < 2 {
            for &d in members {
                doc_nodes[d] = theme_node;
            }
            continue;
        }
        let sub_docs: Vec<Vec<u32>> = members.iter().map(|&d| docs[d].clone()).collect();
        let sub = Lda::fit(&sub_docs, vocab, &LdaConfig::new(sub_themes, seed ^ (t as u64 + 1)));
        for (local, &d) in members.iter().enumerate() {
            let s = sub.doc_topic(local);
            let node = ont.add_child(theme_node, &format!("theme-{t}-{s}"));
            doc_nodes[d] = node;
        }
    }
    (ont, doc_nodes)
}

/// Builds a theme hierarchy by *clustering* LDA topics: fit `topics`
/// topics, then agglomeratively merge them into `super_themes` groups by
/// cosine similarity of their word distributions.
///
/// The resulting tree is root → super-theme (depth 2) → topic (depth 3),
/// with every document mapped to its dominant topic's node. Compared to
/// [`build_theme_hierarchy`], this handles *unbalanced* corpora: a 20%
/// minority of foreign documents keeps its own super-theme because its
/// topics share no vocabulary with the majority's topics, whereas plain
/// LDA with a small `K` tends to split the majority instead.
pub fn build_clustered_hierarchy(
    docs: &[Vec<u32>],
    vocab: usize,
    topics: usize,
    super_themes: usize,
    seed: u64,
) -> (Ontology, Vec<NodeId>) {
    if docs.is_empty() {
        let ont = Ontology::new("themes");
        return (ont, Vec::new());
    }
    let model = ThemeModel::fit(docs, vocab, topics, super_themes, seed);
    let nodes = (0..docs.len()).map(|d| model.topic_node[model.lda.doc_topic(d)]).collect();
    let ThemeModel { ontology, .. } = model;
    (ontology, nodes)
}

/// A reusable theme model: LDA topics clustered into super-themes, with
/// fold-in inference for *new* documents.
///
/// This is how a corpus-level theme hierarchy (the paper trains LDA over
/// whole datasets, not single groups) is applied to individual groups:
/// [`ThemeModel::fit`] once on a background corpus, then
/// [`ThemeModel::assign`] each group's values to ontology nodes.
#[derive(Debug, Clone)]
pub struct ThemeModel {
    lda: Lda,
    ontology: Ontology,
    topic_node: Vec<NodeId>,
}

impl ThemeModel {
    /// Fits `topics` LDA topics on `docs` and agglomerates them into
    /// `super_themes` groups by cosine similarity of their word
    /// distributions. The ontology is root → super-theme → topic.
    ///
    /// # Panics
    ///
    /// Panics on an empty corpus.
    pub fn fit(
        docs: &[Vec<u32>],
        vocab: usize,
        topics: usize,
        super_themes: usize,
        seed: u64,
    ) -> Self {
        assert!(!docs.is_empty(), "cannot fit a theme model on an empty corpus");
        let lda = Lda::fit(docs, vocab, &LdaConfig::new(topics, seed));

        // Topic-word probability vectors.
        let dists: Vec<Vec<f64>> =
            (0..topics).map(|t| (0..vocab as u32).map(|w| lda.word_prob(t, w)).collect()).collect();
        let cosine = |a: &[f64], b: &[f64]| -> f64 {
            let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
            let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
            if na == 0.0 || nb == 0.0 {
                0.0
            } else {
                dot / (na * nb)
            }
        };

        // Greedy average-linkage agglomeration down to `super_themes` groups.
        let mut groups: Vec<Vec<usize>> = (0..topics).map(|t| vec![t]).collect();
        while groups.len() > super_themes.max(1) {
            let mut best = (0usize, 1usize, f64::MIN);
            for i in 0..groups.len() {
                for j in i + 1..groups.len() {
                    let mut sum = 0.0;
                    let mut cnt = 0usize;
                    for &a in &groups[i] {
                        for &b in &groups[j] {
                            sum += cosine(&dists[a], &dists[b]);
                            cnt += 1;
                        }
                    }
                    let avg = sum / cnt as f64;
                    if avg > best.2 {
                        best = (i, j, avg);
                    }
                }
            }
            let (i, j, _) = best;
            let merged = groups.remove(j);
            groups[i].extend(merged);
        }

        // Build the tree and the topic → node map.
        let mut ontology = Ontology::new("themes");
        let mut topic_node = vec![ontology.root(); topics];
        for (g, members) in groups.iter().enumerate() {
            let super_node = ontology.add_child(ontology.root(), &format!("super-{g}"));
            for &t in members {
                topic_node[t] = ontology.add_child(super_node, &format!("topic-{t}"));
            }
        }
        Self { lda, ontology, topic_node }
    }

    /// Fits `topics` LDA topics and groups them into super-themes by the
    /// *majority label* of their training documents (token-weighted) —
    /// supervised topic grouping in the spirit of Labeled LDA, for
    /// background corpora whose documents carry a coarse label (field,
    /// catalog category). `labels[d]` is the label of `docs[d]`; labels
    /// must be dense `0..n_labels`.
    ///
    /// # Panics
    ///
    /// Panics on an empty corpus or mismatched label length.
    pub fn fit_with_labels(
        docs: &[Vec<u32>],
        labels: &[usize],
        vocab: usize,
        topics: usize,
        seed: u64,
    ) -> Self {
        assert!(!docs.is_empty(), "cannot fit a theme model on an empty corpus");
        assert_eq!(docs.len(), labels.len(), "one label per document required");
        let n_labels = labels.iter().copied().max().unwrap_or(0) + 1;
        let lda = Lda::fit(docs, vocab, &LdaConfig::new(topics, seed));
        // Token-level label votes per topic: every topic a document's
        // tokens were assigned to receives that document's label votes —
        // this labels even topics that are never *dominant* for any single
        // document.
        let mut votes = vec![vec![0usize; n_labels]; topics];
        for d in 0..docs.len() {
            for (t, &c) in lda.doc_topic_counts(d).iter().enumerate() {
                votes[t][labels[d]] += c as usize;
            }
        }
        let mut ontology = Ontology::new("themes");
        let super_nodes: Vec<NodeId> =
            (0..n_labels).map(|g| ontology.add_child(0, &format!("super-{g}"))).collect();
        let mut topic_node = vec![ontology.root(); topics];
        for (t, v) in votes.iter().enumerate() {
            let g = v
                .iter()
                .enumerate()
                .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
                .map(|(i, _)| i)
                .unwrap_or(0);
            topic_node[t] = ontology.add_child(super_nodes[g], &format!("topic-{t}"));
        }
        Self { lda, ontology, topic_node }
    }

    /// The learned hierarchy.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// The underlying topic model.
    pub fn lda(&self) -> &Lda {
        &self.lda
    }

    /// Assigns a (possibly unseen) document to its theme node by fold-in
    /// inference. Out-of-vocabulary word ids must be filtered by the
    /// caller; an empty word list maps to topic 0's node.
    ///
    /// Inference is *super-theme first*: word distributions are aggregated
    /// per super-theme (whose token mass is always substantial), the
    /// best-scoring super-theme is chosen, and only then the best topic
    /// within it. Scoring raw topics directly is brittle — a degenerate
    /// topic with little token mass has nearly uniform (β-dominated) word
    /// probabilities that can out-score a well-populated topic on words it
    /// has simply never seen.
    pub fn assign(&self, words: &[u32]) -> NodeId {
        if words.is_empty() {
            return self.topic_node[0];
        }
        // Group topics by super-theme node (the parent of each topic node).
        let mut supers: Vec<(NodeId, Vec<usize>)> = Vec::new();
        for (t, &node) in self.topic_node.iter().enumerate() {
            let parent = self.ontology.parent(node).unwrap_or(node);
            match supers.iter_mut().find(|(p, _)| *p == parent) {
                Some((_, members)) => members.push(t),
                None => supers.push((parent, vec![t])),
            }
        }
        let beta = 0.01f64;
        let vbeta = self.lda.vocab() as f64 * beta;
        let best_super = supers
            .iter()
            .max_by(|a, b| {
                let score = |members: &[usize]| -> f64 {
                    let total: f64 = members.iter().map(|&t| self.lda.topic_total(t) as f64).sum();
                    words
                        .iter()
                        .map(|&w| {
                            let c: f64 = members
                                .iter()
                                .map(|&t| self.lda.topic_word_count(t, w) as f64)
                                .sum();
                            ((c + beta) / (total + vbeta)).ln()
                        })
                        .sum()
                };
                score(&a.1).total_cmp(&score(&b.1))
            })
            .expect("at least one super-theme");
        // Best topic within the chosen super-theme, weighted by topic mass.
        let &t = best_super
            .1
            .iter()
            .max_by(|&&a, &&b| {
                let score = |t: usize| -> f64 {
                    let total = self.lda.topic_total(t) as f64;
                    words
                        .iter()
                        .map(|&w| {
                            ((self.lda.topic_word_count(t, w) as f64 + beta) / (total + vbeta)).ln()
                        })
                        .sum::<f64>()
                        + (total + 1.0).ln()
                };
                score(a).total_cmp(&score(b))
            })
            .expect("super-theme has at least one topic");
        self.topic_node[t]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology_similarity;

    /// Two well-separated vocabularies: words 0..10 (networking) and
    /// 10..20 (cosmetics). LDA with K=2 must separate them.
    fn two_theme_corpus(docs_per_theme: usize, len: usize) -> Vec<Vec<u32>> {
        let mut rng = StdRng::seed_from_u64(7);
        let mut docs = Vec::new();
        for theme in 0..2u32 {
            for _ in 0..docs_per_theme {
                let doc: Vec<u32> =
                    (0..len).map(|_| theme * 10 + rng.gen_range(0..10u32)).collect();
                docs.push(doc);
            }
        }
        docs
    }

    #[test]
    fn lda_separates_disjoint_vocabularies() {
        let docs = two_theme_corpus(20, 30);
        let lda = Lda::fit(&docs, 20, &LdaConfig::new(2, 42));
        let first = lda.doc_topic(0);
        // All theme-0 docs share a topic, all theme-1 docs share the other.
        assert!((0..20).all(|d| lda.doc_topic(d) == first));
        assert!((20..40).all(|d| lda.doc_topic(d) == 1 - first));
    }

    #[test]
    fn lda_is_deterministic_given_seed() {
        let docs = two_theme_corpus(5, 10);
        let a = Lda::fit(&docs, 20, &LdaConfig::new(2, 9));
        let b = Lda::fit(&docs, 20, &LdaConfig::new(2, 9));
        for d in 0..docs.len() {
            assert_eq!(a.doc_topic(d), b.doc_topic(d));
        }
    }

    #[test]
    fn top_words_come_from_topic_vocabulary() {
        let docs = two_theme_corpus(20, 30);
        let lda = Lda::fit(&docs, 20, &LdaConfig::new(2, 42));
        let t0 = lda.doc_topic(0); // topic of the 0..10 vocabulary
        let tops = lda.top_words(t0, 5);
        assert!(tops.iter().all(|&w| w < 10), "top words {tops:?} leak across themes");
    }

    #[test]
    fn word_prob_sums_to_one() {
        let docs = two_theme_corpus(5, 10);
        let lda = Lda::fit(&docs, 20, &LdaConfig::new(2, 1));
        for t in 0..2 {
            let s: f64 = (0..20u32).map(|w| lda.word_prob(t, w)).sum();
            assert!((s - 1.0).abs() < 1e-9, "topic {t} sums to {s}");
        }
    }

    #[test]
    fn hierarchy_groups_same_theme_docs_closer() {
        let docs = two_theme_corpus(30, 30);
        let (ont, nodes) = build_theme_hierarchy(&docs, 20, 2, 2, 5);
        // Same-theme pairs must be at least as similar as cross-theme pairs.
        let same = ontology_similarity(&ont, nodes[0], nodes[1]);
        let cross = ontology_similarity(&ont, nodes[0], nodes[35]);
        assert!(same > cross, "same {same} !> cross {cross}");
        assert!(cross <= 0.5);
    }

    #[test]
    fn hierarchy_handles_empty_and_tiny_corpora() {
        let (_, nodes) = build_theme_hierarchy(&[], 5, 2, 2, 0);
        assert!(nodes.is_empty());
        let docs = vec![vec![0u32, 1], vec![2, 3]];
        let (ont, nodes) = build_theme_hierarchy(&docs, 5, 2, 2, 0);
        assert_eq!(nodes.len(), 2);
        for n in nodes {
            assert!(ont.depth(n) >= 2); // mapped to a theme node, not the root
        }
    }

    /// Clustered hierarchy must isolate a 20% minority with disjoint
    /// vocabulary into its own super-theme — the case plain small-K LDA
    /// gets wrong on unbalanced corpora.
    #[test]
    fn clustered_hierarchy_isolates_minority() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut docs: Vec<Vec<u32>> = Vec::new();
        // 80 majority docs over words 0..20 (two sub-pools sharing 0..10),
        // 20 minority docs over words 20..30.
        for i in 0..80u32 {
            let sub = 10 + (i % 2) * 5;
            let doc: Vec<u32> = (0..25)
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        rng.gen_range(0..10u32)
                    } else {
                        sub + rng.gen_range(0..5u32)
                    }
                })
                .collect();
            docs.push(doc);
        }
        for _ in 0..20 {
            docs.push((0..25).map(|_| 20 + rng.gen_range(0..10u32)).collect());
        }
        let (ont, nodes) = build_clustered_hierarchy(&docs, 30, 4, 2, 11);
        // Every majority pair must be at least as similar as any
        // majority-minority pair, and the cross similarity must be ≤ 0.5.
        let cross = ontology_similarity(&ont, nodes[0], nodes[85]);
        assert!(cross <= 0.5, "cross {cross}");
        for d in [1usize, 3, 41, 79] {
            let within = ontology_similarity(&ont, nodes[0], nodes[d]);
            assert!(within > cross, "within {within} !> cross {cross} (doc {d})");
        }
    }

    #[test]
    fn infer_assigns_new_docs_to_right_topic() {
        let docs = two_theme_corpus(20, 30);
        let lda = Lda::fit(&docs, 20, &LdaConfig::new(2, 42));
        let t0 = lda.doc_topic(0);
        assert_eq!(lda.infer(&[0, 1, 2, 3]), t0);
        assert_eq!(lda.infer(&[10, 11, 12]), 1 - t0);
        assert_eq!(lda.infer(&[]), 0);
    }

    #[test]
    fn theme_model_assign_matches_training_semantics() {
        let docs = two_theme_corpus(30, 30);
        let model = ThemeModel::fit(&docs, 20, 4, 2, 9);
        let a = model.assign(&[0, 1, 2, 3, 4]);
        let b = model.assign(&[15, 16, 17, 18]);
        // Different vocab blocks land in different super-themes.
        let ont = model.ontology();
        assert_ne!(ont.ancestor_at_depth(a, 2), ont.ancestor_at_depth(b, 2));
        assert!(ontology_similarity(ont, a, b) <= 0.5);
    }

    #[test]
    #[should_panic(expected = "empty corpus")]
    fn theme_model_empty_panics() {
        let _ = ThemeModel::fit(&[], 5, 2, 2, 0);
    }

    #[test]
    fn clustered_hierarchy_handles_empty() {
        let (_, nodes) = build_clustered_hierarchy(&[], 5, 3, 2, 0);
        assert!(nodes.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn out_of_vocab_panics() {
        let _ = Lda::fit(&[vec![5]], 3, &LdaConfig::new(2, 0));
    }
}
