//! Criterion microbenchmarks for the verify-path kernels: bit-parallel
//! Myers edit distance vs the DP oracle, and galloping / bitset set
//! intersection vs the merge pass. `exp_micro` reports the same kernels as
//! ns/pair JSON; this harness gives the statistically-sampled view.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dime_text::{
    block_build_into, block_intersection_size, edit_distance, edit_distance_leq,
    intersection_size_gallop, intersection_size_merge, levenshtein, levenshtein_leq,
};

fn bench_edit_kernels(c: &mut Criterion) {
    let a = "discovering mis-categorized entities in large catalogs";
    let b = "discovering miscategorised entities in larger catalogs";
    let long_a: String = a.repeat(8);
    let long_b: String = b.repeat(8);
    let mut g = c.benchmark_group("edit_kernels");
    g.bench_function("dp_full_54", |bench| bench.iter(|| levenshtein(black_box(a), black_box(b))));
    g.bench_function("myers_word_54", |bench| {
        bench.iter(|| edit_distance(black_box(a), black_box(b)))
    });
    g.bench_function("dp_leq3_54", |bench| {
        bench.iter(|| levenshtein_leq(black_box(a), black_box(b), 3))
    });
    g.bench_function("myers_leq3_54", |bench| {
        bench.iter(|| edit_distance_leq(black_box(a), black_box(b), 3))
    });
    g.bench_function("dp_full_432", |bench| {
        bench.iter(|| levenshtein(black_box(&long_a), black_box(&long_b)))
    });
    g.bench_function("myers_blocked_432", |bench| {
        bench.iter(|| edit_distance(black_box(&long_a), black_box(&long_b)))
    });
    g.finish();
}

fn bench_set_kernels(c: &mut Criterion) {
    let small: Vec<u32> = (0..8).map(|x| x * 131).collect();
    let large: Vec<u32> = (0..2048).map(|x| x * 3 + 1).collect();
    let dense_a: Vec<u32> = (0..256).collect();
    let dense_b: Vec<u32> = (64..320).collect();
    let (mut keys, mut words) = (Vec::new(), Vec::new());
    block_build_into(&dense_a, &mut keys, &mut words);
    let a_blocks = keys.len();
    block_build_into(&dense_b, &mut keys, &mut words);
    let mut g = c.benchmark_group("set_kernels");
    g.bench_function("merge_8x2048", |bench| {
        bench.iter(|| intersection_size_merge(black_box(&small), black_box(&large)))
    });
    g.bench_function("gallop_8x2048", |bench| {
        bench.iter(|| intersection_size_gallop(black_box(&small), black_box(&large)))
    });
    g.bench_function("merge_dense_256", |bench| {
        bench.iter(|| intersection_size_merge(black_box(&dense_a), black_box(&dense_b)))
    });
    g.bench_function("bitset_dense_256", |bench| {
        bench.iter(|| {
            block_intersection_size(
                black_box(&keys[..a_blocks]),
                black_box(&words[..a_blocks]),
                black_box(&keys[a_blocks..]),
                black_box(&words[a_blocks..]),
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_edit_kernels, bench_set_kernels
}
criterion_main!(benches);
