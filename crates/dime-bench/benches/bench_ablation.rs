//! Ablations of DIME⁺'s two verification optimizations (DESIGN.md §5):
//! benefit-ordered candidate verification and the union-find transitivity
//! short-circuit, each toggled independently on the same workloads — plus
//! the tracing hook's own cost: untraced entry point vs the traced entry
//! point with the no-op sink (must be statistically indistinguishable) vs
//! a live recorder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dime_core::{discover_fast_traced, discover_fast_with, DimePlusConfig};
use dime_data::{
    dbgen_group, dbgen_rules, scholar_page, scholar_rules, DbgenConfig, ScholarConfig,
};
use dime_trace::{NoopSink, Recorder};

fn configs() -> [(&'static str, DimePlusConfig); 4] {
    let full = DimePlusConfig::default(); // benefit order + transitivity, 1 thread
    [
        ("full", full),
        ("no_benefit_order", DimePlusConfig { benefit_order: false, ..full }),
        ("no_transitivity", DimePlusConfig { transitivity_skip: false, ..full }),
        ("neither", DimePlusConfig { benefit_order: false, transitivity_skip: false, ..full }),
    ]
}

fn bench_scholar_ablation(c: &mut Criterion) {
    let (pos, neg) = scholar_rules();
    let lg = scholar_page("ablate", &ScholarConfig::scaled_to(1500, 99));
    let mut g = c.benchmark_group("ablation_scholar_1500");
    g.sample_size(10);
    for (name, cfg) in configs() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| discover_fast_with(&lg.group, &pos, &neg, *cfg))
        });
    }
    g.finish();
}

fn bench_dbgen_ablation(c: &mut Criterion) {
    let (pos, neg) = dbgen_rules();
    let lg = dbgen_group(&DbgenConfig::new(3000, 7));
    let mut g = c.benchmark_group("ablation_dbgen_3000");
    g.sample_size(10);
    for (name, cfg) in configs() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| discover_fast_with(&lg.group, &pos, &neg, *cfg))
        });
    }
    g.finish();
}

/// The disabled-sink overhead ablation: `plain` (the untraced entry
/// point) and `noop_sink` (the traced entry point with tracing disabled)
/// must be indistinguishable — the instrumentation guards every flush
/// behind `sink.enabled()`. `recorder` shows the cost of live tracing.
fn bench_trace_overhead(c: &mut Criterion) {
    let (pos, neg) = scholar_rules();
    let lg = scholar_page("trace", &ScholarConfig::scaled_to(1500, 99));
    let cfg = DimePlusConfig::default();
    let mut g = c.benchmark_group("trace_overhead_scholar_1500");
    g.sample_size(10);
    g.bench_function("plain", |b| b.iter(|| discover_fast_with(&lg.group, &pos, &neg, cfg)));
    g.bench_function("noop_sink", |b| {
        b.iter(|| discover_fast_traced(&lg.group, &pos, &neg, cfg, &NoopSink))
    });
    g.bench_function("recorder", |b| {
        b.iter(|| {
            let recorder = Recorder::new();
            discover_fast_traced(&lg.group, &pos, &neg, cfg, &recorder)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_scholar_ablation, bench_dbgen_ablation, bench_trace_overhead);
criterion_main!(benches);
