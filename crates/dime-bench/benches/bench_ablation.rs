//! Ablations of DIME⁺'s two verification optimizations (DESIGN.md §5):
//! benefit-ordered candidate verification and the union-find transitivity
//! short-circuit, each toggled independently on the same workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dime_core::{discover_fast_with, DimePlusConfig};
use dime_data::{
    dbgen_group, dbgen_rules, scholar_page, scholar_rules, DbgenConfig, ScholarConfig,
};

fn configs() -> [(&'static str, DimePlusConfig); 4] {
    let full = DimePlusConfig::default(); // benefit order + transitivity, 1 thread
    [
        ("full", full),
        ("no_benefit_order", DimePlusConfig { benefit_order: false, ..full }),
        ("no_transitivity", DimePlusConfig { transitivity_skip: false, ..full }),
        ("neither", DimePlusConfig { benefit_order: false, transitivity_skip: false, ..full }),
    ]
}

fn bench_scholar_ablation(c: &mut Criterion) {
    let (pos, neg) = scholar_rules();
    let lg = scholar_page("ablate", &ScholarConfig::scaled_to(1500, 99));
    let mut g = c.benchmark_group("ablation_scholar_1500");
    g.sample_size(10);
    for (name, cfg) in configs() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| discover_fast_with(&lg.group, &pos, &neg, *cfg))
        });
    }
    g.finish();
}

fn bench_dbgen_ablation(c: &mut Criterion) {
    let (pos, neg) = dbgen_rules();
    let lg = dbgen_group(&DbgenConfig::new(3000, 7));
    let mut g = c.benchmark_group("ablation_dbgen_3000");
    g.sample_size(10);
    for (name, cfg) in configs() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| discover_fast_with(&lg.group, &pos, &neg, *cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scholar_ablation, bench_dbgen_ablation);
criterion_main!(benches);
