//! Filter-step benchmarks: what the signature machinery itself costs and
//! saves. Compares signature generation + inverted-index candidate
//! extraction against brute-force all-pairs enumeration, and measures the
//! ontology node-signature pruning.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dime_core::{Polarity, Predicate, SigContext, SimilarityFn};
use dime_data::{
    dbgen_group, dbgen_rules, scholar_page, scholar_rules, DbgenConfig, ScholarConfig,
};
use dime_index::InvertedIndex;

fn bench_signature_generation(c: &mut Criterion) {
    let lg = scholar_page("sig", &ScholarConfig::scaled_to(1000, 5));
    let (pos, _) = scholar_rules();
    let mut g = c.benchmark_group("filter");
    g.sample_size(20);
    g.bench_function("signatures_scholar_1000", |b| {
        b.iter(|| {
            let mut ctx = SigContext::new(&lg.group);
            for rule in &pos {
                black_box(ctx.positive_rule_signatures(rule));
            }
        })
    });
    g.finish();
}

fn bench_candidates_vs_all_pairs(c: &mut Criterion) {
    let lg = dbgen_group(&DbgenConfig::new(2000, 3));
    let (pos, _) = dbgen_rules();
    let rule = &pos[0];
    let mut g = c.benchmark_group("candidates_dbgen_2000");
    g.sample_size(10);
    // Filter: build the index, extract candidate pairs.
    g.bench_function("signature_filter", |b| {
        b.iter(|| {
            let mut ctx = SigContext::new(&lg.group);
            let mut index = InvertedIndex::new();
            for (eid, sigs) in ctx.positive_rule_signatures(rule).into_iter().enumerate() {
                if let Some(sigs) = sigs {
                    for s in sigs {
                        index.insert(s, eid as u32);
                    }
                }
            }
            black_box(index.candidate_pairs().len())
        })
    });
    // Brute force: evaluate the rule on every pair.
    g.bench_function("all_pairs_verify", |b| {
        b.iter(|| {
            let n = lg.group.len();
            let mut hits = 0usize;
            for i in 0..n {
                for j in i + 1..n {
                    if rule.eval(&lg.group, lg.group.entity(i), lg.group.entity(j)) {
                        hits += 1;
                    }
                }
            }
            black_box(hits)
        })
    });
    g.finish();
}

fn bench_ontology_node_signatures(c: &mut Criterion) {
    let lg = scholar_page("ont", &ScholarConfig::scaled_to(1000, 9));
    let pred = Predicate::new(dime_data::scholar_attr::VENUE, SimilarityFn::Ontology, 0.75);
    c.bench_function("node_signatures_1000", |b| {
        b.iter(|| {
            let mut ctx = SigContext::new(&lg.group);
            for e in lg.group.entities() {
                black_box(ctx.predicate_sigs(e, &pred, Polarity::Positive));
            }
        })
    });
}

criterion_group!(
    benches,
    bench_signature_generation,
    bench_candidates_vs_all_pairs,
    bench_ontology_node_signatures
);
criterion_main!(benches);
