//! Microbenchmarks of the similarity kernels — the `υ` of the paper's
//! `O(n²·υ·|Σ|)` complexity analysis: set-based merges, the banded
//! threshold edit distance vs the full DP, and ontology LCA similarity.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dime_ontology::{ontology_similarity, Ontology};
use dime_text::{jaccard, levenshtein, levenshtein_leq, overlap};

fn bench_set_similarity(c: &mut Criterion) {
    let a: Vec<u32> = (0..40).map(|x| x * 3).collect();
    let b: Vec<u32> = (0..40).map(|x| x * 4).collect();
    let mut g = c.benchmark_group("setsim");
    g.bench_function("overlap_40", |bench| bench.iter(|| overlap(black_box(&a), black_box(&b))));
    g.bench_function("jaccard_40", |bench| bench.iter(|| jaccard(black_box(&a), black_box(&b))));
    g.finish();
}

fn bench_edit_distance(c: &mut Criterion) {
    let a = "discovering mis-categorized entities in large catalogs";
    let b = "discovering miscategorised entities in larger catalogs";
    let mut g = c.benchmark_group("edit");
    g.bench_function("levenshtein_full", |bench| {
        bench.iter(|| levenshtein(black_box(a), black_box(b)))
    });
    // The banded verifier is the paper's O(θ·min(|a|,|b|)) cost model.
    g.bench_function("levenshtein_leq_theta3", |bench| {
        bench.iter(|| levenshtein_leq(black_box(a), black_box(b), 3))
    });
    g.bench_function("levenshtein_leq_theta8", |bench| {
        bench.iter(|| levenshtein_leq(black_box(a), black_box(b), 8))
    });
    g.finish();
}

fn bench_ontology(c: &mut Criterion) {
    let mut ont = Ontology::new("venue");
    let mut leaves = Vec::new();
    for f in 0..4 {
        for s in 0..5 {
            for v in 0..8 {
                leaves.push(ont.add_path(&[
                    &format!("field-{f}"),
                    &format!("sub-{f}-{s}"),
                    &format!("venue-{f}-{s}-{v}"),
                ]));
            }
        }
    }
    let (a, b) = (leaves[0], leaves[leaves.len() - 1]);
    c.bench_function("ontology_similarity_depth4", |bench| {
        bench.iter(|| ontology_similarity(black_box(&ont), black_box(a), black_box(b)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_set_similarity, bench_edit_distance, bench_ontology
}
criterion_main!(benches);
