//! DIME vs DIME⁺ end-to-end scaling (the Criterion companion to `exp_fig9`
//! and `exp_dbgen`): both engines on Scholar pages and DBGen groups of
//! growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dime_core::{discover_fast, discover_naive, discover_parallel};
use dime_data::{
    dbgen_group, dbgen_rules, scholar_page, scholar_rules, DbgenConfig, ScholarConfig,
};

fn bench_scholar_scale(c: &mut Criterion) {
    let (pos, neg) = scholar_rules();
    let mut g = c.benchmark_group("scholar");
    g.sample_size(10);
    for n in [500usize, 1000, 2000] {
        let lg = scholar_page("bench", &ScholarConfig::scaled_to(n, n as u64));
        g.bench_with_input(BenchmarkId::new("dime_naive", n), &lg, |b, lg| {
            b.iter(|| discover_naive(&lg.group, &pos, &neg))
        });
        g.bench_with_input(BenchmarkId::new("dime_plus", n), &lg, |b, lg| {
            b.iter(|| discover_fast(&lg.group, &pos, &neg))
        });
    }
    g.finish();
}

fn bench_dbgen_scale(c: &mut Criterion) {
    let (pos, neg) = dbgen_rules();
    let mut g = c.benchmark_group("dbgen");
    g.sample_size(10);
    for n in [1000usize, 4000] {
        let lg = dbgen_group(&DbgenConfig::new(n, n as u64));
        g.bench_with_input(BenchmarkId::new("dime_naive", n), &lg, |b, lg| {
            b.iter(|| discover_naive(&lg.group, &pos, &neg))
        });
        g.bench_with_input(BenchmarkId::new("dime_plus", n), &lg, |b, lg| {
            b.iter(|| discover_fast(&lg.group, &pos, &neg))
        });
    }
    g.finish();
}

fn bench_parallel_scale(c: &mut Criterion) {
    let (pos, neg) = dbgen_rules();
    let mut g = c.benchmark_group("dbgen_parallel");
    g.sample_size(10);
    for n in [4000usize, 10000] {
        let lg = dbgen_group(&DbgenConfig::new(n, n as u64));
        g.bench_with_input(BenchmarkId::new("dime_plus_1t", n), &lg, |b, lg| {
            b.iter(|| discover_fast(&lg.group, &pos, &neg))
        });
        for threads in [2usize, 4, 8] {
            g.bench_with_input(
                BenchmarkId::new(format!("dime_parallel_{threads}t"), n),
                &lg,
                |b, lg| b.iter(|| discover_parallel(&lg.group, &pos, &neg, threads)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_scholar_scale, bench_dbgen_scale, bench_parallel_scale);
criterion_main!(benches);
