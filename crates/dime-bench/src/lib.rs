//! Experiment harness for the DIME reproduction.
//!
//! One binary per table/figure of the paper (see DESIGN.md §4):
//!
//! | binary       | paper artifact                                   |
//! |--------------|--------------------------------------------------|
//! | `exp_fig6`   | Fig. 6 — DIME vs CR vs SVM (Scholar + Amazon)    |
//! | `exp_fig7`   | Fig. 7 — scrollbar (cumulative negative rules)   |
//! | `exp_fig8`   | Fig. 8 — per-page Scholar detail (20 pages)      |
//! | `exp_table1` | Table I — positive-rule partition statistics     |
//! | `exp_fig9`   | Fig. 9 — efficiency (DIME, DIME⁺, CR, SVM)       |
//! | `exp_dbgen`  | §VI table — DIME vs DIME⁺ at 20k–100k entities   |
//! | `exp_fig10`  | Fig. 10 — rule-generation cross-validation       |
//! | `exp_ablation` | DESIGN.md §5 — optimization ablations          |
//! | `exp_check`  | asserts every qualitative shape claim (CI guard) |
//!
//! This library holds the shared plumbing: timed method runners, scrollbar
//! evaluation, SVM/CR adapters wired to each dataset's attributes, and
//! fixed-width table printing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dime_baselines::{
    cr_best_of, kmeans_cluster, CrConfig, KMeansConfig, Linkage, PairFeatures, SvmConfig,
    SvmPipeline,
};
use dime_core::{discover_fast, discover_naive, Discovery, Rule};
use dime_data::{amazon_attr, scholar_attr, ExampleSet, LabeledGroup};
use dime_metrics::Prf;
use std::collections::BTreeSet;
use std::time::Instant;

/// Which dataset a labeled group came from — selects baseline attribute
/// wiring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// Synthetic Google Scholar pages.
    Scholar,
    /// Synthetic Amazon categories.
    Amazon,
}

impl Dataset {
    /// The CR configuration the paper's baseline would use on this dataset:
    /// textual attributes for the attribute term, link-style attributes for
    /// the relational term.
    pub fn cr_config(self) -> CrConfig {
        match self {
            Dataset::Scholar => CrConfig {
                attrs: vec![scholar_attr::TITLE, scholar_attr::VENUE],
                refs: vec![scholar_attr::AUTHORS],
                alpha: 0.6,
                threshold: 0.5,
                linkage: Linkage::Single,
            },
            Dataset::Amazon => CrConfig {
                attrs: vec![amazon_attr::TITLE, amazon_attr::DESCRIPTION],
                refs: vec![amazon_attr::ALSO_BOUGHT, amazon_attr::ALSO_VIEWED],
                alpha: 0.6,
                threshold: 0.5,
                linkage: Linkage::Single,
            },
        }
    }

    /// The pair-feature space for the ML baselines.
    pub fn features(self) -> PairFeatures {
        #[allow(unused_imports)]
        use dime_core::SimilarityFn;
        use dime_core::SimilarityFn::{Jaccard, Ontology, Overlap};
        match self {
            Dataset::Scholar => PairFeatures::new(vec![
                (scholar_attr::TITLE, Jaccard),
                (scholar_attr::AUTHORS, Overlap),
                (scholar_attr::AUTHORS, Jaccard),
                (scholar_attr::VENUE, Ontology),
                (scholar_attr::TITLE, Ontology),
            ]),
            // Titles carry mostly generic catalog words; including their
            // Jaccard lets tail-end noise bridge error clusters into the
            // pivot component, so the Amazon features stick to co-purchase
            // links and the description ontology.
            Dataset::Amazon => PairFeatures::new(vec![
                (amazon_attr::ALSO_BOUGHT, Overlap),
                (amazon_attr::ALSO_VIEWED, Overlap),
                (amazon_attr::BOUGHT_TOGETHER, Overlap),
                (amazon_attr::BUY_AFTER_VIEWING, Overlap),
                (amazon_attr::DESCRIPTION, Ontology),
            ]),
        }
    }
}

/// Evaluates every scrollbar step of a discovery against ground truth.
pub fn scrollbar_metrics(lg: &LabeledGroup, d: &Discovery) -> Vec<Prf> {
    d.steps.iter().map(|s| dime_metrics::evaluate_sets(s.flagged.iter(), lg.truth.iter())).collect()
}

/// The best-F scrollbar step (the paper's "best result our approach can
/// provide when the user drags the scrollbar").
pub fn best_step(steps: &[Prf]) -> Prf {
    steps
        .iter()
        .copied()
        .max_by(|a, b| a.f_measure.total_cmp(&b.f_measure))
        .unwrap_or(Prf::from_counts(0, 0, 0))
}

/// Outcome of a timed method run.
#[derive(Debug, Clone)]
pub struct MethodRun {
    /// Flagged entity ids.
    pub flagged: BTreeSet<usize>,
    /// Quality against ground truth.
    pub metrics: Prf,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Runs DIME⁺ and evaluates the *best scrollbar step* against truth.
pub fn run_dime_best(lg: &LabeledGroup, pos: &[Rule], neg: &[Rule]) -> MethodRun {
    let t = Instant::now();
    let d = discover_fast(&lg.group, pos, neg);
    let seconds = t.elapsed().as_secs_f64();
    let per_step = scrollbar_metrics(lg, &d);
    let best = best_step(&per_step);
    MethodRun { flagged: d.mis_categorized(), metrics: best, seconds }
}

/// Runs DIME⁺ and evaluates a specific scrollbar step (0-based).
pub fn run_dime_at_step(lg: &LabeledGroup, pos: &[Rule], neg: &[Rule], step: usize) -> MethodRun {
    let t = Instant::now();
    let d = discover_fast(&lg.group, pos, neg);
    let seconds = t.elapsed().as_secs_f64();
    let flagged = d.at_step(step).cloned().unwrap_or_default();
    let metrics = dime_metrics::evaluate_sets(flagged.iter(), lg.truth.iter());
    MethodRun { flagged, metrics, seconds }
}

/// Runs the parallel DIME⁺ engine and evaluates the best scrollbar step.
pub fn run_dime_parallel(
    lg: &LabeledGroup,
    pos: &[Rule],
    neg: &[Rule],
    threads: usize,
) -> MethodRun {
    let t = Instant::now();
    let d = dime_core::discover_parallel(&lg.group, pos, neg, threads);
    let seconds = t.elapsed().as_secs_f64();
    let per_step = scrollbar_metrics(lg, &d);
    let best = best_step(&per_step);
    MethodRun { flagged: d.mis_categorized(), metrics: best, seconds }
}

/// Batch driver: discovers mis-categorized entities in many independent
/// groups at once. Inter-group parallelism comes from [`parallel_map`]
/// (one group per worker); intra-group parallelism from the engine's own
/// `threads` knob. The two compose — e.g. 4 workers × 2 engine threads —
/// but for many small groups prefer `engine_threads = 1` and let the group
/// fan-out saturate the cores. Output order matches input order.
pub fn run_batch_parallel(
    groups: &[&dime_core::Group],
    pos: &[Rule],
    neg: &[Rule],
    workers: usize,
    engine_threads: usize,
) -> Vec<Discovery> {
    parallel_map(groups, workers, |g| dime_core::discover_parallel(g, pos, neg, engine_threads))
}

/// Runs the naive DIME (Algorithm 1) for timing comparisons.
pub fn run_dime_naive_timed(lg: &LabeledGroup, pos: &[Rule], neg: &[Rule]) -> MethodRun {
    let t = Instant::now();
    let d = discover_naive(&lg.group, pos, neg);
    let seconds = t.elapsed().as_secs_f64();
    let flagged = d.mis_categorized();
    let metrics = dime_metrics::evaluate_sets(flagged.iter(), lg.truth.iter());
    MethodRun { flagged, metrics, seconds }
}

/// The CR termination-threshold sweep — the paper tries {0.5, 0.6, 0.7}
/// on *its* distance metric and reports the best; the equivalent operating
/// range for our combined Jaccard similarity is below (higher values stop
/// all merging and flag everything).
pub const CR_THRESHOLDS: [f64; 3] = [0.10, 0.15, 0.20];

/// Runs CR with the per-group best threshold of [`CR_THRESHOLDS`]
/// (an oracle upper bound for CR; the figure binaries instead pick the
/// single best threshold per dataset, as the paper does).
pub fn run_cr(lg: &LabeledGroup, dataset: Dataset) -> MethodRun {
    let t = Instant::now();
    let (res, _) = cr_best_of(&lg.group, &dataset.cr_config(), &CR_THRESHOLDS, &lg.truth);
    let seconds = t.elapsed().as_secs_f64();
    let flagged = res.mis_categorized();
    let metrics = dime_metrics::evaluate_sets(flagged.iter(), lg.truth.iter());
    MethodRun { flagged, metrics, seconds }
}

/// Runs CR at one fixed termination threshold.
pub fn run_cr_fixed(lg: &LabeledGroup, dataset: Dataset, threshold: f64) -> MethodRun {
    let t = Instant::now();
    let mut cfg = dataset.cr_config();
    cfg.threshold = threshold;
    let res = dime_baselines::cr_cluster(&lg.group, &cfg);
    let seconds = t.elapsed().as_secs_f64();
    let flagged = res.mis_categorized();
    let metrics = dime_metrics::evaluate_sets(flagged.iter(), lg.truth.iter());
    MethodRun { flagged, metrics, seconds }
}

/// Runs the k-means strawman (k = 2 over all token-bearing attributes).
pub fn run_kmeans(lg: &LabeledGroup, dataset: Dataset) -> MethodRun {
    let attrs: Vec<usize> = match dataset {
        Dataset::Scholar => vec![scholar_attr::TITLE, scholar_attr::AUTHORS, scholar_attr::VENUE],
        Dataset::Amazon => vec![
            amazon_attr::TITLE,
            amazon_attr::ALSO_BOUGHT,
            amazon_attr::ALSO_VIEWED,
            amazon_attr::DESCRIPTION,
        ],
    };
    let t = Instant::now();
    let res = kmeans_cluster(&lg.group, &attrs, &KMeansConfig::default());
    let seconds = t.elapsed().as_secs_f64();
    let flagged = res.mis_categorized();
    let metrics = dime_metrics::evaluate_sets(flagged.iter(), lg.truth.iter());
    MethodRun { flagged, metrics, seconds }
}

/// Trains the SVM pipeline on example pairs drawn from `train` groups.
pub fn train_svm(train: &[&LabeledGroup], dataset: Dataset) -> SvmPipeline {
    let features = dataset.features();
    let mut examples = Vec::new();
    for lg in train {
        let ex = ExampleSet::from_labeled(lg, 120, 120);
        for &(a, b) in &ex.positive {
            examples.push((&lg.group, (a, b), true));
        }
        for &(a, b) in &ex.negative {
            examples.push((&lg.group, (a, b), false));
        }
    }
    let examples: Vec<_> =
        examples.into_iter().map(|(g, p, s)| (g as &dime_core::Group, p, s)).collect();
    SvmPipeline::train(features, examples, &SvmConfig::default())
}

/// Runs a trained SVM pipeline on a test group.
pub fn run_svm(pipe: &SvmPipeline, lg: &LabeledGroup) -> MethodRun {
    let t = Instant::now();
    let flagged = pipe.discover(&lg.group);
    let seconds = t.elapsed().as_secs_f64();
    let metrics = dime_metrics::evaluate_sets(flagged.iter(), lg.truth.iter());
    MethodRun { flagged, metrics, seconds }
}

/// Maps `f` over `items` on up to `threads` worker threads (scoped, no
/// dependencies), preserving input order. The experiment binaries use this
/// to evaluate independent groups concurrently — results are identical to
/// the sequential run because every group computation is deterministic and
/// isolated.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let slots_mutex = std::sync::Mutex::new(&mut slots);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                // dime-check: allow(atomic-ordering) — work-stealing ticket counter; slot writes synchronize via the mutex below
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                let mut guard = slots_mutex.lock().unwrap();
                guard[i] = Some(r);
            });
        }
    });
    slots.into_iter().map(|s| s.expect("every slot filled")).collect()
}

/// The default worker count for [`parallel_map`]: available parallelism
/// minus one (leave a core for the coordinator), at least one.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get().saturating_sub(1).max(1)).unwrap_or(1)
}

/// Fixed-width table printer for experiment outputs.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a metric to two decimals (paper style).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats seconds to a compact human figure.
pub fn secs(x: f64) -> String {
    if x < 0.01 {
        format!("{:.1}ms", x * 1e3)
    } else if x < 10.0 {
        format!("{x:.2}s")
    } else {
        format!("{x:.0}s")
    }
}

/// Reads a `--key value` style argument from the command line, with a
/// default. Usage: `arg_or("pages", 40)`.
pub fn arg_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    let flag = format!("--{key}");
    args.iter()
        .position(|a| a == &flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dime_data::{scholar_page, scholar_rules, ScholarConfig};

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "p", "r"]);
        t.row(vec!["nan".into(), "0.95".into(), "0.80".into()]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.lines().count() == 3);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_bad_rows() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn dime_runner_produces_metrics() {
        let lg = scholar_page("t", &ScholarConfig::small(3));
        let (pos, neg) = scholar_rules();
        let run = run_dime_best(&lg, &pos, &neg);
        assert!(run.metrics.f_measure > 0.0);
        assert!(run.seconds >= 0.0);
    }

    #[test]
    fn cr_and_svm_runners_work_on_small_page() {
        let lg = scholar_page("t", &ScholarConfig::small(5));
        let cr = run_cr(&lg, Dataset::Scholar);
        assert!(cr.metrics.precision >= 0.0);
        let train = scholar_page("train", &ScholarConfig::small(6));
        let pipe = train_svm(&[&train], Dataset::Scholar);
        let svm = run_svm(&pipe, &lg);
        assert!(svm.metrics.recall >= 0.0);
    }

    #[test]
    fn parallel_map_preserves_order_and_results() {
        let items: Vec<u64> = (0..200).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 7] {
            let par = parallel_map(&items, threads, |&x| x * x);
            assert_eq!(par, seq, "threads = {threads}");
        }
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(&empty, 4, |&x: &u64| x).is_empty());
    }

    #[test]
    fn batch_driver_matches_sequential_runs() {
        let (pos, neg) = scholar_rules();
        let pages: Vec<_> =
            (0..4u64).map(|s| scholar_page("b", &ScholarConfig::small(s))).collect();
        let groups: Vec<&dime_core::Group> = pages.iter().map(|lg| &lg.group).collect();
        let expected: Vec<_> =
            groups.iter().map(|g| dime_core::discover_fast(g, &pos, &neg)).collect();
        for (workers, engine_threads) in [(1, 1), (4, 1), (2, 2)] {
            let got = run_batch_parallel(&groups, &pos, &neg, workers, engine_threads);
            assert_eq!(got, expected, "workers={workers} engine_threads={engine_threads}");
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(0.954), "0.95");
        assert!(secs(0.0005).ends_with("ms"));
        assert!(secs(5.0).ends_with('s'));
        assert_eq!(secs(100.0), "100s");
    }
}
