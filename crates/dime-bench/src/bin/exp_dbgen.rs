//! Exp-5 (scalability table) — DIME vs DIME⁺ on DBGen-style groups of
//! 20k–100k entities with two positive and two negative entity-matching
//! rules, reproducing the paper's Gen(20k)…Gen(100k) table.
//!
//! Expected shape (paper): DIME⁺ runs 100k entities in minutes and is
//! roughly an order of magnitude faster than DIME; the gap widens with
//! size.
//!
//! Flags: `--max N` (default 100000), `--step N` (default 20000),
//! `--naive-cap N` (default 40000 — the naive all-pairs engine above that
//! costs hours without adding information), `--seed S`.

use dime_bench::{arg_or, run_dime_best, run_dime_naive_timed, secs, Table};
use dime_data::{dbgen_group, dbgen_rules, DbgenConfig};

fn main() {
    let max: usize = arg_or("max", 100_000);
    let step: usize = arg_or("step", 20_000);
    let naive_cap: usize = arg_or("naive-cap", 40_000);
    let seed: u64 = arg_or("seed", 42);
    let (pos, neg) = dbgen_rules();

    println!("== Scalability table: DIME vs DIME+ on DBGen groups ==");
    let mut t = Table::new(&["entities", "DIME", "DIME+", "speedup"]);
    let mut n = step;
    while n <= max {
        let lg = dbgen_group(&DbgenConfig::new(n, seed.wrapping_add(n as u64)));
        let fast = run_dime_best(&lg, &pos, &neg);
        if n <= naive_cap {
            let naive = run_dime_naive_timed(&lg, &pos, &neg);
            assert_eq!(naive.flagged, fast.flagged, "engines must agree");
            t.row(vec![
                format!("Gen({}k)", n / 1000),
                secs(naive.seconds),
                secs(fast.seconds),
                format!("{:.1}x", naive.seconds / fast.seconds.max(1e-9)),
            ]);
        } else {
            t.row(vec![format!("Gen({}k)", n / 1000), "-".into(), secs(fast.seconds), "-".into()]);
        }
        n += step;
    }
    t.print();
    println!("\n(\"-\" = naive engine skipped above --naive-cap {naive_cap})");
}
