//! Parallel-engine scaling table — the single-group thread sweep plus the
//! multi-group batch driver (DESIGN.md §5 companion to `exp_dbgen`).
//!
//! Part 1 sweeps `discover_parallel` thread counts on one DBGen group and
//! reports speedups over the sequential DIME⁺ engine; results are asserted
//! identical across all thread counts (and against naive DIME below
//! `--naive-cap`). Part 2 runs the batch driver over many Scholar pages to
//! show inter-group parallelism composing with the engine knob.
//!
//! Flags: `--dbgen N` (default 10000), `--naive-cap N` (default 5000),
//! `--pages N` (default 16), `--page-size N` (default 500), `--seed S`.

use dime_bench::{arg_or, default_threads, run_batch_parallel, secs, Table};
use dime_core::{discover_fast, discover_naive, discover_parallel};
use dime_data::{
    dbgen_group, dbgen_rules, scholar_page, scholar_rules, DbgenConfig, ScholarConfig,
};
use std::time::Instant;

fn main() {
    let dbgen_n: usize = arg_or("dbgen", 10_000);
    let naive_cap: usize = arg_or("naive-cap", 5_000);
    let pages: usize = arg_or("pages", 16);
    let page_size: usize = arg_or("page-size", 500);
    let seed: u64 = arg_or("seed", 42);

    // Part 1: thread sweep on a single large group.
    let (pos, neg) = dbgen_rules();
    let lg = dbgen_group(&DbgenConfig::new(dbgen_n, seed));
    println!("== Parallel DIME+ thread sweep: DBGen({dbgen_n}) ==");

    let t0 = Instant::now();
    let reference = discover_fast(&lg.group, &pos, &neg);
    let base = t0.elapsed().as_secs_f64();
    if dbgen_n <= naive_cap {
        assert_eq!(reference, discover_naive(&lg.group, &pos, &neg), "fast must match naive");
    }

    let mut t = Table::new(&["engine", "threads", "time", "speedup"]);
    t.row(vec!["dime+ sequential".into(), "1".into(), secs(base), "1.0x".into()]);
    let avail = default_threads();
    let mut sweep = vec![1usize, 2, 4, 8];
    if !sweep.contains(&avail) {
        sweep.push(avail);
    }
    for threads in sweep {
        let t0 = Instant::now();
        let d = discover_parallel(&lg.group, &pos, &neg, threads);
        let elapsed = t0.elapsed().as_secs_f64();
        assert_eq!(d, reference, "parallel engine diverged at threads={threads}");
        t.row(vec![
            "dime+ parallel".into(),
            threads.to_string(),
            secs(elapsed),
            format!("{:.1}x", base / elapsed.max(1e-9)),
        ]);
    }
    t.print();
    println!("(all rows asserted identical to the sequential DIME+ discovery)");

    // Part 2: many independent groups through the batch driver.
    println!("\n== Batch driver: {pages} Scholar pages x {page_size} entities ==");
    let (spos, sneg) = scholar_rules();
    let lgs: Vec<_> = (0..pages)
        .map(|i| {
            scholar_page("batch", &ScholarConfig::scaled_to(page_size, seed.wrapping_add(i as u64)))
        })
        .collect();
    let groups: Vec<&dime_core::Group> = lgs.iter().map(|lg| &lg.group).collect();

    let t0 = Instant::now();
    let expected = run_batch_parallel(&groups, &spos, &sneg, 1, 1);
    let batch_base = t0.elapsed().as_secs_f64();
    let mut t = Table::new(&["workers", "engine threads", "time", "speedup"]);
    t.row(vec!["1".into(), "1".into(), secs(batch_base), "1.0x".into()]);
    for (workers, engine_threads) in [(2, 1), (4, 1), (8, 1), (4, 2)] {
        let t0 = Instant::now();
        let got = run_batch_parallel(&groups, &spos, &sneg, workers, engine_threads);
        let elapsed = t0.elapsed().as_secs_f64();
        assert_eq!(got, expected, "batch results must not depend on scheduling");
        t.row(vec![
            workers.to_string(),
            engine_threads.to_string(),
            secs(elapsed),
            format!("{:.1}x", batch_base / elapsed.max(1e-9)),
        ]);
    }
    t.print();
    println!("(batch output order and contents asserted identical to the sequential run)");
}
