//! Self-verifying reproduction harness: asserts, programmatically, every
//! qualitative *shape* claim of the paper that EXPERIMENTS.md reports.
//! Exits non-zero with the first violated claim, so CI can guard the
//! reproduction against regressions.
//!
//! Checks (paper section → claim):
//!
//! 1.  §VI Exp-1 — DIME's best-scrollbar F beats CR's and k-means' on
//!     Scholar; k-means collapses.
//! 2.  §VI Exp-2 — DIME precision does not degrade as e% grows; recall
//!     does not improve.
//! 3.  §VI Exp-3 — scrollbar recall is monotone non-decreasing and mean
//!     precision declines from the first to the last negative rule.
//! 4.  §VI Exp-4 — ≥ 80% of injected errors land in partitions of size
//!     < 10 (the paper's Table I itself shows a few in `[10, 100)`); the
//!     pivot holds none.
//! 5.  §VI Exp-5 — DIME⁺ beats DIME on a DBGen group, with identical
//!     output.
//! 6.  §V  Exp-6 — greedy DIME-Rule ≥ SIFI on the Scholar CV page.
//!
//! Flags: `--seed S` (default 42). Runtime ≈ 1–2 minutes.
//!
//! `--smoke` runs only a seconds-scale engine-agreement check (the three
//! engines on a tiny DBGen group, with a generous wall-clock ceiling) —
//! the CI bench-smoke stage uses it to guard the engines on every push
//! without paying for the full reproduction suite.
//!
//! `--analyzer` times `dime-check`'s whole-workspace run (lexer → item
//! parser → call graph → every rule) over this repository and writes the
//! wall clock to `results/BENCH_check.json` (`--out PATH` overrides), so
//! the bench-json stage tracks analyzer cost the same way it tracks the
//! engines: a >2x regression against the committed baseline fails CI.

use dime_bench::arg_or;
use dime_bench::{
    run_cr_fixed, run_dime_best, run_kmeans, scrollbar_metrics, Dataset, CR_THRESHOLDS,
};
use dime_core::{
    discover_fast, discover_naive, discover_parallel, PartitionStats, Polarity, SimilarityFn,
};
use dime_data::{
    amazon_category, amazon_rules, dbgen_group, dbgen_rules, scholar_attr, scholar_page,
    scholar_rules, AmazonConfig, DbgenConfig, ExampleSet, ScholarConfig,
};
use dime_metrics::Prf;
use std::time::Instant;

fn check(name: &str, ok: bool, detail: String) -> bool {
    println!("[{}] {name} — {detail}", if ok { "PASS" } else { "FAIL" });
    ok
}

/// The CI smoke check: the three engines must agree bit-for-bit on a tiny
/// generated group, inside a generous time ceiling (the run takes well
/// under a second; the ceiling only catches pathological slowdowns).
fn run_smoke(seed: u64) -> bool {
    const CEILING_SECS: f64 = 30.0;
    let (pos, neg) = dbgen_rules();
    let lg = dbgen_group(&DbgenConfig::new(600, seed));
    let t0 = Instant::now();
    let naive = discover_naive(&lg.group, &pos, &neg);
    let fast = discover_fast(&lg.group, &pos, &neg);
    let parallel = discover_parallel(&lg.group, &pos, &neg, 0);
    let wall = t0.elapsed().as_secs_f64();
    let mut ok = true;
    ok &= check("smoke naive == fast", naive == fast, "DBGen 600".into());
    ok &= check("smoke fast == parallel", fast == parallel, "DBGen 600".into());
    ok &= check(
        "smoke under time ceiling",
        wall <= CEILING_SECS,
        format!("{wall:.2}s (ceiling {CEILING_SECS}s)"),
    );
    ok
}

/// The analyzer timing run: `dime_check::run_workspace` over this
/// repository, repeated a few times with the best wall kept (the metric
/// guards the analysis pipeline, not the page cache), plus the file and
/// finding counts so the JSON documents what the timing covered.
fn run_analyzer_bench(out: &str) {
    const RUNS: usize = 3;
    let root = dime_check::find_workspace_root().expect("locate workspace root");
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        let report = dime_check::run_workspace(&root).expect("analyze workspace");
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(report);
    }
    let report = last.expect("at least one run");
    assert_eq!(
        report.finding_count(),
        0,
        "the workspace must be clean before its analysis is worth timing"
    );
    let doc = serde_json::json!({
        "bench": "check",
        "analyzer": {
            "files_scanned": report.files_scanned,
            "findings": report.finding_count(),
            "suppressed": report.suppressed_count(),
            "runs": RUNS,
            "wall_seconds": best,
        }
    });
    if let Some(dir) = std::path::Path::new(out).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(out, serde_json::to_string_pretty(&doc).expect("serialize"))
        .expect("write BENCH_check.json");
    println!(
        "analyzer: {} files in {best:.3}s (best of {RUNS}); wrote {out}",
        report.files_scanned
    );
}

fn main() {
    let seed: u64 = arg_or("seed", 42);
    if std::env::args().any(|a| a == "--analyzer") {
        let out: String = arg_or("out", "results/BENCH_check.json".to_string());
        run_analyzer_bench(&out);
        return;
    }
    if std::env::args().any(|a| a == "--smoke") {
        if run_smoke(seed) {
            println!("\nsmoke checks passed");
            return;
        }
        println!("\nSMOKE CHECKS FAILED");
        std::process::exit(1);
    }
    let mut all_ok = true;

    // ---- 1. Scholar: DIME > CR, DIME >> k-means ---------------------------
    {
        let (pos, neg) = scholar_rules();
        let pages: Vec<_> = (0..8)
            .map(|i| scholar_page("chk", &ScholarConfig::default_page(seed + i * 131)))
            .collect();
        let mean = |ms: &[Prf]| ms.iter().map(|m| m.f_measure).sum::<f64>() / ms.len() as f64;
        let dime: Vec<Prf> = pages.iter().map(|lg| run_dime_best(lg, &pos, &neg).metrics).collect();
        let cr_best = CR_THRESHOLDS
            .iter()
            .map(|&t| {
                let ms: Vec<Prf> =
                    pages.iter().map(|lg| run_cr_fixed(lg, Dataset::Scholar, t).metrics).collect();
                mean(&ms)
            })
            .fold(0.0f64, f64::max);
        let km: Vec<Prf> =
            pages.iter().map(|lg| run_kmeans(lg, Dataset::Scholar).metrics).collect();
        let (df, kf) = (mean(&dime), mean(&km));
        all_ok &= check(
            "Exp-1 DIME ≥ CR (Scholar F)",
            df >= cr_best - 0.02,
            format!("DIME {df:.2} vs CR {cr_best:.2}"),
        );
        all_ok &= check(
            "Exp-1 k-means collapses",
            kf < df - 0.3,
            format!("k-means {kf:.2} vs DIME {df:.2}"),
        );
    }

    // ---- 2. Amazon: precision ↑, recall ↓ with e% -------------------------
    {
        let (pos, neg) = amazon_rules();
        let run = |e: f64| {
            let ms: Vec<Prf> = (0..4)
                .map(|i| {
                    let lg = amazon_category(&AmazonConfig::new(i, 150, e, seed + i as u64));
                    run_dime_best(&lg, &pos, &neg).metrics
                })
                .collect();
            Prf::mean(&ms)
        };
        let (lo, hi) = (run(0.1), run(0.4));
        all_ok &= check(
            "Exp-2 precision does not degrade with e%",
            hi.precision >= lo.precision - 0.05,
            format!("{:.2} → {:.2}", lo.precision, hi.precision),
        );
        all_ok &= check(
            "Exp-2 recall does not improve with e%",
            hi.recall <= lo.recall + 0.05,
            format!("{:.2} → {:.2}", lo.recall, hi.recall),
        );
    }

    // ---- 3. Scrollbar monotonicity ----------------------------------------
    {
        let (pos, neg) = scholar_rules();
        let mut recall_monotone = true;
        let mut per_step: Vec<Vec<Prf>> = vec![Vec::new(); neg.len()];
        for i in 0..6u64 {
            let lg = scholar_page("scroll", &ScholarConfig::default_page(seed ^ (0x5c + i)));
            let d = discover_fast(&lg.group, &pos, &neg);
            let ms = scrollbar_metrics(&lg, &d);
            recall_monotone &= ms.windows(2).all(|w| w[1].recall >= w[0].recall - 1e-12);
            for (k, m) in ms.into_iter().enumerate() {
                per_step[k].push(m);
            }
        }
        let means: Vec<Prf> = per_step.iter().map(|v| Prf::mean(v)).collect();
        // Page-averaged: the first rule beats the last on precision (an
        // individual page can see a transient bump when a middle rule adds
        // many true positives at once — the paper's Fig. 8 shows the same).
        let precision_declines =
            means.last().map(|l| means[0].precision >= l.precision - 1e-9).unwrap_or(true);
        all_ok &= check("Exp-3 recall monotone along scrollbar", recall_monotone, "6 pages".into());
        all_ok &= check(
            "Exp-3 precision declines NR1 → NR_last (mean)",
            precision_declines,
            format!(
                "{:.2} → {:.2}",
                means[0].precision,
                means.last().map(|m| m.precision).unwrap_or(0.0)
            ),
        );
    }

    // ---- 4. Errors isolate in small partitions ----------------------------
    {
        let (pos, _) = scholar_rules();
        let mut fracs = Vec::new();
        let mut pivot_clean = true;
        for i in 0..4u64 {
            let lg = scholar_page("tbl", &ScholarConfig::default_page(seed + 1000 + i));
            let d = discover_fast(&lg.group, &pos, &[]);
            let truth: std::collections::HashSet<usize> = lg.truth.iter().copied().collect();
            let stats = PartitionStats::compute(&d.partitions, &truth);
            fracs.push(stats.small_partition_error_fraction());
            pivot_clean &= d.pivot_members().iter().all(|e| !truth.contains(e));
        }
        let avg = fracs.iter().sum::<f64>() / fracs.len() as f64;
        // The paper's own Table I shows a few errors in [10, 100)
        // partitions (Divyakant: 21); allow the same leeway.
        all_ok &= check("Exp-4 ≥80% errors in partitions < 10", avg >= 0.8, format!("{avg:.2}"));
        all_ok &= check("Exp-4 pivot holds no errors", pivot_clean, "checked 4 pages".into());
    }

    // ---- 5. DIME⁺ faster and identical on DBGen ---------------------------
    {
        let (pos, neg) = dbgen_rules();
        let lg = dbgen_group(&DbgenConfig::new(10_000, seed));
        let t0 = Instant::now();
        let fast = discover_fast(&lg.group, &pos, &neg);
        let fast_s = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let naive = discover_naive(&lg.group, &pos, &neg);
        let naive_s = t0.elapsed().as_secs_f64();
        all_ok &= check("Exp-5 engines identical", fast == naive, "DBGen 10k".into());
        all_ok &= check(
            "Exp-5 DIME⁺ ≥ 2× faster (DBGen 10k)",
            naive_s / fast_s >= 2.0,
            format!("{:.1}×", naive_s / fast_s),
        );
    }

    // ---- 6. DIME-Rule ≥ SIFI on CV examples -------------------------------
    {
        use dime_baselines::{sifi_optimize, RuleStructure};
        use dime_rulegen::{generate_positive_rules, rules_cover, FunctionLibrary, GreedyConfig};
        let mut cfg = ScholarConfig::default_page(seed);
        cfg.err_near_field = 10;
        let lg = scholar_page("cv", &cfg);
        let ex = ExampleSet::from_labeled(&lg, 120, 120);
        let lib = FunctionLibrary::new(vec![
            (scholar_attr::AUTHORS, SimilarityFn::Overlap),
            (scholar_attr::VENUE, SimilarityFn::Ontology),
            (scholar_attr::TITLE, SimilarityFn::Ontology),
        ]);
        let structures: Vec<RuleStructure> = vec![
            vec![(scholar_attr::VENUE, SimilarityFn::Ontology)],
            vec![
                (scholar_attr::AUTHORS, SimilarityFn::Overlap),
                (scholar_attr::VENUE, SimilarityFn::Ontology),
            ],
        ];
        let f_of = |rules: &[dime_core::Rule]| {
            let preds: Vec<(bool, bool)> = ex
                .positive
                .iter()
                .map(|&p| (rules_cover(&lg.group, rules, p), true))
                .chain(ex.negative.iter().map(|&p| (rules_cover(&lg.group, rules, p), false)))
                .collect();
            let tp = preds.iter().filter(|&&(p, t)| p && t).count();
            let fp = preds.iter().filter(|&&(p, t)| p && !t).count();
            let fnn = preds.iter().filter(|&&(p, t)| !p && t).count();
            Prf::from_counts(tp, fp, fnn).f_measure
        };
        let greedy = generate_positive_rules(
            &lg.group,
            &ex.positive,
            &ex.negative,
            &lib,
            &GreedyConfig::default(),
        );
        let sifi =
            sifi_optimize(&lg.group, &structures, &ex.positive, &ex.negative, Polarity::Positive);
        let (gf, sf) = (f_of(&greedy), f_of(&sifi));
        all_ok &= check("Exp-6 DIME-Rule ≥ SIFI", gf >= sf - 0.02, format!("{gf:.2} vs {sf:.2}"));
    }

    if all_ok {
        println!("\nall reproduction shape checks passed");
    } else {
        println!("\nSOME CHECKS FAILED");
        std::process::exit(1);
    }
}
