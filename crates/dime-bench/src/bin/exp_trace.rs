//! Phase-breakdown driver — runs the traced DIME⁺ engine over the
//! standard synthetic workloads with a `dime-trace` recorder attached and
//! reports where the wall-clock goes: per-phase totals (signature
//! building, index probing, verification, union, flagging), engine
//! counters, and per-rule hit counts. Writes the machine-readable
//! summary to `results/BENCH_trace.json` so the phase mix is tracked in
//! CI alongside the throughput numbers.
//!
//! Also measures the cost of the hook itself: each workload runs once
//! with the no-op sink and once with the recorder, and the summary
//! carries both wall-clock figures (`wall_noop_seconds` /
//! `wall_recorder_seconds`) so a regression in the disabled-sink path
//! shows up as their ratio drifting from 1.
//!
//! Flags: `--seed S` (default 42), `--scholar N` entities (default 2000),
//! `--dbgen N` entities (default 5000), `--threads N` (default 1),
//! `--out PATH` (default `results/BENCH_trace.json`).

use dime_bench::{arg_or, secs, Table};
use dime_core::{discover_fast_traced, DimePlusConfig, Group, Rule};
use dime_data::{
    dbgen_group, dbgen_rules, scholar_page, scholar_rules, DbgenConfig, ScholarConfig,
};
use dime_trace::{NoopSink, Recorder, TraceReport};
use serde_json::{json, Value};
use std::time::Instant;

/// One workload's traced run: the report plus both wall-clock readings.
struct TracedRun {
    name: &'static str,
    entities: usize,
    wall_noop: f64,
    wall_recorder: f64,
    report: TraceReport,
}

fn run_workload(
    name: &'static str,
    group: &Group,
    pos: &[Rule],
    neg: &[Rule],
    config: DimePlusConfig,
) -> TracedRun {
    // Warm-up pass, then the no-op-sink baseline and the recorded run.
    discover_fast_traced(group, pos, neg, config, &NoopSink);
    let t0 = Instant::now();
    let baseline = discover_fast_traced(group, pos, neg, config, &NoopSink);
    let wall_noop = t0.elapsed().as_secs_f64();
    let recorder = Recorder::new();
    let t0 = Instant::now();
    let traced = discover_fast_traced(group, pos, neg, config, &recorder);
    let wall_recorder = t0.elapsed().as_secs_f64();
    assert_eq!(baseline, traced, "tracing must not change the discovery");
    TracedRun { name, entities: group.len(), wall_noop, wall_recorder, report: recorder.snapshot() }
}

fn report_to_value(run: &TracedRun) -> Value {
    let phases: Vec<Value> = run
        .report
        .phases
        .iter()
        .map(|p| json!({"name": p.name, "count": p.count, "total_ns": p.total_ns}))
        .collect();
    let counters: serde_json::Map<String, Value> =
        run.report.counters.iter().map(|(n, v)| (n.clone(), json!(v))).collect();
    let rule_hits: Vec<Value> = run
        .report
        .rule_hits
        .iter()
        .map(|r| json!({"kind": r.kind.label(), "rule": r.rule, "hits": r.hits}))
        .collect();
    json!({
        "workload": run.name,
        "entities": run.entities,
        "wall_noop_seconds": run.wall_noop,
        "wall_recorder_seconds": run.wall_recorder,
        "phases": phases,
        "counters": counters,
        "rule_hits": rule_hits,
    })
}

fn print_run(run: &TracedRun) {
    let wall_ns = (run.wall_recorder * 1e9).max(1.0);
    println!(
        "\n== {} ({} entities): noop {} / recorder {} ==",
        run.name,
        run.entities,
        secs(run.wall_noop),
        secs(run.wall_recorder)
    );
    let mut t = Table::new(&["phase", "count", "total", "% wall"]);
    for p in &run.report.phases {
        t.row(vec![
            p.name.clone(),
            p.count.to_string(),
            secs(p.total_ns as f64 / 1e9),
            format!("{:.1}%", p.total_ns as f64 * 100.0 / wall_ns),
        ]);
    }
    t.print();
    let top = ["signature_build", "index_probe", "verify", "union", "flag"];
    let tiled: u64 = run
        .report
        .phases
        .iter()
        .filter(|p| top.contains(&p.name.as_str()))
        .map(|p| p.total_ns)
        .sum();
    println!("top-level phases cover {:.1}% of wall-clock", tiled as f64 * 100.0 / wall_ns);
    for (name, v) in &run.report.counters {
        println!("  {name:<28} {v}");
    }
}

fn main() {
    let seed: u64 = arg_or("seed", 42);
    let scholar_n: usize = arg_or("scholar", 2000);
    let dbgen_n: usize = arg_or("dbgen", 5000);
    let threads: usize = arg_or("threads", 1);
    let out: String = arg_or("out", "results/BENCH_trace.json".to_string());
    let config = DimePlusConfig { threads, ..DimePlusConfig::default() };

    let mut runs = Vec::new();
    {
        let (pos, neg) = scholar_rules();
        let lg = scholar_page("trace", &ScholarConfig::scaled_to(scholar_n, seed));
        runs.push(run_workload("scholar", &lg.group, &pos, &neg, config));
    }
    {
        let (pos, neg) = dbgen_rules();
        let lg = dbgen_group(&DbgenConfig::new(dbgen_n, seed));
        runs.push(run_workload("dbgen", &lg.group, &pos, &neg, config));
    }

    for run in &runs {
        print_run(run);
    }

    let summary = json!({
        "config": {"seed": seed, "scholar": scholar_n, "dbgen": dbgen_n, "threads": threads},
        "workloads": runs.iter().map(report_to_value).collect::<Vec<_>>(),
    });
    let path = std::path::Path::new(&out);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    let mut body = serde_json::to_string_pretty(&summary).expect("serialize summary");
    body.push('\n');
    std::fs::write(path, body).expect("write summary");
    println!("\nwrote {out}");
}
