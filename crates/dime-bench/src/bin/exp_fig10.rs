//! Exp-6 — paper Figure 10: rule-generation quality under k-fold
//! cross-validation, DIME-Rule (greedy) vs SIFI vs DecisionTree.
//!
//! Example pairs are drawn from a labeled group; for each number of folds
//! k ∈ 2..10, each method trains on k−1 folds and classifies the held-out
//! pairs (a pair is "same category" when a learned positive rule covers
//! it). We report the mean F-measure of the positive class over folds.
//!
//! Expected shape (paper): DIME-Rule ≥ SIFI ≥ DecisionTree, all stable
//! across fold counts.
//!
//! Flags: `--examples N` (default 240), `--seed S`.

use dime_baselines::{sifi_optimize, DecisionTree, PairFeatures, RuleStructure, TreeConfig};
use dime_bench::{arg_or, f2, Table};
use dime_core::{Group, Polarity, SimilarityFn};
use dime_data::{
    amazon_attr, amazon_category, scholar_attr, scholar_page, AmazonConfig, ExampleSet,
    LabeledGroup, ScholarConfig,
};
use dime_metrics::{fold_complement, kfold, Prf};
use dime_rulegen::{generate_positive_rules, rules_cover, FunctionLibrary, GreedyConfig};

/// One labeled example pair.
type Example = ((usize, usize), bool);

fn gather_examples(lg: &LabeledGroup, n: usize, seed: u64) -> Vec<Example> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let ex = ExampleSet::from_labeled(lg, n / 2, n / 2);
    let mut out: Vec<Example> = Vec::with_capacity(ex.len());
    out.extend(ex.positive.into_iter().map(|p| (p, true)));
    out.extend(ex.negative.into_iter().map(|p| (p, false)));
    // Shuffle so round-robin folds mix both classes (a strict class
    // interleave would put one class per fold at k = 2).
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf01d);
    for i in (1..out.len()).rev() {
        out.swap(i, rng.gen_range(0..=i));
    }
    out
}

fn f_measure(predictions: &[(bool, bool)]) -> Prf {
    let tp = predictions.iter().filter(|&&(p, t)| p && t).count();
    let fp = predictions.iter().filter(|&&(p, t)| p && !t).count();
    let fnn = predictions.iter().filter(|&&(p, t)| !p && t).count();
    Prf::from_counts(tp, fp, fnn)
}

/// Cross-validates the three methods on one dataset's example pairs.
fn cross_validate(
    group: &Group,
    examples: &[Example],
    library: &FunctionLibrary,
    structures: &[RuleStructure],
    features: &PairFeatures,
    folds: usize,
) -> (f64, f64, f64) {
    let splits = kfold(examples.len(), folds);
    let (mut f_rule, mut f_sifi, mut f_tree) = (Vec::new(), Vec::new(), Vec::new());
    for fold in &splits {
        let train_idx = fold_complement(examples.len(), fold);
        let train: Vec<Example> = train_idx.iter().map(|&i| examples[i]).collect();
        let test: Vec<Example> = fold.iter().map(|&i| examples[i]).collect();
        let pos: Vec<(usize, usize)> = train.iter().filter(|e| e.1).map(|e| e.0).collect();
        let neg: Vec<(usize, usize)> = train.iter().filter(|e| !e.1).map(|e| e.0).collect();
        if pos.is_empty() || neg.is_empty() {
            continue;
        }

        // DIME-Rule (greedy).
        let rules = generate_positive_rules(group, &pos, &neg, library, &GreedyConfig::default());
        let preds: Vec<(bool, bool)> =
            test.iter().map(|&(p, t)| (rules_cover(group, &rules, p), t)).collect();
        f_rule.push(f_measure(&preds).f_measure);

        // SIFI with expert structures.
        let srules = sifi_optimize(group, structures, &pos, &neg, Polarity::Positive);
        let preds: Vec<(bool, bool)> =
            test.iter().map(|&(p, t)| (rules_cover(group, &srules, p), t)).collect();
        f_sifi.push(f_measure(&preds).f_measure);

        // Decision tree on pair features.
        let xs: Vec<Vec<f64>> =
            train.iter().map(|&((a, b), _)| features.extract(group, a, b)).collect();
        let ys: Vec<bool> = train.iter().map(|e| e.1).collect();
        let tree = DecisionTree::fit(&xs, &ys, &TreeConfig::default());
        let preds: Vec<(bool, bool)> = test
            .iter()
            .map(|&((a, b), t)| (tree.predict(&features.extract(group, a, b)), t))
            .collect();
        f_tree.push(f_measure(&preds).f_measure);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    (mean(&f_rule), mean(&f_sifi), mean(&f_tree))
}

fn main() {
    let n_examples: usize = arg_or("examples", 240);
    let seed: u64 = arg_or("seed", 42);

    for dataset in ["scholar", "amazon"] {
        println!("== Figure 10 ({dataset}): F-measure vs #folds ==");
        let (lg, library, structures, features) = match dataset {
            "scholar" => {
                let mut cfg = ScholarConfig::default_page(seed);
                // More ambiguous cases than an average page, so the CV
                // problem is not trivially separable.
                cfg.err_near_field = 10;
                cfg.one_offs = 24;
                let lg = scholar_page("cv", &cfg);
                let lib = FunctionLibrary::new(vec![
                    (scholar_attr::AUTHORS, SimilarityFn::Overlap),
                    (scholar_attr::AUTHORS, SimilarityFn::Jaccard),
                    (scholar_attr::VENUE, SimilarityFn::Ontology),
                    (scholar_attr::TITLE, SimilarityFn::Jaccard),
                    (scholar_attr::TITLE, SimilarityFn::Ontology),
                ]);
                // An expert who knows the dataset would anchor on the venue
                // ontology and refine with author overlap.
                let structures: Vec<RuleStructure> = vec![
                    vec![(scholar_attr::VENUE, SimilarityFn::Ontology)],
                    vec![
                        (scholar_attr::AUTHORS, SimilarityFn::Overlap),
                        (scholar_attr::VENUE, SimilarityFn::Ontology),
                    ],
                ];
                // The tree sees the whole (partly uninformative) feature
                // space — the paper's point about many options and bounded
                // depth.
                let features = PairFeatures::default_for(&lg.group);
                (lg, lib, structures, features)
            }
            _ => {
                let lg = amazon_category(&AmazonConfig::new(0, 250, 0.2, seed));
                let lib = FunctionLibrary::new(vec![
                    (amazon_attr::ALSO_BOUGHT, SimilarityFn::Overlap),
                    (amazon_attr::ALSO_VIEWED, SimilarityFn::Overlap),
                    (amazon_attr::BOUGHT_TOGETHER, SimilarityFn::Overlap),
                    (amazon_attr::DESCRIPTION, SimilarityFn::Ontology),
                    (amazon_attr::TITLE, SimilarityFn::Jaccard),
                ]);
                let structures: Vec<RuleStructure> = vec![
                    vec![(amazon_attr::DESCRIPTION, SimilarityFn::Ontology)],
                    vec![
                        (amazon_attr::ALSO_BOUGHT, SimilarityFn::Overlap),
                        (amazon_attr::ALSO_VIEWED, SimilarityFn::Overlap),
                    ],
                ];
                let features = PairFeatures::default_for(&lg.group);
                (lg, lib, structures, features)
            }
        };
        let examples = gather_examples(&lg, n_examples, seed);
        let mut t = Table::new(&["folds", "DIME-Rule", "SIFI", "DecisionTree"]);
        for folds in 2..=10 {
            let (fr, fs, ft) =
                cross_validate(&lg.group, &examples, &library, &structures, &features, folds);
            t.row(vec![folds.to_string(), f2(fr), f2(fs), f2(ft)]);
        }
        t.print();
        println!();
    }
}
