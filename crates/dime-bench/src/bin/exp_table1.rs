//! Exp-4 — paper Table I: effect of positive rules.
//!
//! After step 1 (positive-rule partitioning) partitions are bucketed by
//! size; for each bucket we report #partitions, #entities, and #errors
//! (ground-truth mis-categorized entities). The headline claim: almost all
//! errors are isolated in partitions of size < 10, i.e. the conservative
//! positive rules never absorb them into the pivot.
//!
//! Flags: `--seed S`.

use dime_bench::{arg_or, Table};
use dime_core::{discover_fast, PartitionStats};
use dime_data::{scholar_page, scholar_rules, ScholarConfig, PAGE_NAMES};

fn main() {
    let seed: u64 = arg_or("seed", 42);
    let (pos, _) = scholar_rules();

    println!("== Table I: partition-size buckets after positive rules ==");
    let mut t = Table::new(&[
        "page",
        "total",
        "[1,10) grp/ent/err",
        "[10,100) grp/ent/err",
        "[100,1000) grp/ent/err",
        "err<10",
    ]);
    let mut total_errors = 0usize;
    let mut small_errors = 0usize;
    for (i, name) in PAGE_NAMES.iter().enumerate() {
        let mut cfg = ScholarConfig::default_page(seed.wrapping_add(i as u64 * 37));
        cfg.mainstream = 120 + (i % 5) * 90;
        cfg.one_offs = (i * 3) % 13;
        cfg.garbled_own = i % 2;
        cfg.err_garbled = 2 + (i % 6) * 2;
        cfg.err_far_field = 1 + i % 4;
        cfg.err_near_field = i % 3;
        cfg.side_projects = i % 3;
        let lg = scholar_page(name, &cfg);
        // Positive rules only: we inspect the partitions themselves.
        let d = discover_fast(&lg.group, &pos, &[]);
        let truth: std::collections::HashSet<usize> = lg.truth.iter().copied().collect();
        let stats = PartitionStats::compute(&d.partitions, &truth);
        let fmt =
            |b: dime_core::BucketStats| format!("{}/{}/{}", b.partitions, b.entities, b.errors);
        t.row(vec![
            name.to_string(),
            lg.group.len().to_string(),
            fmt(stats.bucket(0)),
            fmt(stats.bucket(1)),
            fmt(stats.bucket(2)),
            format!("{:.0}%", stats.small_partition_error_fraction() * 100.0),
        ]);
        total_errors += lg.truth.len();
        small_errors += stats.bucket(0).errors;
    }
    t.print();
    println!(
        "\noverall: {small_errors}/{total_errors} errors ({:.0}%) fall in partitions of size < 10",
        100.0 * small_errors as f64 / total_errors.max(1) as f64
    );
}
