//! Persistence-layer driver — measures the `dime-store` WAL and recovery
//! path on synthetic session traffic: append throughput under each fsync
//! policy, recovery wall-clock versus log length (split into WAL replay
//! and engine rebuild), and the effect of a snapshot on recovery time.
//! Writes the machine-readable summary to `results/BENCH_store.json` so
//! the durability tax is tracked in CI alongside the throughput numbers.
//!
//! Flags: `--append-ops N` (default 2000) appends per buffered policy,
//! `--always-ops N` (default 200) appends under `fsync always` (each op
//! is a disk round-trip, so the sample is smaller), `--recover N`
//! (default 4000) the largest replayed log, `--out PATH` (default
//! `results/BENCH_store.json`).

use dime_bench::{arg_or, secs, Table};
use dime_core::GroupBuilder;
use dime_core::{IncrementalDime, Predicate, Rule, Schema, SimilarityFn};
use dime_store::wal::{recover, Recovery, SessionWal};
use dime_store::{FsyncPolicy, SessionState, StoreStats, WalOp};
use dime_text::TokenizerKind;
use serde_json::{json, Value};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dime-exp-store-{tag}-{}", std::process::id()))
}

/// A synthetic row: a few title words and a small author list, the shape
/// the service logs for every `add_entities` row.
fn row(i: usize) -> WalOp {
    WalOp::AddEntity {
        values: vec![
            format!("entity matching at scale part {i}"),
            format!("author{}, author{}, author{}", i % 97, (i * 7) % 89, (i * 13) % 83),
        ],
    }
}

/// Appends `ops` rows under `policy` into a fresh WAL and returns
/// (seconds, bytes on disk).
fn append_run(tag: &str, policy: FsyncPolicy, ops: usize) -> (f64, u64) {
    let dir = temp_dir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let stats = Arc::new(StoreStats::default());
    let mut wal = SessionWal::create(&dir, policy, Arc::clone(&stats)).expect("create wal");
    wal.append(&WalOp::Open { doc: "{}".into(), rules: "bench".into() }).expect("open");
    let t0 = Instant::now();
    for i in 0..ops {
        wal.append(&row(i)).expect("append");
    }
    wal.sync().expect("final sync");
    let elapsed = t0.elapsed().as_secs_f64();
    let bytes = stats.snapshot().bytes_appended;
    drop(wal);
    std::fs::remove_dir_all(&dir).expect("cleanup");
    (elapsed, bytes)
}

/// Builds a WAL of `ops` adds (checkpointing midway when `snapshot`),
/// then measures recovery: WAL replay to rows, and the engine rebuild on
/// those rows.
fn recovery_run(tag: &str, ops: usize, snapshot: bool) -> Value {
    let dir = temp_dir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let stats = Arc::new(StoreStats::default());
    let mut wal =
        SessionWal::create(&dir, FsyncPolicy::Never, Arc::clone(&stats)).expect("create wal");
    let open = WalOp::Open { doc: "{}".into(), rules: "bench".into() };
    wal.append(&open).expect("open");
    let WalOp::Open { doc, rules } = &open else { unreachable!() };
    let mut state = SessionState::new(doc.clone(), rules.clone());
    for i in 0..ops {
        let op = row(i);
        wal.append(&op).expect("append");
        state.apply(&op);
        if snapshot && i == ops / 2 {
            wal.checkpoint(&state).expect("checkpoint");
        }
    }
    wal.sync().expect("sync");
    drop(wal);

    let t0 = Instant::now();
    let rec = match recover(&dir, FsyncPolicy::Never, stats).expect("recover") {
        Recovery::Live(rec) => *rec,
        _ => panic!("bench session must recover live"),
    };
    let replay = t0.elapsed().as_secs_f64();
    assert_eq!(rec.state.rows.len(), ops, "every appended row must replay");

    let schema =
        Schema::new([("Title", TokenizerKind::Words), ("Authors", TokenizerKind::List(','))]);
    let pos = vec![Rule::positive(vec![Predicate::new(1, SimilarityFn::Overlap, 2.0)])];
    let neg = vec![Rule::negative(vec![Predicate::new(1, SimilarityFn::Overlap, 0.0)])];
    let rows: Vec<(Vec<String>, Option<Vec<Option<u32>>>)> =
        rec.state.rows.iter().map(|r| (r.values.clone(), r.nodes.clone())).collect();
    let t0 = Instant::now();
    let engine = IncrementalDime::reopen(GroupBuilder::new(schema).build(), pos, neg, &rows);
    let rebuild = t0.elapsed().as_secs_f64();
    assert_eq!(engine.len(), ops);
    drop(engine);
    std::fs::remove_dir_all(&dir).expect("cleanup");
    json!({
        "ops": ops,
        "snapshot": snapshot,
        "wal_replay_seconds": replay,
        "engine_rebuild_seconds": rebuild,
    })
}

fn main() {
    let append_ops: usize = arg_or("append-ops", 2000);
    let always_ops: usize = arg_or("always-ops", 200);
    let recover_max: usize = arg_or("recover", 4000);
    let out: String = arg_or("out", "results/BENCH_store.json".to_string());

    // --- Append throughput per fsync policy.
    let policies: [(&str, FsyncPolicy, usize); 3] = [
        ("never", FsyncPolicy::Never, append_ops),
        ("interval_100ms", FsyncPolicy::default(), append_ops),
        ("always", FsyncPolicy::Always, always_ops),
    ];
    let mut append_results = Vec::new();
    let mut t = Table::new(&["fsync", "ops", "wall", "ops/s", "MiB/s"]);
    for (name, policy, ops) in policies {
        let (elapsed, bytes) = append_run(name, policy, ops);
        t.row(vec![
            name.to_string(),
            ops.to_string(),
            secs(elapsed),
            format!("{:.0}", ops as f64 / elapsed.max(1e-9)),
            format!("{:.2}", bytes as f64 / (1 << 20) as f64 / elapsed.max(1e-9)),
        ]);
        append_results.push(json!({
            "policy": name,
            "ops": ops,
            "wall_seconds": elapsed,
            "bytes": bytes,
        }));
    }
    println!("\n== WAL append throughput ==");
    t.print();

    // --- Recovery wall-clock versus log length.
    let mut sizes: Vec<usize> = vec![recover_max / 20, recover_max / 4, recover_max];
    sizes.retain(|&s| s > 0);
    sizes.dedup();
    let mut recovery_results = Vec::new();
    let mut t = Table::new(&["ops", "snapshot", "replay", "rebuild"]);
    for &ops in &sizes {
        for snapshot in [false, true] {
            let v = recovery_run("recover", ops, snapshot);
            t.row(vec![
                ops.to_string(),
                snapshot.to_string(),
                secs(v["wal_replay_seconds"].as_f64().unwrap()),
                secs(v["engine_rebuild_seconds"].as_f64().unwrap()),
            ]);
            recovery_results.push(v);
        }
    }
    println!("\n== recovery wall-clock ==");
    t.print();

    let summary = json!({
        "config": {
            "append_ops": append_ops,
            "always_ops": always_ops,
            "recover": recover_max,
        },
        "append": append_results,
        "recovery": recovery_results,
    });
    let path = std::path::Path::new(&out);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    let mut body = serde_json::to_string_pretty(&summary).expect("serialize summary");
    body.push('\n');
    std::fs::write(path, body).expect("write summary");
    println!("\nwrote {out}");
}
