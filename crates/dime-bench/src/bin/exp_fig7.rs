//! Exp-3 — paper Figure 7: effectiveness of tuning negative rules (the
//! scrollbar).
//!
//! * Figure 7(a): average precision / recall / F per cumulative negative
//!   rule (NR1, NR2, NR3) on Scholar.
//! * Figure 7(b–d): the same for Amazon's two negative rules across error
//!   rates.
//!
//! Expected shape (paper): recall increases monotonically with more
//! negative rules; precision decreases (a trade-off); the default NR1 is
//! already close to the best F in most cases.
//!
//! Flags: `--pages N`, `--categories N`, `--products N`, `--seed S`.

use dime_bench::{arg_or, f2, scrollbar_metrics, Table};
use dime_core::discover_fast;
use dime_data::{amazon_rules, amazon_suite, scholar_corpus, scholar_rules};
use dime_metrics::Prf;

fn main() {
    let pages: usize = arg_or("pages", 24);
    let categories: usize = arg_or("categories", 6);
    let products: usize = arg_or("products", 150);
    let seed: u64 = arg_or("seed", 42);

    // ---------------- Figure 7(a): Scholar ----------------
    println!("== Figure 7(a): Scholar — per negative rule (cumulative) ==");
    let corpus = scholar_corpus(pages, seed);
    let (pos, neg) = scholar_rules();
    let mut per_step: Vec<Vec<Prf>> = vec![Vec::new(); neg.len()];
    for lg in &corpus {
        let d = discover_fast(&lg.group, &pos, &neg);
        for (k, m) in scrollbar_metrics(lg, &d).into_iter().enumerate() {
            per_step[k].push(m);
        }
    }
    let mut t = Table::new(&["rules", "precision", "recall", "f-measure"]);
    for (k, ms) in per_step.iter().enumerate() {
        let avg = Prf::mean(ms);
        t.row(vec![
            format!("NR1..NR{}", k + 1),
            f2(avg.precision),
            f2(avg.recall),
            f2(avg.f_measure),
        ]);
    }
    t.print();

    // ---------------- Figure 7(b-d): Amazon ----------------
    println!("\n== Figure 7(b-d): Amazon — per negative rule across error rates ==");
    let (pos_a, neg_a) = amazon_rules();
    let mut t = Table::new(&["e%", "NR1-P", "NR1-R", "NR1-F", "NR2-P", "NR2-R", "NR2-F"]);
    for e_pct in [10u32, 20, 30, 40] {
        let e = e_pct as f64 / 100.0;
        let suite = amazon_suite(categories, products, e, seed.wrapping_add(e_pct as u64));
        let mut per_step: Vec<Vec<Prf>> = vec![Vec::new(); neg_a.len()];
        for lg in &suite {
            let d = discover_fast(&lg.group, &pos_a, &neg_a);
            for (k, m) in scrollbar_metrics(lg, &d).into_iter().enumerate() {
                per_step[k].push(m);
            }
        }
        let s1 = Prf::mean(&per_step[0]);
        let s2 = Prf::mean(&per_step[1]);
        t.row(vec![
            format!("{e_pct}"),
            f2(s1.precision),
            f2(s1.recall),
            f2(s1.f_measure),
            f2(s2.precision),
            f2(s2.recall),
            f2(s2.f_measure),
        ]);
    }
    t.print();
}
