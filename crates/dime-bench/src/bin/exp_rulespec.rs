//! Rulespec loop driver — measures the two costs the declarative rule
//! subsystem adds to a live service, end to end over real TCP:
//!
//! 1. **Refinement trajectory.** A session starts with deliberately
//!    useless rules, then receives labeled `(entity, verdict)` feedback
//!    in batches with `apply: true`. After each batch the refined rule
//!    set's discovery is scored against ground truth; the per-round
//!    precision/recall/F1 trajectory goes into the summary, and the
//!    headline `f1_final` vs `f1_seed` pair is the regression pin that
//!    the incremental rule-refinement loop actually learns.
//!
//! 2. **Install latency.** Repeated `rules` installs of a compiled spec
//!    (parse → schema check → Solon-style validation → engine re-plan →
//!    WAL append) timed per round trip, reported as `_seconds` metrics.
//!
//! Flags: `--members N` correctly categorized entities (default 60),
//! `--outliers N` mis-categorized entities (default 12), `--rounds N`
//! feedback batches (default 6), `--installs N` timed installs
//! (default 25), `--out PATH` (default `results/BENCH_rulespec.json`).

use dime_bench::{arg_or, secs, Table};
use dime_metrics::evaluate_sets;
use dime_serve::{Client, ServeConfig, Server};
use serde_json::{json, Value};
use std::time::Instant;

/// Builds the benchmark group: `members` publications that share a topic
/// vocabulary and a rotating author pool, plus `outliers` entities from a
/// different field with disjoint authors. Deterministic by construction —
/// same sizes, same group.
fn group_doc(members: usize, outliers: usize) -> Value {
    let topics =
        ["clustering", "indexing", "sampling", "joins", "provenance", "lineage", "cleaning"];
    let mut rows = Vec::with_capacity(members + outliers);
    for i in 0..members {
        let title =
            format!("statistical methods for data {} volume {}", topics[i % topics.len()], i % 5);
        let authors = format!("member{}, member{}, member{}", i % 9, (i + 1) % 9, (i + 2) % 9);
        rows.push(json!([title, authors]));
    }
    for j in 0..outliers {
        let title = format!("organic synthesis of heterocyclic compound {j}");
        rows.push(json!([title, format!("chemist{j}")]));
    }
    json!({
        "schema": [
            {"name": "Title", "tokenizer": "words"},
            {"name": "Authors", "tokenizer": {"list": ","}},
        ],
        "entities": rows,
    })
}

/// Rules that cover nothing: the refinement loop starts from zero signal.
const SEED_RULES: &str = "positive: jaccard(Title) >= 0.999\nnegative: edit_sim(Title) <= 0.001";

/// The spec used for the timed-install section: a realistic two-sided set
/// that passes validation on the benchmark group.
const INSTALL_SPEC: &str = "\
same(X, Y) :- jaccard(Title) >= 0.6.
same(X, Y) :- overlap(Authors) >= 2.
diff(X, Y) :- jaccard(Title) <= 0.05, overlap(Authors) <= 0.
";

fn f1_of(report: &Value, truth: &[usize]) -> (f64, f64, f64) {
    let flagged: Vec<usize> = report["mis_categorized"]
        .as_array()
        .map(|a| {
            a.iter()
                .filter_map(|e| e.get("id").and_then(Value::as_u64))
                .map(|v| v as usize)
                .collect()
        })
        .unwrap_or_default();
    let m = evaluate_sets(flagged.iter(), truth.iter());
    (m.precision, m.recall, m.f_measure)
}

fn main() {
    let members: usize = arg_or("members", 60);
    let outliers: usize = arg_or("outliers", 12);
    let rounds: usize = arg_or("rounds", 6);
    let installs: usize = arg_or("installs", 25);
    let out: String = arg_or("out", "results/BENCH_rulespec.json".to_string());

    let server = Server::bind(ServeConfig::default()).expect("bind server");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());

    let mut client = Client::connect(addr).expect("connect");
    let doc = group_doc(members, outliers);
    let truth: Vec<usize> = (members..members + outliers).collect();
    let session = client.create_session(&doc, SEED_RULES).expect("create session");

    // Label order interleaves members and outliers so every batch carries
    // both verdicts (the refinement loop needs pairs on both sides).
    let total = members + outliers;
    let mut order: Vec<usize> = Vec::with_capacity(total);
    let stride = total.div_ceil(outliers.max(1));
    let mut member_ids = 0..members;
    let mut outlier_ids = members..total;
    for k in 0..total {
        let next = if k % stride == stride - 1 { outlier_ids.next() } else { member_ids.next() };
        match next {
            Some(id) => order.push(id),
            None => order.extend(member_ids.by_ref().chain(outlier_ids.by_ref())),
        }
    }

    let seed_report = client.discovery(session).expect("seed discovery");
    let (p0, r0, f1_seed) = f1_of(&seed_report, &truth);
    println!("== refinement: {members}+{outliers} entities, {rounds} feedback rounds ==");
    let mut table =
        Table::new(&["round", "labels", "pos rules", "neg rules", "precision", "recall", "F1"]);
    table.row(vec![
        "seed".into(),
        "0".into(),
        "1".into(),
        "1".into(),
        format!("{p0:.2}"),
        format!("{r0:.2}"),
        format!("{f1_seed:.2}"),
    ]);

    let refine_start = Instant::now();
    let batch = total.div_ceil(rounds.max(1));
    let mut trajectory = Vec::new();
    let mut labeled = 0usize;
    for round in 0..rounds {
        let chunk: Vec<(usize, bool)> = order
            .iter()
            .skip(round * batch)
            .take(batch)
            .map(|&id| (id, !truth.contains(&id)))
            .collect();
        if chunk.is_empty() {
            break;
        }
        labeled += chunk.len();
        let fb = client.feedback(session, &chunk, true).expect("feedback");
        let listed = client.rules_list(session).expect("list");
        let report = client.discovery(session).expect("discovery");
        let (precision, recall, f1) = f1_of(&report, &truth);
        let (np, nn) =
            (listed["positive"].as_u64().unwrap_or(0), listed["negative"].as_u64().unwrap_or(0));
        table.row(vec![
            format!("{}", round + 1),
            format!("{labeled}"),
            format!("{np}"),
            format!("{nn}"),
            format!("{precision:.2}"),
            format!("{recall:.2}"),
            format!("{f1:.2}"),
        ]);
        trajectory.push(json!({
            "round": round + 1,
            "labels_total": labeled,
            "applied": fb["applied"],
            "covered_before": fb["covered_before"],
            "covered_after": fb["covered_after"],
            "positive_rules": np,
            "negative_rules": nn,
            "precision": precision,
            "recall": recall,
            "f1": f1,
        }));
    }
    let refine_wall = refine_start.elapsed().as_secs_f64();
    table.print();
    let f1_final = trajectory.last().and_then(|r| r["f1"].as_f64()).unwrap_or(f1_seed);
    println!(
        "seed F1 {f1_seed:.2} -> final F1 {f1_final:.2} after {labeled} labels ({})",
        secs(refine_wall)
    );

    // Timed installs: same spec every round trip, so each sample pays the
    // full parse/validate/re-plan/WAL path and nothing else varies.
    let mut install_total = 0.0f64;
    let mut install_max = 0.0f64;
    for _ in 0..installs {
        let t = Instant::now();
        client.rules_install(session, INSTALL_SPEC).expect("install");
        let dt = t.elapsed().as_secs_f64();
        install_total += dt;
        install_max = install_max.max(dt);
    }
    let install_mean = if installs == 0 { 0.0 } else { install_total / installs as f64 };
    println!(
        "== install latency: {installs} installs, mean {} max {} ==",
        secs(install_mean),
        secs(install_max)
    );

    client.close_session(session).expect("close");
    handle.shutdown();
    runner.join().expect("server thread").expect("clean server run");

    let summary = json!({
        "config": {
            "members": members,
            "outliers": outliers,
            "rounds": rounds,
            "installs": installs,
        },
        "refinement": {
            "f1_seed": f1_seed,
            "f1_final": f1_final,
            "improved": f1_final > f1_seed,
            "labels_total": labeled,
            "wall_seconds": refine_wall,
            "trajectory": trajectory,
        },
        "install": {
            "installs": installs,
            "install_mean_seconds": install_mean,
            "install_max_seconds": install_max,
        },
    });
    let path = std::path::Path::new(&out);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    let mut body = serde_json::to_string_pretty(&summary).expect("serialize summary");
    body.push('\n');
    std::fs::write(path, body).expect("write summary");
    println!("wrote {out}");
}
