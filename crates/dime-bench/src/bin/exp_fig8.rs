//! Exp-3 (detail) — paper Figure 8: per-page precision and recall for 20
//! named Scholar pages under each cumulative negative rule.
//!
//! Expected shape (paper): NR1 gives the best precision on every page;
//! recall grows (to 1.0 on many pages) as NR2/NR3 join; a few pages (the
//! paper's "Nan", "Cong") genuinely need the later rules.
//!
//! Flags: `--seed S`.

use dime_bench::{arg_or, f2, scrollbar_metrics, Table};
use dime_core::discover_fast;
use dime_data::{scholar_page, scholar_rules, ScholarConfig, PAGE_NAMES};

fn main() {
    let seed: u64 = arg_or("seed", 42);
    let (pos, neg) = scholar_rules();

    println!("== Figure 8: per-page precision / recall (20 Scholar pages) ==");
    let mut t = Table::new(&["page", "NR1-P", "NR1-R", "NR2-P", "NR2-R", "NR3-P", "NR3-R"]);
    for (i, name) in PAGE_NAMES.iter().enumerate() {
        // Page profiles vary in size and error mix, like the real crawl.
        let mut cfg = ScholarConfig::default_page(seed.wrapping_add(i as u64 * 37));
        cfg.mainstream = 120 + (i % 5) * 90;
        cfg.one_offs = (i * 3) % 13;
        cfg.garbled_own = i % 2;
        cfg.err_garbled = 2 + (i % 6) * 2;
        cfg.err_far_field = 1 + i % 4;
        cfg.err_near_field = i % 3;
        cfg.side_projects = i % 3;
        let lg = scholar_page(name, &cfg);
        let d = discover_fast(&lg.group, &pos, &neg);
        let steps = scrollbar_metrics(&lg, &d);
        let mut row = vec![name.to_string()];
        for m in &steps {
            row.push(f2(m.precision));
            row.push(f2(m.recall));
        }
        t.row(row);
    }
    t.print();
    println!("\n(expected: precision non-increasing, recall non-decreasing, left to right)");
}
