//! Exp-5 — paper Figure 9: efficiency of DIME, DIME⁺, CR and SVM as the
//! group size grows (Scholar 500–3000 entities, Amazon 2000–10000 at
//! error rate 40%).
//!
//! Expected shape (paper): DIME⁺ fastest (2–10× over DIME); CR and SVM
//! slowest and growing super-linearly. The O(n²) baselines are skipped
//! above `--quad-cap` entities by default (they dominate wall-clock time
//! without changing the shape); raise the cap to reproduce the full
//! curves.
//!
//! Flags: `--scholar-max N` (default 3000), `--amazon-max N` (default
//! 6000), `--quad-cap N` (default 2500), `--seed S`.

use dime_bench::{
    arg_or, run_cr, run_dime_best, run_dime_naive_timed, run_svm, secs, train_svm, Dataset, Table,
};
use dime_data::amazon_category;
use dime_data::{
    amazon_rules, amazon_suite, scholar_page, scholar_rules, AmazonConfig, ScholarConfig,
};

fn main() {
    let scholar_max: usize = arg_or("scholar-max", 3000);
    let amazon_max: usize = arg_or("amazon-max", 6000);
    let quad_cap: usize = arg_or("quad-cap", 2500);
    let seed: u64 = arg_or("seed", 42);

    // ---------------- Figure 9(a): Scholar ----------------
    println!("== Figure 9(a): Scholar efficiency ==");
    let (pos, neg) = scholar_rules();
    let svm_train = scholar_page("svmtrain", &ScholarConfig::scaled_to(400, seed ^ 0x51));
    let svm = train_svm(&[&svm_train], Dataset::Scholar);
    let mut t = Table::new(&["entities", "DIME", "DIME+", "CR", "SVM"]);
    let mut n = 500usize;
    while n <= scholar_max {
        let lg = scholar_page("scale", &ScholarConfig::scaled_to(n, seed.wrapping_add(n as u64)));
        let fast = run_dime_best(&lg, &pos, &neg);
        let naive = run_dime_naive_timed(&lg, &pos, &neg);
        let (cr_s, svm_s) = if n <= quad_cap {
            (secs(run_cr(&lg, Dataset::Scholar).seconds), secs(run_svm(&svm, &lg).seconds))
        } else {
            ("-".into(), "-".into())
        };
        t.row(vec![
            lg.group.len().to_string(),
            secs(naive.seconds),
            secs(fast.seconds),
            cr_s,
            svm_s,
        ]);
        n += 500;
    }
    t.print();

    // ---------------- Figure 9(b): Amazon ----------------
    println!("\n== Figure 9(b): Amazon efficiency (e = 40%) ==");
    let (pos_a, neg_a) = amazon_rules();
    let train = amazon_suite(1, 300, 0.4, seed ^ 0xa11);
    let svm_a = train_svm(&train.iter().collect::<Vec<_>>(), Dataset::Amazon);
    let mut t = Table::new(&["entities", "DIME", "DIME+", "CR", "SVM"]);
    let mut n = 2000usize;
    while n <= amazon_max {
        let products = (n as f64 * 0.6) as usize; // 40% error rate
        let lg = amazon_category(&AmazonConfig::new(0, products, 0.4, seed.wrapping_add(n as u64)));
        let fast = run_dime_best(&lg, &pos_a, &neg_a);
        let naive = run_dime_naive_timed(&lg, &pos_a, &neg_a);
        let (cr_s, svm_s) = if n <= quad_cap {
            (secs(run_cr(&lg, Dataset::Amazon).seconds), secs(run_svm(&svm_a, &lg).seconds))
        } else {
            ("-".into(), "-".into())
        };
        t.row(vec![
            lg.group.len().to_string(),
            secs(naive.seconds),
            secs(fast.seconds),
            cr_s,
            svm_s,
        ]);
        n += 2000;
    }
    t.print();
    println!("\n(\"-\" = O(n^2) baseline skipped above --quad-cap {quad_cap})");
}
