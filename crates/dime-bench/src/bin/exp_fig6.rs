//! Exp-1 / Exp-2 — paper Figure 6: DIME vs CR vs SVM.
//!
//! * Figure 6(a): average precision / recall / F-measure over synthetic
//!   Google Scholar pages (best scrollbar step, CR best-of-threshold).
//! * Figure 6(b–d): precision / recall / F-measure on Amazon categories as
//!   the injected error rate sweeps 10% → 40%.
//!
//! Expected shape (paper): DIME beats both baselines on F everywhere; CR
//! suffers because correct entities in small partitions look like
//! outliers; recall of every method decreases with the error rate.
//!
//! Flags: `--pages N` (default 24), `--categories N` (default 6),
//! `--products N` (default 150), `--seed S`.

use dime_bench::{
    arg_or, default_threads, f2, parallel_map, run_cr_fixed, run_dime_best, run_kmeans, run_svm,
    train_svm, Dataset, Table, CR_THRESHOLDS,
};
use dime_data::{amazon_rules, amazon_suite, scholar_corpus, scholar_rules};
use dime_metrics::Prf;

fn main() {
    let pages: usize = arg_or("pages", 24);
    let categories: usize = arg_or("categories", 6);
    let products: usize = arg_or("products", 150);
    let seed: u64 = arg_or("seed", 42);

    // ---------------- Figure 6(a): Scholar ----------------
    println!("== Figure 6(a): Scholar — best scrollbar result ==");
    let corpus = scholar_corpus(pages, seed);
    let (pos, neg) = scholar_rules();
    let n_train = (pages / 6).max(2).min(corpus.len() - 1);
    let (train, test) = corpus.split_at(n_train);
    let svm = train_svm(&train.iter().collect::<Vec<_>>(), Dataset::Scholar);

    // Pages are independent; evaluate them in parallel.
    let per_page = parallel_map(test, default_threads(), |lg| {
        let dime = run_dime_best(lg, &pos, &neg).metrics;
        let crs: Vec<Prf> =
            CR_THRESHOLDS.iter().map(|&t| run_cr_fixed(lg, Dataset::Scholar, t).metrics).collect();
        let svm = run_svm(&svm, lg).metrics;
        let km = run_kmeans(lg, Dataset::Scholar).metrics;
        (dime, crs, svm, km)
    });
    let dime_m: Vec<Prf> = per_page.iter().map(|r| r.0).collect();
    let mut cr_by_t: Vec<Vec<Prf>> = vec![Vec::new(); CR_THRESHOLDS.len()];
    for r in &per_page {
        for (k, m) in r.1.iter().enumerate() {
            cr_by_t[k].push(*m);
        }
    }
    let svm_m: Vec<Prf> = per_page.iter().map(|r| r.2).collect();
    let km_m: Vec<Prf> = per_page.iter().map(|r| r.3).collect();
    // The paper reports CR at its best single threshold per dataset.
    let cr_m = cr_by_t
        .iter()
        .max_by(|a, b| Prf::mean(a).f_measure.partial_cmp(&Prf::mean(b).f_measure).unwrap())
        .unwrap()
        .clone();
    let mut t = Table::new(&["method", "precision", "recall", "f-measure"]);
    for (name, m) in [("DIME", &dime_m), ("CR", &cr_m), ("SVM", &svm_m), ("KMeans", &km_m)] {
        let avg = Prf::mean(m);
        t.row(vec![name.into(), f2(avg.precision), f2(avg.recall), f2(avg.f_measure)]);
    }
    t.print();

    // ---------------- Figure 6(b-d): Amazon ----------------
    println!("\n== Figure 6(b-d): Amazon — error-rate sweep ==");
    let (pos_a, neg_a) = amazon_rules();
    let mut t = Table::new(&[
        "e%", "DIME-P", "DIME-R", "DIME-F", "CR-P", "CR-R", "CR-F", "SVM-P", "SVM-R", "SVM-F",
    ]);
    for e_pct in [10u32, 20, 30, 40] {
        let e = e_pct as f64 / 100.0;
        let suite = amazon_suite(categories, products, e, seed.wrapping_add(e_pct as u64));
        // Two extra categories (different seeds) train the SVM.
        let train = amazon_suite(2, products, e, seed.wrapping_add(e_pct as u64) ^ 0xbeef);
        let svm = train_svm(&train.iter().collect::<Vec<_>>(), Dataset::Amazon);

        let per_cat = parallel_map(&suite, default_threads(), |lg| {
            let dime = run_dime_best(lg, &pos_a, &neg_a).metrics;
            let crs: Vec<Prf> = CR_THRESHOLDS
                .iter()
                .map(|&t| run_cr_fixed(lg, Dataset::Amazon, t).metrics)
                .collect();
            let svm = run_svm(&svm, lg).metrics;
            (dime, crs, svm)
        });
        let dm: Vec<Prf> = per_cat.iter().map(|r| r.0).collect();
        let mut cr_by_t: Vec<Vec<Prf>> = vec![Vec::new(); CR_THRESHOLDS.len()];
        for r in &per_cat {
            for (k, m) in r.1.iter().enumerate() {
                cr_by_t[k].push(*m);
            }
        }
        let sm: Vec<Prf> = per_cat.iter().map(|r| r.2).collect();
        let cm = cr_by_t
            .iter()
            .max_by(|a, b| Prf::mean(a).f_measure.partial_cmp(&Prf::mean(b).f_measure).unwrap())
            .unwrap()
            .clone();
        let (d, c, s) = (Prf::mean(&dm), Prf::mean(&cm), Prf::mean(&sm));
        t.row(vec![
            format!("{e_pct}"),
            f2(d.precision),
            f2(d.recall),
            f2(d.f_measure),
            f2(c.precision),
            f2(c.recall),
            f2(c.f_measure),
            f2(s.precision),
            f2(s.recall),
            f2(s.f_measure),
        ]);
    }
    t.print();
}
