//! `exp_cluster` — clustering experiments for the sharded discovery
//! service: durable-session throughput as the shard count scales, and
//! failover time-to-first-success when a replicated shard dies.
//!
//! Part 1 runs an in-process cluster (every shard a real `dime-serve`
//! server with `--fsync always` durability, fronted by a consistent-hash
//! router) at 1/2/4/8 shards and drives 2 client threads per shard
//! through full session lifecycles (create, two entity batches, close).
//! The baseline is a single server addressed directly, no router.
//!
//! Every server — baseline included — carries the deployment's actual
//! durability contract: each committed WAL record is synchronously
//! replicated to a follower and acknowledged before the request returns.
//! The follower ack is modeled by a [`dime_store::WalTap`] that sleeps
//! for a configurable round trip (`--ack-us`, default 2000µs ≈ a
//! cross-failure-domain TCP round trip plus the follower's fsync); the
//! tap rides the same `ServeConfig::replication` hook a real
//! [`FollowerLink`] uses. Modeling the ack matters because on a VM with
//! a write-back-cached disk, local fsync is ~0.1ms and the sweep would
//! otherwise measure nothing but single-core JSON parsing. Under the
//! replication contract a session's records serialize behind one ack
//! stream, so a single node is bound by `workers` concurrent streams —
//! and sharding multiplies the streams, which is the effect measured
//! here.
//!
//! Part 2 stands up a primary with a *real* synchronous WAL-streaming
//! follower, kills the primary under a probing router, and measures the
//! wall-clock gap from the kill to the first successful request served
//! after the outage was observed (i.e. by the promoted follower).
//!
//! Flags: `--lifecycles N` sessions per client (default 20),
//! `--max-shards N` cap on the shard sweep (default 8),
//! `--ack-us N` simulated follower ack round trip in µs (default 2000),
//! `--out PATH` JSON summary (default `results/BENCH_cluster.json`).

use dime_bench::{arg_or, secs, Table};
use dime_cluster::{
    Follower, FollowerConfig, FollowerLink, HealthConfig, Router, RouterConfig, RouterHandle,
    ShardSpec,
};
use dime_serve::{Client, ServeConfig, Server, ServerHandle, WalTapHandle};
use dime_store::{FsyncPolicy, StoreConfig};
use serde_json::{json, Value};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const RULES: &str = "positive: overlap(Authors) >= 2\nnegative: overlap(Authors) <= 0";
const WORKERS_PER_SHARD: usize = 4;
const CLIENTS_PER_SHARD: usize = 2;
/// Router connections per shard: enough headroom over the 2 steady
/// clients per shard that a momentary pile-up of sessions hashing to the
/// same shard doesn't serialize the whole fleet.
const POOL_PER_SHARD: usize = 3;
/// Entity batches appended per session; each row is one fsynced,
/// synchronously replicated WAL record, so this sets the durability
/// weight of a lifecycle.
const BATCHES_PER_SESSION: usize = 2;
const ROWS_PER_BATCH: usize = 8;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dime-exp-cluster-{tag}-{}", std::process::id()))
}

/// A synchronous-replication stand-in: acknowledges each committed WAL
/// record after one simulated follower round trip. Rides the same
/// [`dime_serve::ServeConfig::replication`] hook as a real
/// [`FollowerLink`], so the measured code path is the production one —
/// only the wire is simulated.
struct ReplicaAck(Duration);

impl dime_store::WalTap for ReplicaAck {
    fn record_committed(&self, _session: u64, _payload: &[u8]) -> std::io::Result<()> {
        std::thread::sleep(self.0);
        Ok(())
    }
}

fn ack_tap(rtt: Duration) -> Option<WalTapHandle> {
    Some(WalTapHandle::new(Arc::new(ReplicaAck(rtt))))
}

fn group_doc() -> Value {
    json!({"schema": [{"name": "Authors", "tokenizer": {"list": ","}}]})
}

fn batch(rows: usize) -> Vec<Value> {
    (0..rows).map(|i| json!([format!("ann{i}, bob{i}")])).collect()
}

/// Binds a durable (`fsync always`) shard server and runs it on its own
/// thread. Snapshotting is pushed out of the way so the measurement is
/// WAL appends, not checkpoint writes.
fn spawn_shard(dir: PathBuf, replication: Option<WalTapHandle>) -> (SocketAddr, ServerHandle) {
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = StoreConfig::new(dir);
    store.fsync = FsyncPolicy::Always;
    store.snapshot_every = 4096;
    let server = Server::bind(ServeConfig {
        workers: WORKERS_PER_SHARD,
        store: Some(store),
        replication,
        ..ServeConfig::default()
    })
    .expect("bind shard");
    let addr = server.local_addr();
    let handle = server.handle();
    std::thread::spawn(move || server.run());
    (addr, handle)
}

fn spawn_router(config: RouterConfig) -> (SocketAddr, RouterHandle) {
    let router = Router::bind(config).expect("bind router");
    let addr = router.local_addr();
    let handle = router.handle();
    std::thread::spawn(move || router.run());
    (addr, handle)
}

/// One client thread's work: `n` full session lifecycles.
fn run_lifecycles(addr: SocketAddr, n: usize) {
    let mut client = Client::connect(addr).expect("connect").with_retry(5, 10);
    let doc = group_doc();
    let rows = batch(ROWS_PER_BATCH);
    for _ in 0..n {
        let rid = client.create_session(&doc, RULES).expect("create");
        for _ in 0..BATCHES_PER_SESSION {
            client.add_entities(rid, &rows).expect("add");
        }
        client.close_session(rid).expect("close");
    }
}

/// Drives `clients` threads of `lifecycles` sessions each against `addr`
/// and returns (sessions per second, elapsed seconds).
fn drive(addr: SocketAddr, clients: usize, lifecycles: usize) -> (f64, f64) {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(move || run_lifecycles(addr, lifecycles));
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    ((clients * lifecycles) as f64 / elapsed, elapsed)
}

/// Single durable replicated server, clients connected directly — the
/// baseline.
fn single_node(lifecycles: usize, rtt: Duration) -> (f64, f64) {
    let (addr, handle) = spawn_shard(temp_dir("single"), ack_tap(rtt));
    let result = drive(addr, CLIENTS_PER_SHARD, lifecycles);
    handle.shutdown();
    result
}

/// `shards` durable replicated servers behind a router, 2 clients per
/// shard.
fn sharded(shards: usize, lifecycles: usize, rtt: Duration) -> (f64, f64, usize) {
    let mut handles = Vec::new();
    let mut specs = Vec::new();
    for s in 0..shards {
        let (addr, handle) = spawn_shard(temp_dir(&format!("s{shards}-{s}")), ack_tap(rtt));
        specs.push(ShardSpec { addr: addr.to_string(), follower: None });
        handles.push(handle);
    }
    let (addr, router) = spawn_router(RouterConfig {
        shards: specs,
        pool_per_shard: POOL_PER_SHARD,
        health: None,
        ..RouterConfig::default()
    });
    let clients = CLIENTS_PER_SHARD * shards;
    let (rate, elapsed) = drive(addr, clients, lifecycles);
    router.shutdown();
    for handle in handles {
        handle.shutdown();
    }
    (rate, elapsed, clients)
}

/// Kills a replicated primary under a probing router and measures the
/// gap from the kill to the first request served again.
fn failover(probe_ms: u64, fail_threshold: u32) -> (f64, bool) {
    let follower_dir = temp_dir("failover-f");
    let _ = std::fs::remove_dir_all(&follower_dir);
    let follower = Follower::bind(FollowerConfig {
        data_dir: follower_dir,
        fsync: FsyncPolicy::Always,
        ..FollowerConfig::default()
    })
    .expect("bind follower");
    let follower_addr = follower.local_addr();
    let follower_handle = follower.handle();
    std::thread::spawn(move || follower.run());

    let tap = WalTapHandle::new(Arc::new(FollowerLink::new(
        follower_addr.to_string(),
        Duration::from_secs(5),
    )));
    let (primary_addr, primary) = spawn_shard(temp_dir("failover-p"), Some(tap));
    let (addr, router) = spawn_router(RouterConfig {
        shards: vec![ShardSpec {
            addr: primary_addr.to_string(),
            follower: Some(follower_addr.to_string()),
        }],
        pool_per_shard: 1,
        health: Some(HealthConfig {
            interval: Duration::from_millis(probe_ms),
            fail_threshold,
            ..HealthConfig::default()
        }),
        ..RouterConfig::default()
    });

    let mut client = Client::connect(addr).expect("connect router");
    let rid = client.create_session(&group_doc(), RULES).expect("create");
    client
        .add_entities(rid, &[json!(["ann, bob"]), json!(["ann, bob, carl"]), json!(["dora"])])
        .expect("add");
    let mut before = client.discovery(rid).expect("pre-kill discovery");
    before.as_object_mut().expect("report").remove("witnesses");

    let killed = Instant::now();
    primary.shutdown();
    let deadline = killed + Duration::from_secs(30);
    // The dying primary drains its open connections, so the first
    // requests after the kill may still be served by the corpse. Count a
    // success only once the outage was actually observed — a failed
    // request, or the router reporting the promotion — so the gap spans
    // kill → detection → promotion → replay → first real answer.
    let mut saw_outage = false;
    let mut after = loop {
        assert!(Instant::now() < deadline, "failover never completed");
        match client.discovery(rid) {
            Ok(report) if saw_outage => break report,
            Ok(_) => {
                let stats = client.stats(None).expect("stats");
                if stats["cluster"]["failovers"].as_u64().unwrap_or(0) >= 1 {
                    saw_outage = true;
                }
            }
            Err(_) => {
                saw_outage = true;
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    };
    let gap = killed.elapsed().as_secs_f64();
    after.as_object_mut().expect("report").remove("witnesses");
    let identical = before == after;

    router.shutdown();
    if let Some(promoted) = follower_handle.promoted() {
        promoted.shutdown();
    }
    follower_handle.shutdown();
    (gap, identical)
}

fn main() {
    let lifecycles: usize = arg_or("lifecycles", 20);
    let max_shards: usize = arg_or("max-shards", 8);
    let ack_us: u64 = arg_or("ack-us", 2000);
    let rtt = Duration::from_micros(ack_us);
    let out: String = arg_or("out", "results/BENCH_cluster.json".to_string());

    println!(
        "exp_cluster: {lifecycles} lifecycles/client, {BATCHES_PER_SESSION}x{ROWS_PER_BATCH} \
         rows/session, fsync always, follower ack {ack_us}us\n"
    );

    let mut table = Table::new(&["topology", "clients", "sessions", "time", "sess/s", "speedup"]);
    let (single_rate, single_secs) = single_node(lifecycles, rtt);
    table.row(vec![
        "single-node".into(),
        CLIENTS_PER_SHARD.to_string(),
        (CLIENTS_PER_SHARD * lifecycles).to_string(),
        secs(single_secs),
        format!("{single_rate:.0}"),
        "1.00x".into(),
    ]);

    let mut swept = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        if shards > max_shards {
            continue;
        }
        let (rate, elapsed, clients) = sharded(shards, lifecycles, rtt);
        let speedup = rate / single_rate;
        table.row(vec![
            format!("{shards} shard{}", if shards == 1 { "" } else { "s" }),
            clients.to_string(),
            (clients * lifecycles).to_string(),
            secs(elapsed),
            format!("{rate:.0}"),
            format!("{speedup:.2}x"),
        ]);
        swept.push(json!({
            "shards": shards,
            "clients": clients,
            "sessions": clients * lifecycles,
            "seconds": elapsed,
            "sessions_per_sec": rate,
            "speedup_vs_single": speedup,
        }));
    }
    table.print();

    let probe_ms = 50u64;
    let fail_threshold = 2u32;
    let (gap, identical) = failover(probe_ms, fail_threshold);
    println!(
        "\nfailover: time to first success {} after SIGKILL-equivalent, replay identical: \
         {identical}",
        secs(gap)
    );

    let summary = json!({
        "experiment": "cluster",
        "config": {
            "lifecycles_per_client": lifecycles,
            "clients_per_shard": CLIENTS_PER_SHARD,
            "workers_per_shard": WORKERS_PER_SHARD,
            "batches_per_session": BATCHES_PER_SESSION,
            "rows_per_batch": ROWS_PER_BATCH,
            "fsync": "always",
            "replica_ack_us": ack_us,
        },
        "single_node": {
            "clients": CLIENTS_PER_SHARD,
            "sessions_per_sec": single_rate,
            "seconds": single_secs,
        },
        "sharded": swept,
        "failover": {
            "probe_interval_ms": probe_ms,
            "fail_threshold": fail_threshold,
            "time_to_first_success_secs": gap,
            "replay_identical": identical,
        },
    });
    let path = std::path::Path::new(&out);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    let mut body = serde_json::to_string_pretty(&summary).expect("serialize summary");
    body.push('\n');
    std::fs::write(path, body).expect("write summary");
    println!("\nwrote {out}");
}
