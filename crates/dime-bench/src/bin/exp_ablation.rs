//! Ablation table for DIME⁺'s verification optimizations (DESIGN.md §5) —
//! a quick text companion to the Criterion `bench_ablation` benches.
//!
//! Toggles benefit-ordered verification and the union-find transitivity
//! short-circuit independently, on a Scholar page and a DBGen group, and
//! reports wall-clock times plus the slowdown versus the full
//! configuration. Results are asserted identical across configurations.
//!
//! Flags: `--scholar N` (default 2000), `--dbgen N` (default 5000),
//! `--seed S`.

use dime_bench::{arg_or, secs, Table};
use dime_core::{discover_fast_with, DimePlusConfig};
use dime_data::{
    dbgen_group, dbgen_rules, scholar_page, scholar_rules, DbgenConfig, ScholarConfig,
};
use std::time::Instant;

fn main() {
    let scholar_n: usize = arg_or("scholar", 2000);
    let dbgen_n: usize = arg_or("dbgen", 5000);
    let seed: u64 = arg_or("seed", 42);

    let full = DimePlusConfig::default();
    let configs = [
        ("full (paper DIME+)", full),
        ("no benefit order", DimePlusConfig { benefit_order: false, ..full }),
        ("no transitivity", DimePlusConfig { transitivity_skip: false, ..full }),
        ("neither", DimePlusConfig { benefit_order: false, transitivity_skip: false, ..full }),
        ("parallel x8", DimePlusConfig { threads: 8, ..full }),
    ];

    println!("== Ablation: DIME+ verification optimizations ==");
    let mut t = Table::new(&["config", "scholar", "vs full", "dbgen", "vs full"]);

    let scholar = scholar_page("ablate", &ScholarConfig::scaled_to(scholar_n, seed));
    let (spos, sneg) = scholar_rules();
    let dbgen = dbgen_group(&DbgenConfig::new(dbgen_n, seed));
    let (dpos, dneg) = dbgen_rules();

    let mut reference = None;
    let mut baseline: Option<(f64, f64)> = None;
    for (name, cfg) in configs {
        let t0 = Instant::now();
        let ds = discover_fast_with(&scholar.group, &spos, &sneg, cfg);
        let scholar_secs = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let dd = discover_fast_with(&dbgen.group, &dpos, &dneg, cfg);
        let dbgen_secs = t0.elapsed().as_secs_f64();

        match &reference {
            None => reference = Some((ds, dd)),
            Some((rs, rd)) => {
                assert_eq!(&ds, rs, "{name} changed the scholar result");
                assert_eq!(&dd, rd, "{name} changed the dbgen result");
            }
        }
        let (bs, bd) = *baseline.get_or_insert((scholar_secs, dbgen_secs));
        t.row(vec![
            name.into(),
            secs(scholar_secs),
            format!("{:.2}x", scholar_secs / bs),
            secs(dbgen_secs),
            format!("{:.2}x", dbgen_secs / bd),
        ]);
    }
    t.print();
    println!("\n(all configurations produce identical discoveries — asserted)");
}
