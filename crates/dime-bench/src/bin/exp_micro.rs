//! Similarity-kernel microbenchmark driver — ns/pair for every similarity
//! family, old kernel vs new kernel side by side.
//!
//! The verify phase of DIME⁺ is a tight loop over per-pair similarity
//! calls, so its ceiling is exactly these numbers: the scalar DP vs the
//! bit-parallel Myers kernel for edit predicates, the merge pass vs the
//! galloping and bitset kernels for set predicates, and the pointer-walk
//! LCA for ontology predicates. Each row reports nanoseconds per pair over
//! `--pairs` evaluations (default 200 000), with a checksum accumulated
//! across calls so the optimizer cannot discard the work.
//!
//! Writes the machine-readable summary to `results/BENCH_micro.json` so CI
//! tracks kernel regressions alongside the end-to-end throughput numbers.
//!
//! Flags: `--pairs N` (default 200000), `--out PATH` (default
//! `results/BENCH_micro.json`).

use dime_bench::{arg_or, Table};
use dime_ontology::{ontology_similarity, Ontology};
use dime_text::{
    block_build_into, block_intersection_size, cosine, dice, edit_distance, edit_distance_leq,
    edit_similarity, intersection_size, intersection_size_gallop, intersection_size_merge, jaccard,
    levenshtein, levenshtein_leq, overlap,
};
use serde_json::{json, Value};
use std::time::Instant;

/// One measured kernel: family, kernel name, and ns per pair.
struct Row {
    family: &'static str,
    kernel: &'static str,
    ns_per_pair: f64,
    checksum: f64,
}

/// Times `f` over `pairs` calls; the f64 returns are summed into a
/// checksum that keeps the calls observable.
fn time_pairs(
    family: &'static str,
    kernel: &'static str,
    pairs: usize,
    mut f: impl FnMut(usize) -> f64,
) -> Row {
    // Warm-up: populate thread-local scratch and caches.
    let mut warm = 0.0f64;
    for i in 0..pairs.min(100) {
        warm += f(i);
    }
    std::hint::black_box(warm);
    let mut checksum = 0.0f64;
    let t0 = Instant::now();
    for i in 0..pairs {
        checksum += f(i);
    }
    let ns = t0.elapsed().as_nanos() as f64 / pairs as f64;
    Row { family, kernel, ns_per_pair: ns, checksum }
}

/// Deterministic 64-bit mixer for synthetic data (no RNG dependency).
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A sorted deduplicated id set of `len` elements spread over `universe`.
fn id_set(seed: u64, len: usize, universe: u32) -> Vec<u32> {
    let mut v: Vec<u32> = (0..len as u64 * 2).map(|i| mix(seed ^ i) as u32 % universe).collect();
    v.sort_unstable();
    v.dedup();
    v.truncate(len);
    v
}

fn ascii_string(seed: u64, len: usize) -> String {
    (0..len as u64).map(|i| char::from(b'a' + (mix(seed ^ i) % 26) as u8)).collect()
}

fn main() {
    let pairs: usize = arg_or("pairs", 200_000);
    let out: String = arg_or("out", "results/BENCH_micro.json".to_string());
    let mut rows: Vec<Row> = Vec::new();

    // ---- Set families. Three pair shapes: balanced author-list-sized
    // sets (the common verify case), heavily skewed sizes (gallop's home
    // turf), and dense clustered ids (the bitset case).
    let bal_a = id_set(1, 40, 4096);
    let bal_b = id_set(2, 40, 4096);
    let skew_small = id_set(3, 8, 1 << 20);
    let skew_large = id_set(4, 2048, 1 << 20);
    let dense_a: Vec<u32> = (0..256).collect();
    let dense_b: Vec<u32> = (64..320).collect();
    let (mut keys, mut words) = (Vec::new(), Vec::new());
    block_build_into(&dense_a, &mut keys, &mut words);
    let a_blocks = keys.len();
    block_build_into(&dense_b, &mut keys, &mut words);
    let (ak, aw) = (&keys[..a_blocks], &words[..a_blocks]);
    let (bk, bw) = (&keys[a_blocks..], &words[a_blocks..]);

    rows.push(time_pairs("set", "merge_40x40", pairs, |_| {
        intersection_size_merge(&bal_a, &bal_b) as f64
    }));
    rows.push(time_pairs("set", "merge_8x2048", pairs, |_| {
        intersection_size_merge(&skew_small, &skew_large) as f64
    }));
    rows.push(time_pairs("set", "gallop_8x2048", pairs, |_| {
        intersection_size_gallop(&skew_small, &skew_large) as f64
    }));
    rows.push(time_pairs("set", "merge_dense_256", pairs, |_| {
        intersection_size_merge(&dense_a, &dense_b) as f64
    }));
    rows.push(time_pairs("set", "bitset_dense_256", pairs, |_| {
        block_intersection_size(ak, aw, bk, bw) as f64
    }));
    rows.push(time_pairs("set", "adaptive_8x2048", pairs, |_| {
        intersection_size(&skew_small, &skew_large) as f64
    }));
    rows.push(time_pairs("overlap", "adaptive_40x40", pairs, |_| overlap(&bal_a, &bal_b)));
    rows.push(time_pairs("jaccard", "adaptive_40x40", pairs, |_| jaccard(&bal_a, &bal_b)));
    rows.push(time_pairs("dice", "adaptive_40x40", pairs, |_| dice(&bal_a, &bal_b)));
    rows.push(time_pairs("cosine", "adaptive_40x40", pairs, |_| cosine(&bal_a, &bal_b)));

    // ---- Edit families. A title-sized ASCII pair (the single-word Myers
    // case), a long pair (the blocked case), and a unicode pair (the
    // char-slice case).
    let t_a = ascii_string(5, 48);
    let t_b = {
        // ~6 scattered substitutions away from t_a.
        let mut s: Vec<u8> = t_a.clone().into_bytes();
        for i in [3usize, 11, 19, 27, 35, 43] {
            s[i] = b'z';
        }
        String::from_utf8(s).expect("ascii edits stay utf8")
    };
    let long_a = ascii_string(6, 400);
    let long_b = ascii_string(7, 400);
    let uni_a: String = t_a.chars().map(|c| if c == 'a' { 'ä' } else { c }).collect();
    let uni_b: String = t_b.chars().map(|c| if c == 'a' { 'ä' } else { c }).collect();

    rows.push(time_pairs("edit_distance", "dp_48", pairs, |_| levenshtein(&t_a, &t_b) as f64));
    rows.push(time_pairs("edit_distance", "myers_48", pairs, |_| edit_distance(&t_a, &t_b) as f64));
    rows.push(time_pairs("edit_distance", "dp_leq3_48", pairs, |_| {
        levenshtein_leq(&t_a, &t_b, 3).map_or(-1.0, |d| d as f64)
    }));
    rows.push(time_pairs("edit_distance", "myers_leq3_48", pairs, |_| {
        edit_distance_leq(&t_a, &t_b, 3).map_or(-1.0, |d| d as f64)
    }));
    rows.push(time_pairs("edit_distance", "dp_400", pairs / 10 + 1, |_| {
        levenshtein(&long_a, &long_b) as f64
    }));
    rows.push(time_pairs("edit_distance", "myers_blocked_400", pairs, |_| {
        edit_distance(&long_a, &long_b) as f64
    }));
    rows.push(time_pairs("edit_distance", "myers_unicode_48", pairs, |_| {
        edit_distance(&uni_a, &uni_b) as f64
    }));
    rows.push(time_pairs("edit_similarity", "myers_48", pairs, |_| edit_similarity(&t_a, &t_b)));

    // ---- Ontology: depth-4 LCA walk, the `f_on` of the paper.
    let mut ont = Ontology::new("root");
    let mut leaves = Vec::new();
    for f in 0..4 {
        for s in 0..5 {
            for v in 0..8 {
                leaves.push(ont.add_path(&[
                    &format!("field-{f}"),
                    &format!("sub-{f}-{s}"),
                    &format!("venue-{f}-{s}-{v}"),
                ]));
            }
        }
    }
    let (la, lb) = (leaves[0], leaves[leaves.len() - 1]);
    let (lc, ld) = (leaves[1], leaves[2]);
    rows.push(time_pairs("ontology", "lca_far", pairs, |_| ontology_similarity(&ont, la, lb)));
    rows.push(time_pairs("ontology", "lca_near", pairs, |_| ontology_similarity(&ont, lc, ld)));

    // ---- Report.
    let mut table = Table::new(&["family", "kernel", "ns/pair"]);
    for r in &rows {
        table.row(vec![
            r.family.to_string(),
            r.kernel.to_string(),
            format!("{:.1}", r.ns_per_pair),
        ]);
    }
    table.print();
    let checksum: f64 = rows.iter().map(|r| r.checksum).sum();
    println!("checksum {checksum:.3}");

    let kernels: Vec<Value> = rows
        .iter()
        .map(|r| {
            json!({
                "family": r.family,
                "kernel": r.kernel,
                "ns_per_pair": (r.ns_per_pair * 10.0).round() / 10.0,
            })
        })
        .collect();
    let doc = json!({
        "bench": "micro",
        "pairs": pairs,
        "kernels": kernels,
    });
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out, serde_json::to_string_pretty(&doc).expect("serialize"))
        .expect("write BENCH_micro.json");
    println!("wrote {out}");
}
