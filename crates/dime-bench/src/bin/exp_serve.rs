//! Service throughput driver — measures `dime-serve` end to end: many
//! concurrent clients hammering live sessions over real TCP with mixed
//! traffic (create / add / remove / discovery / scrollbar / stats), then
//! reports per-op latencies, overall throughput, and the server's own
//! global counters. Writes the machine-readable summary to
//! `results/BENCH_serve.json` so the perf trajectory is tracked in CI.
//!
//! A second section measures **session throughput** with think-time
//! clients: many short sessions that idle between ops, run against the
//! same small verify pool under both admission modes. Threaded admission
//! parks one worker per connection for its whole lifetime — think time
//! included — so throughput caps at `pool / (think + work)`; the async
//! admission layer holds idle connections for free and the pool only
//! sees CPU-bound verify work. The ratio is recorded as
//! `async_speedup` in the summary.
//!
//! Flags: `--clients N` (default 4), `--rounds N` (default 20),
//! `--batch N` entities added per round (default 8), `--workers N`
//! (default clients + 2), `--sessions N` think-time clients (default
//! 64), `--think-ms MS` idle time between their ops (default 25),
//! `--pool N` verify workers for the dual-mode section (default 4),
//! `--out PATH` (default `results/BENCH_serve.json`).

use dime_bench::{arg_or, secs, Table};
use dime_serve::{AdmissionMode, Client, ServeConfig, Server};
use serde_json::{json, Value};
use std::time::{Duration, Instant};

/// Per-op latency accumulator (microseconds).
#[derive(Default, Clone)]
struct Lat {
    count: u64,
    total_micros: u64,
    max_micros: u64,
}

impl Lat {
    fn record(&mut self, micros: u64) {
        self.count += 1;
        self.total_micros += micros;
        self.max_micros = self.max_micros.max(micros);
    }

    fn merge(&mut self, other: &Lat) {
        self.count += other.count;
        self.total_micros += other.total_micros;
        self.max_micros = self.max_micros.max(other.max_micros);
    }

    fn mean_micros(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.total_micros / self.count
        }
    }

    fn to_value(&self) -> Value {
        json!({
            "count": self.count,
            "mean_micros": self.mean_micros(),
            "max_micros": self.max_micros,
        })
    }
}

/// One latency slot per op in [`OPS`] order.
const OPS: [&str; 6] = ["create", "add", "remove", "discovery", "scrollbar", "stats"];

#[derive(Default, Clone)]
struct ClientLats([Lat; 6]);

impl ClientLats {
    fn timed<T>(&mut self, op: usize, f: impl FnOnce() -> T) -> T {
        let t = Instant::now();
        let out = f();
        self.0[op].record(t.elapsed().as_micros() as u64);
        out
    }
}

fn group_doc() -> Value {
    json!({
        "schema": [
            {"name": "Title", "tokenizer": "words"},
            {"name": "Authors", "tokenizer": {"list": ","}}
        ],
        "entities": []
    })
}

const RULES: &str = "positive: overlap(Authors) >= 2\nnegative: overlap(Authors) <= 0";

/// One client's whole workload: a session, then `rounds` of batched adds,
/// periodic removals, a discovery, a scrollbar read, and a stats probe.
fn drive_client(addr: std::net::SocketAddr, c: usize, rounds: usize, batch: usize) -> ClientLats {
    let mut lats = ClientLats::default();
    let mut client = Client::connect(addr).expect("connect");
    let session =
        lats.timed(0, || client.create_session(&group_doc(), RULES)).expect("create_session");

    let mut live = 0usize; // entity count mirror, for valid removals
    for round in 0..rounds {
        // Linked papers per round plus one outlier, all client-scoped
        // so sessions never share tokens.
        let rows: Vec<Value> = (0..batch)
            .map(|i| {
                if i + 1 == batch {
                    json!([format!("stray {round}"), format!("loner{c}r{round}")])
                } else {
                    json!([format!("paper {round}-{i}"), format!("a{c}core, a{c}r{round}n{i}")])
                }
            })
            .collect();
        lats.timed(1, || client.add_entities(session, &rows)).expect("add_entities");
        live += rows.len();

        if round % 4 == 3 && live > 1 {
            lats.timed(2, || client.remove_entity(session, round % live)).expect("remove_entity");
            live -= 1;
        }

        let report = lats.timed(3, || client.discovery(session)).expect("discovery");
        let steps = report["steps"].as_array().map_or(0, Vec::len);
        if steps > 0 {
            lats.timed(4, || client.scrollbar(session, 0)).expect("scrollbar");
        }
        lats.timed(5, || client.stats(Some(session))).expect("stats");
    }
    client.close_session(session).expect("close");
    lats
}

/// One think-time session: create, add a small batch, read a discovery,
/// close — idling `think` between the ops, like an interactive user
/// between scrollbar drags. The connection is open (and idle) for the
/// whole span.
fn think_session(addr: std::net::SocketAddr, c: usize, think: Duration) {
    let mut client = Client::connect(addr).expect("think connect");
    let session = client.create_session(&group_doc(), RULES).expect("think create");
    std::thread::sleep(think);
    let rows: Vec<Value> =
        (0..4).map(|i| json!([format!("paper {i}"), format!("t{c}a, t{c}b")])).collect();
    client.add_entities(session, &rows).expect("think add");
    std::thread::sleep(think);
    client.discovery(session).expect("think discovery");
    client.close_session(session).expect("think close");
}

/// Runs `sessions` concurrent think-time sessions against a fresh server
/// in the given admission mode and returns sessions completed per second.
fn session_throughput(
    admission: AdmissionMode,
    pool: usize,
    sessions: usize,
    think: Duration,
) -> f64 {
    let server = Server::bind(ServeConfig {
        admission,
        workers: pool,
        max_sessions: sessions + 8,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> =
            (0..sessions).map(|c| scope.spawn(move || think_session(addr, c, think))).collect();
        for h in handles {
            h.join().expect("think session thread");
        }
    });
    let wall = t0.elapsed().as_secs_f64();

    handle.shutdown();
    runner.join().expect("server thread").expect("server run");
    sessions as f64 / wall.max(1e-9)
}

fn main() {
    let clients: usize = arg_or("clients", 4);
    let rounds: usize = arg_or("rounds", 20);
    let batch: usize = arg_or("batch", 8);
    let workers: usize = arg_or("workers", clients + 2);
    let sessions: usize = arg_or("sessions", 64);
    let think_ms: u64 = arg_or("think-ms", 25);
    let pool: usize = arg_or("pool", 4);
    let out: String = arg_or("out", "results/BENCH_serve.json".to_string());

    println!("== dime-serve throughput: {clients} clients x {rounds} rounds (batch {batch}, {workers} workers) ==");

    let server = Server::bind(ServeConfig { workers, ..ServeConfig::default() }).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());

    let t0 = Instant::now();
    let per_client: Vec<ClientLats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| scope.spawn(move || drive_client(addr, c, rounds, batch)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let wall = t0.elapsed().as_secs_f64();

    // Aggregate client-side latencies across the fleet.
    let mut merged = ClientLats::default();
    for cl in &per_client {
        for (slot, lat) in merged.0.iter_mut().zip(&cl.0) {
            slot.merge(lat);
        }
    }
    let ops_total: u64 = merged.0.iter().map(|l| l.count).sum();
    let throughput = ops_total as f64 / wall.max(1e-9);

    // The server's own view, then a clean drain.
    let server_stats = {
        let mut probe = Client::connect(addr).expect("stats connect");
        probe.stats(None).expect("global stats")
    };
    handle.shutdown();
    runner.join().expect("server thread").expect("server run");

    let mut t = Table::new(&["op", "count", "mean", "max"]);
    for (name, lat) in OPS.iter().zip(&merged.0) {
        t.row(vec![
            name.to_string(),
            lat.count.to_string(),
            secs(lat.mean_micros() as f64 / 1e6),
            secs(lat.max_micros as f64 / 1e6),
        ]);
    }
    t.print();
    println!("total: {ops_total} ops in {} = {throughput:.0} ops/s", secs(wall));
    println!(
        "server: {} requests, {} pairs verified, {} errors",
        server_stats["requests"], server_stats["pairs_verified"], server_stats["errors"]
    );

    // Dual-mode session throughput: the same think-time fleet against
    // the same small verify pool, threaded vs async admission.
    let think = Duration::from_millis(think_ms);
    println!(
        "== session throughput: {sessions} think-time sessions ({think_ms}ms think, pool {pool}) =="
    );
    let threaded = session_throughput(AdmissionMode::Threaded, pool, sessions, think);
    let asynch = session_throughput(AdmissionMode::Async, pool, sessions, think);
    let speedup = asynch / threaded.max(1e-9);
    println!(
        "threaded: {threaded:.1} sessions/s   async: {asynch:.1} sessions/s   speedup: {speedup:.2}x"
    );

    let latency: Value = OPS
        .iter()
        .zip(&merged.0)
        .map(|(name, lat)| (name.to_string(), lat.to_value()))
        .collect::<serde_json::Map<String, Value>>()
        .into();
    let summary = json!({
        "config": {"clients": clients, "rounds": rounds, "batch": batch, "workers": workers},
        "wall_seconds": wall,
        "ops_total": ops_total,
        "throughput_ops_per_sec": throughput,
        "latency_micros": latency,
        "server_stats": server_stats,
        "session_throughput": {
            "sessions": sessions,
            "think_ms": think_ms,
            "pool_workers": pool,
            "threaded_sessions_per_sec": threaded,
            "async_sessions_per_sec": asynch,
            "async_speedup": speedup,
        },
    });
    let path = std::path::Path::new(&out);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    let mut body = serde_json::to_string_pretty(&summary).expect("serialize summary");
    body.push('\n');
    std::fs::write(path, body).expect("write summary");
    println!("wrote {out}");
}
