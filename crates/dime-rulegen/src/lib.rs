//! Rule generation from examples (paper Section V).
//!
//! Given positive examples (entity pairs that belong together) and negative
//! examples (pairs that do not), this crate derives the positive and
//! negative rules DIME runs with:
//!
//! * [`candidate_predicates`] restricts the threshold space to the finitely
//!   many similarity values realized on example pairs (Theorem 3);
//! * [`generate_positive_rules`] / [`generate_negative_rules`] implement
//!   the paper's greedy algorithm (DIME-Rule, Sections V-C/V-D);
//! * [`enumerate_rules`] + [`best_rule_set_exhaustive`] implement the
//!   exponential enumeration algorithm (Section V-B) for small instances
//!   and for validating the greedy result — the underlying subset-selection
//!   problem is NP-hard (Theorem 4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod candidates;
mod enumerate;
mod greedy;
mod objective;

pub use candidates::{candidate_predicates, FunctionLibrary};
pub use enumerate::{best_rule_set_exhaustive, enumerate_rules};
pub use greedy::{
    generate_negative_rules, generate_positive_rules, generate_rules_greedy,
    generate_rules_greedy_with_objective, GreedyConfig,
};
pub use objective::{
    coverage, default_objective, rules_cover, score, score_with, Coverage, WeightedObjective,
};
