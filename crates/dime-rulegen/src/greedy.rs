//! The greedy rule-generation algorithm (paper Sections V-C and V-D).
//!
//! Selecting the objective-optimal rule subset is NP-hard (Theorem 4, by
//! reduction from maximum coverage), so DIME-Rule grows rules greedily:
//!
//! 1. **Grow one rule.** Start from the single candidate predicate with the
//!    best objective value; repeatedly conjoin the predicate (on an
//!    attribute not yet used by the rule) that most improves the
//!    objective; stop when no extension helps.
//! 2. **Grow the set.** Add the rule, remove the example pairs it covers,
//!    and repeat on the residual examples while the overall objective
//!    improves.
//!
//! Negative-rule generation is the same procedure with the wanted/unwanted
//! sides swapped; rules are emitted in generation order, which is exactly
//! the scrollbar order in which DIME applies them.

use crate::candidates::{candidate_predicates, FunctionLibrary};
use crate::objective::{rules_cover, score, score_with, WeightedObjective};
use dime_core::{Group, Polarity, Predicate, Rule};

/// Limits for the greedy search.
#[derive(Debug, Clone, Copy)]
pub struct GreedyConfig {
    /// Maximum predicates per rule (paper: at most one per attribute; this
    /// additionally caps rule length).
    pub max_predicates: usize,
    /// Maximum number of rules to emit.
    pub max_rules: usize,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        Self { max_predicates: 3, max_rules: 5 }
    }
}

/// Greedily generates a rule set of the given polarity.
///
/// `wanted`/`unwanted` follow the objective convention: for positive rules
/// pass `(S⁺, S⁻)`, for negative rules pass `(S⁻, S⁺)`.
pub fn generate_rules_greedy(
    group: &Group,
    wanted: &[(usize, usize)],
    unwanted: &[(usize, usize)],
    library: &FunctionLibrary,
    polarity: Polarity,
    config: &GreedyConfig,
) -> Vec<Rule> {
    // Theorem 3: thresholds only need to come from the wanted side.
    let candidates = candidate_predicates(group, wanted, library, polarity);
    let mut rules: Vec<Rule> = Vec::new();
    let mut wanted_left: Vec<(usize, usize)> = wanted.to_vec();
    let mut unwanted_left: Vec<(usize, usize)> = unwanted.to_vec();

    while rules.len() < config.max_rules {
        let Some(rule) =
            grow_rule(group, &wanted_left, &unwanted_left, &candidates, polarity, config)
        else {
            break;
        };
        // Only keep the rule if it improves the residual objective.
        let gain = score(group, std::slice::from_ref(&rule), &wanted_left, &unwanted_left);
        if gain <= 0.0 {
            break;
        }
        // Remove the examples the new rule covers.
        wanted_left.retain(|&p| !rules_cover(group, std::slice::from_ref(&rule), p));
        unwanted_left.retain(|&p| !rules_cover(group, std::slice::from_ref(&rule), p));
        rules.push(rule);
        if wanted_left.is_empty() {
            break;
        }
    }
    rules
}

/// Grows a single conjunction greedily (step 1 of the algorithm).
fn grow_rule(
    group: &Group,
    wanted: &[(usize, usize)],
    unwanted: &[(usize, usize)],
    candidates: &[Predicate],
    polarity: Polarity,
    config: &GreedyConfig,
) -> Option<Rule> {
    if wanted.is_empty() || candidates.is_empty() {
        return None;
    }
    let make = |preds: Vec<Predicate>| Rule { predicates: preds, polarity };
    // Best single predicate.
    let mut best: Option<(f64, Rule)> = None;
    for p in candidates {
        let r = make(vec![*p]);
        let s = score(group, std::slice::from_ref(&r), wanted, unwanted);
        if best.as_ref().is_none_or(|(bs, _)| s > *bs) {
            best = Some((s, r));
        }
    }
    let (mut best_score, mut rule) = best?;
    // Conjoin predicates while the objective improves.
    loop {
        if rule.predicates.len() >= config.max_predicates {
            break;
        }
        let mut next: Option<(f64, Rule)> = None;
        for p in candidates {
            // At most one predicate per attribute (paper Section V-A).
            if rule.predicates.iter().any(|q| q.attr == p.attr) {
                continue;
            }
            let mut preds = rule.predicates.clone();
            preds.push(*p);
            let r = make(preds);
            let s = score(group, std::slice::from_ref(&r), wanted, unwanted);
            if s > best_score && next.as_ref().is_none_or(|(ns, _)| s > *ns) {
                next = Some((s, r));
            }
        }
        match next {
            Some((s, r)) => {
                best_score = s;
                rule = r;
            }
            None => break,
        }
    }
    Some(rule)
}

/// Greedy generation under a [`WeightedObjective`] — identical search, but
/// rule acceptance and predicate extension both optimize the weighted
/// value, so `precision_biased` objectives produce stricter rules.
pub fn generate_rules_greedy_with_objective(
    group: &Group,
    wanted: &[(usize, usize)],
    unwanted: &[(usize, usize)],
    library: &FunctionLibrary,
    polarity: Polarity,
    config: &GreedyConfig,
    objective: WeightedObjective,
) -> Vec<Rule> {
    let candidates = candidate_predicates(group, wanted, library, polarity);
    let mut rules: Vec<Rule> = Vec::new();
    let mut wanted_left: Vec<(usize, usize)> = wanted.to_vec();
    let mut unwanted_left: Vec<(usize, usize)> = unwanted.to_vec();
    while rules.len() < config.max_rules {
        let Some(rule) = grow_rule_with(
            group,
            &wanted_left,
            &unwanted_left,
            &candidates,
            polarity,
            config,
            objective,
        ) else {
            break;
        };
        let gain =
            score_with(group, std::slice::from_ref(&rule), &wanted_left, &unwanted_left, objective);
        if gain <= 0.0 {
            break;
        }
        wanted_left.retain(|&p| !rules_cover(group, std::slice::from_ref(&rule), p));
        unwanted_left.retain(|&p| !rules_cover(group, std::slice::from_ref(&rule), p));
        rules.push(rule);
        if wanted_left.is_empty() {
            break;
        }
    }
    rules
}

fn grow_rule_with(
    group: &Group,
    wanted: &[(usize, usize)],
    unwanted: &[(usize, usize)],
    candidates: &[Predicate],
    polarity: Polarity,
    config: &GreedyConfig,
    objective: WeightedObjective,
) -> Option<Rule> {
    if wanted.is_empty() || candidates.is_empty() {
        return None;
    }
    let make = |preds: Vec<Predicate>| Rule { predicates: preds, polarity };
    let mut best: Option<(f64, Rule)> = None;
    for p in candidates {
        let r = make(vec![*p]);
        let s = score_with(group, std::slice::from_ref(&r), wanted, unwanted, objective);
        if best.as_ref().is_none_or(|(bs, _)| s > *bs) {
            best = Some((s, r));
        }
    }
    let (mut best_score, mut rule) = best?;
    loop {
        if rule.predicates.len() >= config.max_predicates {
            break;
        }
        let mut next: Option<(f64, Rule)> = None;
        for p in candidates {
            if rule.predicates.iter().any(|q| q.attr == p.attr) {
                continue;
            }
            let mut preds = rule.predicates.clone();
            preds.push(*p);
            let r = make(preds);
            let s = score_with(group, std::slice::from_ref(&r), wanted, unwanted, objective);
            if s > best_score && next.as_ref().is_none_or(|(ns, _)| s > *ns) {
                next = Some((s, r));
            }
        }
        match next {
            Some((s, r)) => {
                best_score = s;
                rule = r;
            }
            None => break,
        }
    }
    Some(rule)
}

/// Convenience wrapper: generates positive rules from `(S⁺, S⁻)`.
pub fn generate_positive_rules(
    group: &Group,
    positives: &[(usize, usize)],
    negatives: &[(usize, usize)],
    library: &FunctionLibrary,
    config: &GreedyConfig,
) -> Vec<Rule> {
    generate_rules_greedy(group, positives, negatives, library, Polarity::Positive, config)
}

/// Convenience wrapper: generates negative rules from `(S⁺, S⁻)` — the
/// wanted side is `S⁻` (paper Section V-D).
pub fn generate_negative_rules(
    group: &Group,
    positives: &[(usize, usize)],
    negatives: &[(usize, usize)],
    library: &FunctionLibrary,
    config: &GreedyConfig,
) -> Vec<Rule> {
    generate_rules_greedy(group, negatives, positives, library, Polarity::Negative, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dime_core::{GroupBuilder, Schema, SimilarityFn};
    use dime_text::TokenizerKind;

    /// Separable toy data: correct entities share ≥2 authors; wrong ones
    /// share none.
    fn toy() -> (Group, Vec<(usize, usize)>, Vec<(usize, usize)>) {
        let schema = Schema::new([("Authors", TokenizerKind::List(','))]);
        let mut b = GroupBuilder::new(schema);
        b.add_entity(&["a, b, c"]);
        b.add_entity(&["a, b, d"]);
        b.add_entity(&["b, c, e"]);
        b.add_entity(&["x, y"]);
        b.add_entity(&["p, q"]);
        let g = b.build();
        let pos = vec![(0, 1), (0, 2), (1, 2)];
        let neg = vec![(0, 3), (1, 3), (2, 4), (0, 4)];
        (g, pos, neg)
    }

    #[test]
    fn learns_overlap_rule_on_separable_data() {
        let (g, pos, neg) = toy();
        let lib = FunctionLibrary::new(vec![(0, SimilarityFn::Overlap)]);
        let rules = generate_positive_rules(&g, &pos, &neg, &lib, &GreedyConfig::default());
        assert!(!rules.is_empty());
        // The learned rule must cover all positives and no negatives.
        let s = score(&g, &rules, &pos, &neg);
        assert_eq!(s, pos.len() as f64);
    }

    #[test]
    fn learns_negative_rule() {
        let (g, pos, neg) = toy();
        let lib = FunctionLibrary::new(vec![(0, SimilarityFn::Overlap)]);
        let rules = generate_negative_rules(&g, &pos, &neg, &lib, &GreedyConfig::default());
        assert!(!rules.is_empty());
        assert!(rules.iter().all(|r| r.polarity == Polarity::Negative));
        let s = score(&g, &rules, &neg, &pos);
        assert_eq!(s, neg.len() as f64);
    }

    #[test]
    fn respects_max_rules() {
        let (g, pos, neg) = toy();
        let lib = FunctionLibrary::default_for(&g);
        let cfg = GreedyConfig { max_predicates: 2, max_rules: 1 };
        let rules = generate_positive_rules(&g, &pos, &neg, &lib, &cfg);
        assert!(rules.len() <= 1);
    }

    #[test]
    fn empty_examples_yield_no_rules() {
        let (g, _, neg) = toy();
        let lib = FunctionLibrary::default_for(&g);
        let rules = generate_positive_rules(&g, &[], &neg, &lib, &GreedyConfig::default());
        assert!(rules.is_empty());
    }

    #[test]
    fn one_predicate_per_attribute() {
        let (g, pos, neg) = toy();
        let lib = FunctionLibrary::default_for(&g);
        let rules = generate_positive_rules(&g, &pos, &neg, &lib, &GreedyConfig::default());
        for r in &rules {
            let mut attrs: Vec<usize> = r.predicates.iter().map(|p| p.attr).collect();
            attrs.sort_unstable();
            let before = attrs.len();
            attrs.dedup();
            assert_eq!(before, attrs.len(), "rule reuses an attribute: {r}");
        }
    }

    #[test]
    fn precision_biased_objective_is_stricter() {
        let (g, pos, neg) = toy();
        // Pollute the negatives so a loose rule covers some of them.
        let lib = FunctionLibrary::new(vec![(0, SimilarityFn::Jaccard)]);
        let balanced = generate_rules_greedy_with_objective(
            &g,
            &pos,
            &neg,
            &lib,
            Polarity::Positive,
            &GreedyConfig::default(),
            WeightedObjective::default(),
        );
        let cautious = generate_rules_greedy_with_objective(
            &g,
            &pos,
            &neg,
            &lib,
            Polarity::Positive,
            &GreedyConfig::default(),
            WeightedObjective::precision_biased(5.0),
        );
        let unwanted_cov =
            |rules: &[dime_core::Rule]| crate::objective::coverage(&g, rules, &pos, &neg).unwanted;
        assert!(unwanted_cov(&cautious) <= unwanted_cov(&balanced));
    }

    /// Paper Example 12 semantics on the Figure-1-style entities: the
    /// greedy algorithm must produce a rule set that separates the four
    /// database publications from the SIGIR/chemistry noise. (The paper's
    /// literal trace — `f_ov ≥ 2` first — does not follow from its own
    /// objective arithmetic, where the ontology predicate scores 3 > 2, so
    /// we assert the outcome, not the predicate order.)
    #[test]
    fn paper_example_12_shape() {
        let schema =
            Schema::new([("Authors", TokenizerKind::List(',')), ("Venue", TokenizerKind::Words)]);
        let mut venues = dime_ontology::Ontology::new("venue");
        for v in ["sigmod", "vldb", "icde"] {
            venues.add_path(&["cs", "database", v]);
        }
        venues.add_path(&["cs", "ir", "sigir"]);
        venues.add_path(&["chem", "general", "rsc advances"]);
        let mut b = GroupBuilder::new(schema);
        b.attach_ontology("Venue", std::sync::Arc::new(venues));
        b.add_entity(&["xu chu, ihab ilyas, nan tang", "sigmod"]); // 0
        b.add_entity(&["amr ebaid, ihab ilyas, nan tang", "vldb"]); // 1
        b.add_entity(&["nan tang, jeffrey yu", "icde"]); // 2
        b.add_entity(&["yunqing xia, nj tang", "sigir"]); // 3
        b.add_entity(&["jianlong wang, nan tang", "rsc advances"]); // 4
        let g = b.build();
        let pos = vec![(0, 1), (0, 2), (1, 2)];
        let neg = vec![(0, 3), (0, 4), (1, 3), (1, 4), (2, 3), (2, 4)];
        let lib =
            FunctionLibrary::new(vec![(0, SimilarityFn::Overlap), (1, SimilarityFn::Ontology)]);
        let rules = generate_positive_rules(&g, &pos, &neg, &lib, &GreedyConfig::default());
        assert!(!rules.is_empty());
        // The rule set must use the ontology signal somewhere — pure
        // author-overlap cannot separate the chemistry namesake (entity 4).
        assert!(rules
            .iter()
            .flat_map(|r| &r.predicates)
            .any(|p| p.attr == 1 && p.func == SimilarityFn::Ontology));
        // It covers every positive example and no negative one.
        assert_eq!(score(&g, &rules, &pos, &neg), 3.0);
    }
}
