//! Objective functions for rule-set quality (paper Section V-A).
//!
//! The paper's general objective family: larger coverage of the wanted
//! examples and smaller coverage of the unwanted ones is better. The
//! default instance is `F(Σ, S⁺, S⁻) = |E_Σ ∩ S⁺| − |E_Σ ∩ S⁻|` for
//! positive rules, with the roles of `S⁺`/`S⁻` swapped for negative rules.

use dime_core::{Group, Rule};

/// Which example pairs a rule set covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coverage {
    /// Covered pairs from the *wanted* set (S⁺ for positive rules).
    pub wanted: usize,
    /// Covered pairs from the *unwanted* set.
    pub unwanted: usize,
}

/// Evaluates whether any rule of `rules` covers the pair `(a, b)`.
pub fn rules_cover(group: &Group, rules: &[Rule], pair: (usize, usize)) -> bool {
    let (a, b) = (group.entity(pair.0), group.entity(pair.1));
    rules.iter().any(|r| r.eval(group, a, b))
}

/// Computes the coverage of a rule set over wanted/unwanted example pairs.
///
/// For positive generation pass `(S⁺, S⁻)`; for negative generation pass
/// `(S⁻, S⁺)` — the caller decides which side is "wanted".
pub fn coverage(
    group: &Group,
    rules: &[Rule],
    wanted: &[(usize, usize)],
    unwanted: &[(usize, usize)],
) -> Coverage {
    Coverage {
        wanted: wanted.iter().filter(|&&p| rules_cover(group, rules, p)).count(),
        unwanted: unwanted.iter().filter(|&&p| rules_cover(group, rules, p)).count(),
    }
}

/// The default objective `|E ∩ wanted| − |E ∩ unwanted|`.
pub fn default_objective(c: Coverage) -> f64 {
    c.wanted as f64 - c.unwanted as f64
}

/// A weighted instance of the paper's general objective family
/// (Section V-A: "many functions belong to this general case"): larger
/// wanted coverage is better, larger unwanted coverage is worse, with
/// configurable exchange rates.
///
/// `precision_biased(k)` penalizes covering an unwanted example `k` times
/// as much as covering a wanted one helps — useful when learned positive
/// rules feed a pivot partition that must stay clean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedObjective {
    /// Reward per covered wanted example.
    pub wanted_weight: f64,
    /// Penalty per covered unwanted example.
    pub unwanted_weight: f64,
}

impl Default for WeightedObjective {
    fn default() -> Self {
        Self { wanted_weight: 1.0, unwanted_weight: 1.0 }
    }
}

impl WeightedObjective {
    /// An objective that fears false coverage `k`× more than it values
    /// true coverage.
    pub fn precision_biased(k: f64) -> Self {
        assert!(k > 0.0, "bias must be positive");
        Self { wanted_weight: 1.0, unwanted_weight: k }
    }

    /// Evaluates the objective on a coverage.
    pub fn value(&self, c: Coverage) -> f64 {
        self.wanted_weight * c.wanted as f64 - self.unwanted_weight * c.unwanted as f64
    }
}

/// Scores a rule set with a weighted objective.
pub fn score_with(
    group: &Group,
    rules: &[Rule],
    wanted: &[(usize, usize)],
    unwanted: &[(usize, usize)],
    objective: WeightedObjective,
) -> f64 {
    objective.value(coverage(group, rules, wanted, unwanted))
}

/// Scores a rule set with the default objective.
pub fn score(
    group: &Group,
    rules: &[Rule],
    wanted: &[(usize, usize)],
    unwanted: &[(usize, usize)],
) -> f64 {
    default_objective(coverage(group, rules, wanted, unwanted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dime_core::{GroupBuilder, Predicate, Schema, SimilarityFn};
    use dime_text::TokenizerKind;

    fn group() -> Group {
        let schema = Schema::new([("A", TokenizerKind::List(','))]);
        let mut b = GroupBuilder::new(schema);
        b.add_entity(&["a, b"]); // 0
        b.add_entity(&["a, b"]); // 1
        b.add_entity(&["z"]); // 2
        b.build()
    }

    #[test]
    fn coverage_counts_sides_independently() {
        let g = group();
        let rule = Rule::positive(vec![Predicate::new(0, SimilarityFn::Overlap, 2.0)]);
        let c = coverage(&g, &[rule], &[(0, 1)], &[(0, 2), (1, 2)]);
        assert_eq!(c, Coverage { wanted: 1, unwanted: 0 });
    }

    #[test]
    fn score_is_wanted_minus_unwanted() {
        let g = group();
        // A sloppy rule covering everything.
        let rule = Rule::positive(vec![Predicate::new(0, SimilarityFn::Overlap, 0.0)]);
        let s = score(&g, &[rule], &[(0, 1)], &[(0, 2), (1, 2)]);
        assert_eq!(s, 1.0 - 2.0);
    }

    #[test]
    fn weighted_objective_trades_off() {
        let g = group();
        let rule = Rule::positive(vec![Predicate::new(0, SimilarityFn::Overlap, 0.0)]);
        // Covers 1 wanted, 2 unwanted.
        let balanced = score_with(
            &g,
            std::slice::from_ref(&rule),
            &[(0, 1)],
            &[(0, 2), (1, 2)],
            WeightedObjective::default(),
        );
        assert_eq!(balanced, -1.0);
        let cautious = score_with(
            &g,
            std::slice::from_ref(&rule),
            &[(0, 1)],
            &[(0, 2), (1, 2)],
            WeightedObjective::precision_biased(3.0),
        );
        assert_eq!(cautious, 1.0 - 6.0);
    }

    #[test]
    #[should_panic(expected = "bias must be positive")]
    fn zero_bias_panics() {
        let _ = WeightedObjective::precision_biased(0.0);
    }

    #[test]
    fn empty_rule_set_covers_nothing() {
        let g = group();
        let c = coverage(&g, &[], &[(0, 1)], &[(0, 2)]);
        assert_eq!(c, Coverage { wanted: 0, unwanted: 0 });
    }
}
