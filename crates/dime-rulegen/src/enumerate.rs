//! The exact enumeration algorithm (paper Section V-B).
//!
//! Every possible rule picks 0–1 candidate predicate per attribute; every
//! possible rule *set* is a subset of those rules. The optimal subset under
//! the objective is found by exhaustive search — `O(2^|Σa|)`, which the
//! paper presents precisely to motivate the greedy algorithm. This
//! implementation enforces explicit size caps and is used for small
//! instances and for validating the greedy algorithm in tests.

use crate::objective::score;
use dime_core::{Group, Polarity, Predicate, Rule};

/// Enumerates every rule that takes 0–1 predicate per attribute (excluding
/// the empty rule).
///
/// # Panics
///
/// Panics if more than `max_rules_cap` rules would be produced — the
/// enumeration algorithm is exponential by design; use the greedy
/// generator for real inputs.
pub fn enumerate_rules(
    candidates: &[Predicate],
    polarity: Polarity,
    max_rules_cap: usize,
) -> Vec<Rule> {
    // Group candidates by attribute.
    let mut attrs: Vec<usize> = candidates.iter().map(|p| p.attr).collect();
    attrs.sort_unstable();
    attrs.dedup();
    let per_attr: Vec<Vec<&Predicate>> =
        attrs.iter().map(|&a| candidates.iter().filter(|p| p.attr == a).collect()).collect();
    let total: usize = per_attr.iter().map(|v| v.len() + 1).product::<usize>() - 1;
    assert!(
        total <= max_rules_cap,
        "enumeration would produce {total} rules (cap {max_rules_cap}); use the greedy generator"
    );
    let mut out: Vec<Rule> = Vec::with_capacity(total);
    let mut stack: Vec<Predicate> = Vec::new();
    fn rec(
        per_attr: &[Vec<&Predicate>],
        i: usize,
        stack: &mut Vec<Predicate>,
        polarity: Polarity,
        out: &mut Vec<Rule>,
    ) {
        if i == per_attr.len() {
            if !stack.is_empty() {
                out.push(Rule { predicates: stack.clone(), polarity });
            }
            return;
        }
        // Skip this attribute.
        rec(per_attr, i + 1, stack, polarity, out);
        for p in &per_attr[i] {
            stack.push(**p);
            rec(per_attr, i + 1, stack, polarity, out);
            stack.pop();
        }
    }
    rec(&per_attr, 0, &mut stack, polarity, &mut out);
    out
}

/// Finds the objective-optimal subset of `rules` by exhaustive subset
/// search.
///
/// # Panics
///
/// Panics if `rules.len() > 20` (over a million subsets).
pub fn best_rule_set_exhaustive(
    group: &Group,
    rules: &[Rule],
    wanted: &[(usize, usize)],
    unwanted: &[(usize, usize)],
) -> (Vec<Rule>, f64) {
    assert!(rules.len() <= 20, "exhaustive subset search over {} rules is infeasible", rules.len());
    let mut best: (Vec<Rule>, f64) = (Vec::new(), 0.0);
    for mask in 1u32..(1u32 << rules.len()) {
        let subset: Vec<Rule> = rules
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, r)| r.clone())
            .collect();
        let s = score(group, &subset, wanted, unwanted);
        if s > best.1 || (s == best.1 && !best.0.is_empty() && subset.len() < best.0.len()) {
            best = (subset, s);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{candidate_predicates, FunctionLibrary};
    use crate::greedy::{generate_positive_rules, GreedyConfig};
    use dime_core::{GroupBuilder, Schema, SimilarityFn};
    use dime_text::TokenizerKind;

    fn toy() -> (Group, Vec<(usize, usize)>, Vec<(usize, usize)>) {
        let schema =
            Schema::new([("Authors", TokenizerKind::List(',')), ("Title", TokenizerKind::Words)]);
        let mut b = GroupBuilder::new(schema);
        b.add_entity(&["a, b, c", "data cleaning systems"]);
        b.add_entity(&["a, b", "data cleaning rules"]);
        b.add_entity(&["b, c", "entity matching data"]);
        b.add_entity(&["x, y", "organic synthesis"]);
        b.add_entity(&["b, q", "polymer membranes"]);
        let g = b.build();
        let pos = vec![(0, 1), (0, 2), (1, 2)];
        let neg = vec![(0, 3), (1, 3), (2, 3), (0, 4), (1, 4)];
        (g, pos, neg)
    }

    #[test]
    fn enumerates_cross_product_of_attr_choices() {
        let (g, pos, _) = toy();
        let lib = FunctionLibrary::new(vec![(0, SimilarityFn::Overlap)]);
        let cands = candidate_predicates(&g, &pos, &lib, Polarity::Positive);
        // Two thresholds (2 and 1) → 2 single-predicate rules.
        let rules = enumerate_rules(&cands, Polarity::Positive, 1000);
        assert_eq!(rules.len(), cands.len());
    }

    #[test]
    fn multi_attribute_enumeration_counts() {
        let (g, pos, _) = toy();
        let lib =
            FunctionLibrary::new(vec![(0, SimilarityFn::Overlap), (1, SimilarityFn::Jaccard)]);
        let cands = candidate_predicates(&g, &pos, &lib, Polarity::Positive);
        let n0 = cands.iter().filter(|p| p.attr == 0).count();
        let n1 = cands.iter().filter(|p| p.attr == 1).count();
        let rules = enumerate_rules(&cands, Polarity::Positive, 10_000);
        assert_eq!(rules.len(), (n0 + 1) * (n1 + 1) - 1);
    }

    #[test]
    #[should_panic(expected = "use the greedy generator")]
    fn enumeration_cap_enforced() {
        let (g, pos, _) = toy();
        let lib = FunctionLibrary::default_for(&g);
        let cands = candidate_predicates(&g, &pos, &lib, Polarity::Positive);
        let _ = enumerate_rules(&cands, Polarity::Positive, 2);
    }

    /// The greedy result can never beat the exhaustive optimum, and on this
    /// separable toy instance it matches it.
    #[test]
    fn greedy_matches_exhaustive_on_separable_toy() {
        let (g, pos, neg) = toy();
        let lib = FunctionLibrary::new(vec![(0, SimilarityFn::Overlap)]);
        let cands = candidate_predicates(&g, &pos, &lib, Polarity::Positive);
        let all = enumerate_rules(&cands, Polarity::Positive, 1000);
        let (_, best) = best_rule_set_exhaustive(&g, &all, &pos, &neg);
        let greedy = generate_positive_rules(&g, &pos, &neg, &lib, &GreedyConfig::default());
        let gs = score(&g, &greedy, &pos, &neg);
        assert!(gs <= best);
        assert_eq!(gs, best, "greedy should be optimal on separable data");
    }
}
