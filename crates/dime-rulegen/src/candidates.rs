//! Candidate predicate generation (paper Section V-A, Theorem 3).
//!
//! Rule generation would have to search infinitely many thresholds, but
//! only thresholds equal to a similarity value *realized on an example
//! pair* can change which examples a rule covers (Theorem 3). So the
//! candidate predicates for attribute `A` and function `f` are exactly
//! `f(A) ≥ f(e, e′)` over positive example pairs (and `f(A) ≤ f(e, e′)`
//! over negative pairs for negative rules).

use dime_core::{Group, Polarity, Predicate, SimilarityFn};

/// The library `F` of similarity functions available per attribute.
#[derive(Debug, Clone, Default)]
pub struct FunctionLibrary {
    entries: Vec<(usize, SimilarityFn)>,
}

impl FunctionLibrary {
    /// Builds a library from explicit `(attribute, function)` pairs.
    pub fn new(entries: Vec<(usize, SimilarityFn)>) -> Self {
        Self { entries }
    }

    /// A sensible default for a group: `Overlap` and `Jaccard` on every
    /// attribute, plus `Ontology` on attributes that carry an ontology.
    pub fn default_for(group: &Group) -> Self {
        let mut entries = Vec::new();
        for attr in 0..group.schema().len() {
            entries.push((attr, SimilarityFn::Overlap));
            entries.push((attr, SimilarityFn::Jaccard));
            if group.ontology(attr).is_some() {
                entries.push((attr, SimilarityFn::Ontology));
            }
        }
        Self { entries }
    }

    /// The `(attribute, function)` pairs.
    pub fn entries(&self) -> &[(usize, SimilarityFn)] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Generates the finite candidate predicate set for one polarity.
///
/// For [`Polarity::Positive`], thresholds come from similarity values on
/// `positive` example pairs (predicates `f(A) ≥ θ`); for
/// [`Polarity::Negative`], from values on `negative` pairs (`f(A) ≤ σ`).
/// Duplicate `(attr, func, threshold)` triples are removed; thresholds are
/// sorted descending per `(attr, func)` so stricter predicates come first.
pub fn candidate_predicates(
    group: &Group,
    examples: &[(usize, usize)],
    library: &FunctionLibrary,
    polarity: Polarity,
) -> Vec<Predicate> {
    let mut out: Vec<Predicate> = Vec::new();
    for &(attr, func) in library.entries() {
        let mut thresholds: Vec<f64> = examples
            .iter()
            .map(|&(a, b)| {
                Predicate::new(attr, func, 0.0).similarity(group, group.entity(a), group.entity(b))
            })
            .collect();
        thresholds.sort_by(|a, b| b.partial_cmp(a).unwrap());
        thresholds.dedup();
        for t in thresholds {
            // A trivial threshold covers every pair and cannot discriminate.
            let trivial = match polarity {
                Polarity::Positive => t <= 0.0 && func.higher_is_similar(),
                Polarity::Negative => {
                    t >= 1.0 && func.higher_is_similar() && !matches!(func, SimilarityFn::Overlap)
                }
            };
            if trivial {
                continue;
            }
            out.push(Predicate::new(attr, func, t));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dime_core::{GroupBuilder, Schema};
    use dime_text::TokenizerKind;

    fn group() -> Group {
        let schema = Schema::new([("Authors", TokenizerKind::List(','))]);
        let mut b = GroupBuilder::new(schema);
        b.add_entity(&["a, b, c"]);
        b.add_entity(&["a, b"]);
        b.add_entity(&["z"]);
        b.build()
    }

    #[test]
    fn positive_thresholds_come_from_positive_pairs() {
        let g = group();
        let lib = FunctionLibrary::new(vec![(0, SimilarityFn::Overlap)]);
        let preds = candidate_predicates(&g, &[(0, 1)], &lib, Polarity::Positive);
        // overlap(e0, e1) = 2 → single candidate `overlap ≥ 2`.
        assert_eq!(preds.len(), 1);
        assert_eq!(preds[0].threshold, 2.0);
    }

    #[test]
    fn negative_thresholds_come_from_negative_pairs() {
        let g = group();
        let lib = FunctionLibrary::new(vec![(0, SimilarityFn::Overlap)]);
        let preds = candidate_predicates(&g, &[(0, 2), (1, 2)], &lib, Polarity::Negative);
        // overlap = 0 for both pairs → one candidate `overlap ≤ 0`.
        assert_eq!(preds.len(), 1);
        assert_eq!(preds[0].threshold, 0.0);
    }

    #[test]
    fn trivial_positive_thresholds_pruned() {
        let g = group();
        let lib = FunctionLibrary::new(vec![(0, SimilarityFn::Jaccard)]);
        // Pair (0,2) has Jaccard 0 → would be the trivial `J ≥ 0`.
        let preds = candidate_predicates(&g, &[(0, 2)], &lib, Polarity::Positive);
        assert!(preds.is_empty());
    }

    #[test]
    fn default_library_covers_all_attrs() {
        let g = group();
        let lib = FunctionLibrary::default_for(&g);
        assert_eq!(lib.len(), 2); // overlap + jaccard, no ontology attached
    }

    #[test]
    fn thresholds_dedup_and_sort_descending() {
        let g = group();
        let lib = FunctionLibrary::new(vec![(0, SimilarityFn::Overlap)]);
        let preds = candidate_predicates(&g, &[(0, 1), (0, 1), (0, 2)], &lib, Polarity::Positive);
        let ts: Vec<f64> = preds.iter().map(|p| p.threshold).collect();
        assert_eq!(ts, vec![2.0]); // 0 pruned as trivial, 2 deduped
    }
}
