//! Synthetic datasets for the DIME reproduction.
//!
//! The paper evaluates on a Google Scholar crawl, the McAuley Amazon
//! product dump, and the UT Austin DBGen generator — none of which can ship
//! with this repository. This crate provides generators that reproduce the
//! *signal structure* those datasets expose to the algorithms (see
//! DESIGN.md §2 for the substitution argument):
//!
//! * [`scholar_page`] / [`scholar_corpus`] — researcher pages with
//!   era-structured coauthor pools, a venue ontology shaped like Google
//!   Scholar Metrics, and three kinds of injected mis-categorizations;
//! * [`amazon_category`] / [`amazon_suite`] — product categories with
//!   co-purchase cliques, theme-based descriptions, an LDA-learned
//!   description ontology, and sibling-category error injection at a
//!   configurable rate;
//! * [`dbgen_group`] — large deduplication-style groups (20k–100k) for the
//!   scalability table.
//!
//! Each generator returns a [`LabeledGroup`] carrying ground truth, and a
//! matching `*_rules()` function supplies the paper's positive/negative
//! rule sets resolved against the generated schema.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod amazon;
mod dbgen;
mod io;
mod scholar;
mod types;
mod vocab;

pub use amazon::{
    amazon_category, amazon_rules, amazon_schema, amazon_suite, attr as amazon_attr, AmazonConfig,
};
pub use dbgen::{attr as dbgen_attr, dbgen_group, dbgen_rules, dbgen_schema, DbgenConfig};
pub use io::{discovery_to_json, entity_row_values, load_group_json, load_group_value, LoadError};
pub use scholar::{
    attr as scholar_attr, scholar_corpus, scholar_page, scholar_rules, scholar_schema,
    venue_ontology, ScholarConfig, PAGE_NAMES,
};
pub use types::{ExampleSet, LabeledGroup};
pub use vocab::{Field, ProductCategory, Subfield, FIELDS, PRODUCT_CATEGORIES};
