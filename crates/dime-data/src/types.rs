//! Shared dataset types: groups with ground truth, and training examples.

use dime_core::Group;
use std::collections::HashSet;

/// A group plus its ground truth — which entity ids are mis-categorized.
#[derive(Debug)]
pub struct LabeledGroup {
    /// Human-readable name (researcher page / product category).
    pub name: String,
    /// The entities.
    pub group: Group,
    /// Ids of the truly mis-categorized entities.
    pub truth: HashSet<usize>,
}

impl LabeledGroup {
    /// Error rate of the group: `|truth| / |group|`.
    pub fn error_rate(&self) -> f64 {
        if self.group.is_empty() {
            0.0
        } else {
            self.truth.len() as f64 / self.group.len() as f64
        }
    }

    /// Whether entity `id` is correctly categorized.
    pub fn is_correct(&self, id: usize) -> bool {
        !self.truth.contains(&id)
    }
}

/// Positive and negative example pairs drawn from labeled groups
/// (paper Section V: pairs that are / are not in the same category).
#[derive(Debug, Default, Clone)]
pub struct ExampleSet {
    /// Pairs of entity ids that belong together (both correct).
    pub positive: Vec<(usize, usize)>,
    /// Pairs that do not belong together (one mis-categorized).
    pub negative: Vec<(usize, usize)>,
}

impl ExampleSet {
    /// Derives up to `n_pos`/`n_neg` example pairs from a labeled group:
    /// positives are pairs of correct entities, negatives pair each
    /// mis-categorized entity with correct ones (the paper's observation
    /// that good negative examples are easy to find in this setting).
    ///
    /// Sampling is deterministic: pairs are taken in a fixed stride order.
    pub fn from_labeled(lg: &LabeledGroup, n_pos: usize, n_neg: usize) -> Self {
        let correct: Vec<usize> = (0..lg.group.len()).filter(|e| lg.is_correct(*e)).collect();
        let wrong: Vec<usize> = (0..lg.group.len()).filter(|e| !lg.is_correct(*e)).collect();
        let mut positive = Vec::with_capacity(n_pos);
        // Stride through distinct correct pairs.
        'pos: for step in 1..correct.len().max(1) {
            for i in 0..correct.len().saturating_sub(step) {
                if positive.len() >= n_pos {
                    break 'pos;
                }
                positive.push((correct[i], correct[i + step]));
            }
        }
        let mut negative = Vec::with_capacity(n_neg);
        if !correct.is_empty() {
            'neg: for (k, &w) in wrong.iter().enumerate() {
                for j in 0..correct.len() {
                    if negative.len() >= n_neg {
                        break 'neg;
                    }
                    // Offset the start per wrong entity for variety.
                    negative.push((w, correct[(j + k * 7) % correct.len()]));
                }
            }
        }
        Self { positive, negative }
    }

    /// Merges another example set (offsetting is the caller's concern when
    /// the ids come from different groups).
    pub fn extend(&mut self, other: &ExampleSet) {
        self.positive.extend_from_slice(&other.positive);
        self.negative.extend_from_slice(&other.negative);
    }

    /// Total number of examples.
    pub fn len(&self) -> usize {
        self.positive.len() + self.negative.len()
    }

    /// Whether there are no examples.
    pub fn is_empty(&self) -> bool {
        self.positive.is_empty() && self.negative.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dime_core::{GroupBuilder, Schema};
    use dime_text::TokenizerKind;

    fn tiny() -> LabeledGroup {
        let mut b = GroupBuilder::new(Schema::new([("A", TokenizerKind::Words)]));
        for i in 0..6 {
            b.add_entity(&[&format!("e{i}")]);
        }
        LabeledGroup { name: "t".into(), group: b.build(), truth: [4, 5].into_iter().collect() }
    }

    #[test]
    fn error_rate_and_correctness() {
        let lg = tiny();
        assert!((lg.error_rate() - 2.0 / 6.0).abs() < 1e-12);
        assert!(lg.is_correct(0));
        assert!(!lg.is_correct(5));
    }

    #[test]
    fn examples_respect_labels() {
        let lg = tiny();
        let ex = ExampleSet::from_labeled(&lg, 5, 5);
        assert_eq!(ex.positive.len(), 5);
        assert_eq!(ex.negative.len(), 5);
        for &(a, b) in &ex.positive {
            assert!(lg.is_correct(a) && lg.is_correct(b));
            assert_ne!(a, b);
        }
        for &(w, c) in &ex.negative {
            assert!(!lg.is_correct(w) && lg.is_correct(c));
        }
    }

    #[test]
    fn examples_capped_by_availability() {
        let lg = tiny();
        let ex = ExampleSet::from_labeled(&lg, 1000, 1000);
        // 4 correct entities → 6 distinct positive pairs.
        assert_eq!(ex.positive.len(), 6);
        // 2 wrong × 4 correct = 8 negatives.
        assert_eq!(ex.negative.len(), 8);
    }
}
